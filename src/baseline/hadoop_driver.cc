#include "baseline/hadoop_driver.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "obs/slo/slo_tracker.h"

namespace redoop {

namespace {
JobRunnerOptions WithTelemetry(JobRunnerOptions options,
                               obs::ObservabilityContext* obs,
                               const obs::TelemetryScope* scope) {
  options.obs = obs;
  options.telemetry = scope;
  return options;
}
}  // namespace

HadoopRecurringDriver::HadoopRecurringDriver(Cluster* cluster, BatchFeed* feed,
                                             RecurringQuery query,
                                             JobRunnerOptions runner_options)
    : cluster_(cluster),
      feed_(feed),
      query_(std::move(query)),
      geometry_(query_.window(),
                Gcd(query_.window().win, query_.window().slide)),
      owned_obs_(runner_options.obs == nullptr
                     ? std::make_unique<obs::ObservabilityContext>()
                     : nullptr),
      obs_(runner_options.obs != nullptr ? runner_options.obs
                                         : owned_obs_.get()),
      scope_(obs_, query_.name, &telemetry_window_, &trace_ctx_),
      runner_(cluster, &scheduler_,
              WithTelemetry(runner_options, obs_, &scope_)) {
  REDOOP_CHECK(cluster_ != nullptr);
  REDOOP_CHECK(feed_ != nullptr);
  query_.CheckValid();
  obs_->SetTimeSource(
      [cluster = cluster_] { return cluster->simulator().Now(); });
  scheduler_.set_telemetry(scope_);
  cluster_->dfs().set_observability(obs_);
  ingested_until_.assign(query_.sources.size(), 0);
}

void HadoopRecurringDriver::IngestUpTo(Timestamp t) {
  for (size_t si = 0; si < query_.sources.size(); ++si) {
    const SourceId source = query_.sources[si].id;
    if (ingested_until_[si] >= t) continue;
    const std::vector<RecordBatch> batches =
        feed_->BatchesFor(source, ingested_until_[si], t);
    for (const RecordBatch& batch : batches) {
      REDOOP_CHECK(batch.start == ingested_until_[si])
          << "feed returned a non-contiguous batch";
      ingested_until_[si] = batch.end;
      if (batch.records.empty()) continue;
      StoredBatch stored;
      stored.file_name =
          StringPrintf("hadoop/%s/S%d/batch-%ld", query_.name.c_str(), source,
                       batch_counter_++);
      stored.source = source;
      stored.begin = batch.start;
      stored.end = batch.end;
      stored.bytes = batch.logical_bytes();
      auto created = cluster_->dfs().CreateFile(
          stored.file_name, batch.records, batch.start, batch.end);
      REDOOP_CHECK(created.ok()) << created.status().ToString();
      batches_.push_back(std::move(stored));
    }
    REDOOP_CHECK(ingested_until_[si] == t)
        << "feed under-delivered: got to " << ingested_until_[si]
        << ", wanted " << t;
  }
}

void HadoopRecurringDriver::DropExpiredBatches(Timestamp window_begin) {
  while (!batches_.empty() && batches_.front().end <= window_begin) {
    REDOOP_CHECK_OK(cluster_->dfs().DeleteFile(batches_.front().file_name));
    batches_.pop_front();
  }
  // Batches are stored in arrival order interleaved across sources, so the
  // simple front-drop above may strand an expired batch behind a live one;
  // sweep the rest too.
  for (auto it = batches_.begin(); it != batches_.end();) {
    if (it->end <= window_begin) {
      REDOOP_CHECK_OK(cluster_->dfs().DeleteFile(it->file_name));
      it = batches_.erase(it);
    } else {
      ++it;
    }
  }
}

WindowReport HadoopRecurringDriver::RunRecurrence(int64_t recurrence) {
  REDOOP_CHECK(recurrence == next_recurrence_)
      << "recurrences must run consecutively";
  ++next_recurrence_;

  const Timestamp begin = geometry_.WindowBegin(recurrence);
  const Timestamp end = geometry_.WindowEnd(recurrence);
  const Timestamp trigger = geometry_.TriggerTime(recurrence);

  telemetry_window_ = recurrence;
  trace_ctx_.trace_id = obs::trace::TraceIdFor(
      obs_->journal().CommonFieldOr("system", ""), query_.name);
  trace_ctx_.span_id =
      obs::trace::WindowSpanId(trace_ctx_.trace_id, recurrence);
  trace_ctx_.window = recurrence;
  trace_ctx_.sampled = true;
  obs::Event& open =
      scope_.EmitAt(cluster_->simulator().Now(), obs::event::kWindowOpen)
          .With("recurrence", recurrence)
          .With("trigger", trigger)
          .With("window_begin", begin)
          .With("window_end", end);
  const double deadline = query_.EffectiveDeadline();
  if (deadline > 0) open.With("deadline", deadline);

  // Data for the window lands in HDFS as it arrives (not charged to the
  // query's response time, same as Redoop's packer ingest).
  IngestUpTo(end);
  DropExpiredBatches(begin);

  // Wait for the trigger; a late previous window delays this one.
  Simulator& sim = cluster_->simulator();
  if (sim.Now() < static_cast<SimTime>(trigger)) {
    sim.RunUntil(static_cast<SimTime>(trigger));
  }
  scope_.EmitAt(sim.Now(), obs::event::kWindowTrigger)
      .With("recurrence", recurrence)
      .With("trigger", trigger);

  // One full job over every batch overlapping the window, with a window
  // filter wrapped around the user mapper.
  JobSpec spec;
  spec.config = query_.config;
  spec.config.name = StringPrintf("%s-hadoop-rec%ld", query_.name.c_str(),
                                  recurrence);
  spec.config.mapper = std::make_shared<const WindowFilterMapper>(
      query_.config.mapper, begin, end);
  if (query_.finalizer != nullptr &&
      query_.pattern == IncrementalPattern::kPerPaneMerge) {
    // A single-job baseline folds the window finalization into its reduce:
    // each key's whole window is one group, so reduce-then-finalize per
    // group equals Redoop's per-pane reduce + window finalize.
    spec.config.reducer = std::make_shared<const ComposedReducer>(
        query_.config.reducer, query_.finalizer);
  }
  for (const QuerySource& qs : query_.sources) {
    // Per-source mapper overrides also get the window filter.
    spec.per_source_mappers[qs.id] = std::make_shared<const WindowFilterMapper>(
        query_.MapperFor(qs.id), begin, end);
  }
  int64_t window_bytes = 0;
  for (const StoredBatch& batch : batches_) {
    if (batch.end <= begin || batch.begin >= end) continue;
    MapInput input;
    input.file_name = batch.file_name;
    input.source = batch.source;
    input.pane = kInvalidPane;
    spec.map_inputs.push_back(std::move(input));
    window_bytes += batch.bytes;
  }
  spec.output_prefix = query_.OutputPathForRecurrence(recurrence);

  JobResult result = runner_.Run(spec);
  REDOOP_CHECK(result.status.ok()) << result.status.ToString();

  WindowReport report;
  report.recurrence = recurrence;
  report.trigger_time = trigger;
  report.finished_at = sim.Now();
  report.response_time = sim.Now() - static_cast<SimTime>(trigger);
  report.shuffle_time = result.shuffle_time_total;
  report.reduce_time = result.reduce_time_total;
  report.map_phase_time = result.map_phase_time;
  report.window_input_bytes = window_bytes;
  report.fresh_input_bytes = window_bytes;  // Hadoop reprocesses everything.
  report.output_records = static_cast<int64_t>(result.output.size());
  report.counters = result.counters;
  report.task_reports = std::move(result.task_reports);
  report.output = std::move(result.output);
  SortByKey(&report.output);
  if (query_.emit_deltas) {
    report.delta = ComputeWindowDelta(previous_output_, report.output);
    previous_output_ = report.output;
  }

  scope_.Increment(obs::metric::kWindowsCompleted);
  scope_.Record(obs::metric::kWindowResponseTime, report.response_time);
  scope_.EmitAt(report.finished_at, obs::event::kWindowComplete)
      .With("recurrence", recurrence)
      .With("trigger", trigger)
      .With("response_time", report.response_time)
      .With("output_records", report.output_records)
      .With("fresh_bytes", report.fresh_input_bytes);
  telemetry_window_ = -1;
  trace_ctx_ = obs::trace::TraceContext();
  return report;
}

RunReport HadoopRecurringDriver::Run(int64_t n) {
  RunReport report;
  report.system = "hadoop";
  for (int64_t i = 0; i < n; ++i) {
    report.windows.push_back(RunRecurrence(i));
  }
  report.observability = obs_->metrics().Snapshot();
  obs::analysis::AnalysisOptions slo_options;
  slo_options.group_by_query = true;
  obs::slo::ExportTo(obs::slo::ComputeSlo(obs_->journal(), slo_options),
                     &report.observability);
  return report;
}

}  // namespace redoop
