#ifndef REDOOP_BASELINE_HADOOP_DRIVER_H_
#define REDOOP_BASELINE_HADOOP_DRIVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/batch_feed.h"
#include "core/metrics.h"
#include "core/recurring_query.h"
#include "core/window.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/scheduler.h"
#include "obs/observability.h"

namespace redoop {

/// The plain-Hadoop baseline ("traditional driver approach", paper §6.1):
/// each recurrence re-submits a full MapReduce job over every batch file
/// overlapping the window — re-loading, re-shuffling, and re-reducing the
/// overlapping data with no caching, no pane awareness, and no adaptivity.
class HadoopRecurringDriver {
 public:
  /// `cluster` and `feed` must outlive the driver. `runner_options`
  /// controls the engine (retries, stragglers, speculation).
  HadoopRecurringDriver(Cluster* cluster, BatchFeed* feed,
                        RecurringQuery query,
                        JobRunnerOptions runner_options = {});

  HadoopRecurringDriver(const HadoopRecurringDriver&) = delete;
  HadoopRecurringDriver& operator=(const HadoopRecurringDriver&) = delete;

  /// Executes recurrence `i` (must be called with consecutive i starting
  /// at 0): ingests the data up to the window end, waits (in simulated
  /// time) for the trigger, runs the window job, and reports.
  WindowReport RunRecurrence(int64_t recurrence);

  /// Convenience: runs recurrences [0, n).
  RunReport Run(int64_t n);

  const WindowGeometry& geometry() const { return geometry_; }

  /// The active observability context. The driver journals window
  /// lifecycle events and job/task/DFS metrics into it — the baseline is
  /// instrumented identically to Redoop so runs are comparable. Comes from
  /// `runner_options.obs` when set; otherwise driver-owned. Never null.
  obs::ObservabilityContext* observability() { return obs_; }

 private:
  struct StoredBatch {
    std::string file_name;
    SourceId source = 0;
    Timestamp begin = 0;
    Timestamp end = 0;
    int64_t bytes = 0;
  };

  void IngestUpTo(Timestamp t);
  void DropExpiredBatches(Timestamp window_begin);

  Cluster* cluster_;
  BatchFeed* feed_;
  RecurringQuery query_;
  WindowGeometry geometry_;
  /// Owned fallback when runner_options.obs is null; obs_ is the active
  /// context. Declared before runner_ so the runner can be handed obs_.
  std::unique_ptr<obs::ObservabilityContext> owned_obs_;
  obs::ObservabilityContext* obs_ = nullptr;
  /// Current recurrence for event attribution (-1 outside a recurrence);
  /// declared before scope_, which captures its address.
  int64_t telemetry_window_ = -1;
  /// Current window's trace context (same cell mechanism as the Redoop
  /// driver; the baseline traces every window — no sampling knob).
  obs::trace::TraceContext trace_ctx_;
  /// Query-attributed scope — the baseline is instrumented identically to
  /// Redoop so per-query SLO/lag figures are comparable across systems.
  obs::TelemetryScope scope_;
  DefaultScheduler scheduler_;
  JobRunner runner_;
  std::vector<Timestamp> ingested_until_;  // Per source index.
  std::deque<StoredBatch> batches_;
  int64_t next_recurrence_ = 0;
  int64_t batch_counter_ = 0;
  /// Previous recurrence's result, kept when the query emits deltas.
  std::vector<KeyValue> previous_output_;
};

}  // namespace redoop

#endif  // REDOOP_BASELINE_HADOOP_DRIVER_H_
