#include "exec/task_executor.h"

#include <algorithm>

namespace redoop {
namespace exec {

int32_t TaskExecutor::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<int32_t>(1, static_cast<int32_t>(hw));
}

TaskExecutor::TaskExecutor(int32_t threads) {
  const size_t n = static_cast<size_t>(std::max<int32_t>(1, threads));
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Satisfy any futures still queued (callers that never joined): run the
  // leftovers inline so no ticket is abandoned un-done.
  while (auto ticket = StealAny()) RunTicket(ticket.get());
}

void TaskExecutor::Post(std::shared_ptr<internal::Ticket> ticket) {
  const size_t target =
      next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->items.push_back(std::move(ticket));
  }
  pending_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_one();
}

std::shared_ptr<internal::Ticket> TaskExecutor::PopOwn(size_t worker) {
  WorkerDeque& dq = *deques_[worker];
  std::lock_guard<std::mutex> lock(dq.mu);
  if (dq.items.empty()) return nullptr;
  auto ticket = std::move(dq.items.back());
  dq.items.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return ticket;
}

std::shared_ptr<internal::Ticket> TaskExecutor::StealAny() {
  for (auto& dq_ptr : deques_) {
    WorkerDeque& dq = *dq_ptr;
    std::lock_guard<std::mutex> lock(dq.mu);
    if (dq.items.empty()) continue;
    auto ticket = std::move(dq.items.front());
    dq.items.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return ticket;
  }
  return nullptr;
}

void TaskExecutor::RunTicket(internal::Ticket* ticket) {
  std::function<void()> body = std::move(ticket->body);
  ticket->body = nullptr;
  body();
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->done = true;
  }
  ticket->cv.notify_all();
}

void TaskExecutor::WorkerLoop(size_t index) {
  for (;;) {
    std::shared_ptr<internal::Ticket> ticket = PopOwn(index);
    if (ticket == nullptr) ticket = StealAny();
    if (ticket != nullptr) {
      RunTicket(ticket.get());
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void TaskExecutor::WaitHelping(internal::Ticket* ticket) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      if (ticket->done) return;
    }
    auto other = StealAny();
    if (other == nullptr) break;  // `ticket` is running or done: safe to block.
    RunTicket(other.get());
  }
  std::unique_lock<std::mutex> lock(ticket->mu);
  ticket->cv.wait(lock, [ticket] { return ticket->done; });
}

}  // namespace exec
}  // namespace redoop
