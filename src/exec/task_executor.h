#ifndef REDOOP_EXEC_TASK_EXECUTOR_H_
#define REDOOP_EXEC_TASK_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace redoop {
namespace exec {

class TaskExecutor;

namespace internal {

/// Shared completion state of one submitted payload. The body runs exactly
/// once (on a worker, on a stealing waiter, or inline during drain); `done`
/// flips under `mu` and is the only cross-thread signal.
struct Ticket {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::function<void()> body;
};

}  // namespace internal

/// Handle to a payload's result. Take() blocks until the payload ran, but
/// the waiting thread *helps*: while the ticket is still queued it steals
/// and executes other pending payloads instead of sleeping, so a
/// single-producer caller never idles behind its own queue.
template <typename T>
class TaskFuture {
 public:
  TaskFuture() = default;

  bool valid() const { return ticket_ != nullptr; }

  /// Blocks (helping) until the payload completed, then moves the result
  /// out. Call at most once on a valid future.
  T Take();

  /// Blocks (helping) until the payload completed; result stays in place.
  void Wait();

 private:
  friend class TaskExecutor;
  TaskFuture(TaskExecutor* executor, std::shared_ptr<internal::Ticket> ticket,
             std::shared_ptr<std::optional<T>> box)
      : executor_(executor),
        ticket_(std::move(ticket)),
        box_(std::move(box)) {}

  TaskExecutor* executor_ = nullptr;
  std::shared_ptr<internal::Ticket> ticket_;
  std::shared_ptr<std::optional<T>> box_;
};

/// Work-stealing thread pool for the deterministic offload layer: payloads
/// are pure closures, so *which* thread runs one (and in what order) is
/// invisible to the simulation — results re-join the event loop at
/// deterministic points. One external producer (the simulator thread)
/// distributes payloads round-robin over per-worker deques; owners pop
/// LIFO for cache locality, thieves and helping waiters steal FIFO.
class TaskExecutor {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit TaskExecutor(int32_t threads);
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  int32_t thread_count() const { return static_cast<int32_t>(workers_.size()); }

  /// max(1, std::thread::hardware_concurrency()) — the `threads = 0` ("auto")
  /// resolution shared by the CLI and JobRunner.
  static int32_t DefaultThreadCount();

  /// Submits a nullary payload; returns a future for its result. Safe from
  /// any thread, though the engine only submits from the simulator thread.
  template <typename F>
  auto Submit(F fn) -> TaskFuture<std::invoke_result_t<F&>> {
    using T = std::invoke_result_t<F&>;
    auto box = std::make_shared<std::optional<T>>();
    auto ticket = std::make_shared<internal::Ticket>();
    // The payload may hold move-only captures; park it behind a shared_ptr
    // so the copyable std::function wrapper can carry it.
    auto payload = std::make_shared<F>(std::move(fn));
    ticket->body = [payload, box] { box->emplace((*payload)()); };
    Post(ticket);
    return TaskFuture<T>(this, std::move(ticket), std::move(box));
  }

  /// Blocks until `ticket` completed, executing other pending payloads
  /// while it is still queued (used by TaskFuture; exposed for tests).
  void WaitHelping(internal::Ticket* ticket);

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::shared_ptr<internal::Ticket>> items;
  };

  void Post(std::shared_ptr<internal::Ticket> ticket);
  std::shared_ptr<internal::Ticket> PopOwn(size_t worker);
  /// Steals the oldest pending payload from any deque (nullptr if none).
  std::shared_ptr<internal::Ticket> StealAny();
  static void RunTicket(internal::Ticket* ticket);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_deque_{0};
  std::vector<std::thread> workers_;
};

template <typename T>
T TaskFuture<T>::Take() {
  Wait();
  T value = std::move(**box_);
  box_->reset();
  return value;
}

template <typename T>
void TaskFuture<T>::Wait() {
  if (ticket_ == nullptr) return;
  executor_->WaitHelping(ticket_.get());
}

}  // namespace exec
}  // namespace redoop

#endif  // REDOOP_EXEC_TASK_EXECUTOR_H_
