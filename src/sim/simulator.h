#ifndef REDOOP_SIM_SIMULATOR_H_
#define REDOOP_SIM_SIMULATOR_H_

#include <functional>

#include "common/sim_time.h"
#include "sim/event_queue.h"

namespace redoop {

/// Discrete-event simulator: a virtual clock plus an event queue. Components
/// schedule callbacks; Run() advances the clock from event to event. Time
/// never flows backwards.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  void Schedule(SimDuration delay, std::function<void()> action);

  /// Schedules `action` at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Schedules `action` at the current virtual time, after every event
  /// already queued for this instant (the queue breaks time ties by
  /// schedule order). This is the parallel engine's join point: an
  /// offloaded payload's results are installed by a join event that fires
  /// at the same virtual instant as the submitting event, in submission
  /// order — so the event sequence any observer sees is independent of
  /// how long the payload actually took on a worker thread.
  void ScheduleJoin(std::function<void()> action) {
    Schedule(0.0, std::move(action));
  }

  /// Processes events until the queue is empty.
  void Run();

  /// Processes events with time <= `until`, then sets the clock to `until`
  /// if it got that far (i.e. idles forward).
  void RunUntil(SimTime until);

  /// Processes exactly one event if any is pending; returns whether one ran.
  bool Step();

  bool HasPendingEvents() const { return !queue_.empty(); }
  size_t pending_event_count() const { return queue_.size(); }
  uint64_t processed_event_count() const { return processed_; }

  /// Drops all pending events and resets the clock to zero.
  void Reset();

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
  uint64_t processed_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_SIM_SIMULATOR_H_
