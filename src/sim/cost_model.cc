#include "sim/cost_model.h"

#include <cmath>

#include "common/logging.h"

namespace redoop {

CostModelOptions CostModelOptions::FromConfig(const Config& config) {
  CostModelOptions o;
  o.disk_bandwidth_bps = config.GetDouble("cost.disk_bps", o.disk_bandwidth_bps);
  o.disk_seek_s = config.GetDouble("cost.disk_seek_s", o.disk_seek_s);
  o.network_bandwidth_bps = config.GetDouble("cost.net_bps", o.network_bandwidth_bps);
  o.network_latency_s = config.GetDouble("cost.net_latency_s", o.network_latency_s);
  o.map_cpu_bps = config.GetDouble("cost.map_cpu_bps", o.map_cpu_bps);
  o.reduce_cpu_bps = config.GetDouble("cost.reduce_cpu_bps", o.reduce_cpu_bps);
  o.sort_factor = config.GetDouble("cost.sort_factor", o.sort_factor);
  o.task_startup_s = config.GetDouble("cost.task_startup_s", o.task_startup_s);
  o.job_startup_s = config.GetDouble("cost.job_startup_s", o.job_startup_s);
  o.hdfs_write_penalty =
      config.GetDouble("cost.hdfs_write_penalty", o.hdfs_write_penalty);
  return o;
}

CostModel::CostModel(CostModelOptions options) : options_(options) {
  REDOOP_CHECK(options_.disk_bandwidth_bps > 0);
  REDOOP_CHECK(options_.network_bandwidth_bps > 0);
  REDOOP_CHECK(options_.map_cpu_bps > 0);
  REDOOP_CHECK(options_.reduce_cpu_bps > 0);
}

SimDuration CostModel::LocalReadTime(int64_t bytes) const {
  REDOOP_CHECK(bytes >= 0);
  if (bytes == 0) return 0.0;
  return options_.disk_seek_s +
         static_cast<double>(bytes) / options_.disk_bandwidth_bps;
}

SimDuration CostModel::LocalWriteTime(int64_t bytes) const {
  REDOOP_CHECK(bytes >= 0);
  if (bytes == 0) return 0.0;
  return options_.disk_seek_s +
         static_cast<double>(bytes) / options_.disk_bandwidth_bps;
}

SimDuration CostModel::HdfsWriteTime(int64_t bytes) const {
  return LocalWriteTime(bytes) * options_.hdfs_write_penalty;
}

SimDuration CostModel::RemoteReadTime(int64_t bytes) const {
  return TransferTime(bytes) + LocalReadTime(bytes);
}

SimDuration CostModel::TransferTime(int64_t bytes) const {
  REDOOP_CHECK(bytes >= 0);
  if (bytes == 0) return 0.0;
  return options_.network_latency_s +
         static_cast<double>(bytes) / options_.network_bandwidth_bps;
}

SimDuration CostModel::MapComputeTime(int64_t bytes) const {
  REDOOP_CHECK(bytes >= 0);
  return static_cast<double>(bytes) / options_.map_cpu_bps;
}

SimDuration CostModel::ReduceComputeTime(int64_t bytes) const {
  REDOOP_CHECK(bytes >= 0);
  return static_cast<double>(bytes) / options_.reduce_cpu_bps;
}

SimDuration CostModel::SortTime(int64_t bytes, int64_t records) const {
  REDOOP_CHECK(bytes >= 0);
  REDOOP_CHECK(records >= 0);
  if (bytes == 0 || records <= 1) return 0.0;
  const double log_records = std::log2(static_cast<double>(records));
  return options_.sort_factor * static_cast<double>(bytes) * log_records;
}

}  // namespace redoop
