#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

void Simulator::Schedule(SimDuration delay, std::function<void()> action) {
  REDOOP_CHECK(delay >= 0.0) << "cannot schedule into the past: " << delay;
  queue_.Push(now_ + delay, std::move(action));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> action) {
  REDOOP_CHECK(when >= now_) << "cannot schedule into the past: " << when
                             << " < " << now_;
  queue_.Push(when, std::move(action));
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime until) {
  REDOOP_CHECK(until >= now_);
  while (!queue_.empty() && queue_.NextTime() <= until) {
    Step();
  }
  now_ = until;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  Event event = queue_.Pop();
  REDOOP_CHECK(event.time >= now_);
  now_ = event.time;
  ++processed_;
  event.action();
  return true;
}

void Simulator::Reset() {
  queue_.Clear();
  now_ = 0.0;
  processed_ = 0;
}

}  // namespace redoop
