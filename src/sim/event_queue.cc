#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

uint64_t EventQueue::Push(SimTime time, std::function<void()> action) {
  const uint64_t seq = next_sequence_++;
  heap_.push(Event{time, seq, std::move(action)});
  return seq;
}

SimTime EventQueue::NextTime() const {
  REDOOP_CHECK(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::Pop() {
  REDOOP_CHECK(!heap_.empty());
  // std::priority_queue::top() returns const&; the action is moved out via a
  // const_cast, which is safe because the element is popped immediately.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return event;
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
  next_sequence_ = 0;
}

}  // namespace redoop
