#ifndef REDOOP_SIM_EVENT_QUEUE_H_
#define REDOOP_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace redoop {

/// A scheduled callback in the simulated timeline.
struct Event {
  SimTime time = 0.0;
  uint64_t sequence = 0;  // Tie-breaker: FIFO among same-time events.
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, sequence). Events scheduled at the
/// same instant fire in the order they were scheduled, which keeps the
/// simulation deterministic.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `action` to fire at absolute time `time`. Returns the event's
  /// sequence number (usable for debugging/tracing).
  uint64_t Push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  /// Removes and returns the earliest event. Requires !empty().
  Event Pop();

  void Clear();

 private:
  struct Compare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Compare> heap_;
  uint64_t next_sequence_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_SIM_EVENT_QUEUE_H_
