#ifndef REDOOP_SIM_COST_MODEL_H_
#define REDOOP_SIM_COST_MODEL_H_

#include <cstdint>

#include "common/config.h"
#include "common/sim_time.h"

namespace redoop {

/// Calibration knobs for the cluster cost model. Defaults approximate the
/// paper's testbed: quad-core workers, local SATA disks, 1 Gbit Ethernet,
/// 6 map + 2 reduce slots per node, 64 MB HDFS blocks.
struct CostModelOptions {
  /// Effective sequential disk bandwidth *per task*, bytes/second. The
  /// node's physical disk (~100 MB/s SATA in the paper's testbed) is
  /// shared by up to 8 concurrent task slots, so the per-task effective
  /// rate is far lower; 35 MB/s matches observed Hadoop-era per-task
  /// throughput.
  double disk_bandwidth_bps = 35.0 * kBytesPerMB;
  /// Per-access disk seek/rotational latency, seconds.
  double disk_seek_s = 0.005;
  /// Effective network bandwidth per flow, bytes/second (1 Gbit Ethernet
  /// shared across concurrent shuffle flows on a node).
  double network_bandwidth_bps = 30.0 * kBytesPerMB;
  /// Per-transfer network latency, seconds.
  double network_latency_s = 0.001;
  /// Map-function processing rate, bytes/second of input consumed
  /// (parse + user code on one core).
  double map_cpu_bps = 40.0 * kBytesPerMB;
  /// Reduce-function processing rate, bytes/second of input consumed.
  double reduce_cpu_bps = 40.0 * kBytesPerMB;
  /// Sort constant: seconds per (byte * log2(#records)) during the
  /// merge-sort of shuffled data.
  double sort_factor = 1.0 / (400.0 * kBytesPerMB);
  /// Fixed JVM/task startup overhead per task, seconds.
  double task_startup_s = 1.0;
  /// Fixed per-job overhead (job setup/cleanup on the JobTracker), seconds.
  double job_startup_s = 2.0;
  /// HDFS replication pipeline slowdown: writes cost this multiple of a
  /// plain local write.
  double hdfs_write_penalty = 1.5;

  /// Builds options from a Config; unspecified keys keep their defaults.
  /// Keys: cost.disk_bps, cost.disk_seek_s, cost.net_bps, cost.net_latency_s,
  /// cost.map_cpu_bps, cost.reduce_cpu_bps, cost.sort_factor,
  /// cost.task_startup_s, cost.job_startup_s, cost.hdfs_write_penalty.
  static CostModelOptions FromConfig(const Config& config);
};

/// Converts byte counts flowing through each MapReduce pipeline stage into
/// simulated durations. Pure functions of the options; the cluster layers
/// queueing on top.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = CostModelOptions());

  const CostModelOptions& options() const { return options_; }

  /// Sequential read of `bytes` from local disk.
  SimDuration LocalReadTime(int64_t bytes) const;

  /// Sequential write of `bytes` to local disk.
  SimDuration LocalWriteTime(int64_t bytes) const;

  /// Write of `bytes` into HDFS (replication pipeline included).
  SimDuration HdfsWriteTime(int64_t bytes) const;

  /// Read of `bytes` from HDFS when the block is remote: network + disk.
  SimDuration RemoteReadTime(int64_t bytes) const;

  /// Network transfer of `bytes` between two nodes.
  SimDuration TransferTime(int64_t bytes) const;

  /// CPU time for the map function over `bytes` of input.
  SimDuration MapComputeTime(int64_t bytes) const;

  /// CPU time for the reduce function over `bytes` of input.
  SimDuration ReduceComputeTime(int64_t bytes) const;

  /// Merge-sort time for `bytes` of data containing `records` records.
  SimDuration SortTime(int64_t bytes, int64_t records) const;

  SimDuration TaskStartupTime() const { return options_.task_startup_s; }
  SimDuration JobStartupTime() const { return options_.job_startup_s; }

 private:
  CostModelOptions options_;
};

}  // namespace redoop

#endif  // REDOOP_SIM_COST_MODEL_H_
