#include "core/metrics.h"

namespace redoop {

namespace {
bool Less(const KeyValue& a, const KeyValue& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

bool Same(const KeyValue& a, const KeyValue& b) {
  return a.key == b.key && a.value == b.value;
}
}  // namespace

WindowDelta ComputeWindowDelta(const std::vector<KeyValue>& previous,
                               const std::vector<KeyValue>& current) {
  WindowDelta delta;
  size_t i = 0;
  size_t j = 0;
  while (i < previous.size() && j < current.size()) {
    if (Same(previous[i], current[j])) {
      ++i;
      ++j;
    } else if (Less(previous[i], current[j])) {
      delta.removed.push_back(previous[i]);
      ++i;
    } else {
      delta.added.push_back(current[j]);
      ++j;
    }
  }
  for (; i < previous.size(); ++i) delta.removed.push_back(previous[i]);
  for (; j < current.size(); ++j) delta.added.push_back(current[j]);
  return delta;
}

}  // namespace redoop
