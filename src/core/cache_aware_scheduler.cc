#include "core/cache_aware_scheduler.h"

#include "common/logging.h"

namespace redoop {

CacheAwareScheduler::CacheAwareScheduler(const CostModel* cost_model,
                                         CacheAwareSchedulerOptions options)
    : cost_model_(cost_model), options_(options) {
  REDOOP_CHECK(cost_model_ != nullptr);
}

NodeId CacheAwareScheduler::SelectNodeForMap(
    const MapPlacementRequest& request, const Cluster& cluster) {
  // Maps keep Hadoop's shape: replica-local first, then least loaded. The
  // fallback instance carries no obs sink, so the assignment is journaled
  // exactly once, here, under this scheduler's policy name.
  DefaultScheduler fallback;
  const NodeId node = fallback.SelectNodeForMap(request, cluster);
  scheduler_internal::EmitMapAssignment(scope_, request, node, "cache_aware");
  return node;
}

double CacheAwareScheduler::ReduceIoCost(const ReducePlacementRequest& request,
                                         NodeId node) const {
  double cost = 0.0;
  for (const ReduceSideInput& side : request.side_inputs) {
    if (side.location == node) {
      cost += cost_model_->LocalReadTime(side.bytes);
    } else {
      cost += cost_model_->RemoteReadTime(side.bytes);
    }
  }
  // Newly shuffled bytes arrive over the network regardless of placement;
  // they do not differentiate nodes but keep C_task,i in honest units.
  cost += cost_model_->TransferTime(request.shuffle_bytes);
  return cost;
}

NodeId CacheAwareScheduler::SelectNodeForReduce(
    const ReducePlacementRequest& request, const Cluster& cluster) {
  NodeId best = kInvalidNode;
  double best_score = 0.0;
  for (int32_t i = 0; i < cluster.num_nodes(); ++i) {
    const TaskNode& n = cluster.node(i);
    if (!n.alive() || n.free_reduce_slots() <= 0) continue;
    double score =
        options_.load_weight_s * n.Load() + ReduceIoCost(request, n.id());
    if (n.id() == request.preferred_node) score -= options_.preferred_bonus_s;
    if (best == kInvalidNode || score < best_score) {
      best = n.id();
      best_score = score;
    }
  }
  if (scope_.active() && best != kInvalidNode) {
    // Cache affinity is "considered" when the task has cached side inputs
    // at all, and "taken" when the chosen node holds at least one of them.
    const bool considered = !request.side_inputs.empty();
    bool taken = false;
    int64_t local_bytes = 0;
    int64_t remote_bytes = 0;
    for (const ReduceSideInput& side : request.side_inputs) {
      if (side.location == best) {
        taken = true;
        local_bytes += side.bytes;
      } else {
        remote_bytes += side.bytes;
      }
    }
    const double io_cost = ReduceIoCost(request, best);
    scope_.Increment(obs::metric::kSchedReduceAssignments);
    if (considered) {
      scope_.Increment(taken ? obs::metric::kSchedCacheAffinityTaken
                             : obs::metric::kSchedCacheAffinityMissed);
    }
    scope_.Record(obs::metric::kSchedReduceIoCost, io_cost);
    scope_.Emit(obs::event::kSchedAssign)
        .With("kind", "reduce")
        .With("policy", "cache_aware")
        .With("node", best)
        .With("partition", request.partition)
        .With("load", cluster.node(best).Load())
        .With("io_cost", io_cost)
        .With("score", best_score)
        .With("preferred", request.preferred_node)
        .With("affinity_considered", considered ? 1 : 0)
        .With("affinity_taken", taken ? 1 : 0)
        .With("cache_local_bytes", local_bytes)
        .With("cache_remote_bytes", remote_bytes)
        .With("shuffle_bytes", request.shuffle_bytes);
  }
  return best;
}

void FairShareLedger::RegisterTenant(QueryId id, double weight) {
  REDOOP_CHECK(weight > 0.0) << "fair-share weight must be positive";
  tenants_[id].weight = weight;
}

void FairShareLedger::Charge(QueryId id, double service_s) {
  auto it = tenants_.find(id);
  REDOOP_CHECK(it != tenants_.end()) << "Charge on unregistered tenant " << id;
  it->second.attained_s += service_s / it->second.weight;
}

double FairShareLedger::AttainedService(QueryId id) const {
  auto it = tenants_.find(id);
  return it != tenants_.end() ? it->second.attained_s : 0.0;
}

double FairShareLedger::Weight(QueryId id) const {
  auto it = tenants_.find(id);
  return it != tenants_.end() ? it->second.weight : 1.0;
}

size_t FairShareLedger::PickNext(
    const std::vector<Candidate>& candidates) const {
  REDOOP_CHECK(!candidates.empty());
  size_t best = 0;
  double best_attained = AttainedService(candidates[0].id);
  for (size_t i = 1; i < candidates.size(); ++i) {
    double attained = AttainedService(candidates[i].id);
    const Candidate& a = candidates[i];
    const Candidate& b = candidates[best];
    bool wins = attained < best_attained ||
                (attained == best_attained &&
                 (a.trigger < b.trigger ||
                  (a.trigger == b.trigger && a.index < b.index)));
    if (wins) {
      best = i;
      best_attained = attained;
    }
  }
  return best;
}

}  // namespace redoop
