#include "core/cache_aware_scheduler.h"

#include "common/logging.h"

namespace redoop {

CacheAwareScheduler::CacheAwareScheduler(const CostModel* cost_model,
                                         CacheAwareSchedulerOptions options)
    : cost_model_(cost_model), options_(options) {
  REDOOP_CHECK(cost_model_ != nullptr);
}

NodeId CacheAwareScheduler::SelectNodeForMap(
    const MapPlacementRequest& request, const Cluster& cluster) {
  // Maps keep Hadoop's shape: replica-local first, then least loaded.
  DefaultScheduler fallback;
  return fallback.SelectNodeForMap(request, cluster);
}

double CacheAwareScheduler::ReduceIoCost(const ReducePlacementRequest& request,
                                         NodeId node) const {
  double cost = 0.0;
  for (const ReduceSideInput& side : request.side_inputs) {
    if (side.location == node) {
      cost += cost_model_->LocalReadTime(side.bytes);
    } else {
      cost += cost_model_->RemoteReadTime(side.bytes);
    }
  }
  // Newly shuffled bytes arrive over the network regardless of placement;
  // they do not differentiate nodes but keep C_task,i in honest units.
  cost += cost_model_->TransferTime(request.shuffle_bytes);
  return cost;
}

NodeId CacheAwareScheduler::SelectNodeForReduce(
    const ReducePlacementRequest& request, const Cluster& cluster) {
  NodeId best = kInvalidNode;
  double best_score = 0.0;
  for (int32_t i = 0; i < cluster.num_nodes(); ++i) {
    const TaskNode& n = cluster.node(i);
    if (!n.alive() || n.free_reduce_slots() <= 0) continue;
    double score =
        options_.load_weight_s * n.Load() + ReduceIoCost(request, n.id());
    if (n.id() == request.preferred_node) score -= options_.preferred_bonus_s;
    if (best == kInvalidNode || score < best_score) {
      best = n.id();
      best_score = score;
    }
  }
  return best;
}

}  // namespace redoop
