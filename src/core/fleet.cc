#include "core/fleet.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/event_journal.h"
#include "obs/observability.h"

namespace redoop {

std::vector<RecordBatch> SharedScanFeed::BatchesFor(SourceId source,
                                                    Timestamp begin,
                                                    Timestamp end,
                                                    ScanDelta* delta) {
  std::vector<RecordBatch> out;
  if (begin >= end) return out;
  ScanDelta local;
  auto& per_source = cache_[source];
  Timestamp t = begin;
  while (t < end) {
    auto it = per_source.find(t);
    if (it != per_source.end()) {
      // Consumers are on the shared pane grid, itself a multiple of the
      // feed's batch interval, so a request boundary never splits a batch.
      REDOOP_CHECK(it->second.end <= end)
          << "shared scan request end " << end << " splits cached batch ["
          << it->second.start << ", " << it->second.end << ")";
      ++local.hits;
      local.bytes_served += it->second.logical_bytes();
      out.push_back(it->second);
      t = it->second.end;
      continue;
    }
    // Miss: fetch from the inner feed up to the next cached batch (or the
    // request end), so one straggling consumer never re-reads what a
    // faster one already materialized.
    Timestamp bound = end;
    auto next = per_source.lower_bound(t + 1);
    if (next != per_source.end() && next->first < end) bound = next->first;
    std::vector<RecordBatch> fetched = inner_->BatchesFor(source, t, bound);
    REDOOP_CHECK(!fetched.empty())
        << "inner feed returned nothing for [" << t << ", " << bound << ")";
    for (RecordBatch& batch : fetched) {
      REDOOP_CHECK(batch.start == t) << "inner feed gap at " << t;
      ++local.misses;
      int64_t bytes = batch.logical_bytes();
      local.bytes_scanned += bytes;
      local.bytes_served += bytes;
      resident_bytes_ += bytes;
      t = batch.end;
      out.push_back(batch);
      per_source.emplace(batch.start, std::move(batch));
    }
    REDOOP_CHECK(t == bound) << "inner feed stopped short of " << bound;
  }
  if (stats_ != nullptr) {
    ++stats_->scan_requests;
    stats_->scan_hits += local.hits;
    stats_->scan_misses += local.misses;
    stats_->scan_bytes_served += local.bytes_served;
    stats_->scan_bytes_scanned += local.bytes_scanned;
  }
  if (delta != nullptr) {
    delta->hits += local.hits;
    delta->misses += local.misses;
    delta->bytes_served += local.bytes_served;
    delta->bytes_scanned += local.bytes_scanned;
  }
  return out;
}

void SharedScanFeed::ReleaseBelow(Timestamp time_floor) {
  for (auto& [source, per_source] : cache_) {
    auto it = per_source.begin();
    while (it != per_source.end() && it->second.end <= time_floor) {
      resident_bytes_ -= it->second.logical_bytes();
      it = per_source.erase(it);
    }
  }
}

size_t SharedScanFeed::resident_batches() const {
  size_t n = 0;
  for (const auto& [source, per_source] : cache_) n += per_source.size();
  return n;
}

std::vector<RecordBatch> SharedScanView::BatchesFor(SourceId source,
                                                    Timestamp begin,
                                                    Timestamp end) {
  SharedScanFeed::ScanDelta delta;
  std::vector<RecordBatch> out = shared_->BatchesFor(source, begin, end, &delta);
  if (scope_.active() && (delta.hits > 0 || delta.misses > 0)) {
    scope_.Increment(obs::metric::kFleetScanRequests);
    scope_.Increment(obs::metric::kFleetScanHits, delta.hits);
    scope_.Increment(obs::metric::kFleetScanMisses, delta.misses);
    scope_.Increment(obs::metric::kFleetScanBytesServed, delta.bytes_served);
    scope_.Increment(obs::metric::kFleetScanBytesScanned, delta.bytes_scanned);
    scope_.Emit(obs::event::kFleetScan)
        .With("source", static_cast<int64_t>(source))
        .With("begin", static_cast<int64_t>(begin))
        .With("end", static_cast<int64_t>(end))
        .With("hits", delta.hits)
        .With("misses", delta.misses)
        .With("bytes", delta.bytes_served)
        .With("scanned_bytes", delta.bytes_scanned);
  }
  return out;
}

const std::vector<CacheImage>* DedupIndex::Find(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() ? &it->second.images : nullptr;
}

void DedupIndex::Publish(const std::string& key, SourceId source, PaneId pane,
                         Timestamp pane_size, QueryId owner,
                         std::vector<CacheImage> images) {
  REDOOP_CHECK(entries_.find(key) == entries_.end())
      << "dedup image for " << key << " published twice";
  Entry entry;
  entry.source = source;
  entry.pane = pane;
  entry.pane_end = (pane + 1) * pane_size;
  entry.images = std::move(images);
  entry.holders.push_back(owner);
  for (const CacheImage& image : entry.images) entry.bytes += image.bytes;
  resident_bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
}

void DedupIndex::AddHolder(const std::string& key, QueryId holder) {
  auto it = entries_.find(key);
  REDOOP_CHECK(it != entries_.end()) << "AddHolder on unknown key " << key;
  auto& holders = it->second.holders;
  if (std::find(holders.begin(), holders.end(), holder) == holders.end()) {
    holders.push_back(holder);
  }
}

std::vector<QueryId> DedupIndex::OnEviction(const std::string& key,
                                            QueryId evicted) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  std::vector<QueryId> others;
  for (QueryId holder : it->second.holders) {
    if (holder != evicted) others.push_back(holder);
  }
  resident_bytes_ -= it->second.bytes;
  entries_.erase(it);
  return others;
}

void DedupIndex::RetireBelow(Timestamp time_floor) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.pane_end <= time_floor) {
      resident_bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void FleetContext::FanoutEviction(const std::string& content_key,
                                  SourceId source, PaneId pane,
                                  QueryId origin) {
  std::vector<QueryId> others = dedup_.OnEviction(content_key, origin);
  for (QueryId holder : others) {
    auto it = fanouts_.find(holder);
    if (it == fanouts_.end()) continue;
    ++stats_.dedup_evict_fanout;
    it->second(source, pane);
  }
}

}  // namespace redoop
