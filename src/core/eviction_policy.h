#ifndef REDOOP_CORE_EVICTION_POLICY_H_
#define REDOOP_CORE_EVICTION_POLICY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace redoop {

/// Replacement policies for the capacity-bounded CacheStore. The names match
/// the caching-survey taxonomy: classic recency (LRU), insertion order
/// (FIFO), the quick-demotion FIFO family (S3-FIFO), the lazy-promotion
/// clock variant (SIEVE), and a frequency/recency hybrid scored on observed
/// per-pane reuse counts (the H-SVM-LRU idea with the learned component
/// replaced by the measured reuse frequency).
enum class EvictionPolicyKind { kLru, kFifo, kS3Fifo, kSieve, kHybrid };

/// Stable lower-case names ("lru", "fifo", "s3fifo", "sieve", "hybrid") for
/// flags, bench tables, and journal events.
const char* EvictionPolicyName(EvictionPolicyKind kind);
std::optional<EvictionPolicyKind> ParseEvictionPolicy(const std::string& name);

/// Replacement-order bookkeeping for CacheStore. The store notifies the
/// policy on every insert/access/remove and asks it for victims when over
/// budget; the policy never owns entries or bytes accounting.
///
/// Implementations are strictly deterministic: the victim sequence depends
/// only on the order of OnInsert/OnAccess/OnRemove calls (ties broken by
/// insertion order), never on pointer values or hash iteration. The driver
/// issues every cache operation from its own thread in simulated-time
/// order, so victim sequences are identical at any --threads setting.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// A key was inserted (or replaced — the store removes first, so a
  /// replacement arrives as OnRemove + OnInsert). `bytes` is the logical
  /// payload size, for policies with size-aware queues (S3-FIFO).
  virtual void OnInsert(const std::string& key, int64_t bytes) = 0;
  /// A cache hit on `key` (no-op for keys the policy no longer tracks).
  virtual void OnAccess(const std::string& key) = 0;
  /// `key` left the store (eviction, purge, or replacement).
  virtual void OnRemove(const std::string& key) = 0;

  /// Picks the next victim among tracked keys for which `evictable` returns
  /// true (the store excludes pinned entries and the entry being inserted);
  /// returns "" when no tracked key qualifies. The caller completes the
  /// eviction with OnRemove.
  virtual std::string PickVictim(
      const std::function<bool(const std::string&)>& evictable) = 0;

  virtual EvictionPolicyKind kind() const = 0;
};

/// Policy-switch factory (the block_gc_cache idiom): one place maps the
/// configured kind to an implementation. `budget_bytes` sizes internal
/// structures for policies that need it (S3-FIFO's small-queue target);
/// 0 (unbounded) is legal — the store then never asks for victims.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   int64_t budget_bytes);

}  // namespace redoop

#endif  // REDOOP_CORE_EVICTION_POLICY_H_
