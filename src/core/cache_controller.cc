#include "core/cache_controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace redoop {

int32_t WindowAwareCacheController::RegisterQuery(const RecurringQuery& query,
                                                  Timestamp pane_size) {
  query.CheckValid();
  REDOOP_CHECK(queries_.count(query.id) == 0)
      << "query " << query.id << " already registered";
  auto state = std::make_unique<QueryState>();
  state->query = query;
  state->mask_bit = static_cast<int32_t>(queries_.size());
  state->pane_size = pane_size;
  state->geometry =
      std::make_unique<WindowGeometry>(query.window(), pane_size);
  if (query.pattern == IncrementalPattern::kPanePairJoin) {
    state->matrix = std::make_unique<CacheStatusMatrix>(*state->geometry);
  }
  const int32_t bit = state->mask_bit;
  queries_[query.id] = std::move(state);
  return bit;
}

WindowAwareCacheController::QueryState* WindowAwareCacheController::FindQuery(
    QueryId id) {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : it->second.get();
}

const WindowAwareCacheController::QueryState*
WindowAwareCacheController::FindQuery(QueryId id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Pane lifecycle
// ---------------------------------------------------------------------------

void WindowAwareCacheController::OnPaneInHdfs(
    QueryId query, SourceId source, PaneId pane,
    const std::vector<std::string>& files) {
  QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr) << "unregistered query " << query;
  PaneState& state = q->panes[{source, pane}];
  for (const std::string& f : files) {
    if (std::find(state.files.begin(), state.files.end(), f) ==
        state.files.end()) {
      state.files.push_back(f);
    }
  }
  if (state.ready == CacheReady::kNotAvailable) {
    state.ready = CacheReady::kHdfsAvailable;
    if (scope_.active()) {
      scope_.Emit(obs::event::kPaneReady)
          .With("query", query)
          .With("source", source)
          .With("pane", pane)
          .With("ready", static_cast<int32_t>(CacheReady::kHdfsAvailable));
    }
  }
  if (!state.in_map_list && state.ready == CacheReady::kHdfsAvailable) {
    state.in_map_list = true;
    map_task_list_.push_back(PaneWorkItem{query, source, pane, state.files,
                                          /*rebuild=*/false});
  } else if (state.in_map_list) {
    // Refresh the queued item's file list (more sub-panes arrived).
    for (PaneWorkItem& item : map_task_list_) {
      if (item.query == query && item.source == source && item.pane == pane) {
        item.files = state.files;
      }
    }
  }
}

void WindowAwareCacheController::OnPaneCached(QueryId query, SourceId source,
                                              PaneId pane) {
  QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  PaneState& state = q->panes[{source, pane}];
  state.ready = CacheReady::kCacheAvailable;
  state.in_map_list = false;
  if (scope_.active()) {
    scope_.Emit(obs::event::kPaneReady)
        .With("query", query)
        .With("source", source)
        .With("pane", pane)
        .With("ready", static_cast<int32_t>(CacheReady::kCacheAvailable));
  }
  if (q->matrix != nullptr) EnqueueReadyPairs(q, source, pane);
}

CacheReady WindowAwareCacheController::PaneReady(QueryId query,
                                                 SourceId source,
                                                 PaneId pane) const {
  const QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  auto it = q->panes.find({source, pane});
  return it == q->panes.end() ? CacheReady::kNotAvailable : it->second.ready;
}

std::vector<std::string> WindowAwareCacheController::PaneFiles(
    QueryId query, SourceId source, PaneId pane) const {
  const QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  auto it = q->panes.find({source, pane});
  return it == q->panes.end() ? std::vector<std::string>() : it->second.files;
}

// ---------------------------------------------------------------------------
// Signatures
// ---------------------------------------------------------------------------

void WindowAwareCacheController::AddSignature(CacheSignature signature,
                                              QueryId owner) {
  QueryState* q = FindQuery(owner);
  REDOOP_CHECK(q != nullptr);
  // doneQueryMask: one bit per registered query; queries that never touch
  // this cache start at 1 (paper §4.2), so only the owner's bit gates
  // expiration.
  signature.done_query_mask.assign(queries_.size(), true);
  signature.done_query_mask[static_cast<size_t>(q->mask_bit)] = false;

  // Index by pane (or pane pair), avoiding duplicate index entries when a
  // cache is re-registered after loss + rebuild.
  const std::string name = signature.name;
  if (signature.pane_right != kInvalidPane) {
    const std::pair<PaneId, PaneId> key{signature.pane, signature.pane_right};
    auto [begin, end] = q->caches_by_pair.equal_range(key);
    const bool indexed =
        std::any_of(begin, end, [&](const auto& e) { return e.second == name; });
    if (!indexed) q->caches_by_pair.insert({key, name});
  } else {
    const std::pair<SourceId, PaneId> key{signature.source, signature.pane};
    auto [begin, end] = q->caches_by_pane.equal_range(key);
    const bool indexed =
        std::any_of(begin, end, [&](const auto& e) { return e.second == name; });
    if (!indexed) q->caches_by_pane.insert({key, name});
  }
  if (scope_.active()) {
    scope_.Increment(obs::metric::kCacheAdds);
    scope_.Increment(obs::metric::kCacheAddBytes, signature.bytes);
    scope_.Emit(obs::event::kCacheAdd)
        .With("name", name)
        .With("node", signature.node)
        .With("kind", CacheTypeName(signature.type))
        .With("source", signature.source)
        .With("pane", signature.pane)
        .With("pane_right", signature.pane_right)
        .With("partition", signature.partition)
        .With("bytes", signature.bytes)
        .With("records", signature.records);
  }
  signatures_[name] = std::move(signature);
}

const CacheSignature* WindowAwareCacheController::Find(
    const std::string& name) const {
  auto it = signatures_.find(name);
  return it == signatures_.end() ? nullptr : &it->second;
}

std::vector<const CacheSignature*> WindowAwareCacheController::CachesForPane(
    QueryId query, SourceId source, PaneId pane, CacheType type) const {
  const QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  std::vector<const CacheSignature*> out;
  auto [begin, end] = q->caches_by_pane.equal_range({source, pane});
  for (auto it = begin; it != end; ++it) {
    const CacheSignature* sig = Find(it->second);
    if (sig != nullptr && sig->type == type) out.push_back(sig);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheSignature* a, const CacheSignature* b) {
              return a->partition < b->partition;
            });
  return out;
}

// ---------------------------------------------------------------------------
// Join bookkeeping
// ---------------------------------------------------------------------------

void WindowAwareCacheController::MarkPanePairDone(QueryId query, PaneId left,
                                                  PaneId right) {
  QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr && q->matrix != nullptr);
  q->matrix->MarkDone(left, right);
  if (scope_.active()) {
    scope_.Emit(obs::event::kMatrixDone)
        .With("query", query)
        .With("left", left)
        .With("right", right);
  }
}

bool WindowAwareCacheController::IsPanePairDone(QueryId query, PaneId left,
                                                PaneId right) const {
  const QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr && q->matrix != nullptr);
  return q->matrix->IsDone(left, right);
}

const CacheStatusMatrix* WindowAwareCacheController::matrix(
    QueryId query) const {
  const QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  return q->matrix.get();
}

void WindowAwareCacheController::EnqueueReadyPairs(QueryState* q,
                                                   SourceId source,
                                                   PaneId pane) {
  REDOOP_CHECK(q->query.sources.size() == 2);
  const SourceId left_source = q->query.sources[0].id;
  const SourceId right_source = q->query.sources[1].id;
  const bool is_left = source == left_source;
  const SourceId partner_source = is_left ? right_source : left_source;

  // Pair `pane` with every partner pane within its lifespan whose caches
  // are also available (paper §4.3: "whenever the ready bit turns 2, it
  // will be matched up with the other panes based on its lifespan").
  const PaneRange lifespan = JoinLifespan(*q->geometry, pane);
  for (PaneId partner = lifespan.first; partner < lifespan.last; ++partner) {
    auto it = q->panes.find({partner_source, partner});
    if (it == q->panes.end() ||
        it->second.ready != CacheReady::kCacheAvailable) {
      continue;
    }
    const PaneId left = is_left ? pane : partner;
    const PaneId right = is_left ? partner : pane;
    if (q->matrix->IsDone(left, right)) continue;
    if (!q->pairs_enqueued.insert({left, right}).second) continue;
    reduce_task_list_.push_back(PanePairWorkItem{q->query.id, left, right});
  }
}

// ---------------------------------------------------------------------------
// Task lists
// ---------------------------------------------------------------------------

std::optional<PaneWorkItem> WindowAwareCacheController::PopMapTask() {
  if (map_task_list_.empty()) return std::nullopt;
  PaneWorkItem item = std::move(map_task_list_.front());
  map_task_list_.pop_front();
  QueryState* q = FindQuery(item.query);
  if (q != nullptr) {
    auto it = q->panes.find({item.source, item.pane});
    if (it != q->panes.end()) it->second.in_map_list = false;
  }
  return item;
}

std::optional<PanePairWorkItem> WindowAwareCacheController::PopReduceTask() {
  if (reduce_task_list_.empty()) return std::nullopt;
  PanePairWorkItem item = reduce_task_list_.front();
  reduce_task_list_.pop_front();
  QueryState* q = FindQuery(item.query);
  if (q != nullptr) q->pairs_enqueued.erase({item.left, item.right});
  return item;
}

// ---------------------------------------------------------------------------
// Expiration
// ---------------------------------------------------------------------------

void WindowAwareCacheController::ExpireCache(
    const std::string& name, QueryState* q,
    std::vector<PurgeNotification>* out) {
  auto it = signatures_.find(name);
  if (it == signatures_.end()) return;
  CacheSignature& sig = it->second;
  sig.done_query_mask[static_cast<size_t>(q->mask_bit)] = true;
  if (!sig.Expired()) return;
  if (scope_.active()) {
    scope_.Increment(obs::metric::kCacheEvictions);
    scope_.Emit(obs::event::kCacheEvict)
        .With("name", sig.name)
        .With("node", sig.node)
        .With("reason", "expired")
        .With("bytes", sig.bytes);
  }
  out->push_back(PurgeNotification{sig.node, sig.name});
  signatures_.erase(it);
}

std::vector<PurgeNotification> WindowAwareCacheController::FinishRecurrence(
    QueryId query, int64_t recurrence) {
  QueryState* q = FindQuery(query);
  REDOOP_CHECK(q != nullptr);
  q->last_finished_recurrence = std::max(q->last_finished_recurrence,
                                         recurrence);
  std::vector<PurgeNotification> notifications;

  if (q->matrix != nullptr) {
    // Join: the matrix shift decides which panes retire; their reduce-input
    // caches expire with them. A pane-pair output cache expires once the
    // last window containing both panes has completed.
    auto [left_purged, right_purged] = q->matrix->Shift(recurrence);
    if (scope_.active()) {
      scope_.Emit(obs::event::kMatrixShift)
          .With("query", query)
          .With("recurrence", recurrence)
          .With("purged_left", static_cast<int64_t>(left_purged.size()))
          .With("purged_right", static_cast<int64_t>(right_purged.size()))
          .With("cells", q->matrix->CellCount());
    }
    const SourceId left_source = q->query.sources[0].id;
    const SourceId right_source = q->query.sources[1].id;
    auto expire_pane = [&](SourceId source, PaneId pane) {
      auto [begin, end] = q->caches_by_pane.equal_range({source, pane});
      std::vector<std::string> names;
      for (auto it = begin; it != end; ++it) names.push_back(it->second);
      for (const std::string& name : names) {
        ExpireCache(name, q, &notifications);
      }
      q->caches_by_pane.erase({source, pane});
      q->panes.erase({source, pane});
    };
    for (PaneId p : left_purged) expire_pane(left_source, p);
    for (PaneId p : right_purged) expire_pane(right_source, p);

    // Pair outputs.
    for (auto it = q->caches_by_pair.begin(); it != q->caches_by_pair.end();) {
      const auto [left, right] = it->first;
      const int64_t last_needed =
          std::min(q->geometry->LastRecurrenceUsingPane(left),
                   q->geometry->LastRecurrenceUsingPane(right));
      if (last_needed <= recurrence) {
        ExpireCache(it->second, q, &notifications);
        it = q->caches_by_pair.erase(it);
      } else {
        ++it;
      }
    }
  } else {
    // Aggregation: a pane expires once it is outside every future window.
    for (auto it = q->caches_by_pane.begin(); it != q->caches_by_pane.end();) {
      const PaneId pane = it->first.second;
      if (q->geometry->PaneExpiredAfter(pane, recurrence)) {
        ExpireCache(it->second, q, &notifications);
        it = q->caches_by_pane.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = q->panes.begin(); it != q->panes.end();) {
      if (q->geometry->PaneExpiredAfter(it->first.second, recurrence)) {
        it = q->panes.erase(it);
      } else {
        ++it;
      }
    }
  }
  return notifications;
}

// ---------------------------------------------------------------------------
// Failure recovery
// ---------------------------------------------------------------------------

WindowAwareCacheController::LossImpact
WindowAwareCacheController::HandleLostCache(NodeId node,
                                            const std::string& name) {
  LossImpact impact;
  auto it = signatures_.find(name);
  if (it == signatures_.end()) return impact;
  const CacheSignature sig = it->second;
  if (sig.node != node) return impact;  // Stale notification.
  signatures_.erase(it);
  impact.lost_caches.push_back(PurgeNotification{node, name});
  if (scope_.active()) {
    scope_.Increment(obs::metric::kCacheInvalidations);
    scope_.Emit(obs::event::kCacheInvalidate)
        .With("name", name)
        .With("node", node)
        .With("reason", "lost")
        .With("bytes", sig.bytes);
  }

  for (auto& [qid, q] : queries_) {
    (void)qid;
    if (sig.pane_right != kInvalidPane) {
      // Lost pane-pair output: un-mark the matrix entry so the pair is
      // recomputed if any window still needs it.
      if (q->matrix != nullptr) {
        // Only if the pair is still within the live (non-purged) region.
        q->caches_by_pair.erase({sig.pane, sig.pane_right});
      }
      continue;
    }
    auto pane_it = q->panes.find({sig.source, sig.pane});
    if (pane_it == q->panes.end()) continue;
    PaneState& state = pane_it->second;
    if (sig.type == CacheType::kReduceInput &&
        state.ready == CacheReady::kCacheAvailable) {
      // Roll the ready bit back to HDFS-available, evict pending reduce
      // pairs using this pane, and schedule a rebuild map task (paper §5).
      state.ready = CacheReady::kHdfsAvailable;
      reduce_task_list_.erase(
          std::remove_if(reduce_task_list_.begin(), reduce_task_list_.end(),
                         [&](const PanePairWorkItem& item) {
                           if (item.query != q->query.id) return false;
                           const bool uses =
                               item.left == sig.pane || item.right == sig.pane;
                           if (uses) {
                             q->pairs_enqueued.erase({item.left, item.right});
                           }
                           return uses;
                         }),
          reduce_task_list_.end());
      if (!state.in_map_list) {
        state.in_map_list = true;
        PaneWorkItem rebuild{q->query.id, sig.source, sig.pane, state.files,
                             /*rebuild=*/true};
        map_task_list_.push_back(rebuild);
        impact.rebuilds.push_back(rebuild);
        if (scope_.active()) {
          scope_.Increment(obs::metric::kCacheRebuilds);
          scope_.Emit(obs::event::kCacheRebuild)
              .With("query", q->query.id)
              .With("source", sig.source)
              .With("pane", sig.pane)
              .With("partition", sig.partition)
              .With("node", node);
        }
      }
      // Sibling partition caches of the same pane survive: the rebuild is
      // partition-scoped (paper §6.4 — pane/partition-grained caching
      // loses only part of the cache on a failure).
    }
  }
  return impact;
}

WindowAwareCacheController::LossImpact WindowAwareCacheController::OnCacheLost(
    NodeId node, const std::string& name) {
  return HandleLostCache(node, name);
}

NodeId WindowAwareCacheController::OnCacheEvicted(const CacheKey& key) {
  auto it = signatures_.find(key.name());
  if (it == signatures_.end()) return kInvalidNode;
  const CacheSignature sig = it->second;
  // The store already journaled cache.pane.evict; the rollback here is
  // silent so eviction accounting is never double-counted.
  signatures_.erase(it);

  for (auto& [qid, q] : queries_) {
    (void)qid;
    if (sig.pane_right != kInvalidPane) {
      if (q->matrix == nullptr) continue;
      // Drop only this partition's index entry; sibling partitions of the
      // pair may still be resident.
      auto [begin, end] =
          q->caches_by_pair.equal_range({sig.pane, sig.pane_right});
      for (auto e = begin; e != end; ++e) {
        if (e->second == key.name()) {
          q->caches_by_pair.erase(e);
          break;
        }
      }
      // Flip the cell back to recompute iff a future (unfinished) window
      // still reads the pair; un-doing an expired cell would block Shift
      // forever for a pair nothing will ever run again.
      const int64_t last_needed =
          std::min(q->geometry->LastRecurrenceUsingPane(sig.pane),
                   q->geometry->LastRecurrenceUsingPane(sig.pane_right));
      if (last_needed > q->last_finished_recurrence) {
        q->matrix->MarkUndone(sig.pane, sig.pane_right);
      }
      continue;
    }
    auto pane_it = q->panes.find({sig.source, sig.pane});
    if (pane_it == q->panes.end()) continue;
    PaneState& state = pane_it->second;
    if (sig.type == CacheType::kReduceInput &&
        state.ready == CacheReady::kCacheAvailable) {
      // Roll the ready bit back and strip pending reduce pairs using the
      // pane — but schedule no rebuild map task: the window-preparation
      // manifest check recomputes the pane lazily, only if it is read
      // again.
      state.ready = CacheReady::kHdfsAvailable;
      reduce_task_list_.erase(
          std::remove_if(reduce_task_list_.begin(), reduce_task_list_.end(),
                         [&](const PanePairWorkItem& item) {
                           if (item.query != q->query.id) return false;
                           const bool uses =
                               item.left == sig.pane || item.right == sig.pane;
                           if (uses) {
                             q->pairs_enqueued.erase({item.left, item.right});
                           }
                           return uses;
                         }),
          reduce_task_list_.end());
    }
  }
  return sig.node;
}

NodeId WindowAwareCacheController::DropSignature(const std::string& name) {
  auto it = signatures_.find(name);
  if (it == signatures_.end()) return kInvalidNode;
  const NodeId node = it->second.node;
  if (scope_.active()) {
    scope_.Increment(obs::metric::kCacheInvalidations);
    scope_.Emit(obs::event::kCacheInvalidate)
        .With("name", name)
        .With("node", node)
        .With("reason", "dropped")
        .With("bytes", it->second.bytes);
  }
  signatures_.erase(it);
  return node;
}

WindowAwareCacheController::LossImpact WindowAwareCacheController::OnNodeLost(
    NodeId node) {
  LossImpact impact;
  std::vector<std::string> on_node;
  for (const auto& [name, sig] : signatures_) {
    if (sig.node == node) on_node.push_back(name);
  }
  for (const std::string& name : on_node) {
    LossImpact one = HandleLostCache(node, name);
    impact.rebuilds.insert(impact.rebuilds.end(), one.rebuilds.begin(),
                           one.rebuilds.end());
    impact.lost_caches.insert(impact.lost_caches.end(),
                              one.lost_caches.begin(), one.lost_caches.end());
  }
  return impact;
}

}  // namespace redoop
