#ifndef REDOOP_CORE_EXECUTION_PROFILER_H_
#define REDOOP_CORE_EXECUTION_PROFILER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/telemetry_scope.h"

namespace redoop {

/// Collects per-recurrence execution statistics and forecasts upcoming
/// execution times with Holt's double exponential smoothing (paper §3.3,
/// Eqs. 1-3):
///   L_i = a*X_i + (1-a)(L_{i-1} + T_{i-1})
///   T_i = b*(L_i - L_{i-1}) + (1-b)*T_{i-1}
///   X̂_{i+k} = L_i + k*T_i
class ExecutionProfiler {
 public:
  /// `alpha` smooths the level, `beta` the trend; both in (0, 1].
  explicit ExecutionProfiler(double alpha = 0.5, double beta = 0.3);

  /// Records the execution time (seconds) and input volume of the just
  /// finished recurrence.
  void Observe(double execution_time, int64_t bytes_processed = 0);

  /// X̂_{i+k}: forecast for the k-th next recurrence. Requires at least one
  /// observation; with a single observation the trend is zero.
  double Forecast(int64_t k = 1) const;

  /// Forecast / most recent observation — the scale factor the Semantic
  /// Analyzer uses to resize panes (§3.3). Returns 1 with < 2 observations.
  double ScaleFactor() const;

  double level() const { return level_; }
  double trend() const { return trend_; }
  int64_t observation_count() const { return count_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double last_observation() const { return last_x_; }
  int64_t last_bytes() const { return last_bytes_; }

  void Reset();

  /// Journals prediction-vs-actual per Observe() (profiler.observe events
  /// plus forecast-error histograms) with the scope's attribution.
  void set_telemetry(obs::TelemetryScope scope) {
    scope_ = std::move(scope);
  }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    scope_ = obs::TelemetryScope(obs);
  }

  /// Selects (alpha, beta) by dense grid search minimizing the one-step
  /// squared forecast error over a historical series ("selected by fitting
  /// historical data", §3.3). Requires history.size() >= 3.
  static std::pair<double, double> FitSmoothingParams(
      const std::vector<double>& history);

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  double last_x_ = 0.0;
  int64_t last_bytes_ = 0;
  int64_t count_ = 0;
  obs::TelemetryScope scope_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_EXECUTION_PROFILER_H_
