#include "core/pane_naming.h"

#include <cstdio>

#include "common/string_utils.h"

namespace redoop {

std::string PaneFileName(SourceId source, PaneId pane) {
  return StringPrintf("S%dP%ld", source, pane);
}

std::string MultiPaneFileName(SourceId source, PaneId first, PaneId last) {
  return StringPrintf("S%dP%ld_%ld", source, first, last);
}

std::string SubPaneFileName(SourceId source, PaneId pane, int32_t subpane) {
  return StringPrintf("S%dP%ld.%d", source, pane, subpane);
}

std::string ReduceInputCacheName(QueryId query, SourceId source, PaneId pane,
                                 int32_t partition) {
  return StringPrintf("RIC_Q%d_S%dP%ld_R%d", query, source, pane, partition);
}

std::string ReduceOutputCacheName(QueryId query, SourceId source, PaneId pane,
                                  int32_t partition) {
  return StringPrintf("ROC_Q%d_S%dP%ld_R%d", query, source, pane, partition);
}

std::string JoinOutputCacheName(QueryId query, PaneId left, PaneId right,
                                int32_t partition) {
  return StringPrintf("JOC_Q%d_P%ldx%ld_R%d", query, left, right, partition);
}

std::optional<ParsedPaneFileName> ParsePaneFileName(const std::string& name) {
  ParsedPaneFileName parsed;
  int source = 0;
  long first = 0;
  long last = 0;
  int subpane = 0;
  int consumed = 0;
  // Try the three shapes, most specific first. %n captures how much of the
  // string matched so trailing garbage is rejected.
  if (std::sscanf(name.c_str(), "S%dP%ld.%d%n", &source, &first, &subpane,
                  &consumed) == 3 &&
      consumed == static_cast<int>(name.size())) {
    parsed.source = source;
    parsed.first_pane = first;
    parsed.last_pane = first;
    parsed.is_subpane = true;
    parsed.subpane = subpane;
    return parsed;
  }
  if (std::sscanf(name.c_str(), "S%dP%ld_%ld%n", &source, &first, &last,
                  &consumed) == 3 &&
      consumed == static_cast<int>(name.size())) {
    parsed.source = source;
    parsed.first_pane = first;
    parsed.last_pane = last;
    return parsed;
  }
  if (std::sscanf(name.c_str(), "S%dP%ld%n", &source, &first, &consumed) ==
          2 &&
      consumed == static_cast<int>(name.size())) {
    parsed.source = source;
    parsed.first_pane = first;
    parsed.last_pane = first;
    return parsed;
  }
  return std::nullopt;
}

}  // namespace redoop
