#ifndef REDOOP_CORE_LOCAL_CACHE_REGISTRY_H_
#define REDOOP_CORE_LOCAL_CACHE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "core/cache_key.h"
#include "core/cache_types.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// One row of the local cache registry (paper §4.1, Table 1): which pane is
/// cached, as what, and whether the master has declared it expired.
struct LocalCacheEntry {
  std::string name;  // Cache file name (pid in the paper).
  CacheType type = CacheType::kNone;
  bool expired = false;
  int64_t bytes = 0;
};

/// The per-task-node cache metadata structure (paper §4.1). New caches are
/// appended unexpired; the window-aware cache controller later sends purge
/// notifications that flip the expiration flag; physical deletion happens
/// lazily via periodic purging (every PurgeCycle) or on-demand purging when
/// the local disk runs short.
class LocalCacheRegistry {
 public:
  LocalCacheRegistry(NodeId node, SimDuration purge_cycle);

  NodeId node() const { return node_; }
  SimDuration purge_cycle() const { return purge_cycle_; }

  /// Appends a new (unexpired) entry. Overwrites a stale same-name entry.
  /// Taking a CacheKey (not a raw name) means a malformed pane name fails
  /// at key construction, never as a silently unfindable registry row.
  void AddEntry(const CacheKey& key, CacheType type, int64_t bytes);

  /// Purge notification from the controller. Returns false when the entry
  /// is unknown (e.g. already dropped by a failure).
  bool MarkExpired(const CacheKey& key);

  /// Drops metadata for a cache that vanished (node-local file loss).
  void Remove(const CacheKey& key);

  bool Has(const CacheKey& key) const;
  const LocalCacheEntry* Find(const CacheKey& key) const;
  size_t size() const { return entries_.size(); }
  int64_t expired_count() const;

  /// Deletes every expired cache from `node`'s local FS now. Returns bytes
  /// freed. (The "scan during this scan" of periodic purging.)
  int64_t PurgeExpired(TaskNode* node);

  /// Periodic purging: runs PurgeExpired only when a full PurgeCycle has
  /// elapsed since the previous scan.
  int64_t MaybePeriodicPurge(TaskNode* node, SimTime now);

  /// On-demand (emergency) purging: frees expired caches until at least
  /// `needed_bytes` are reclaimed or none remain. Returns bytes freed.
  int64_t OnDemandPurge(TaskNode* node, int64_t needed_bytes);

  std::vector<LocalCacheEntry> Entries() const;

  /// Journals physical deletions (cache.purge events, purged-bytes
  /// counter). The driver hands a node-labeled scope so purge bytes are
  /// attributable per query AND per node.
  void set_telemetry(obs::TelemetryScope scope) {
    scope_ = std::move(scope);
  }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    scope_ = obs::TelemetryScope(obs);
  }

 private:
  int64_t PurgeMatching(TaskNode* node, int64_t stop_after_bytes,
                        const char* reason);

  NodeId node_;
  SimDuration purge_cycle_;
  SimTime last_purge_ = 0.0;
  std::map<std::string, LocalCacheEntry> entries_;
  obs::TelemetryScope scope_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_LOCAL_CACHE_REGISTRY_H_
