#include "core/data_packer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/pane_naming.h"
#include "dfs/pane_header.h"

namespace redoop {

DynamicDataPacker::DynamicDataPacker(Dfs* dfs, SourceId source,
                                     PartitionPlan plan,
                                     std::string file_namespace)
    : dfs_(dfs),
      source_(source),
      plan_(plan),
      file_namespace_(std::move(file_namespace)) {
  REDOOP_CHECK(dfs_ != nullptr);
  REDOOP_CHECK(plan_.pane_size > 0);
  REDOOP_CHECK(plan_.panes_per_file >= 1);
  REDOOP_CHECK(plan_.subpanes_per_pane >= 1);
}

StatusOr<std::vector<PaneFileInfo>> DynamicDataPacker::Ingest(
    const RecordBatch& batch) {
  if (batch.start != watermark_) {
    return Status::InvalidArgument(StringPrintf(
        "batch time range [%ld,%ld) does not continue watermark %ld",
        batch.start, batch.end, watermark_));
  }
  if (batch.end < batch.start) {
    return Status::InvalidArgument("batch end precedes start");
  }
  // Route records to pane buffers (piggybacked on loading, §3.2). Tuples
  // within a batch are unordered, but must lie inside the batch range.
  for (const Record& r : batch.records) {
    if (r.timestamp < batch.start || r.timestamp >= batch.end) {
      return Status::InvalidArgument(StringPrintf(
          "record timestamp %ld outside batch range [%ld,%ld)", r.timestamp,
          batch.start, batch.end));
    }
    const PaneId p = r.timestamp / plan_.pane_size;
    REDOOP_CHECK(p >= next_pane_);
    pending_[p].records.push_back(r);
  }
  watermark_ = batch.end;

  std::vector<PaneFileInfo> emitted;
  EmitReady(watermark_, &emitted);
  return emitted;
}

std::vector<PaneFileInfo> DynamicDataPacker::FlushUpTo(Timestamp t) {
  std::vector<PaneFileInfo> emitted;
  if (t > watermark_) watermark_ = t;
  EmitReady(t, &emitted);
  // A window trigger must not leave complete panes stranded in the
  // multi-pane buffer: flush it if anything is pending.
  if (!multi_pane_buffer_.empty()) FlushMultiPaneBuffer(&emitted);
  return emitted;
}

void DynamicDataPacker::UpdatePlan(const PartitionPlan& plan) {
  REDOOP_CHECK(plan.pane_size == plan_.pane_size)
      << "the pane grid is immutable; adaptive plans change only "
         "panes_per_file / subpanes_per_pane";
  REDOOP_CHECK(plan.panes_per_file >= 1);
  REDOOP_CHECK(plan.subpanes_per_pane >= 1);
  plan_ = plan;
}

void DynamicDataPacker::EmitReady(Timestamp up_to,
                                  std::vector<PaneFileInfo>* out) {
  while (true) {
    const PaneId p = next_pane_;
    const Timestamp pane_end = PaneEnd(p);
    auto it = pending_.find(p);
    PendingPane* pane = it == pending_.end() ? nullptr : &it->second;

    // Determine/latch the sub-pane factor for this pane.
    const bool subpane_started = pane != nullptr && pane->subpanes_emitted > 0;
    const int32_t factor =
        subpane_started ? pane->subpane_count : plan_.subpanes_per_pane;

    if (factor > 1 && up_to < pane_end) {
      // Adaptive mode: emit early sub-slices of the still-open pane.
      EmitSubpanes(p, up_to, out);
      return;  // Pane not complete yet; nothing further can be emitted.
    }
    if (up_to < pane_end) return;  // Head pane still open.

    // Pane p is complete.
    if (factor > 1) {
      // Finish any remaining sub-slices, then the pane is done (sub-pane
      // emission bypasses multi-pane packing: fine granularity wins).
      EmitSubpanes(p, pane_end, out);
      if (pane != nullptr) pending_.erase(p);
      ++next_pane_;
      continue;
    }

    std::vector<Record> records;
    if (pane != nullptr) {
      records = std::move(pane->records);
      pending_.erase(it);
    }
    ++next_pane_;
    if (records.empty()) {
      // Empty pane: report completion without a physical file.
      PaneFileInfo info;
      info.source = source_;
      info.first_pane = p;
      info.last_pane = p;
      info.time_begin = PaneBegin(p);
      info.time_end = pane_end;
      out->push_back(std::move(info));
      continue;
    }
    if (plan_.panes_per_file <= 1) {
      WritePaneFile(p, std::move(records), out);
    } else {
      multi_pane_buffer_.emplace_back(p, std::move(records));
      if (static_cast<int64_t>(multi_pane_buffer_.size()) >=
          plan_.panes_per_file) {
        FlushMultiPaneBuffer(out);
      }
    }
  }
}

void DynamicDataPacker::EmitSubpanes(PaneId pane_id, Timestamp up_to,
                                     std::vector<PaneFileInfo>* out) {
  PendingPane& pane = pending_[pane_id];
  if (pane.subpane_count == 0) pane.subpane_count = plan_.subpanes_per_pane;
  const int32_t k = pane.subpane_count;
  const Timestamp begin = PaneBegin(pane_id);
  const Timestamp slice = plan_.pane_size / k;  // k <= pane_size by CHECK.
  REDOOP_CHECK(slice > 0) << "subpane factor exceeds pane resolution";

  while (pane.subpanes_emitted < k) {
    const int32_t j = pane.subpanes_emitted;
    const Timestamp sub_begin = begin + j * slice;
    const Timestamp sub_end =
        j == k - 1 ? PaneEnd(pane_id) : sub_begin + slice;
    if (up_to < sub_end) return;  // Slice still open.

    std::vector<Record> slice_records;
    auto& records = pane.records;
    auto mid = std::partition(records.begin(), records.end(),
                              [sub_end](const Record& r) {
                                return r.timestamp >= sub_end;
                              });
    slice_records.assign(std::make_move_iterator(mid),
                         std::make_move_iterator(records.end()));
    records.erase(mid, records.end());
    ++pane.subpanes_emitted;

    PaneFileInfo info;
    info.source = source_;
    info.first_pane = pane_id;
    info.last_pane = pane_id;
    info.is_subpane = true;
    info.subpane_index = j;
    info.subpane_count = k;
    info.time_begin = sub_begin;
    info.time_end = sub_end;
    info.records = static_cast<int64_t>(slice_records.size());
    info.bytes = TotalLogicalBytes(slice_records);
    if (!slice_records.empty()) {
      info.file_name = file_namespace_ + SubPaneFileName(source_, pane_id, j);
      auto created = dfs_->CreateFile(info.file_name, std::move(slice_records),
                                      sub_begin, sub_end);
      REDOOP_CHECK(created.ok()) << created.status().ToString();
      info.compressed_bytes = (*dfs_->GetFileById(*created))->compressed_bytes();
      ++files_created_;
    }
    out->push_back(std::move(info));
  }
}

void DynamicDataPacker::WritePaneFile(PaneId pane,
                                      std::vector<Record> records,
                                      std::vector<PaneFileInfo>* out) {
  PaneFileInfo info;
  info.source = source_;
  info.first_pane = pane;
  info.last_pane = pane;
  info.time_begin = PaneBegin(pane);
  info.time_end = PaneEnd(pane);
  info.records = static_cast<int64_t>(records.size());
  info.bytes = TotalLogicalBytes(records);
  info.file_name = file_namespace_ + PaneFileName(source_, pane);
  auto created = dfs_->CreateFile(info.file_name, std::move(records),
                                  info.time_begin, info.time_end);
  REDOOP_CHECK(created.ok()) << created.status().ToString();
  info.compressed_bytes = (*dfs_->GetFileById(*created))->compressed_bytes();
  ++files_created_;
  out->push_back(std::move(info));
}

void DynamicDataPacker::FlushMultiPaneBuffer(std::vector<PaneFileInfo>* out) {
  REDOOP_CHECK(!multi_pane_buffer_.empty());
  if (multi_pane_buffer_.size() == 1) {
    // A single buffered pane degrades to the plain one-pane file.
    auto [pane, records] = std::move(multi_pane_buffer_.front());
    multi_pane_buffer_.clear();
    WritePaneFile(pane, std::move(records), out);
    return;
  }
  const PaneId first = multi_pane_buffer_.front().first;
  const PaneId last = multi_pane_buffer_.back().first;

  PaneHeader header;
  std::vector<Record> all_records;
  int64_t record_offset = 0;
  int64_t byte_offset = 0;
  for (auto& [pane, records] : multi_pane_buffer_) {
    PaneHeaderEntry entry;
    entry.pane_id = pane;
    entry.record_offset = record_offset;
    entry.record_count = static_cast<int64_t>(records.size());
    entry.byte_offset = byte_offset;
    entry.byte_size = TotalLogicalBytes(records);
    header.Add(entry);
    record_offset += entry.record_count;
    byte_offset += entry.byte_size;
    std::move(records.begin(), records.end(), std::back_inserter(all_records));
  }

  PaneFileInfo info;
  info.source = source_;
  info.first_pane = first;
  info.last_pane = last;
  info.time_begin = PaneBegin(first);
  info.time_end = PaneEnd(last);
  info.records = record_offset;
  info.bytes = byte_offset + header.logical_bytes();
  info.file_name = file_namespace_ + MultiPaneFileName(source_, first, last);
  auto created = dfs_->CreateFileWithHeader(
      info.file_name, std::move(all_records), info.time_begin, info.time_end,
      std::move(header));
  REDOOP_CHECK(created.ok()) << created.status().ToString();
  info.compressed_bytes = (*dfs_->GetFileById(*created))->compressed_bytes();
  ++files_created_;
  multi_pane_buffer_.clear();
  out->push_back(std::move(info));
}

}  // namespace redoop
