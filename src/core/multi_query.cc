#include "core/multi_query.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "obs/slo/slo_tracker.h"

namespace redoop {

MultiQueryCoordinator::MultiQueryCoordinator(Cluster* cluster, BatchFeed* feed)
    : cluster_(cluster), feed_(feed) {
  REDOOP_CHECK(cluster_ != nullptr);
  REDOOP_CHECK(feed_ != nullptr);
}

void MultiQueryCoordinator::AddQuery(RecurringQuery query,
                                     RedoopDriverOptions options) {
  REDOOP_CHECK(!started_) << "AddQuery after Run";
  query.CheckValid();
  for (const Entry& e : entries_) {
    REDOOP_CHECK(e.query.id != query.id)
        << "duplicate query id " << query.id;
  }
  Entry entry;
  entry.query = std::move(query);
  entry.options = options;
  entries_.push_back(std::move(entry));
}

Timestamp MultiQueryCoordinator::PaneSizeForSource(SourceId source) const {
  // GCD over every window constraint of every query consuming the source
  // (paper §3.1: the analyzer slices window states by the constraints of
  // individual data sources across the registered queries).
  std::vector<WindowSpec> constraints;
  for (const Entry& e : entries_) {
    for (const QuerySource& qs : e.query.sources) {
      if (qs.id == source) constraints.push_back(qs.window);
    }
  }
  REDOOP_CHECK(!constraints.empty()) << "no query consumes source " << source;
  return SemanticAnalyzer::PaneSizeFor(constraints);
}

void MultiQueryCoordinator::BuildDrivers() {
  for (Entry& entry : entries_) {
    // The query's grid must be common to all its sources (one geometry per
    // driver): take the GCD across its sources' coordinated pane sizes.
    std::vector<int64_t> panes;
    for (const QuerySource& qs : entry.query.sources) {
      panes.push_back(PaneSizeForSource(qs.id));
    }
    entry.options.adaptive.pane_size_override = GcdAll(panes);
    entry.options.file_namespace =
        StringPrintf("q%d/", entry.query.id);
    entry.driver = std::make_unique<RedoopDriver>(cluster_, feed_,
                                                  entry.query, entry.options);
  }
}

StatusOr<std::vector<RunReport>> MultiQueryCoordinator::Run(
    int64_t windows_per_query) {
  REDOOP_CHECK(!started_) << "Run may be called once";
  REDOOP_CHECK(!entries_.empty());
  started_ = true;
  BuildDrivers();

  std::vector<RunReport> reports(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    reports[i].system = "redoop:" + entries_[i].query.name;
  }

  // Global trigger-order interleaving: always advance the query whose next
  // recurrence fires earliest (ties: registration order).
  while (true) {
    size_t best = entries_.size();
    Timestamp best_trigger = std::numeric_limits<Timestamp>::max();
    for (size_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      if (e.next_recurrence >= windows_per_query) continue;
      const Timestamp trigger =
          e.driver->geometry().TriggerTime(e.next_recurrence);
      if (trigger < best_trigger) {
        best_trigger = trigger;
        best = i;
      }
    }
    if (best == entries_.size()) break;  // Everyone done.
    Entry& e = entries_[best];
    StatusOr<WindowReport> window =
        e.driver->RunRecurrence(e.next_recurrence);
    REDOOP_RETURN_IF_ERROR(window.status());
    reports[best].windows.push_back(std::move(window).value());
    ++e.next_recurrence;
  }
  // Each query's report carries its own metrics + SLO rollup. With one
  // shared observability context the labeled series disambiguate queries;
  // ComputeSlo's per-query grouping does the same for the journal.
  for (size_t i = 0; i < entries_.size(); ++i) {
    obs::ObservabilityContext* obs = entries_[i].driver->observability();
    reports[i].observability = obs->metrics().Snapshot();
    obs::analysis::AnalysisOptions slo_options;
    slo_options.group_by_query = true;
    obs::slo::ExportTo(obs::slo::ComputeSlo(obs->journal(), slo_options),
                       &reports[i].observability);
  }
  return reports;
}

const RedoopDriver& MultiQueryCoordinator::driver(QueryId id) const {
  for (const Entry& e : entries_) {
    if (e.query.id == id) {
      REDOOP_CHECK(e.driver != nullptr) << "Run() not started yet";
      return *e.driver;
    }
  }
  REDOOP_LOG_FATAL << "unknown query " << id;
}

}  // namespace redoop
