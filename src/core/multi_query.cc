#include "core/multi_query.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "obs/slo/slo_tracker.h"

namespace redoop {

MultiQueryCoordinator::MultiQueryCoordinator(Cluster* cluster, BatchFeed* feed,
                                             FleetOptions fleet)
    : cluster_(cluster),
      feed_(feed),
      fleet_options_(fleet),
      fleet_(std::make_unique<FleetContext>(fleet)) {
  REDOOP_CHECK(cluster_ != nullptr);
  REDOOP_CHECK(feed_ != nullptr);
  if (fleet_options_.shared_scans) {
    shared_feed_ = std::make_unique<SharedScanFeed>(feed_, &fleet_->stats());
  }
}

void MultiQueryCoordinator::AddQuery(RecurringQuery query,
                                     RedoopDriverOptions options,
                                     double fair_weight) {
  REDOOP_CHECK(!started_) << "AddQuery after Run";
  query.CheckValid();
  REDOOP_CHECK(fair_weight > 0.0) << "fair_weight must be positive";
  REDOOP_CHECK(query_index_.find(query.id) == query_index_.end())
      << "duplicate query id " << query.id;
  query_index_[query.id] = entries_.size();
  for (const QuerySource& qs : query.sources) {
    source_constraints_[qs.id].push_back(qs.window);
  }
  ledger_.RegisterTenant(query.id, fair_weight);
  Entry entry;
  entry.query = std::move(query);
  entry.options = options;
  entry.fair_weight = fair_weight;
  entries_.push_back(std::move(entry));
}

Timestamp MultiQueryCoordinator::PaneSizeForSource(SourceId source) const {
  // GCD over every window constraint of every query consuming the source
  // (paper §3.1: the analyzer slices window states by the constraints of
  // individual data sources across the registered queries). The
  // constraints were indexed at AddQuery time, so this is one lookup
  // instead of a scan over all queries.
  auto it = source_constraints_.find(source);
  REDOOP_CHECK(it != source_constraints_.end() && !it->second.empty())
      << "no query consumes source " << source;
  return SemanticAnalyzer::PaneSizeFor(it->second);
}

void MultiQueryCoordinator::BuildDrivers() {
  for (Entry& entry : entries_) {
    // The query's grid must be common to all its sources (one geometry per
    // driver): take the GCD across its sources' coordinated pane sizes.
    std::vector<int64_t> panes;
    for (const QuerySource& qs : entry.query.sources) {
      panes.push_back(PaneSizeForSource(qs.id));
    }
    entry.options.adaptive.pane_size_override = GcdAll(panes);
    entry.options.file_namespace =
        StringPrintf("q%d/", entry.query.id);
    if (fleet_options_.cache_dedup) entry.options.fleet = fleet_.get();
    BatchFeed* feed = feed_;
    if (shared_feed_ != nullptr) {
      entry.view = std::make_unique<SharedScanView>(shared_feed_.get());
      feed = entry.view.get();
    }
    entry.driver = std::make_unique<RedoopDriver>(cluster_, feed,
                                                  entry.query, entry.options);
    if (entry.view != nullptr) {
      // Scan events carry the query label and live window attribution.
      entry.view->set_telemetry(entry.driver->telemetry());
    }
  }
}

Timestamp MultiQueryCoordinator::RetentionFloor(
    int64_t windows_per_query) const {
  Timestamp floor = std::numeric_limits<Timestamp>::max();
  for (const Entry& e : entries_) {
    if (e.next_recurrence >= windows_per_query) continue;
    floor = std::min(floor,
                     e.driver->geometry().WindowBegin(e.next_recurrence));
  }
  return floor;
}

StatusOr<std::vector<RunReport>> MultiQueryCoordinator::Run(
    int64_t windows_per_query) {
  if (started_) {
    return Status::FailedPrecondition(
        "MultiQueryCoordinator::Run may be called once");
  }
  if (entries_.empty()) {
    return Status::FailedPrecondition(
        "MultiQueryCoordinator::Run with no queries registered");
  }
  started_ = true;
  BuildDrivers();

  std::vector<RunReport> reports(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    reports[i].system = "redoop:" + entries_[i].query.name;
  }

  // Global trigger-order interleaving off a min-heap of (trigger,
  // registration index): O(log Q) per recurrence instead of an O(Q) scan.
  // TriggerTime is a static function of the recurrence, so each query's
  // next firing is known the moment the previous one is admitted.
  using HeapItem = std::pair<Timestamp, size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>,
                      std::greater<HeapItem>> queue;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (windows_per_query > 0) {
      queue.push({entries_[i].driver->geometry().TriggerTime(0), i});
    }
  }

  const bool fleet_on = fleet_options_.AnyEnabled();
  Simulator& sim = cluster_->simulator();
  int64_t admissions_since_sweep = 0;
  while (!queue.empty()) {
    const int64_t queued_now = static_cast<int64_t>(queue.size());
    size_t best;
    Timestamp best_trigger;
    if (fleet_options_.fair_share) {
      // Pull every query firing within the horizon of the earliest
      // trigger and admit the least-served tenant among them. Horizon 0
      // still arbitrates simultaneous triggers by attained service.
      const Timestamp head = queue.top().first;
      std::vector<FairShareLedger::Candidate> candidates;
      while (!queue.empty() &&
             queue.top().first <= head + fleet_options_.fair_horizon_s) {
        const auto [trigger, index] = queue.top();
        queue.pop();
        candidates.push_back({entries_[index].query.id, trigger, index});
      }
      const size_t pick = ledger_.PickNext(candidates);
      best = candidates[pick].index;
      best_trigger = candidates[pick].trigger;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (c == pick) continue;
        queue.push({candidates[c].trigger, candidates[c].index});
      }
    } else {
      best = queue.top().second;
      best_trigger = queue.top().first;
      queue.pop();
    }

    Entry& e = entries_[best];
    if (fleet_on) {
      RedoopDriver::FleetAdmission note;
      note.wait_s = std::max(
          0.0, sim.Now() - static_cast<double>(best_trigger));
      note.queued = queued_now - 1;
      note.attained_s = ledger_.AttainedService(e.query.id);
      note.weight = e.fair_weight;
      e.driver->NoteFleetAdmission(note);
      FleetStats& stats = fleet_->stats();
      ++stats.admitted;
      stats.admission_wait_s += note.wait_s;
      stats.queue_peak = std::max(stats.queue_peak, queued_now);
    }
    StatusOr<WindowReport> window =
        e.driver->RunRecurrence(e.next_recurrence);
    REDOOP_RETURN_IF_ERROR(window.status());
    if (fleet_options_.fair_share) {
      ledger_.Charge(e.query.id, window.value().response_time);
    }
    reports[best].windows.push_back(std::move(window).value());
    ++e.next_recurrence;
    if (e.next_recurrence < windows_per_query) {
      queue.push(
          {e.driver->geometry().TriggerTime(e.next_recurrence), best});
    }
    // Bound fleet residency to the active window span: batches and dedup
    // images wholly below every unfinished query's next window can never
    // be read again. The O(Q) floor scan runs once per round of
    // admissions, keeping the steady-state loop at O(log Q).
    if (shared_feed_ != nullptr || fleet_options_.cache_dedup) {
      if (++admissions_since_sweep >= static_cast<int64_t>(entries_.size())) {
        admissions_since_sweep = 0;
        const Timestamp floor = RetentionFloor(windows_per_query);
        if (shared_feed_ != nullptr) shared_feed_->ReleaseBelow(floor);
        if (fleet_options_.cache_dedup) fleet_->dedup().RetireBelow(floor);
      }
    }
  }
  // Each query's report carries its own metrics + SLO rollup. With one
  // shared observability context the labeled series disambiguate queries;
  // ComputeSlo's per-query grouping does the same for the journal.
  for (size_t i = 0; i < entries_.size(); ++i) {
    obs::ObservabilityContext* obs = entries_[i].driver->observability();
    reports[i].observability = obs->metrics().Snapshot();
    obs::analysis::AnalysisOptions slo_options;
    slo_options.group_by_query = true;
    obs::slo::ExportTo(obs::slo::ComputeSlo(obs->journal(), slo_options),
                       &reports[i].observability);
  }
  return reports;
}

const RedoopDriver& MultiQueryCoordinator::driver(QueryId id) const {
  auto it = query_index_.find(id);
  if (it == query_index_.end()) REDOOP_LOG_FATAL << "unknown query " << id;
  const Entry& e = entries_[it->second];
  REDOOP_CHECK(e.driver != nullptr) << "Run() not started yet";
  return *e.driver;
}

}  // namespace redoop
