#ifndef REDOOP_CORE_SEMANTIC_ANALYZER_H_
#define REDOOP_CORE_SEMANTIC_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "core/recurring_query.h"
#include "core/window.h"

namespace redoop {

/// Observed statistics for one data source, fed by the Execution Profiler.
struct SourceStatistics {
  /// Observed arrival rate, logical bytes per second of data time.
  double rate_bps = 0.0;
};

/// The Semantic Analyzer's output (paper Algorithm 1): the logical pane
/// size and how logical panes map onto physical HDFS files.
struct PartitionPlan {
  /// Logical pane length in seconds: GCD(win, slide) of every window
  /// constraint on the source, possibly divided by `subpanes_per_pane`
  /// during adaptive operation.
  Timestamp pane_size = 0;
  /// Always 1 in Algorithm 1 — one pane never spans multiple files.
  int64_t files_per_pane = 1;
  /// How many logical panes share one physical file (>= 1; > 1 in the
  /// undersized case when rate * pane < HDFS block size).
  int64_t panes_per_file = 1;
  /// Expected physical file size, bytes (rate * pane * panes_per_file).
  int64_t expected_file_bytes = 0;
  /// Sub-pane split factor for adaptive/proactive mode (1 = off). Sub-panes
  /// keep the base pane grid; each pane's data is emitted in this many
  /// early slices.
  int32_t subpanes_per_pane = 1;

  friend bool operator==(const PartitionPlan& a, const PartitionPlan& b) {
    return a.pane_size == b.pane_size && a.files_per_pane == b.files_per_pane &&
           a.panes_per_file == b.panes_per_file &&
           a.expected_file_bytes == b.expected_file_bytes &&
           a.subpanes_per_pane == b.subpanes_per_pane;
  }
};

/// Optimizer that turns window constraints plus source statistics into a
/// pane-based partition plan (paper §3.1), and adapts it when the Execution
/// Profiler forecasts load spikes (§3.3).
class SemanticAnalyzer {
 public:
  explicit SemanticAnalyzer(int64_t hdfs_block_size_bytes);

  /// The logical pane size for a source constrained by the given window
  /// specs: GCD over every query's win and slide on that source.
  static Timestamp PaneSizeFor(const std::vector<WindowSpec>& constraints);

  /// Algorithm 1 for a single query on a single source.
  PartitionPlan Plan(const WindowSpec& window,
                     const SourceStatistics& stats) const;

  /// Multi-query variant: one source consumed by several queries with
  /// different windows gets the GCD pane of all of them.
  PartitionPlan PlanMultiQuery(const std::vector<WindowSpec>& constraints,
                               const SourceStatistics& stats) const;

  /// Adaptive re-planning (§3.3): `scale_factor` is the ratio between the
  /// forecast execution time and the slide budget. When it exceeds 1 the
  /// plan splits each pane into ceil(scale_factor) sub-panes (capped) so
  /// proactive execution can start on finer slices; when it drops back the
  /// plan returns to whole panes.
  PartitionPlan AdaptPlan(const PartitionPlan& base, double scale_factor,
                          int32_t max_subpanes = 8) const;

  int64_t block_size_bytes() const { return block_size_bytes_; }

 private:
  int64_t block_size_bytes_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_SEMANTIC_ANALYZER_H_
