#include "core/local_cache_registry.h"

#include "common/logging.h"

namespace redoop {

LocalCacheRegistry::LocalCacheRegistry(NodeId node, SimDuration purge_cycle)
    : node_(node), purge_cycle_(purge_cycle) {
  REDOOP_CHECK(purge_cycle_ >= 0.0);
}

void LocalCacheRegistry::AddEntry(const CacheKey& key, CacheType type,
                                  int64_t bytes) {
  REDOOP_CHECK(key.valid());
  REDOOP_CHECK(type != CacheType::kNone);
  REDOOP_CHECK(bytes >= 0);
  LocalCacheEntry entry;
  entry.name = key.name();
  entry.type = type;
  entry.expired = false;
  entry.bytes = bytes;
  entries_[key.name()] = std::move(entry);
}

bool LocalCacheRegistry::MarkExpired(const CacheKey& key) {
  auto it = entries_.find(key.name());
  if (it == entries_.end()) return false;
  it->second.expired = true;
  return true;
}

void LocalCacheRegistry::Remove(const CacheKey& key) {
  entries_.erase(key.name());
}

bool LocalCacheRegistry::Has(const CacheKey& key) const {
  return entries_.count(key.name()) > 0;
}

const LocalCacheEntry* LocalCacheRegistry::Find(const CacheKey& key) const {
  auto it = entries_.find(key.name());
  return it == entries_.end() ? nullptr : &it->second;
}

int64_t LocalCacheRegistry::expired_count() const {
  int64_t count = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    if (entry.expired) ++count;
  }
  return count;
}

int64_t LocalCacheRegistry::PurgeMatching(TaskNode* node,
                                          int64_t stop_after_bytes,
                                          const char* reason) {
  int64_t freed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (stop_after_bytes >= 0 && freed >= stop_after_bytes) break;
    if (it->second.expired) {
      const int64_t bytes = node->DeleteLocalFile(it->first);
      freed += bytes;
      if (scope_.active()) {
        scope_.Increment(obs::metric::kCachePurgedBytes, bytes);
        scope_.Emit(obs::event::kCachePurge)
            .With("name", it->first)
            .With("node", node_)
            .With("bytes", bytes)
            .With("reason", reason);
      }
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

int64_t LocalCacheRegistry::PurgeExpired(TaskNode* node) {
  REDOOP_CHECK(node != nullptr);
  REDOOP_CHECK(node->id() == node_);
  return PurgeMatching(node, /*stop_after_bytes=*/-1, "periodic");
}

int64_t LocalCacheRegistry::MaybePeriodicPurge(TaskNode* node, SimTime now) {
  if (now - last_purge_ < purge_cycle_) return 0;
  last_purge_ = now;
  return PurgeExpired(node);
}

int64_t LocalCacheRegistry::OnDemandPurge(TaskNode* node,
                                          int64_t needed_bytes) {
  REDOOP_CHECK(node != nullptr);
  return PurgeMatching(node, needed_bytes, "on_demand");
}

std::vector<LocalCacheEntry> LocalCacheRegistry::Entries() const {
  std::vector<LocalCacheEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)name;
    out.push_back(entry);
  }
  return out;
}

}  // namespace redoop
