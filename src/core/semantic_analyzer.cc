#include "core/semantic_analyzer.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace redoop {

SemanticAnalyzer::SemanticAnalyzer(int64_t hdfs_block_size_bytes)
    : block_size_bytes_(hdfs_block_size_bytes) {
  REDOOP_CHECK(block_size_bytes_ > 0);
}

Timestamp SemanticAnalyzer::PaneSizeFor(
    const std::vector<WindowSpec>& constraints) {
  REDOOP_CHECK(!constraints.empty());
  std::vector<int64_t> values;
  values.reserve(constraints.size() * 2);
  for (const WindowSpec& w : constraints) {
    REDOOP_CHECK(w.Valid());
    values.push_back(w.win);
    values.push_back(w.slide);
  }
  const int64_t pane = GcdAll(values);
  REDOOP_CHECK(pane > 0);
  return pane;
}

PartitionPlan SemanticAnalyzer::Plan(const WindowSpec& window,
                                     const SourceStatistics& stats) const {
  return PlanMultiQuery({window}, stats);
}

PartitionPlan SemanticAnalyzer::PlanMultiQuery(
    const std::vector<WindowSpec>& constraints,
    const SourceStatistics& stats) const {
  // Algorithm 1, verbatim:
  //   1: pane <- GCD(Q.win, Q.slide)
  //   2: filesize <- S.rate * pane
  //   3: if filesize >= blocksize: PP <- (pane, 1, 1)
  //   6: else panenum <- floor(blocksize / filesize); PP <- (pane, 1, panenum)
  PartitionPlan plan;
  plan.pane_size = PaneSizeFor(constraints);
  const double file_size =
      stats.rate_bps * static_cast<double>(plan.pane_size);
  plan.files_per_pane = 1;
  if (file_size >= static_cast<double>(block_size_bytes_) || file_size <= 0) {
    plan.panes_per_file = 1;  // Oversize case: one pane == one file.
  } else {
    plan.panes_per_file = static_cast<int64_t>(
        static_cast<double>(block_size_bytes_) / file_size);
    if (plan.panes_per_file < 1) plan.panes_per_file = 1;
  }
  plan.expected_file_bytes = static_cast<int64_t>(
      file_size * static_cast<double>(plan.panes_per_file));
  plan.subpanes_per_pane = 1;
  return plan;
}

PartitionPlan SemanticAnalyzer::AdaptPlan(const PartitionPlan& base,
                                          double scale_factor,
                                          int32_t max_subpanes) const {
  REDOOP_CHECK(max_subpanes >= 1);
  PartitionPlan plan = base;
  if (scale_factor <= 1.0 || !std::isfinite(scale_factor)) {
    plan.subpanes_per_pane = 1;
    return plan;
  }
  int32_t subpanes = static_cast<int32_t>(std::ceil(scale_factor));
  if (subpanes > max_subpanes) subpanes = max_subpanes;
  plan.subpanes_per_pane = subpanes;
  return plan;
}

}  // namespace redoop
