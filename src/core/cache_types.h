#ifndef REDOOP_CORE_CACHE_TYPES_H_
#define REDOOP_CORE_CACHE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace redoop {

/// What a cache file holds (paper §4.1: the `type` field of the local cache
/// registry; 0 is "not available").
enum class CacheType : int32_t {
  kNone = 0,
  kReduceInput = 1,
  kReduceOutput = 2,
};

/// Availability of a pane/cache (paper §4.2: the `ready` column; 0 = not
/// available, 1 = in HDFS, 2 = cached on a task node's local FS).
enum class CacheReady : int32_t {
  kNotAvailable = 0,
  kHdfsAvailable = 1,
  kCacheAvailable = 2,
};

const char* CacheTypeName(CacheType type);
const char* CacheReadyName(CacheReady ready);

/// The master-side summary of one cached file (paper §4.2 "cache
/// signature"): identity, location, availability, and which queries are
/// done with it.
struct CacheSignature {
  std::string name;
  SourceId source = 0;
  PaneId pane = kInvalidPane;
  /// Right-hand pane for pane-pair (join output) caches, else kInvalidPane.
  PaneId pane_right = kInvalidPane;
  int32_t partition = 0;
  CacheType type = CacheType::kNone;
  CacheReady ready = CacheReady::kNotAvailable;
  NodeId node = kInvalidNode;
  int64_t bytes = 0;
  int64_t records = 0;
  /// donequerymask: bit q set once registered query q no longer needs this
  /// cache. All-set == expired.
  std::vector<bool> done_query_mask;

  bool Expired() const {
    for (bool b : done_query_mask) {
      if (!b) return false;
    }
    return !done_query_mask.empty();
  }
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_TYPES_H_
