#ifndef REDOOP_CORE_NDIM_STATUS_MATRIX_H_
#define REDOOP_CORE_NDIM_STATUS_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "core/window.h"

namespace redoop {

/// The n-dimensional generalization of the cache status matrix (paper
/// §4.2: "the cache status matrix is a multidimensional boolean array...
/// the extension to higher dimensions is straightforward"): one dimension
/// per data source of an n-ary windowed join, one boolean cell per pane
/// combination, recording whether that combination's join task completed.
///
/// All dimensions share one window geometry (as in the paper's setup).
/// A cell (p_1, ..., p_n) must be computed iff its panes co-occur in some
/// window — i.e. all p_i lie within one window's pane range. A pane of
/// dimension d is expired once it has left every future window and every
/// co-occurring cell through it is done; the periodic Shift() purges
/// leading expired panes of every dimension, exactly like the 2-D matrix.
///
/// The 2-D `CacheStatusMatrix` remains the production structure for
/// binary joins; this class demonstrates and tests the n-ary semantics.
class NDimCacheStatusMatrix {
 public:
  /// `dimensions` >= 2.
  NDimCacheStatusMatrix(const WindowGeometry& geometry, int32_t dimensions);

  int32_t dimensions() const { return dimensions_; }
  PaneId base(int32_t dim) const;
  int64_t extent(int32_t dim) const;
  const WindowGeometry& geometry() const { return geometry_; }

  /// Marks the pane combination done; grows the matrix as needed. Cells in
  /// the purged region are no-ops.
  void MarkDone(const std::vector<PaneId>& cell);

  /// Purged cells read as done; cells beyond the current extent as not.
  bool IsDone(const std::vector<PaneId>& cell) const;

  /// True when every co-occurring cell with coordinate `p` in dimension
  /// `dim` is done (the pane has exhausted its join partners).
  bool LifespanComplete(int32_t dim, PaneId p) const;

  /// True when pane `p` of dimension `dim` can be purged after
  /// `completed_recurrence`.
  bool PaneExpired(int32_t dim, PaneId p, int64_t completed_recurrence) const;

  /// Purges leading expired panes of every dimension (ascending scan,
  /// stopping at the first survivor). Returns the purged panes per
  /// dimension.
  std::vector<std::vector<PaneId>> Shift(int64_t completed_recurrence);

  /// Live cells currently stored.
  int64_t CellCount() const;

 private:
  int64_t FlatIndex(const std::vector<int64_t>& indices) const;
  bool GetRelative(const std::vector<int64_t>& indices) const;
  void GrowTo(const std::vector<PaneId>& cell);
  /// Enumerates all cells of window `rec` with dimension `dim` pinned to
  /// `p`; returns false as soon as an undone cell is found.
  bool WindowCellsDone(int64_t rec, int32_t dim, PaneId p) const;

  WindowGeometry geometry_;
  int32_t dimensions_;
  std::vector<PaneId> base_;
  std::vector<int64_t> extent_;
  std::vector<bool> done_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_NDIM_STATUS_MATRIX_H_
