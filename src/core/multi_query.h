#ifndef REDOOP_CORE_MULTI_QUERY_H_
#define REDOOP_CORE_MULTI_QUERY_H_

#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/batch_feed.h"
#include "core/cache_aware_scheduler.h"
#include "core/fleet.h"
#include "core/metrics.h"
#include "core/recurring_query.h"
#include "core/redoop_driver.h"
#include "core/semantic_analyzer.h"

namespace redoop {

/// Consolidates several recurring queries onto one cluster (the paper's
/// Semantic Analyzer "takes as input a sequence of recurring queries with
/// different window constraints", §3.1):
///
///  - every query touching a source is put on that source's common pane
///    grid — the GCD over all of their win/slide constraints — so their
///    pane boundaries align;
///  - recurrences execute in global trigger order: whichever query's next
///    window fires earliest runs next, so queries contend for the
///    cluster's slots exactly as co-running jobs would (a query that
///    overruns its slide delays whoever triggers behind it);
///  - each query keeps its own cache *names* (cache files are namespaced
///    per query), but with FleetOptions.cache_dedup queries whose
///    pipeline_signature proves identical upstream pipelines share one
///    physical cached pane image (DESIGN §17). Without a signature match,
///    sharing would be unsound and never happens.
///
/// Fleet serving (FleetOptions, all off by default) adds shared pane
/// scans, cross-query cache dedup, and weighted fair-share admission;
/// every feature leaves per-query window outputs byte-identical to the
/// private path.
class MultiQueryCoordinator {
 public:
  /// `cluster` and `feed` must outlive the coordinator.
  MultiQueryCoordinator(Cluster* cluster, BatchFeed* feed,
                        FleetOptions fleet = {});

  MultiQueryCoordinator(const MultiQueryCoordinator&) = delete;
  MultiQueryCoordinator& operator=(const MultiQueryCoordinator&) = delete;

  /// Registers a query. Must be called before Run(); query ids must be
  /// unique. `options.adaptive.pane_size_override` and `options.file_namespace`
  /// are set by the coordinator. `fair_weight` (> 0) is the query's
  /// fair-share weight: a weight-2 tenant is entitled to twice the
  /// service of a weight-1 tenant before it has to queue.
  void AddQuery(RecurringQuery query, RedoopDriverOptions options = {},
                double fair_weight = 1.0);

  /// The pane size the coordinator will assign to `source`, given the
  /// queries registered so far.
  Timestamp PaneSizeForSource(SourceId source) const;

  /// Runs every query for `windows_per_query` recurrences, interleaved in
  /// global trigger order (fair-share may reorder within the configured
  /// horizon). Returns one RunReport per query, in registration order, or
  /// the first driver misconfiguration error (see
  /// RedoopDriver::RunRecurrence). FailedPrecondition when called twice
  /// or with no queries registered.
  StatusOr<std::vector<RunReport>> Run(int64_t windows_per_query);

  /// Driver access (valid after Run() started building them).
  const RedoopDriver& driver(QueryId id) const;
  size_t query_count() const { return entries_.size(); }

  /// Fleet counters (admissions, shared-scan hits, dedup savings); zeros
  /// when no fleet feature is enabled.
  const FleetStats& fleet_stats() const { return fleet_->stats(); }
  const FairShareLedger& fair_share() const { return ledger_; }

 private:
  struct Entry {
    RecurringQuery query;
    RedoopDriverOptions options;
    double fair_weight = 1.0;
    /// The driver's private feed handle when shared scans are on.
    std::unique_ptr<SharedScanView> view;
    std::unique_ptr<RedoopDriver> driver;
    int64_t next_recurrence = 0;
  };

  void BuildDrivers();
  /// Earliest window-begin still needed by any unfinished query — the
  /// retention floor for the shared scan cache and the dedup index.
  Timestamp RetentionFloor(int64_t windows_per_query) const;

  Cluster* cluster_;
  BatchFeed* feed_;
  FleetOptions fleet_options_;
  /// Fleet state lives above entries_ so drivers (which hold pointers into
  /// both) are destroyed first. Always constructed (stats stay readable
  /// with every feature off).
  std::unique_ptr<FleetContext> fleet_;
  std::unique_ptr<SharedScanFeed> shared_feed_;
  FairShareLedger ledger_;
  std::vector<Entry> entries_;
  /// QueryId -> entries_ index (duplicate detection, driver() lookup).
  std::map<QueryId, size_t> query_index_;
  /// Source -> window constraints of every query consuming it, built at
  /// AddQuery time so PaneSizeForSource is one map lookup.
  std::map<SourceId, std::vector<WindowSpec>> source_constraints_;
  bool started_ = false;
};

/// A BatchFeed decorator giving each consumer an independent read cursor
/// over a shared underlying feed. The coordinator hands one view per query
/// so that several drivers can pull the same source ranges independently
/// (the underlying feed must be a pure function of (source, range), which
/// SyntheticFeed guarantees). SharedScanView (core/fleet.h) is the
/// materializing variant: same shape, but each underlying batch is read
/// once and fanned out.
class SharedFeedView : public BatchFeed {
 public:
  explicit SharedFeedView(BatchFeed* inner) : inner_(inner) {}

  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override {
    return inner_->BatchesFor(source, begin, end);
  }

  bool HasSource(SourceId source) const override {
    return inner_->HasSource(source);
  }

 private:
  BatchFeed* inner_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_MULTI_QUERY_H_
