#ifndef REDOOP_CORE_MULTI_QUERY_H_
#define REDOOP_CORE_MULTI_QUERY_H_

#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/batch_feed.h"
#include "core/metrics.h"
#include "core/recurring_query.h"
#include "core/redoop_driver.h"
#include "core/semantic_analyzer.h"

namespace redoop {

/// Consolidates several recurring queries onto one cluster (the paper's
/// Semantic Analyzer "takes as input a sequence of recurring queries with
/// different window constraints", §3.1):
///
///  - every query touching a source is put on that source's common pane
///    grid — the GCD over all of their win/slide constraints — so their
///    pane boundaries align;
///  - recurrences execute in global trigger order: whichever query's next
///    window fires earliest runs next, so queries contend for the
///    cluster's slots exactly as co-running jobs would (a query that
///    overruns its slide delays whoever triggers behind it);
///  - each query keeps its own caches (cache files are namespaced per
///    query; sharing physical caches between queries with different
///    map/partition functions would be unsound).
class MultiQueryCoordinator {
 public:
  /// `cluster` and `feed` must outlive the coordinator.
  MultiQueryCoordinator(Cluster* cluster, BatchFeed* feed);

  MultiQueryCoordinator(const MultiQueryCoordinator&) = delete;
  MultiQueryCoordinator& operator=(const MultiQueryCoordinator&) = delete;

  /// Registers a query. Must be called before Run(); query ids must be
  /// unique. `options.adaptive.pane_size_override` and `options.file_namespace`
  /// are set by the coordinator.
  void AddQuery(RecurringQuery query, RedoopDriverOptions options = {});

  /// The pane size the coordinator will assign to `source`, given the
  /// queries registered so far.
  Timestamp PaneSizeForSource(SourceId source) const;

  /// Runs every query for `windows_per_query` recurrences, interleaved in
  /// global trigger order. Returns one RunReport per query, in
  /// registration order, or the first driver misconfiguration error
  /// (see RedoopDriver::RunRecurrence). May be called once.
  StatusOr<std::vector<RunReport>> Run(int64_t windows_per_query);

  /// Driver access (valid after Run() started building them).
  const RedoopDriver& driver(QueryId id) const;
  size_t query_count() const { return entries_.size(); }

 private:
  struct Entry {
    RecurringQuery query;
    RedoopDriverOptions options;
    std::unique_ptr<RedoopDriver> driver;
    int64_t next_recurrence = 0;
  };

  void BuildDrivers();

  Cluster* cluster_;
  BatchFeed* feed_;
  std::vector<Entry> entries_;
  bool started_ = false;
};

/// A BatchFeed decorator giving each consumer an independent read cursor
/// over a shared underlying feed. The coordinator hands one view per query
/// so that several drivers can pull the same source ranges independently
/// (the underlying feed must be a pure function of (source, range), which
/// SyntheticFeed guarantees).
class SharedFeedView : public BatchFeed {
 public:
  explicit SharedFeedView(BatchFeed* inner) : inner_(inner) {}

  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override {
    return inner_->BatchesFor(source, begin, end);
  }

  bool HasSource(SourceId source) const override {
    return inner_->HasSource(source);
  }

 private:
  BatchFeed* inner_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_MULTI_QUERY_H_
