#include "core/ndim_status_matrix.h"

#include <algorithm>

#include "common/logging.h"

namespace redoop {

NDimCacheStatusMatrix::NDimCacheStatusMatrix(const WindowGeometry& geometry,
                                             int32_t dimensions)
    : geometry_(geometry),
      dimensions_(dimensions),
      base_(static_cast<size_t>(dimensions), 0),
      extent_(static_cast<size_t>(dimensions), 0) {
  REDOOP_CHECK(dimensions >= 2);
}

PaneId NDimCacheStatusMatrix::base(int32_t dim) const {
  REDOOP_CHECK(dim >= 0 && dim < dimensions_);
  return base_[static_cast<size_t>(dim)];
}

int64_t NDimCacheStatusMatrix::extent(int32_t dim) const {
  REDOOP_CHECK(dim >= 0 && dim < dimensions_);
  return extent_[static_cast<size_t>(dim)];
}

int64_t NDimCacheStatusMatrix::FlatIndex(
    const std::vector<int64_t>& indices) const {
  int64_t flat = 0;
  for (int32_t d = 0; d < dimensions_; ++d) {
    flat = flat * extent_[static_cast<size_t>(d)] +
           indices[static_cast<size_t>(d)];
  }
  return flat;
}

bool NDimCacheStatusMatrix::GetRelative(
    const std::vector<int64_t>& indices) const {
  return done_[static_cast<size_t>(FlatIndex(indices))];
}

void NDimCacheStatusMatrix::GrowTo(const std::vector<PaneId>& cell) {
  std::vector<int64_t> needed(static_cast<size_t>(dimensions_));
  bool grow = false;
  for (int32_t d = 0; d < dimensions_; ++d) {
    const size_t sd = static_cast<size_t>(d);
    needed[sd] = std::max(extent_[sd], cell[sd] - base_[sd] + 1);
    if (needed[sd] != extent_[sd]) grow = true;
  }
  if (!grow) return;

  int64_t new_size = 1;
  for (int64_t e : needed) new_size *= e;
  std::vector<bool> grown(static_cast<size_t>(new_size), false);

  // Copy existing cells over via odometer enumeration.
  if (!done_.empty()) {
    std::vector<int64_t> idx(static_cast<size_t>(dimensions_), 0);
    while (true) {
      // Compute destination flat index under the new extents.
      int64_t flat = 0;
      for (int32_t d = 0; d < dimensions_; ++d) {
        flat = flat * needed[static_cast<size_t>(d)] +
               idx[static_cast<size_t>(d)];
      }
      grown[static_cast<size_t>(flat)] = GetRelative(idx);
      // Advance the odometer over the OLD extents.
      int32_t d = dimensions_ - 1;
      while (d >= 0) {
        if (++idx[static_cast<size_t>(d)] <
            extent_[static_cast<size_t>(d)]) {
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
        --d;
      }
      if (d < 0) break;
    }
  }
  done_ = std::move(grown);
  extent_ = std::move(needed);
}

void NDimCacheStatusMatrix::MarkDone(const std::vector<PaneId>& cell) {
  REDOOP_CHECK(static_cast<int32_t>(cell.size()) == dimensions_);
  for (int32_t d = 0; d < dimensions_; ++d) {
    REDOOP_CHECK(cell[static_cast<size_t>(d)] >= 0);
    if (cell[static_cast<size_t>(d)] < base_[static_cast<size_t>(d)]) {
      return;  // Purged region: already done.
    }
  }
  GrowTo(cell);
  std::vector<int64_t> idx(static_cast<size_t>(dimensions_));
  for (int32_t d = 0; d < dimensions_; ++d) {
    idx[static_cast<size_t>(d)] =
        cell[static_cast<size_t>(d)] - base_[static_cast<size_t>(d)];
  }
  done_[static_cast<size_t>(FlatIndex(idx))] = true;
}

bool NDimCacheStatusMatrix::IsDone(const std::vector<PaneId>& cell) const {
  REDOOP_CHECK(static_cast<int32_t>(cell.size()) == dimensions_);
  std::vector<int64_t> idx(static_cast<size_t>(dimensions_));
  for (int32_t d = 0; d < dimensions_; ++d) {
    const size_t sd = static_cast<size_t>(d);
    if (cell[sd] < base_[sd]) return true;  // Purged == done.
    idx[sd] = cell[sd] - base_[sd];
    if (idx[sd] >= extent_[sd]) return false;
  }
  return GetRelative(idx);
}

bool NDimCacheStatusMatrix::WindowCellsDone(int64_t rec, int32_t dim,
                                            PaneId p) const {
  const PaneRange window = geometry_.PanesForRecurrence(rec);
  if (!window.Contains(p)) return true;  // Not this window's concern.
  // Odometer over the window's pane range in every other dimension.
  std::vector<PaneId> cell(static_cast<size_t>(dimensions_), window.first);
  cell[static_cast<size_t>(dim)] = p;
  while (true) {
    if (!IsDone(cell)) return false;
    int32_t d = dimensions_ - 1;
    while (d >= 0) {
      if (d == dim) {
        --d;
        continue;
      }
      if (++cell[static_cast<size_t>(d)] < window.last) break;
      cell[static_cast<size_t>(d)] = window.first;
      --d;
    }
    if (d < 0) break;
  }
  return true;
}

bool NDimCacheStatusMatrix::LifespanComplete(int32_t dim, PaneId p) const {
  const int64_t first = geometry_.FirstRecurrenceUsingPane(p);
  const int64_t last = geometry_.LastRecurrenceUsingPane(p);
  for (int64_t rec = first; rec <= last; ++rec) {
    if (!WindowCellsDone(rec, dim, p)) return false;
  }
  return true;
}

bool NDimCacheStatusMatrix::PaneExpired(int32_t dim, PaneId p,
                                        int64_t completed_recurrence) const {
  if (!geometry_.PaneExpiredAfter(p, completed_recurrence)) return false;
  return LifespanComplete(dim, p);
}

std::vector<std::vector<PaneId>> NDimCacheStatusMatrix::Shift(
    int64_t completed_recurrence) {
  std::vector<std::vector<PaneId>> purged(static_cast<size_t>(dimensions_));
  std::vector<int64_t> drop(static_cast<size_t>(dimensions_), 0);
  bool any = false;
  for (int32_t d = 0; d < dimensions_; ++d) {
    const size_t sd = static_cast<size_t>(d);
    while (drop[sd] < extent_[sd] &&
           PaneExpired(d, base_[sd] + drop[sd], completed_recurrence)) {
      purged[sd].push_back(base_[sd] + drop[sd]);
      ++drop[sd];
      any = true;
    }
  }
  if (!any) return purged;

  std::vector<int64_t> new_extent(static_cast<size_t>(dimensions_));
  for (int32_t d = 0; d < dimensions_; ++d) {
    const size_t sd = static_cast<size_t>(d);
    new_extent[sd] = extent_[sd] - drop[sd];
  }
  int64_t new_size = 1;
  for (int64_t e : new_extent) new_size *= e;
  std::vector<bool> shifted(static_cast<size_t>(new_size), false);

  if (new_size > 0) {
    std::vector<int64_t> idx(static_cast<size_t>(dimensions_), 0);
    while (true) {
      // Source index under the old layout.
      std::vector<int64_t> src(static_cast<size_t>(dimensions_));
      for (int32_t d = 0; d < dimensions_; ++d) {
        const size_t sd = static_cast<size_t>(d);
        src[sd] = idx[sd] + drop[sd];
      }
      int64_t dst_flat = 0;
      for (int32_t d = 0; d < dimensions_; ++d) {
        dst_flat = dst_flat * new_extent[static_cast<size_t>(d)] +
                   idx[static_cast<size_t>(d)];
      }
      shifted[static_cast<size_t>(dst_flat)] = GetRelative(src);
      int32_t d = dimensions_ - 1;
      while (d >= 0) {
        if (++idx[static_cast<size_t>(d)] <
            new_extent[static_cast<size_t>(d)]) {
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
        --d;
      }
      if (d < 0) break;
    }
  }
  done_ = std::move(shifted);
  for (int32_t d = 0; d < dimensions_; ++d) {
    const size_t sd = static_cast<size_t>(d);
    base_[sd] += drop[sd];
    extent_[sd] = new_extent[sd];
  }
  return purged;
}

int64_t NDimCacheStatusMatrix::CellCount() const {
  int64_t count = 1;
  for (int64_t e : extent_) count *= e;
  return done_.empty() ? 0 : count;
}

}  // namespace redoop
