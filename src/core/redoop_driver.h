#ifndef REDOOP_CORE_REDOOP_DRIVER_H_
#define REDOOP_CORE_REDOOP_DRIVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/batch_feed.h"
#include "core/cache_aware_scheduler.h"
#include "core/cache_controller.h"
#include "core/cache_key.h"
#include "core/cache_store.h"
#include "core/eviction_policy.h"
#include "core/data_packer.h"
#include "core/execution_profiler.h"
#include "core/local_cache_registry.h"
#include "core/metrics.h"
#include "core/recurring_query.h"
#include "core/semantic_analyzer.h"
#include "core/window.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/scheduler.h"
#include "obs/observability.h"

namespace redoop {

class FleetContext;  // core/fleet.h; held by pointer only.

/// Caching knobs (paper §4).
struct CacheOptions {
  /// Cache the shuffled, sorted reducer inputs per pane (paper §4).
  bool reduce_input = true;
  /// Cache per-pane (or per-pane-pair) reducer outputs.
  bool reduce_output = true;
  /// Join-window strategy optimizer: per recurrence, cost-estimate the
  /// pane-pair incremental path against re-joining the whole window from
  /// cached reducer inputs, and take the cheaper. Pane pairs win at high
  /// overlap (pair outputs are reused across many windows); the recompute
  /// path wins at low overlap, where per-pair execution would re-read each
  /// pane once per partner. Disable to force pane pairs always.
  bool hybrid_join_strategy = true;
  /// Local-registry purge period; < 0 means "one slide" (paper default).
  double purge_cycle_s = -1.0;
  /// Store cache payloads columnar-compressed (front-coded key column,
  /// varint value/offset columns), decoding lazily into a FlatKvBuffer on
  /// first access. Job outputs, counters, and simulated timings are
  /// byte-identical either way — only host memory and the compressed-bytes
  /// accounting change. Off = keep the row-ordered flat buffer as-is.
  bool columnar_payloads = true;
  /// Logical-byte budget of the driver's CacheStore; 0 = unbounded (keep
  /// every pane the lifespan math declares live, the paper's model). Under
  /// a budget, evicted panes flip back to recompute and are rebuilt lazily
  /// when a window reads them again — window outputs stay byte-identical
  /// to the unbounded run, only the work volume changes.
  int64_t budget_bytes = 0;
  /// Victim selection under the byte budget (ignored when unbounded).
  EvictionPolicyKind eviction_policy = EvictionPolicyKind::kLru;
};

/// Adaptive input partitioning + proactive execution (paper §3.3).
struct AdaptiveOptions {
  bool enabled = false;
  /// Proactive mode engages when the forecast execution time exceeds this
  /// fraction of the slide.
  double proactive_threshold = 0.8;
  int32_t max_subpanes = 6;
  /// Pane-grid override in seconds (0 = GCD(win, slide)). Must evenly
  /// divide both win and slide. The multi-query coordinator uses this to
  /// put every query sharing a source on one grid (GCD across all their
  /// windows).
  Timestamp pane_size_override = 0;
};

/// Holt smoothing parameters for the Execution Profiler (paper §3.3).
struct ProfilerOptions {
  double alpha = 0.5;
  double beta = 0.3;
};

/// Task-placement knobs (paper §5, Eq. 4).
struct SchedulerOptions {
  /// Window-aware cache-locality scheduling (Eq. 4) vs Hadoop's default.
  bool cache_aware = true;
  /// Weight (simulated seconds) of a node's queued-task load term against
  /// its cache-affinity term in the placement score.
  double load_weight_s = 30.0;
};

/// Causal-tracing knobs (DESIGN §14).
struct TraceOptions {
  /// Head sampling: stamp trace/span ids on every event of one window in
  /// `sample_period` (window `r` is sampled when r % period == 0). 1 =
  /// trace every window (default); 0 disables stamping entirely. A window
  /// that misses its SLO deadline is promoted to sampled retroactively
  /// regardless of the period (always-sample-on-SLO-violation).
  int64_t sample_period = 1;
};

struct RedoopDriverOptions {
  /// Caching behaviour (reduce-input/output caches, join strategy, purge).
  CacheOptions cache;
  /// Adaptive partitioning / proactive execution.
  AdaptiveOptions adaptive;
  /// Execution-profiler forecasting parameters.
  ProfilerOptions profiler;
  /// Task-placement policy.
  SchedulerOptions scheduler;
  /// Causal-trace sampling policy.
  TraceOptions trace;
  /// Prefix for the query's DFS pane files, so several drivers can consume
  /// the same source on one cluster without name collisions.
  std::string file_namespace;
  /// Engine-level knobs (task retries, straggler model, speculative
  /// execution — the latter off by default, as in the paper's setup —
  /// and the host worker-thread count).
  JobRunnerOptions runner;
  /// Metrics + decision-event sink shared by every Redoop component the
  /// driver wires up (controller, schedulers, profiler, registries, DFS,
  /// job runner). Must outlive the driver. When null the driver owns a
  /// private context, reachable via observability().
  obs::ObservabilityContext* obs = nullptr;
  /// Fleet-serving context shared across co-resident drivers (DESIGN §17):
  /// cross-query pane dedup and eviction fan-out. Set by the
  /// MultiQueryCoordinator; null (the default) for standalone drivers.
  /// Must outlive the driver; consulted on the coordinator thread only.
  FleetContext* fleet = nullptr;

  class Builder;
};

/// Fluent construction for RedoopDriverOptions. Group setters replace a
/// whole nested block; leaf setters flip the commonly toggled knobs:
///
///   auto options = RedoopDriverOptions::Builder()
///                      .CacheAwareScheduler(false)
///                      .Adaptive(true)
///                      .Threads(8)
///                      .Build();
class RedoopDriverOptions::Builder {
 public:
  Builder() = default;
  /// Starts from an existing options value (e.g. to derive a variant).
  explicit Builder(RedoopDriverOptions base) : opts_(std::move(base)) {}

  // -- Group setters -----------------------------------------------------
  Builder& Cache(CacheOptions v) { opts_.cache = v; return *this; }
  Builder& Adaptive(AdaptiveOptions v) { opts_.adaptive = v; return *this; }
  Builder& Profiler(ProfilerOptions v) { opts_.profiler = v; return *this; }
  Builder& Scheduler(SchedulerOptions v) { opts_.scheduler = v; return *this; }
  Builder& Trace(TraceOptions v) { opts_.trace = v; return *this; }
  Builder& Runner(JobRunnerOptions v) {
    opts_.runner = std::move(v);
    return *this;
  }

  // -- Leaf setters ------------------------------------------------------
  Builder& CacheReduceInput(bool v) { opts_.cache.reduce_input = v; return *this; }
  Builder& CacheReduceOutput(bool v) { opts_.cache.reduce_output = v; return *this; }
  Builder& HybridJoinStrategy(bool v) { opts_.cache.hybrid_join_strategy = v; return *this; }
  Builder& PurgeCycle(double seconds) { opts_.cache.purge_cycle_s = seconds; return *this; }
  Builder& ColumnarPayloads(bool v) { opts_.cache.columnar_payloads = v; return *this; }
  Builder& CacheBudgetBytes(int64_t v) { opts_.cache.budget_bytes = v; return *this; }
  Builder& CacheEvictionPolicy(EvictionPolicyKind v) { opts_.cache.eviction_policy = v; return *this; }
  Builder& Adaptive(bool v) { opts_.adaptive.enabled = v; return *this; }
  Builder& ProactiveThreshold(double v) { opts_.adaptive.proactive_threshold = v; return *this; }
  Builder& MaxSubpanes(int32_t v) { opts_.adaptive.max_subpanes = v; return *this; }
  Builder& PaneSizeOverride(Timestamp v) { opts_.adaptive.pane_size_override = v; return *this; }
  Builder& ProfilerSmoothing(double alpha, double beta) {
    opts_.profiler.alpha = alpha;
    opts_.profiler.beta = beta;
    return *this;
  }
  Builder& CacheAwareScheduler(bool v) { opts_.scheduler.cache_aware = v; return *this; }
  Builder& TraceSamplePeriod(int64_t v) { opts_.trace.sample_period = v; return *this; }
  Builder& SchedulerLoadWeight(double seconds) { opts_.scheduler.load_weight_s = seconds; return *this; }
  Builder& FileNamespace(std::string v) {
    opts_.file_namespace = std::move(v);
    return *this;
  }
  Builder& Threads(int32_t v) { opts_.runner.threads = v; return *this; }
  Builder& Seed(uint64_t v) { opts_.runner.seed = v; return *this; }
  Builder& Observability(obs::ObservabilityContext* ctx) {
    opts_.obs = ctx;
    return *this;
  }
  Builder& Fleet(FleetContext* ctx) {
    opts_.fleet = ctx;
    return *this;
  }

  RedoopDriverOptions Build() const { return opts_; }

 private:
  RedoopDriverOptions opts_;
};

/// The Redoop execution driver: the component that ties together the
/// Semantic Analyzer, Dynamic Data Packer, Execution Profiler, Window-Aware
/// Cache Controller, per-node Local Cache Registries, and the Cache-Aware
/// Task Scheduler to run a recurring query incrementally (paper §2.3
/// architecture). Window results are exactly equal to what the plain-Hadoop
/// driver produces on the same feed — caching must never change answers.
class RedoopDriver {
 public:
  /// `cluster` and `feed` must outlive the driver.
  RedoopDriver(Cluster* cluster, BatchFeed* feed, RecurringQuery query,
               RedoopDriverOptions options = {});
  ~RedoopDriver();

  RedoopDriver(const RedoopDriver&) = delete;
  RedoopDriver& operator=(const RedoopDriver&) = delete;

  /// Executes recurrence i (consecutive from 0) and reports. Returns a
  /// typed error instead of aborting when the driver was misconfigured
  /// (InvalidArgument: `adaptive.pane_size_override` does not divide the
  /// query's win/slide; NotFound: a query source is not registered with
  /// the feed) or when recurrences are requested out of order
  /// (FailedPrecondition).
  StatusOr<WindowReport> RunRecurrence(int64_t recurrence);

  /// Convenience: runs recurrences [0, n). Stops at the first error.
  StatusOr<RunReport> Run(int64_t n);

  /// Ad-hoc historical query (paper §2.1: "even ad-hoc queries can benefit
  /// from the caching of the intermediate data"): evaluates the query's
  /// map/reduce/finalize over an arbitrary time range [begin, end) within
  /// the retained pane horizon. Panes fully inside the range are served
  /// from their cached reducer outputs; partially covered edge panes are
  /// re-mapped from their pane files with a time filter. Aggregation
  /// (kPerPaneMerge) queries only. Returns the sorted result.
  StatusOr<std::vector<KeyValue>> RunAdHocQuery(Timestamp begin,
                                                Timestamp end);

  // --- Introspection (tests, benchmarks) --------------------------------
  const WindowGeometry& geometry() const { return geometry_; }
  const WindowAwareCacheController& controller() const { return controller_; }
  const CacheStore& store() const { return *store_; }
  const ExecutionProfiler& profiler() const { return profiler_; }
  const LocalCacheRegistry& registry(NodeId node) const;
  const DynamicDataPacker& packer(SourceId source) const;
  bool proactive_mode() const { return proactive_mode_; }
  int32_t current_subpanes() const { return current_plan_.subpanes_per_pane; }
  const RedoopDriverOptions& options() const { return options_; }
  /// Construction-time validation verdict; RunRecurrence/Run return this
  /// error without doing any work when it is not OK.
  const Status& init_status() const { return init_status_; }
  /// The active observability context (the caller-provided one, or the
  /// driver-owned fallback). Never null.
  obs::ObservabilityContext* observability() { return obs_; }
  /// The driver's query-attributed telemetry scope (carries the query
  /// label and the live recurrence window for event stamping).
  const obs::TelemetryScope& telemetry() const { return scope_; }

  /// What the coordinator's admission queue decided for the next
  /// recurrence; journaled as a fleet.admit event when the window opens.
  struct FleetAdmission {
    double wait_s = 0.0;    // Trigger-to-admission delay (simulated).
    int64_t queued = 0;     // Queue depth at admission time.
    double attained_s = 0.0;  // Tenant's attained weighted service.
    double weight = 1.0;
  };
  void NoteFleetAdmission(const FleetAdmission& note);

 private:
  struct FileSlice {
    std::string file_name;
    int64_t record_begin = 0;
    int64_t record_end = -1;
    int64_t bytes = 0;
  };

  struct PaneIngestState {
    std::vector<FileSlice> unprocessed;  // Slices awaiting a caching pass.
    std::vector<FileSlice> all_slices;   // Every slice (for rebuilds).
    bool complete = false;
    bool cached_reported = false;
    int32_t chunks_processed = 0;
    int64_t bytes = 0;
    /// Cache files materialized for this pane (manifest for loss and
    /// eviction checks).
    std::vector<CacheKey> ric_names;
    std::vector<CacheKey> roc_names;
  };

  using PaneKey = std::pair<SourceId, PaneId>;

  void IngestInterval(Timestamp from, Timestamp to);
  void HandlePaneFiles(SourceId source,
                       const std::vector<PaneFileInfo>& files);
  void DrainWorkLists();
  void RunPaneJob(const PaneWorkItem& item);
  /// Runs one map+cache pass over a pane's (sub-)file slices; a non-empty
  /// `active_partitions` limits the reduce/caching side to those
  /// partitions (partition-scoped cache rebuild).
  void RunPaneSlices(SourceId source, PaneId pane,
                     const std::vector<FileSlice>& slices,
                     std::vector<int32_t> active_partitions = {});
  /// Runs a batch of pane-pair join tasks as one job.
  void RunPanePairBatch(const std::vector<PanePairWorkItem>& pairs);
  /// Invalidates the pane's *lost* caches and re-materializes just those:
  /// lost output caches with surviving input caches are re-reduced in
  /// place; anything else is replayed from the pane's HDFS files with the
  /// reduce side limited to the lost partitions.
  void RebuildPane(SourceId source, PaneId pane);
  /// Re-reduces the given partitions' output caches from their surviving
  /// reduce-input caches.
  void RebuildOutputsFromInputs(SourceId source, PaneId pane,
                                std::vector<int32_t> partitions);
  void RegisterJobCaches(const JobResult& result, SourceId source_for_roc,
                         PaneId pane_for_roc);
  void AccumulateJobStats(const JobResult& result);
  WindowReport AssembleWindow(int64_t recurrence);
  /// Classifies every in-window pane as a cache hit (its caches predate
  /// this recurrence) or miss (built or still unbuilt this recurrence) and
  /// journals the verdicts. Called once per window, before assembly runs
  /// any job.
  void EmitPaneCacheStats(int64_t recurrence);
  void AfterRecurrence(int64_t recurrence, const WindowReport& report);
  void OnCacheLossEvent(NodeId node, const std::vector<std::string>& lost);
  /// Rolls planner state back for a budget eviction (signature drop, node
  /// file delete, registry removal, ready-bit/matrix rollback) without
  /// scheduling an eager rebuild.
  void OnCacheEvicted(const CacheStore::EvictionNotice& notice);
  /// Appends the cache's payload as a reduce side input, pinning its store
  /// entry for the rest of the recurrence.
  void AppendSideInput(const CacheSignature& sig,
                       std::vector<ReduceSideInput>* out);
  std::vector<ReduceSideInput> SideInputsFor(
      const std::vector<const CacheSignature*>& caches);
  /// Join windows: decides the execution strategy (pane pairs vs cached-
  /// input recompute), runs the needed work, and — on the recompute path —
  /// stashes the window output in `join_window_override_`.
  void PrepareJoinWindow(int64_t recurrence);
  /// In-window pairs that are undone or whose outputs are missing.
  std::vector<PanePairWorkItem> MissingWindowPairs(int64_t recurrence) const;
  /// Cost estimates (simulated seconds of I/O+CPU work) for the two join
  /// window strategies.
  double EstimatePairPathCost(
      const std::vector<PanePairWorkItem>& pairs) const;
  double EstimateRecomputePathCost(int64_t recurrence) const;
  /// Re-joins the whole window from cached reducer inputs in one job.
  void RunJoinWindowRecompute(int64_t recurrence);
  /// Builds the paper's folded window job (Fig. 5): map only the panes not
  /// yet cached, feed previously cached panes to the reducers as side
  /// inputs, and keep the new panes' merged reducer inputs as caches.
  JobSpec BuildFoldedWindowSpec(int64_t recurrence);
  /// Completes the caching pass for every in-window pane that still has
  /// unprocessed slices (pair path prerequisite).
  void EnsureWindowPanesCached(int64_t recurrence);
  /// Marks the panes whose slices `spec` mapped as cached after the fold
  /// job ran.
  void FinishFoldedPanes(int64_t recurrence);
  /// Ensures every in-window pane's manifest caches are still present.
  void EnsureWindowPanes(int64_t recurrence);
  JobConfig BaseJobConfig(const std::string& suffix) const;
  TaskScheduler* scheduler();

  // --- Fleet serving (DESIGN §17) ---------------------------------------
  /// Whether this caching pass may share images across queries: the
  /// initial full-pane build (chunk 0, every slice, no partition scope,
  /// empty manifests) of a dedup-opted query under a fleet context.
  bool FleetDedupEligible(SourceId source, PaneId pane,
                          const std::vector<FileSlice>& slices,
                          const std::vector<int32_t>& active_partitions) const;
  std::string FleetContentKey(SourceId source, PaneId pane) const;
  /// Adopts another query's published images for this pane (payloads
  /// shared, zero simulated work); false when no image is published.
  bool TryAdoptPane(SourceId source, PaneId pane);
  /// Publishes this pane's just-built images for later queries to adopt.
  void PublishFleetPane(SourceId source, PaneId pane,
                        const std::vector<MaterializedCache>& caches);
  /// Rollback fan-out target: another holder's budget evicted the shared
  /// physical image, so this query's copies are dropped too (manifests
  /// stay, EnsureWindowPanes rebuilds lazily).
  void EvictFleetPane(SourceId source, PaneId pane);

  Cluster* cluster_;
  BatchFeed* feed_;
  RecurringQuery query_;
  RedoopDriverOptions options_;
  WindowGeometry geometry_;
  /// First misconfiguration found at construction (OK when none).
  Status init_status_;
  /// Owned fallback when options.obs is null; obs_ is the active context.
  std::unique_ptr<obs::ObservabilityContext> owned_obs_;
  obs::ObservabilityContext* obs_ = nullptr;
  /// Current recurrence, read by telemetry scopes at emit time (-1 when no
  /// recurrence is active). Must outlive every scope copy handed out.
  int64_t telemetry_window_ = -1;
  /// Current window's trace context, read by telemetry scopes at emit time
  /// (inactive between recurrences). Same lifetime contract as the window
  /// cell: every scope copy points here.
  obs::trace::TraceContext trace_ctx_;
  /// Query-attributed scope shared (by copy) with every wired component.
  obs::TelemetryScope scope_;
  SemanticAnalyzer analyzer_;
  PartitionPlan base_plan_;
  PartitionPlan current_plan_;
  WindowAwareCacheController controller_;
  /// Built in the constructor body (its Options capture `this` for the
  /// eviction callback and need scope_ live first).
  std::unique_ptr<CacheStore> store_;
  /// Pins on every cache entry the current recurrence registered or read;
  /// cleared (then EnforceBudget) at the end of each recurrence. Must be
  /// declared after store_ so destruction releases the pins while the
  /// store is still alive.
  std::vector<CacheStore::Lease> recurrence_leases_;
  ExecutionProfiler profiler_;
  DefaultScheduler default_scheduler_;
  std::unique_ptr<CacheAwareScheduler> cache_aware_scheduler_;
  std::unique_ptr<JobRunner> runner_;
  std::map<SourceId, std::unique_ptr<DynamicDataPacker>> packers_;
  std::vector<std::unique_ptr<LocalCacheRegistry>> registries_;
  std::map<PaneKey, PaneIngestState> pane_states_;
  /// Panes whose caches were (re)built during the current recurrence —
  /// serving them is a cache miss, not a hit (cleared per recurrence).
  std::set<PaneKey> panes_built_this_recurrence_;
  /// Window each pane's caches were last (re)built in, for the pane-hit
  /// lineage stamp ("built_in"): the follows-from edge's producer window.
  std::map<PaneKey, int64_t> pane_built_window_;
  std::vector<Timestamp> ingested_until_;
  int64_t next_recurrence_ = 0;
  bool proactive_mode_ = false;
  int64_t pair_batch_counter_ = 0;
  /// Pairs popped from the controller's reduce task list but deferred to
  /// the window's strategy decision (non-proactive join mode).
  std::vector<PanePairWorkItem> deferred_pairs_;
  std::set<std::pair<PaneId, PaneId>> deferred_pair_keys_;
  /// Window output computed by the recompute join path (consumed by
  /// AssembleWindow instead of the pair-output union).
  std::optional<std::vector<KeyValue>> join_window_override_;
  /// Previous join window's output volume (recompute cost estimation).
  int64_t last_join_output_bytes_ = 0;
  /// Previous recurrence's result, kept when the query emits deltas.
  std::vector<KeyValue> previous_output_;
  /// Guards the cluster's cache-loss listener against driver teardown.
  std::shared_ptr<bool> alive_flag_;
  /// Fresh bytes per source in the current inter-trigger interval (rate
  /// statistics for the Semantic Analyzer).
  std::map<SourceId, int64_t> source_window_bytes_;
  /// Panes whose resident caches are physically shared through the fleet
  /// dedup index, by content key — consulted on eviction in either
  /// direction (this query's budget, or a fan-out from another holder).
  std::map<PaneKey, std::string> fleet_pane_keys_;
  /// Coordinator-set admission note, consumed by the next RunRecurrence.
  std::optional<FleetAdmission> pending_admission_;

  // Per-recurrence accumulators (proactive jobs count toward the next
  // recurrence's phase totals).
  SimDuration shuffle_accum_ = 0.0;
  SimDuration reduce_accum_ = 0.0;
  SimDuration map_phase_accum_ = 0.0;
  SimDuration work_accum_ = 0.0;  // Total job time, pre- and post-trigger.
  std::vector<TaskReport> task_reports_accum_;
  Counters counters_accum_;
  int64_t fresh_bytes_accum_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_CORE_REDOOP_DRIVER_H_
