#include "core/execution_profiler.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace redoop {

ExecutionProfiler::ExecutionProfiler(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  REDOOP_CHECK(alpha > 0.0 && alpha <= 1.0) << "alpha out of (0,1]: " << alpha;
  REDOOP_CHECK(beta > 0.0 && beta <= 1.0) << "beta out of (0,1]: " << beta;
}

void ExecutionProfiler::Observe(double execution_time,
                                int64_t bytes_processed) {
  REDOOP_CHECK(execution_time >= 0.0);
  // Holt's forecast made *before* this observation arrived — the number a
  // proactive-mode decision would have used. Journaled below against the
  // actual so forecast error is a first-class tracked distribution.
  const bool had_forecast = count_ > 0;
  const double predicted = had_forecast ? Forecast(1) : 0.0;

  last_x_ = execution_time;
  last_bytes_ = bytes_processed;
  if (count_ == 0) {
    level_ = execution_time;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * execution_time + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++count_;

  if (scope_.active()) {
    scope_.Increment(obs::metric::kProfilerObservations);
    obs::Event& e = scope_.Emit(obs::event::kProfilerObserve);
    e.With("observation", count_)
        .With("actual", execution_time)
        .With("bytes", bytes_processed)
        .With("level", level_)
        .With("trend", trend_);
    if (had_forecast) {
      const double abs_error = std::abs(predicted - execution_time);
      scope_.Record(obs::metric::kProfilerAbsErr, abs_error);
      if (execution_time > 0.0) {
        scope_.Record(obs::metric::kProfilerRelErr,
                               abs_error / execution_time);
      }
      e.With("predicted", predicted).With("abs_error", abs_error);
    }
  }
}

double ExecutionProfiler::Forecast(int64_t k) const {
  REDOOP_CHECK(count_ > 0) << "Forecast before any observation";
  REDOOP_CHECK(k >= 1);
  const double forecast = level_ + static_cast<double>(k) * trend_;
  return forecast < 0.0 ? 0.0 : forecast;
}

double ExecutionProfiler::ScaleFactor() const {
  if (count_ < 2 || last_x_ <= 0.0) return 1.0;
  return Forecast(1) / last_x_;
}

void ExecutionProfiler::Reset() {
  level_ = 0.0;
  trend_ = 0.0;
  last_x_ = 0.0;
  last_bytes_ = 0;
  count_ = 0;
}

std::pair<double, double> ExecutionProfiler::FitSmoothingParams(
    const std::vector<double>& history) {
  REDOOP_CHECK(history.size() >= 3)
      << "need at least 3 observations to fit smoothing parameters";
  double best_alpha = 0.5;
  double best_beta = 0.3;
  double best_sse = std::numeric_limits<double>::infinity();
  for (int ai = 1; ai <= 20; ++ai) {
    for (int bi = 1; bi <= 20; ++bi) {
      const double alpha = ai * 0.05;
      const double beta = bi * 0.05;
      ExecutionProfiler p(alpha, beta);
      double sse = 0.0;
      for (double x : history) {
        if (p.observation_count() > 0) {
          const double err = p.Forecast(1) - x;
          sse += err * err;
        }
        p.Observe(x);
      }
      if (sse < best_sse) {
        best_sse = sse;
        best_alpha = alpha;
        best_beta = beta;
      }
    }
  }
  return {best_alpha, best_beta};
}

}  // namespace redoop
