#ifndef REDOOP_CORE_PANE_NAMING_H_
#define REDOOP_CORE_PANE_NAMING_H_

#include <optional>
#include <string>

#include "common/ids.h"

namespace redoop {

/// File/cache naming conventions (paper §3.2). Pane files:
///   "S<sid>P<pid>"            one pane per file (oversize case)
///   "S<sid>P<a>_<b>"          panes a..b inclusive in one file (undersized)
///   "S<sid>P<pid>.<j>"        sub-pane j of pane pid (adaptive mode)
/// Cache files:
///   "RIC_Q<q>_S<sid>P<pid>_R<r>"   reduce input cache
///   "ROC_Q<q>_S<sid>P<pid>_R<r>"   per-pane reduce output cache
///   "JOC_Q<q>_P<p>x<q2>_R<r>"      pane-pair join output cache

std::string PaneFileName(SourceId source, PaneId pane);
std::string MultiPaneFileName(SourceId source, PaneId first, PaneId last);
std::string SubPaneFileName(SourceId source, PaneId pane, int32_t subpane);

std::string ReduceInputCacheName(QueryId query, SourceId source, PaneId pane,
                                 int32_t partition);
std::string ReduceOutputCacheName(QueryId query, SourceId source, PaneId pane,
                                  int32_t partition);
std::string JoinOutputCacheName(QueryId query, PaneId left, PaneId right,
                                int32_t partition);

/// Parsed identity of a pane-file name; nullopt when the name is not a pane
/// file. `last_pane` equals `first_pane` for single-pane and sub-pane files.
struct ParsedPaneFileName {
  SourceId source = 0;
  PaneId first_pane = 0;
  PaneId last_pane = 0;
  bool is_subpane = false;
  int32_t subpane = 0;
};
std::optional<ParsedPaneFileName> ParsePaneFileName(const std::string& name);

}  // namespace redoop

#endif  // REDOOP_CORE_PANE_NAMING_H_
