#include "core/cache_types.h"

namespace redoop {

const char* CacheTypeName(CacheType type) {
  switch (type) {
    case CacheType::kNone:
      return "none";
    case CacheType::kReduceInput:
      return "reduce-input";
    case CacheType::kReduceOutput:
      return "reduce-output";
  }
  return "?";
}

const char* CacheReadyName(CacheReady ready) {
  switch (ready) {
    case CacheReady::kNotAvailable:
      return "not-available";
    case CacheReady::kHdfsAvailable:
      return "hdfs-available";
    case CacheReady::kCacheAvailable:
      return "cache-available";
  }
  return "?";
}

}  // namespace redoop
