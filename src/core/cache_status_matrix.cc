#include "core/cache_status_matrix.h"

#include <algorithm>

#include "common/logging.h"

namespace redoop {

CacheStatusMatrix::CacheStatusMatrix(const WindowGeometry& geometry)
    : geometry_(geometry) {}

bool CacheStatusMatrix::Get(int64_t li, int64_t ri) const {
  return done_[static_cast<size_t>(li * extent_[1] + ri)];
}

void CacheStatusMatrix::GrowTo(PaneId left, PaneId right) {
  const int64_t need_rows = std::max(extent_[0], left - base_[0] + 1);
  const int64_t need_cols = std::max(extent_[1], right - base_[1] + 1);
  if (need_rows == extent_[0] && need_cols == extent_[1]) return;
  std::vector<bool> grown(static_cast<size_t>(need_rows * need_cols), false);
  for (int64_t li = 0; li < extent_[0]; ++li) {
    for (int64_t ri = 0; ri < extent_[1]; ++ri) {
      grown[static_cast<size_t>(li * need_cols + ri)] = Get(li, ri);
    }
  }
  done_ = std::move(grown);
  extent_[0] = need_rows;
  extent_[1] = need_cols;
}

void CacheStatusMatrix::MarkDone(PaneId left, PaneId right) {
  REDOOP_CHECK(left >= 0 && right >= 0);
  if (left < base_[0] || right < base_[1]) return;  // Already purged: done.
  GrowTo(left, right);
  const int64_t li = left - base_[0];
  const int64_t ri = right - base_[1];
  done_[static_cast<size_t>(li * extent_[1] + ri)] = true;
}

void CacheStatusMatrix::MarkUndone(PaneId left, PaneId right) {
  REDOOP_CHECK(left >= 0 && right >= 0);
  // Purged pairs stay "done": nothing ahead reads them, and un-purging
  // would block Shift forever. Cells beyond the extent are already
  // not-done.
  if (left < base_[0] || right < base_[1]) return;
  const int64_t li = left - base_[0];
  const int64_t ri = right - base_[1];
  if (li >= extent_[0] || ri >= extent_[1]) return;
  done_[static_cast<size_t>(li * extent_[1] + ri)] = false;
}

bool CacheStatusMatrix::IsDone(PaneId left, PaneId right) const {
  if (left < base_[0] || right < base_[1]) return true;  // Purged == done.
  const int64_t li = left - base_[0];
  const int64_t ri = right - base_[1];
  if (li >= extent_[0] || ri >= extent_[1]) return false;
  return Get(li, ri);
}

bool CacheStatusMatrix::LifespanComplete(bool left_dim, PaneId p) const {
  const PaneRange lifespan = JoinLifespan(geometry_, p);
  for (PaneId q = lifespan.first; q < lifespan.last; ++q) {
    const bool done = left_dim ? IsDone(p, q) : IsDone(q, p);
    if (!done) return false;
  }
  return true;
}

bool CacheStatusMatrix::PaneExpired(bool left_dim, PaneId p,
                                    int64_t completed_recurrence) const {
  if (!geometry_.PaneExpiredAfter(p, completed_recurrence)) return false;
  return LifespanComplete(left_dim, p);
}

std::pair<std::vector<PaneId>, std::vector<PaneId>> CacheStatusMatrix::Shift(
    int64_t completed_recurrence) {
  std::pair<std::vector<PaneId>, std::vector<PaneId>> purged;

  // Scan each dimension in ascending pane order; stop at the first pane
  // that is not expired (paper Fig. 4: "scan each element in ascending
  // order by pane id until an element indicates the task has not been
  // done").
  int64_t drop_rows = 0;
  while (drop_rows < extent_[0] &&
         PaneExpired(/*left_dim=*/true, base_[0] + drop_rows,
                     completed_recurrence)) {
    purged.first.push_back(base_[0] + drop_rows);
    ++drop_rows;
  }
  int64_t drop_cols = 0;
  while (drop_cols < extent_[1] &&
         PaneExpired(/*left_dim=*/false, base_[1] + drop_cols,
                     completed_recurrence)) {
    purged.second.push_back(base_[1] + drop_cols);
    ++drop_cols;
  }
  if (drop_rows == 0 && drop_cols == 0) return purged;

  const int64_t new_rows = extent_[0] - drop_rows;
  const int64_t new_cols = extent_[1] - drop_cols;
  std::vector<bool> shifted(static_cast<size_t>(new_rows * new_cols), false);
  for (int64_t li = 0; li < new_rows; ++li) {
    for (int64_t ri = 0; ri < new_cols; ++ri) {
      shifted[static_cast<size_t>(li * new_cols + ri)] =
          Get(li + drop_rows, ri + drop_cols);
    }
  }
  done_ = std::move(shifted);
  base_[0] += drop_rows;
  base_[1] += drop_cols;
  extent_[0] = new_rows;
  extent_[1] = new_cols;
  return purged;
}

}  // namespace redoop
