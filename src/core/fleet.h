#ifndef REDOOP_CORE_FLEET_H_
#define REDOOP_CORE_FLEET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "core/batch_feed.h"
#include "dfs/record.h"
#include "obs/telemetry_scope.h"

namespace redoop {

class FlatKvBuffer;

/// Fleet-serving features of the MultiQueryCoordinator (DESIGN §17). All
/// default to off, which reproduces the legacy private-tenant coordinator
/// exactly: every feature is a pure optimization whose per-query window
/// outputs are byte-identical to the unshared path.
struct FleetOptions {
  /// Read + parse each source batch once per coordinator and fan it out
  /// to every consuming query, instead of once per query.
  bool shared_scans = false;
  /// Queries with identical upstream pipelines (same pipeline_signature,
  /// source, and pane grid) share one physical cached pane image.
  bool cache_dedup = false;
  /// Weighted fair-share admission: among queries whose triggers fall
  /// within `fair_horizon_s` of the earliest pending trigger, admit the
  /// one with the least attained weighted service first.
  bool fair_share = false;
  /// Reordering horizon for fair_share; 0 keeps strict trigger order.
  Timestamp fair_horizon_s = 0;

  bool AnyEnabled() const { return shared_scans || cache_dedup || fair_share; }
};

/// Fleet-wide counters, accumulated on the coordinator thread (drivers run
/// serially in trigger order, so no synchronization is needed).
struct FleetStats {
  // Admission.
  int64_t admitted = 0;
  int64_t queue_peak = 0;
  double admission_wait_s = 0;
  // Shared scans. `bytes_served` is what consumers received; `bytes_scanned`
  // is what actually hit the underlying feed. Their ratio is the fan-out.
  int64_t scan_requests = 0;
  int64_t scan_hits = 0;
  int64_t scan_misses = 0;
  int64_t scan_bytes_served = 0;
  int64_t scan_bytes_scanned = 0;
  // Cross-query cache dedup.
  int64_t dedup_published = 0;
  int64_t dedup_adoptions = 0;
  int64_t dedup_bytes = 0;  // cache bytes adopted instead of recomputed
  int64_t dedup_evict_fanout = 0;
};

/// A BatchFeed decorator that materializes each underlying batch at most
/// once and serves every consumer from the in-memory image. Correct for
/// feeds that are pure functions of (source, range) — SyntheticFeed's
/// contract — and for consumers whose ranges align to the feed's batch
/// grid, which the coordinator guarantees by aligning every query to the
/// shared pane grid (itself a multiple of the batch interval).
///
/// Single-threaded by design: the coordinator runs drivers serially, so
/// ingest (the only caller) never races. Task-level parallelism below the
/// driver never touches the feed.
class SharedScanFeed : public BatchFeed {
 public:
  /// Per-call accounting, so per-query views can attribute their share.
  struct ScanDelta {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t bytes_served = 0;
    int64_t bytes_scanned = 0;
  };

  /// `inner` must outlive this feed. `stats` (optional) receives the
  /// fleet-wide scan counters.
  SharedScanFeed(BatchFeed* inner, FleetStats* stats)
      : inner_(inner), stats_(stats) {}

  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override {
    return BatchesFor(source, begin, end, nullptr);
  }

  /// As BatchesFor, additionally reporting this call's hit/miss split.
  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end, ScanDelta* delta);

  bool HasSource(SourceId source) const override {
    return inner_->HasSource(source);
  }

  /// Drops cached batches wholly below `time_floor` (end <= floor). The
  /// coordinator calls this with the minimum window-begin over all
  /// unfinished queries, so resident bytes track the active window span.
  void ReleaseBelow(Timestamp time_floor);

  int64_t resident_bytes() const { return resident_bytes_; }
  size_t resident_batches() const;

 private:
  BatchFeed* inner_;
  FleetStats* stats_;
  /// Per source: batch start -> materialized batch (non-overlapping).
  std::map<SourceId, std::map<Timestamp, RecordBatch>> cache_;
  int64_t resident_bytes_ = 0;
};

/// The per-query handle on a SharedScanFeed: delegates reads and emits
/// that query's share of scan hits/misses through its TelemetryScope (set
/// by the coordinator after drivers are built, so events inherit window
/// attribution). One view per driver, like SharedFeedView.
class SharedScanView : public BatchFeed {
 public:
  explicit SharedScanView(SharedScanFeed* shared) : shared_(shared) {}

  void set_telemetry(obs::TelemetryScope scope) { scope_ = std::move(scope); }

  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override;

  bool HasSource(SourceId source) const override {
    return shared_->HasSource(source);
  }

 private:
  SharedScanFeed* shared_;
  obs::TelemetryScope scope_;
};

/// One physical cached pane image, published by the first query to build
/// the pane and adopted (payload shared, not copied) by every later query
/// with the same content key.
struct CacheImage {
  bool is_reduce_output = false;
  int32_t partition = 0;
  NodeId node = kInvalidNode;
  int64_t bytes = 0;
  int64_t records = 0;
  std::shared_ptr<const FlatKvBuffer> payload;
};

/// Content-addressed index of shared pane images. Keys come from
/// CacheKey::ContentKey: pipeline signature + execution pattern + source +
/// pane size + pane, so two queries collide only when their cached bytes
/// are provably identical.
class DedupIndex {
 public:
  /// Images for `key`, or nullptr. A hit means a prior query built this
  /// exact pane; the caller adopts the images and registers as a holder.
  const std::vector<CacheImage>* Find(const std::string& key) const;

  void Publish(const std::string& key, SourceId source, PaneId pane,
               Timestamp pane_size, QueryId owner,
               std::vector<CacheImage> images);
  void AddHolder(const std::string& key, QueryId holder);

  /// A holder's budget evicted part of this pane: the physical image is
  /// gone, so the entry is dropped and every *other* holder is returned
  /// for rollback fan-out. Idempotent (second call finds nothing).
  std::vector<QueryId> OnEviction(const std::string& key, QueryId evicted);

  /// Drops entries whose pane lies wholly below `time_floor`.
  void RetireBelow(Timestamp time_floor);

  size_t size() const { return entries_.size(); }
  int64_t resident_bytes() const { return resident_bytes_; }

 private:
  struct Entry {
    SourceId source = 0;
    PaneId pane = 0;
    Timestamp pane_end = 0;
    std::vector<CacheImage> images;
    std::vector<QueryId> holders;
    int64_t bytes = 0;
  };
  std::map<std::string, Entry> entries_;
  int64_t resident_bytes_ = 0;
};

/// Shared state the coordinator threads through every driver it builds.
/// Owned by the coordinator; drivers hold a pointer and consult it on the
/// coordinator thread only.
class FleetContext {
 public:
  explicit FleetContext(FleetOptions options) : options_(options) {}

  FleetContext(const FleetContext&) = delete;
  FleetContext& operator=(const FleetContext&) = delete;

  const FleetOptions& options() const { return options_; }
  FleetStats& stats() { return stats_; }
  const FleetStats& stats() const { return stats_; }
  DedupIndex& dedup() { return dedup_; }

  /// Rollback hook: called on every *other* holder of a shared pane when
  /// one holder's budget evicts it (`EvictFleetPane(source, pane)`).
  using EvictFanout = std::function<void(SourceId, PaneId)>;
  void RegisterQuery(QueryId id, EvictFanout fanout) {
    fanouts_[id] = std::move(fanout);
  }

  /// Drops the dedup entry for `content_key` and invokes the rollback
  /// hook of every holder except `origin` (whose own store already
  /// evicted). Serial with driver execution, so no re-entrancy: hooks
  /// remove store entries with CacheStore::Remove, which never calls
  /// back into eviction.
  void FanoutEviction(const std::string& content_key, SourceId source,
                      PaneId pane, QueryId origin);

 private:
  FleetOptions options_;
  FleetStats stats_;
  DedupIndex dedup_;
  std::map<QueryId, EvictFanout> fanouts_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_FLEET_H_
