#ifndef REDOOP_CORE_CACHE_STORE_H_
#define REDOOP_CORE_CACHE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// The contents of cached files. In the real system every task node keeps
/// cache payloads on its local disk; in the simulation the bytes live here
/// (keyed by cache name) while placement, capacity, and I/O costs are
/// tracked on the TaskNode / cache-controller side. Losing a cache (node
/// failure, injection) removes its payload, forcing a rebuild — exactly
/// the recovery path the paper describes.
class CacheStore {
 public:
  struct Entry {
    /// Shared with the materializing job's result and any side inputs that
    /// reference this cache — one immutable flat buffer, never deep-copied
    /// and free of per-pair string heap blocks, so storing and re-scanning
    /// cached panes is cheap (the ReStore lesson: result reuse only pays
    /// when the cached representation itself is cheap).
    /// Publish-once: a payload installed here is never mutated in place; a
    /// rebuild Put()s a fresh buffer and the old shared_ptr stays valid.
    /// The parallel engine relies on this — an offloaded reduce closure
    /// keeps merging its captured reference even if the entry is replaced
    /// (or removed) at the same virtual instant.
    std::shared_ptr<const FlatKvBuffer> payload;
    int64_t bytes = 0;
    int64_t records = 0;
  };

  CacheStore() = default;
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Stores (or replaces) a payload, sharing ownership with the caller.
  void Put(const std::string& name,
           std::shared_ptr<const FlatKvBuffer> payload,
           int64_t bytes, int64_t records);

  /// Convenience for callers materializing a fresh buffer (tests, fault
  /// injection); the string pairs are flattened once on the way in.
  void Put(const std::string& name, std::vector<KeyValue> payload,
           int64_t bytes, int64_t records) {
    Put(name,
        std::make_shared<const FlatKvBuffer>(
            FlatKvBuffer::FromKeyValues(payload)),
        bytes, records);
  }

  /// Returns nullptr when absent. The pointer stays valid until the entry
  /// is removed.
  const Entry* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  void Remove(const std::string& name);

  size_t size() const { return entries_.size(); }
  int64_t total_bytes() const { return total_bytes_; }

  /// Keeps cache.store.bytes / cache.store.entries gauges current
  /// (global and per-query labeled series via the scope).
  void set_telemetry(obs::TelemetryScope scope) {
    scope_ = std::move(scope);
    UpdateGauges();
  }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    set_telemetry(obs::TelemetryScope(obs));
  }

 private:
  void UpdateGauges();

  std::map<std::string, std::unique_ptr<Entry>> entries_;
  int64_t total_bytes_ = 0;
  obs::TelemetryScope scope_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_STORE_H_
