#ifndef REDOOP_CORE_CACHE_STORE_H_
#define REDOOP_CORE_CACHE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/cache_key.h"
#include "core/eviction_policy.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"
#include "mapreduce/kv_columnar.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// The contents of cached files, now under a configurable byte budget. In
/// the real system every task node keeps cache payloads on its local disk;
/// in the simulation the bytes live here (keyed by CacheKey) while
/// placement and I/O costs are tracked on the TaskNode / cache-controller
/// side. An entry leaves the store three ways: explicit Remove (loss,
/// purge), replacement by a fresh Put, or *eviction* when the budget is
/// exceeded — the configured EvictionPolicy picks victims among unpinned
/// entries and the on_evict callback lets the driver roll back controller
/// state so the pane flips to recompute.
///
/// Budgeting is on logical (simulated) bytes, so policy behaviour is
/// independent of the at-rest representation (row vs. columnar).
///
/// Pinning: Acquire() returns a Lease that exempts an entry from eviction
/// while any lease on it is live. The driver pins everything the current
/// recurrence reads or registers, so the store may transiently exceed the
/// budget while pinned bytes demand it; EnforceBudget() trims back once
/// leases are released. The capacity invariant is therefore: after any
/// Put/EnforceBudget, total_bytes() <= budget unless pinned entries (or a
/// single oversized incoming entry) force the excess.
///
/// All mutations and reads take the store mutex; the configured policy is
/// only ever driven under it. Victim order depends only on the operation
/// sequence, which the driver issues in deterministic simulated-time order,
/// so evictions are byte-identical at any --threads setting.
class CacheStore {
 public:
  class Entry {
   public:
    /// The pane's pairs as one immutable flat buffer, shared (never
    /// deep-copied) with every side input that references this cache —
    /// the ReStore lesson: result reuse only pays when the cached
    /// representation itself is cheap.
    ///
    /// Row mode: the buffer the materializing job handed to Put(), shared
    /// with its result. Columnar mode: the entry holds only the compressed
    /// columns at rest; the first payload() call decodes them into a fresh
    /// buffer, memoized for later hits (call_once, so concurrent readers
    /// are safe and decode exactly once).
    ///
    /// Publish-once either way: a payload handed out is never mutated in
    /// place; a rebuild Put()s a fresh entry and old shared_ptrs stay
    /// valid. The parallel engine relies on this — an offloaded reduce
    /// closure keeps merging its captured reference even if the entry is
    /// replaced, removed, or evicted at the same virtual instant. Pinning
    /// exists for *planning* correctness (an entry the recurrence still
    /// reads must stay resident), not for memory safety.
    std::shared_ptr<const FlatKvBuffer> payload() const;

    /// Logical (simulated) size — what capacity math, the byte budget, and
    /// hit accounting have always charged.
    int64_t bytes = 0;
    /// Host bytes of the at-rest form: the columnar image in columnar
    /// mode, `bytes` in row mode (no compressed form exists, so real
    /// traffic is accounted at logical size). hit_compressed vs.
    /// hit_logical in the journal come from here.
    int64_t compressed_bytes = 0;
    int64_t records = 0;

   private:
    friend class CacheStore;
    std::shared_ptr<const FlatKvBuffer> flat_;        // Row mode.
    std::shared_ptr<const ColumnarKvPane> columnar_;  // Columnar mode.
    mutable std::once_flag decode_once_;
    mutable std::shared_ptr<const FlatKvBuffer> decoded_;
    int64_t pins_ = 0;  // Live leases; > 0 exempts from eviction.
  };

  /// Size accounting a materializing job reports alongside its payload.
  struct PaneStats {
    int64_t bytes = 0;
    int64_t records = 0;
  };

  /// The payload argument of Put — a thin wrapper so call sites read as
  /// Put(key, payload, stats) and the two historical Put overloads stay
  /// collapsed into one.
  class PanePayload {
   public:
    /// Shares ownership with the materializing job's result (row mode
    /// keeps this exact buffer at rest).
    PanePayload(std::shared_ptr<const FlatKvBuffer> rows)  // NOLINT
        : rows_(std::move(rows)) {}
    /// Convenience for callers materializing fresh pairs (tests, fault
    /// injection); flattened once on the way in.
    static PanePayload FromKeyValues(std::vector<KeyValue> pairs) {
      return PanePayload(std::make_shared<const FlatKvBuffer>(
          FlatKvBuffer::FromKeyValues(pairs)));
    }
    const std::shared_ptr<const FlatKvBuffer>& rows() const { return rows_; }

   private:
    std::shared_ptr<const FlatKvBuffer> rows_;
  };

  /// What a budget eviction removed; handed to Options::on_evict (outside
  /// the store mutex) so the driver can roll back planner state.
  struct EvictionNotice {
    CacheKey key;
    int64_t bytes = 0;
    int64_t compressed_bytes = 0;
    int64_t records = 0;
  };
  using EvictionCallback = std::function<void(const EvictionNotice&)>;

  /// Construction-time configuration, mirroring the RedoopDriverOptions
  /// idiom: everything that used to be a mutable setter is fixed here.
  struct Options {
    /// Logical-byte budget; 0 = unbounded (never evicts).
    int64_t budget_bytes = 0;
    EvictionPolicyKind policy = EvictionPolicyKind::kLru;
    /// At-rest representation for stored payloads.
    bool columnar_payloads = false;
    /// Keeps cache.store.* gauges current and emits cache.pane.evict
    /// events (global and per-query labeled series via the scope).
    obs::TelemetryScope telemetry;
    /// Invoked once per evicted entry, after the entry is gone and the
    /// mutex is released. Must not call back into this store.
    EvictionCallback on_evict;
  };

  /// RAII pin: while live, the named entry is exempt from budget eviction.
  /// Releasing does not itself evict — the owner calls EnforceBudget()
  /// when a batch of leases retires (end of recurrence).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : store_(other.store_), name_(std::move(other.name_)) {
      other.store_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        store_ = other.store_;
        name_ = std::move(other.name_);
        other.store_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    bool active() const { return store_ != nullptr; }
    void Release();

   private:
    friend class CacheStore;
    Lease(CacheStore* store, std::string name)
        : store_(store), name_(std::move(name)) {}
    CacheStore* store_ = nullptr;
    std::string name_;
  };

  CacheStore() : CacheStore(Options()) {}
  explicit CacheStore(Options options);
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Stores (or replaces) a payload, then — when a budget is set — evicts
  /// unpinned entries per the policy until the budget holds again. The
  /// entry being inserted is never its own victim; pin it to protect it
  /// past the next Put.
  void Put(const CacheKey& key, PanePayload payload, PaneStats stats);

  /// Returns nullptr when absent. The pointer stays valid until the entry
  /// is removed, replaced, or evicted; pin the entry to extend that. A hit
  /// counts as a policy access (LRU recency etc.).
  const Entry* Find(const CacheKey& key) const;
  bool Has(const CacheKey& key) const { return Find(key) != nullptr; }

  /// Explicit removal (cache loss, purge). Ignores pins — the planner
  /// layers that call this already know the entry is gone.
  void Remove(const CacheKey& key);

  /// Pins the entry; returns an inactive lease when the key is absent.
  Lease Acquire(const CacheKey& key);

  /// Evicts per policy until the budget holds or only pinned entries
  /// remain. Call after releasing a batch of leases.
  void EnforceBudget();

  size_t size() const;
  int64_t total_bytes() const;
  int64_t total_compressed_bytes() const;
  /// Bytes of entries currently holding at least one lease.
  int64_t pinned_bytes() const;
  /// High-water mark of total_bytes() over the store's lifetime — the
  /// working-set measure the bench sweep derives budgets from.
  int64_t peak_bytes() const;
  int64_t evicted_entries() const;
  int64_t evicted_bytes() const;

  int64_t budget_bytes() const { return options_.budget_bytes; }
  EvictionPolicyKind policy() const { return options_.policy; }
  bool columnar() const { return options_.columnar_payloads; }

 private:
  struct GaugeSnapshot {
    int64_t bytes = 0;
    int64_t compressed_bytes = 0;
    int64_t pinned_bytes = 0;
    size_t entries = 0;
  };

  /// Evicts until the budget holds; lock held. `exclude` (may be empty)
  /// is never picked. Removed entries are appended to `notices`.
  void EvictLocked(const std::string& exclude,
                   std::vector<EvictionNotice>* notices);
  /// Drops one entry from the maps and totals; lock held.
  void EraseLocked(std::map<std::string, std::unique_ptr<Entry>>::iterator it);
  void ReleasePin(const std::string& name);
  GaugeSnapshot SnapshotLocked() const;
  void PublishEvictions(const std::vector<EvictionNotice>& notices,
                        const GaugeSnapshot& after);
  void UpdateGauges(const GaugeSnapshot& snapshot);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::unique_ptr<EvictionPolicy> policy_;
  int64_t total_bytes_ = 0;
  int64_t total_compressed_bytes_ = 0;
  int64_t pinned_bytes_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t evicted_entries_ = 0;
  int64_t evicted_bytes_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_STORE_H_
