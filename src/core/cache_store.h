#ifndef REDOOP_CORE_CACHE_STORE_H_
#define REDOOP_CORE_CACHE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"
#include "mapreduce/kv_columnar.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// The contents of cached files. In the real system every task node keeps
/// cache payloads on its local disk; in the simulation the bytes live here
/// (keyed by cache name) while placement, capacity, and I/O costs are
/// tracked on the TaskNode / cache-controller side. Losing a cache (node
/// failure, injection) removes its payload, forcing a rebuild — exactly
/// the recovery path the paper describes.
class CacheStore {
 public:
  class Entry {
   public:
    /// The pane's pairs as one immutable flat buffer, shared (never
    /// deep-copied) with every side input that references this cache —
    /// the ReStore lesson: result reuse only pays when the cached
    /// representation itself is cheap.
    ///
    /// Row mode: the buffer the materializing job handed to Put(), shared
    /// with its result. Columnar mode: the entry holds only the compressed
    /// columns at rest; the first payload() call decodes them into a fresh
    /// buffer, memoized for later hits (call_once, so concurrent readers
    /// are safe and decode exactly once).
    ///
    /// Publish-once either way: a payload handed out is never mutated in
    /// place; a rebuild Put()s a fresh entry and old shared_ptrs stay
    /// valid. The parallel engine relies on this — an offloaded reduce
    /// closure keeps merging its captured reference even if the entry is
    /// replaced (or removed) at the same virtual instant.
    std::shared_ptr<const FlatKvBuffer> payload() const;

    /// Logical (simulated) size — what capacity math and hit accounting
    /// have always charged.
    int64_t bytes = 0;
    /// Host bytes of the at-rest form: the columnar image in columnar
    /// mode, `bytes` in row mode (no compressed form exists, so real
    /// traffic is accounted at logical size). hit_compressed vs.
    /// hit_logical in the journal come from here.
    int64_t compressed_bytes = 0;
    int64_t records = 0;

   private:
    friend class CacheStore;
    std::shared_ptr<const FlatKvBuffer> flat_;        // Row mode.
    std::shared_ptr<const ColumnarKvPane> columnar_;  // Columnar mode.
    mutable std::once_flag decode_once_;
    mutable std::shared_ptr<const FlatKvBuffer> decoded_;
  };

  CacheStore() = default;
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Stores (or replaces) a payload. In row mode ownership is shared with
  /// the caller; in columnar mode the pairs are transposed/compressed and
  /// the caller's flat buffer is not retained.
  void Put(const std::string& name,
           std::shared_ptr<const FlatKvBuffer> payload,
           int64_t bytes, int64_t records);

  /// Convenience for callers materializing a fresh buffer (tests, fault
  /// injection); the string pairs are flattened once on the way in.
  void Put(const std::string& name, std::vector<KeyValue> payload,
           int64_t bytes, int64_t records) {
    Put(name,
        std::make_shared<const FlatKvBuffer>(
            FlatKvBuffer::FromKeyValues(payload)),
        bytes, records);
  }

  /// Returns nullptr when absent. The pointer stays valid until the entry
  /// is removed.
  const Entry* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  void Remove(const std::string& name);

  size_t size() const { return entries_.size(); }
  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_compressed_bytes() const { return total_compressed_bytes_; }

  /// Switches the at-rest representation for future Puts (existing entries
  /// keep their form). Set before the first Put; driven by
  /// CacheOptions::columnar_payloads.
  void set_columnar(bool columnar) { columnar_ = columnar; }
  bool columnar() const { return columnar_; }

  /// Keeps cache.store.bytes / cache.store.entries gauges current
  /// (global and per-query labeled series via the scope).
  void set_telemetry(obs::TelemetryScope scope) {
    scope_ = std::move(scope);
    UpdateGauges();
  }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    set_telemetry(obs::TelemetryScope(obs));
  }

 private:
  void UpdateGauges();

  std::map<std::string, std::unique_ptr<Entry>> entries_;
  int64_t total_bytes_ = 0;
  int64_t total_compressed_bytes_ = 0;
  bool columnar_ = false;
  obs::TelemetryScope scope_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_STORE_H_
