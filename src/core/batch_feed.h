#ifndef REDOOP_CORE_BATCH_FEED_H_
#define REDOOP_CORE_BATCH_FEED_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "dfs/record.h"
#include "mapreduce/mapper.h"

namespace redoop {

/// Supplier of the evolving input data: ordered, non-overlapping batches
/// per source (paper §2.1's model of periodically collected HDFS files).
/// Drivers pull the batches covering each inter-trigger interval; workload
/// generators implement this deterministically from a seed.
class BatchFeed {
 public:
  virtual ~BatchFeed() = default;

  /// Batches of `source` covering exactly [begin, end): contiguous,
  /// in order, first.start == begin, last.end == end. Both drivers must see
  /// identical data for a given source/interval (determinism contract).
  virtual std::vector<RecordBatch> BatchesFor(SourceId source,
                                              Timestamp begin,
                                              Timestamp end) = 0;

  /// Whether this feed can serve `source` at all. Drivers validate their
  /// query's sources against the feed at construction time and surface a
  /// typed error instead of aborting mid-run. The default is optimistic so
  /// feeds that cannot enumerate their sources up front keep working.
  virtual bool HasSource(SourceId source) const {
    (void)source;
    return true;
  }
};

/// A mapper decorator that drops records outside [begin, end) before
/// delegating — how a plain-Hadoop recurring job scopes a window when its
/// input files do not align with window boundaries.
class WindowFilterMapper : public Mapper {
 public:
  WindowFilterMapper(std::shared_ptr<const Mapper> inner, Timestamp begin,
                     Timestamp end)
      : inner_(std::move(inner)), begin_(begin), end_(end) {}

  void Map(const Record& record, MapContext* context) const override {
    if (record.timestamp < begin_ || record.timestamp >= end_) return;
    inner_->Map(record, context);
  }

 private:
  std::shared_ptr<const Mapper> inner_;
  Timestamp begin_;
  Timestamp end_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_BATCH_FEED_H_
