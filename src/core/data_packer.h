#ifndef REDOOP_CORE_DATA_PACKER_H_
#define REDOOP_CORE_DATA_PACKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/semantic_analyzer.h"
#include "dfs/dfs.h"
#include "dfs/record.h"

namespace redoop {

/// One pane (or sub-pane, or multi-pane) file the packer materialized in
/// DFS. `file_name` is empty for a pane that completed with zero records
/// (time passed but no data) — no physical file is created for it.
struct PaneFileInfo {
  std::string file_name;
  SourceId source = 0;
  /// Inclusive pane range carried by the file (first == last except for
  /// multi-pane files).
  PaneId first_pane = 0;
  PaneId last_pane = 0;
  bool is_subpane = false;
  int32_t subpane_index = 0;
  int32_t subpane_count = 1;
  int64_t bytes = 0;
  /// Host bytes of the file's columnar-compressed image (0 for empty
  /// panes): the real storage footprint behind `bytes`' logical size.
  int64_t compressed_bytes = 0;
  int64_t records = 0;
  Timestamp time_begin = 0;
  Timestamp time_end = 0;
};

/// The Dynamic Data Packer (paper §3.2): consumes ordered batches from one
/// data source as they land and packs their records into pane files in DFS
/// following the Semantic Analyzer's partition plan — one file per pane in
/// the oversize case, several panes per file (with a pane header) in the
/// undersized case, and early sub-pane slices when the adaptive planner has
/// split panes. Pane creation piggybacks on loading: records are routed to
/// pane buffers while the batch is being ingested.
class DynamicDataPacker {
 public:
  /// `dfs` must outlive the packer. `plan.pane_size` fixes this source's
  /// pane grid for the packer's lifetime. `file_namespace` (optional)
  /// prefixes every created DFS file name, so several packers can consume
  /// the same source without name collisions (multi-query operation).
  DynamicDataPacker(Dfs* dfs, SourceId source, PartitionPlan plan,
                    std::string file_namespace = "");

  DynamicDataPacker(const DynamicDataPacker&) = delete;
  DynamicDataPacker& operator=(const DynamicDataPacker&) = delete;

  /// Ingests one batch. Batches must arrive in order with non-overlapping,
  /// contiguous-from-zero time ranges (paper §2.1). Returns every pane /
  /// sub-pane / multi-pane file that became complete and was written.
  StatusOr<std::vector<PaneFileInfo>> Ingest(const RecordBatch& batch);

  /// Declares that no data with timestamp < t is outstanding and emits
  /// everything emittable up to t (window-trigger flush). Also flushes a
  /// partially filled multi-pane buffer whose panes all ended before t.
  std::vector<PaneFileInfo> FlushUpTo(Timestamp t);

  /// Adopts a new plan (adaptive re-partitioning). The pane grid is
  /// immutable: only panes_per_file and subpanes_per_pane may change, and
  /// they affect panes whose emission has not started yet.
  void UpdatePlan(const PartitionPlan& plan);

  const PartitionPlan& plan() const { return plan_; }
  SourceId source() const { return source_; }
  /// All data with timestamp < watermark has been ingested.
  Timestamp watermark() const { return watermark_; }
  /// Panes [0, next) have been fully emitted.
  PaneId next_unemitted_pane() const { return next_pane_; }
  int64_t files_created() const { return files_created_; }

 private:
  struct PendingPane {
    std::vector<Record> records;
    /// Sub-pane slices already emitted (0 = none; pane still whole).
    int32_t subpanes_emitted = 0;
    /// Sub-pane factor latched when the pane's first slice is emitted.
    int32_t subpane_count = 0;
  };

  Timestamp PaneBegin(PaneId p) const { return p * plan_.pane_size; }
  Timestamp PaneEnd(PaneId p) const { return (p + 1) * plan_.pane_size; }

  /// Emits everything allowed by `up_to` into `out`.
  void EmitReady(Timestamp up_to, std::vector<PaneFileInfo>* out);
  /// Writes buffered complete panes as a multi-pane (or single) file.
  void FlushMultiPaneBuffer(std::vector<PaneFileInfo>* out);
  void EmitSubpanes(PaneId pane, Timestamp up_to,
                    std::vector<PaneFileInfo>* out);
  void WritePaneFile(PaneId pane, std::vector<Record> records,
                     std::vector<PaneFileInfo>* out);

  Dfs* dfs_;
  SourceId source_;
  PartitionPlan plan_;
  std::string file_namespace_;
  Timestamp watermark_ = 0;
  PaneId next_pane_ = 0;
  std::map<PaneId, PendingPane> pending_;
  /// Complete panes waiting to be grouped into one multi-pane file
  /// (undersized case).
  std::vector<std::pair<PaneId, std::vector<Record>>> multi_pane_buffer_;
  int64_t files_created_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_CORE_DATA_PACKER_H_
