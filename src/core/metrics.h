#ifndef REDOOP_CORE_METRICS_H_
#define REDOOP_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "mapreduce/counters.h"
#include "mapreduce/kv.h"
#include "mapreduce/task.h"
#include "obs/metric_registry.h"

namespace redoop {

/// What changed between two consecutive windows' results — the delivery
/// format of update-style recurring queries (the paper's Example 2: news
/// feed *updates* are the deltas of a periodically recomputed analysis).
struct WindowDelta {
  /// Rows present now but not in the previous window's result.
  std::vector<KeyValue> added;
  /// Rows the previous window had that are now gone.
  std::vector<KeyValue> removed;

  bool Empty() const { return added.empty() && removed.empty(); }
};

/// Multiset difference of two sorted result sets (both sorted by
/// (key, value), as drivers emit them).
WindowDelta ComputeWindowDelta(const std::vector<KeyValue>& previous,
                               const std::vector<KeyValue>& current);

/// Per-recurrence measurements — the rows the paper's figures plot.
struct WindowReport {
  int64_t recurrence = 0;
  /// Data time at which the window fired.
  Timestamp trigger_time = 0;
  /// Simulated wall-clock when processing of this window finished.
  SimTime finished_at = 0.0;
  /// The paper's headline metric: time from trigger to final result,
  /// including any queueing behind a late previous window.
  SimDuration response_time = 0.0;
  /// Phase sums for the Fig. 6/7 (b,d,f) breakdowns.
  SimDuration shuffle_time = 0.0;
  SimDuration reduce_time = 0.0;
  SimDuration map_phase_time = 0.0;
  /// Logical input bytes the window covered (old + new data).
  int64_t window_input_bytes = 0;
  /// Bytes this system actually processed anew for the window.
  int64_t fresh_input_bytes = 0;
  int64_t output_records = 0;
  Counters counters;
  /// The window's final result (sorted by key,value for comparability).
  std::vector<KeyValue> output;
  /// Changes versus the previous recurrence's result; populated when the
  /// query sets `emit_deltas` (the whole first window counts as added).
  WindowDelta delta;
  /// Per-task execution reports for every job this window ran (exportable
  /// as a Chrome trace via mapreduce/trace.h).
  std::vector<TaskReport> task_reports;
};

/// A whole experiment run: one system processing N recurrences.
struct RunReport {
  std::string system;  // "hadoop", "redoop", "redoop-adaptive", ...
  std::vector<WindowReport> windows;
  /// End-of-run metrics snapshot (cache hit rates, scheduler decisions,
  /// task/DFS totals) from the driver's observability context. Benchmarks
  /// and tests assert on it; e.g.
  /// `observability.HitRate(observability.Counter(obs::metric::kCachePaneHits),
  ///                        observability.Counter(obs::metric::kCachePaneMisses))`.
  obs::MetricsSnapshot observability;

  SimDuration TotalResponseTime() const {
    SimDuration total = 0.0;
    for (const WindowReport& w : windows) total += w.response_time;
    return total;
  }
  SimDuration TotalShuffleTime() const {
    SimDuration total = 0.0;
    for (const WindowReport& w : windows) total += w.shuffle_time;
    return total;
  }
  SimDuration TotalReduceTime() const {
    SimDuration total = 0.0;
    for (const WindowReport& w : windows) total += w.reduce_time;
    return total;
  }
};

}  // namespace redoop

#endif  // REDOOP_CORE_METRICS_H_
