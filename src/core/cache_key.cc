#include "core/cache_key.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/pane_naming.h"

namespace redoop {

CacheKey CacheKey::ReduceInput(QueryId query, SourceId source, PaneId pane,
                               int32_t partition) {
  REDOOP_CHECK(query >= 0 && source >= 0 && pane >= 0 && partition >= 0);
  CacheKey key;
  key.kind_ = Kind::kReduceInput;
  key.query_ = query;
  key.source_ = source;
  key.pane_ = pane;
  key.partition_ = partition;
  key.name_ = ReduceInputCacheName(query, source, pane, partition);
  return key;
}

CacheKey CacheKey::ReduceOutput(QueryId query, SourceId source, PaneId pane,
                                int32_t partition) {
  REDOOP_CHECK(query >= 0 && source >= 0 && pane >= 0 && partition >= 0);
  CacheKey key;
  key.kind_ = Kind::kReduceOutput;
  key.query_ = query;
  key.source_ = source;
  key.pane_ = pane;
  key.partition_ = partition;
  key.name_ = ReduceOutputCacheName(query, source, pane, partition);
  return key;
}

CacheKey CacheKey::JoinOutput(QueryId query, PaneId left, PaneId right,
                              int32_t partition) {
  REDOOP_CHECK(query >= 0 && left >= 0 && right >= 0 && partition >= 0);
  CacheKey key;
  key.kind_ = Kind::kJoinOutput;
  key.query_ = query;
  key.pane_ = left;
  key.pane_right_ = right;
  key.partition_ = partition;
  key.name_ = JoinOutputCacheName(query, left, right, partition);
  return key;
}

std::optional<CacheKey> CacheKey::Parse(const std::string& name) {
  CacheKey key;
  int query = 0;
  int source = 0;
  int partition = 0;
  long pane = 0;
  long right = 0;
  int consumed = 0;
  // %n captures how much of the string the base form matched; suffixes and
  // the full-consumption check come after.
  if (std::sscanf(name.c_str(), "RIC_Q%d_S%dP%ld_R%d%n", &query, &source,
                  &pane, &partition, &consumed) == 4) {
    key.kind_ = Kind::kReduceInput;
    key.source_ = source;
    key.pane_ = pane;
  } else if (std::sscanf(name.c_str(), "ROC_Q%d_S%dP%ld_R%d%n", &query,
                         &source, &pane, &partition, &consumed) == 4) {
    key.kind_ = Kind::kReduceOutput;
    key.source_ = source;
    key.pane_ = pane;
  } else if (std::sscanf(name.c_str(), "JOC_Q%d_P%ldx%ld_R%d%n", &query,
                         &pane, &right, &partition, &consumed) == 4) {
    key.kind_ = Kind::kJoinOutput;
    key.pane_ = pane;
    key.pane_right_ = right;
  } else {
    return std::nullopt;
  }
  if (query < 0 || source < 0 || pane < 0 || right < 0 || partition < 0) {
    return std::nullopt;
  }
  key.query_ = query;
  key.partition_ = partition;
  const char* rest = name.c_str() + consumed;
  if (key.kind_ != Kind::kJoinOutput) {
    int chunk = 0;
    int n = 0;
    if (std::sscanf(rest, "_c%d%n", &chunk, &n) == 1) {
      if (chunk < 0) return std::nullopt;
      key.chunk_ = chunk;
      rest += n;
    }
    if (std::strncmp(rest, "_rb", 3) == 0) {
      key.rebuilt_ = true;
      rest += 3;
    }
  }
  if (*rest != '\0') return std::nullopt;
  key.name_ = name;
  return key;
}

CacheKey CacheKey::FromName(const std::string& name) {
  std::optional<CacheKey> key = Parse(name);
  REDOOP_CHECK(key.has_value()) << "malformed cache name: " << name;
  return *std::move(key);
}

CacheKey CacheKey::WithChunk(int32_t chunk) const {
  REDOOP_CHECK(valid() && kind_ != Kind::kJoinOutput);
  REDOOP_CHECK(chunk >= 0 && chunk_ < 0 && !rebuilt_);
  CacheKey key = *this;
  key.chunk_ = chunk;
  key.name_ += StringPrintf("_c%d", chunk);
  return key;
}

CacheKey CacheKey::Rebuilt() const {
  REDOOP_CHECK(valid() && kind_ != Kind::kJoinOutput);
  REDOOP_CHECK(!rebuilt_);
  CacheKey key = *this;
  key.rebuilt_ = true;
  key.name_ += "_rb";
  return key;
}

std::string CacheKey::ContentKey(const std::string& pipeline_signature,
                                 int32_t execution_mode, SourceId source,
                                 int64_t pane_size, PaneId pane) {
  REDOOP_CHECK(!pipeline_signature.empty() && source >= 0 && pane_size > 0 &&
               pane >= 0);
  return StringPrintf("CNT|%s|m%d|S%d|g%lld|P%lld", pipeline_signature.c_str(),
                      execution_mode, source,
                      static_cast<long long>(pane_size),
                      static_cast<long long>(pane));
}

}  // namespace redoop
