#include "core/window.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_utils.h"

namespace redoop {

double WindowSpec::Overlap() const {
  REDOOP_CHECK(win > 0);
  return static_cast<double>(win - slide) / static_cast<double>(win);
}

WindowGeometry::WindowGeometry(WindowSpec spec, Timestamp pane_size)
    : spec_(spec), pane_size_(pane_size) {
  REDOOP_CHECK(spec_.Valid()) << "invalid window spec: win=" << spec.win
                              << " slide=" << spec.slide;
  REDOOP_CHECK(pane_size_ > 0);
  REDOOP_CHECK(spec_.win % pane_size_ == 0)
      << "pane size " << pane_size_ << " must divide win " << spec_.win;
  REDOOP_CHECK(spec_.slide % pane_size_ == 0)
      << "pane size " << pane_size_ << " must divide slide " << spec_.slide;
}

Timestamp WindowGeometry::TriggerTime(int64_t recurrence) const {
  REDOOP_CHECK(recurrence >= 0);
  return spec_.win + recurrence * spec_.slide;
}

Timestamp WindowGeometry::WindowBegin(int64_t recurrence) const {
  REDOOP_CHECK(recurrence >= 0);
  return recurrence * spec_.slide;
}

Timestamp WindowGeometry::WindowEnd(int64_t recurrence) const {
  return WindowBegin(recurrence) + spec_.win;
}

PaneId WindowGeometry::PaneForTime(Timestamp t) const {
  REDOOP_CHECK(t >= 0);
  return t / pane_size_;
}

Timestamp WindowGeometry::PaneBegin(PaneId p) const { return p * pane_size_; }
Timestamp WindowGeometry::PaneEnd(PaneId p) const {
  return (p + 1) * pane_size_;
}

PaneRange WindowGeometry::PanesForRecurrence(int64_t recurrence) const {
  return PaneRange{WindowBegin(recurrence) / pane_size_,
                   WindowEnd(recurrence) / pane_size_};
}

PaneRange WindowGeometry::NewPanesForRecurrence(int64_t recurrence) const {
  const PaneRange current = PanesForRecurrence(recurrence);
  if (recurrence == 0) return current;
  const PaneRange previous = PanesForRecurrence(recurrence - 1);
  return PaneRange{std::max(current.first, previous.last), current.last};
}

PaneRange WindowGeometry::DroppedPanesAtRecurrence(int64_t recurrence) const {
  if (recurrence == 0) return PaneRange{0, 0};
  const PaneRange current = PanesForRecurrence(recurrence);
  const PaneRange previous = PanesForRecurrence(recurrence - 1);
  return PaneRange{previous.first, std::min(previous.last, current.first)};
}

int64_t WindowGeometry::FirstRecurrenceUsingPane(PaneId p) const {
  // Smallest i with i*s <= p < i*s + w  (in pane units).
  const int64_t s = panes_per_slide();
  const int64_t w = panes_per_window();
  // i >= (p - w + 1) / s, rounded up; and i >= 0.
  const int64_t numerator = p - w + 1;
  int64_t i = numerator <= 0 ? 0 : CeilDiv(numerator, s);
  REDOOP_CHECK(i * s <= p) << "pane " << p << " precedes every window";
  return i;
}

int64_t WindowGeometry::LastRecurrenceUsingPane(PaneId p) const {
  // Largest i with i*s <= p, i.e. floor(p / s).
  const int64_t s = panes_per_slide();
  return p / s;
}

bool WindowGeometry::PaneExpiredAfter(PaneId p,
                                      int64_t completed_recurrence) const {
  return LastRecurrenceUsingPane(p) <= completed_recurrence;
}

PaneRange JoinLifespan(const WindowGeometry& geometry, PaneId p) {
  // Union of the windows containing p, expressed in partner-pane ids: both
  // sources share the geometry, so partner panes co-occurring with p are
  // exactly the panes of those same windows.
  const int64_t first_rec = geometry.FirstRecurrenceUsingPane(p);
  const int64_t last_rec = geometry.LastRecurrenceUsingPane(p);
  const PaneRange first_window = geometry.PanesForRecurrence(first_rec);
  const PaneRange last_window = geometry.PanesForRecurrence(last_rec);
  return PaneRange{first_window.first, last_window.last};
}

}  // namespace redoop
