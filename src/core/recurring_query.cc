#include "core/recurring_query.h"

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {

Timestamp RecurringQuery::slide() const { return window().slide; }

double RecurringQuery::EffectiveDeadline() const {
  if (deadline_s < 0.0) return static_cast<double>(slide());
  return deadline_s;
}

std::shared_ptr<const Mapper> RecurringQuery::MapperFor(
    SourceId source) const {
  auto it = source_mappers.find(source);
  return it == source_mappers.end() ? config.mapper : it->second;
}

const WindowSpec& RecurringQuery::window() const {
  REDOOP_CHECK(!sources.empty());
  return sources.front().window;
}

std::string RecurringQuery::OutputPathForRecurrence(int64_t recurrence) const {
  if (get_output_path) return get_output_path(recurrence);
  return StringPrintf("out/%s/rec-%ld", name.c_str(), recurrence);
}

void RecurringQuery::CheckValid() const {
  REDOOP_CHECK(!sources.empty()) << "query " << name << " has no sources";
  REDOOP_CHECK(config.reducer != nullptr) << "query " << name << ": no reducer";
  REDOOP_CHECK(config.mapper != nullptr) << "query " << name << ": no mapper";
  REDOOP_CHECK(config.num_reducers > 0);
  const WindowSpec& w = sources.front().window;
  REDOOP_CHECK(w.Valid()) << "query " << name << ": invalid window";
  for (const QuerySource& s : sources) {
    REDOOP_CHECK(s.window.win == w.win && s.window.slide == w.slide)
        << "query " << name << ": all sources must share one window spec";
  }
  if (pattern == IncrementalPattern::kPanePairJoin) {
    REDOOP_CHECK(sources.size() == 2)
        << "kPanePairJoin requires exactly two sources";
  }
}

}  // namespace redoop
