#ifndef REDOOP_CORE_CACHE_STATUS_MATRIX_H_
#define REDOOP_CORE_CACHE_STATUS_MATRIX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/cache_key.h"
#include "core/window.h"

namespace redoop {

/// The paper's cache status matrix (§4.2, Table 3 / Fig. 4) for a binary
/// join query: a 2-D boolean array, one dimension per source, where entry
/// (p, q) records whether the pane-pair reduce task joining left pane p
/// with right pane q has completed. Both dimensions share one window
/// geometry (as in the paper's experiments).
///
/// The matrix grows at the high end as new panes appear and is periodically
/// shifted (purged) at the low end: a leading pane can be removed once it
/// has left the current window AND every pair within its lifespan is done.
/// Panes shifted out are remembered only via the base offset — queries
/// about them answer "done".
class CacheStatusMatrix {
 public:
  explicit CacheStatusMatrix(const WindowGeometry& geometry);

  /// Marks the pane-pair task (left, right) complete. Grows the matrix as
  /// needed. Marking an already-purged pair is a no-op.
  void MarkDone(PaneId left, PaneId right);

  /// Flips the pane-pair task (left, right) back to not-done — the cache
  /// holding its join output was evicted under budget pressure, so the
  /// pair must recompute before its next use. No-op for purged pairs (no
  /// future window reads them) and for cells outside the current extent.
  void MarkUndone(PaneId left, PaneId right);

  /// True when (left, right) completed (pairs before the purged frontier
  /// count as done).
  bool IsDone(PaneId left, PaneId right) const;

  /// CacheKey conveniences for the join-output cells a key names (valid
  /// only for Kind::kJoinOutput keys).
  void MarkDone(const CacheKey& key) { MarkDone(key.pane(), key.pane_right()); }
  void MarkUndone(const CacheKey& key) {
    MarkUndone(key.pane(), key.pane_right());
  }
  bool IsDone(const CacheKey& key) const {
    return IsDone(key.pane(), key.pane_right());
  }

  /// True when every pair within pane `p`'s lifespan (paper §4.2) is done,
  /// i.e. p has exhausted its join partners. `left_dim` selects whether p
  /// is a left- or right-source pane.
  bool LifespanComplete(bool left_dim, PaneId p) const;

  /// True when pane p can be safely purged after recurrence
  /// `completed_recurrence`: it is outside every future window and its
  /// lifespan is complete.
  bool PaneExpired(bool left_dim, PaneId p, int64_t completed_recurrence) const;

  /// The periodic shift (Fig. 4(c)): removes leading panes of both
  /// dimensions that are expired w.r.t. `completed_recurrence`, scanning in
  /// ascending pane order and stopping at the first non-expired pane.
  /// Returns the purged pane ids (left dimension, right dimension).
  std::pair<std::vector<PaneId>, std::vector<PaneId>> Shift(
      int64_t completed_recurrence);

  PaneId left_base() const { return base_[0]; }
  PaneId right_base() const { return base_[1]; }
  int64_t left_extent() const { return extent_[0]; }
  int64_t right_extent() const { return extent_[1]; }
  const WindowGeometry& geometry() const { return geometry_; }

  /// Number of stored (non-purged) cells — the live metadata footprint.
  int64_t CellCount() const { return extent_[0] * extent_[1]; }

 private:
  bool Get(int64_t li, int64_t ri) const;
  void GrowTo(PaneId left, PaneId right);

  WindowGeometry geometry_;
  PaneId base_[2] = {0, 0};     // Pane id of row/column index 0.
  int64_t extent_[2] = {0, 0};  // Rows (left) x columns (right).
  /// Row-major bits: done_[li * extent_[1] + ri].
  std::vector<bool> done_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_STATUS_MATRIX_H_
