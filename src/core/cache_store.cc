#include "core/cache_store.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/event_journal.h"

namespace redoop {

std::shared_ptr<const FlatKvBuffer> CacheStore::Entry::payload() const {
  if (flat_ != nullptr) return flat_;
  std::call_once(decode_once_, [this] {
    decoded_ =
        std::make_shared<const FlatKvBuffer>(columnar_->Decode());
  });
  return decoded_;
}

void CacheStore::Lease::Release() {
  if (store_ == nullptr) return;
  store_->ReleasePin(name_);
  store_ = nullptr;
}

CacheStore::CacheStore(Options options)
    : options_(std::move(options)),
      policy_(MakeEvictionPolicy(options_.policy, options_.budget_bytes)) {
  UpdateGauges(GaugeSnapshot{});
}

void CacheStore::Put(const CacheKey& key, PanePayload payload,
                     PaneStats stats) {
  REDOOP_CHECK(key.valid());
  REDOOP_CHECK(stats.bytes >= 0 && stats.records >= 0);
  REDOOP_CHECK(payload.rows() != nullptr);
  std::vector<EvictionNotice> notices;
  GaugeSnapshot after;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key.name());
    if (it != entries_.end()) {
      policy_->OnRemove(it->first);
      EraseLocked(it);
    }
    auto entry = std::make_unique<Entry>();
    if (options_.columnar_payloads) {
      entry->columnar_ = std::make_shared<const ColumnarKvPane>(
          ColumnarKvPane::Encode(*payload.rows()));
      entry->compressed_bytes = entry->columnar_->compressed_bytes();
    } else {
      entry->flat_ = payload.rows();
      entry->compressed_bytes = stats.bytes;
    }
    entry->bytes = stats.bytes;
    entry->records = stats.records;
    total_bytes_ += stats.bytes;
    total_compressed_bytes_ += entry->compressed_bytes;
    entries_[key.name()] = std::move(entry);
    policy_->OnInsert(key.name(), stats.bytes);
    peak_bytes_ = std::max(peak_bytes_, total_bytes_);
    EvictLocked(/*exclude=*/key.name(), &notices);
    after = SnapshotLocked();
  }
  PublishEvictions(notices, after);
}

const CacheStore::Entry* CacheStore::Find(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key.name());
  if (it == entries_.end()) return nullptr;
  policy_->OnAccess(it->first);
  return it->second.get();
}

void CacheStore::Remove(const CacheKey& key) {
  GaugeSnapshot after;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key.name());
    if (it == entries_.end()) return;
    policy_->OnRemove(it->first);
    EraseLocked(it);
    after = SnapshotLocked();
  }
  UpdateGauges(after);
}

CacheStore::Lease CacheStore::Acquire(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key.name());
  if (it == entries_.end()) return Lease();
  if (it->second->pins_++ == 0) pinned_bytes_ += it->second->bytes;
  return Lease(this, key.name());
}

void CacheStore::ReleasePin(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second->pins_ == 0) return;
  if (--it->second->pins_ == 0) pinned_bytes_ -= it->second->bytes;
}

void CacheStore::EnforceBudget() {
  std::vector<EvictionNotice> notices;
  GaugeSnapshot after;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EvictLocked(/*exclude=*/"", &notices);
    after = SnapshotLocked();
  }
  PublishEvictions(notices, after);
}

size_t CacheStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t CacheStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

int64_t CacheStore::total_compressed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_compressed_bytes_;
}

int64_t CacheStore::pinned_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_bytes_;
}

int64_t CacheStore::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_;
}

int64_t CacheStore::evicted_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_entries_;
}

int64_t CacheStore::evicted_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_bytes_;
}

void CacheStore::EvictLocked(const std::string& exclude,
                             std::vector<EvictionNotice>* notices) {
  if (options_.budget_bytes <= 0) return;
  while (total_bytes_ > options_.budget_bytes) {
    const std::string victim =
        policy_->PickVictim([this, &exclude](const std::string& name) {
          if (!exclude.empty() && name == exclude) return false;
          auto it = entries_.find(name);
          return it != entries_.end() && it->second->pins_ == 0;
        });
    if (victim.empty()) break;  // Only pinned (or excluded) entries left.
    auto it = entries_.find(victim);
    REDOOP_CHECK(it != entries_.end()) << "policy picked unknown victim";
    EvictionNotice notice;
    notice.key = CacheKey::FromName(it->first);
    notice.bytes = it->second->bytes;
    notice.compressed_bytes = it->second->compressed_bytes;
    notice.records = it->second->records;
    policy_->OnRemove(it->first);
    EraseLocked(it);
    ++evicted_entries_;
    evicted_bytes_ += notice.bytes;
    notices->push_back(std::move(notice));
  }
}

void CacheStore::EraseLocked(
    std::map<std::string, std::unique_ptr<Entry>>::iterator it) {
  total_bytes_ -= it->second->bytes;
  total_compressed_bytes_ -= it->second->compressed_bytes;
  if (it->second->pins_ > 0) pinned_bytes_ -= it->second->bytes;
  entries_.erase(it);
}

CacheStore::GaugeSnapshot CacheStore::SnapshotLocked() const {
  GaugeSnapshot snapshot;
  snapshot.bytes = total_bytes_;
  snapshot.compressed_bytes = total_compressed_bytes_;
  snapshot.pinned_bytes = pinned_bytes_;
  snapshot.entries = entries_.size();
  return snapshot;
}

void CacheStore::PublishEvictions(const std::vector<EvictionNotice>& notices,
                                  const GaugeSnapshot& after) {
  const obs::TelemetryScope& scope = options_.telemetry;
  for (const EvictionNotice& notice : notices) {
    if (scope.active()) {
      scope.Increment(obs::metric::kCacheEvictedEntries);
      scope.Increment(obs::metric::kCacheEvictedBytes, notice.bytes);
      scope.Emit(obs::event::kCachePaneEvict)
          .With("name", notice.key.name())
          .With("policy", EvictionPolicyName(options_.policy))
          .With("bytes", notice.bytes)
          .With("compressed_bytes", notice.compressed_bytes)
          .With("records", notice.records)
          .With("reason", "budget");
    }
    if (options_.on_evict) options_.on_evict(notice);
  }
  UpdateGauges(after);
}

void CacheStore::UpdateGauges(const GaugeSnapshot& snapshot) {
  const obs::TelemetryScope& scope = options_.telemetry;
  if (!scope.active()) return;
  scope.SetGauge(obs::metric::kCacheStoreBytes,
                 static_cast<double>(snapshot.bytes));
  scope.SetGauge(obs::metric::kCacheStoreCompressedBytes,
                 static_cast<double>(snapshot.compressed_bytes));
  scope.SetGauge(obs::metric::kCacheStorePinnedBytes,
                 static_cast<double>(snapshot.pinned_bytes));
  scope.SetGauge(obs::metric::kCacheStoreEntries,
                 static_cast<double>(snapshot.entries));
}

}  // namespace redoop
