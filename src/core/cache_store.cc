#include "core/cache_store.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

std::shared_ptr<const FlatKvBuffer> CacheStore::Entry::payload() const {
  if (flat_ != nullptr) return flat_;
  std::call_once(decode_once_, [this] {
    decoded_ =
        std::make_shared<const FlatKvBuffer>(columnar_->Decode());
  });
  return decoded_;
}

void CacheStore::Put(const std::string& name,
                     std::shared_ptr<const FlatKvBuffer> payload,
                     int64_t bytes, int64_t records) {
  REDOOP_CHECK(bytes >= 0 && records >= 0);
  REDOOP_CHECK(payload != nullptr);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    total_bytes_ -= it->second->bytes;
    total_compressed_bytes_ -= it->second->compressed_bytes;
    entries_.erase(it);
  }
  auto entry = std::make_unique<Entry>();
  if (columnar_) {
    entry->columnar_ = std::make_shared<const ColumnarKvPane>(
        ColumnarKvPane::Encode(*payload));
    entry->compressed_bytes = entry->columnar_->compressed_bytes();
  } else {
    entry->flat_ = std::move(payload);
    entry->compressed_bytes = bytes;
  }
  entry->bytes = bytes;
  entry->records = records;
  total_bytes_ += bytes;
  total_compressed_bytes_ += entry->compressed_bytes;
  entries_[name] = std::move(entry);
  UpdateGauges();
}

const CacheStore::Entry* CacheStore::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

void CacheStore::Remove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second->bytes;
  total_compressed_bytes_ -= it->second->compressed_bytes;
  entries_.erase(it);
  UpdateGauges();
}

void CacheStore::UpdateGauges() {
  if (!scope_.active()) return;
  scope_.SetGauge(obs::metric::kCacheStoreBytes,
                  static_cast<double>(total_bytes_));
  scope_.SetGauge(obs::metric::kCacheStoreCompressedBytes,
                  static_cast<double>(total_compressed_bytes_));
  scope_.SetGauge(obs::metric::kCacheStoreEntries,
                  static_cast<double>(entries_.size()));
}

}  // namespace redoop
