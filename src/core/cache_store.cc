#include "core/cache_store.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

void CacheStore::Put(const std::string& name,
                     std::shared_ptr<const FlatKvBuffer> payload,
                     int64_t bytes, int64_t records) {
  REDOOP_CHECK(bytes >= 0 && records >= 0);
  REDOOP_CHECK(payload != nullptr);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    total_bytes_ -= it->second->bytes;
    entries_.erase(it);
  }
  auto entry = std::make_unique<Entry>();
  entry->payload = std::move(payload);
  entry->bytes = bytes;
  entry->records = records;
  total_bytes_ += bytes;
  entries_[name] = std::move(entry);
  UpdateGauges();
}

const CacheStore::Entry* CacheStore::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

void CacheStore::Remove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second->bytes;
  entries_.erase(it);
  UpdateGauges();
}

void CacheStore::UpdateGauges() {
  if (!scope_.active()) return;
  scope_.SetGauge(obs::metric::kCacheStoreBytes,
                  static_cast<double>(total_bytes_));
  scope_.SetGauge(obs::metric::kCacheStoreEntries,
                  static_cast<double>(entries_.size()));
}

}  // namespace redoop
