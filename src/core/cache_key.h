#ifndef REDOOP_CORE_CACHE_KEY_H_
#define REDOOP_CORE_CACHE_KEY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/ids.h"

namespace redoop {

/// Typed identity of a cache entry, wrapping the pane_naming scheme
/// (paper §3.2). A CacheKey is always well-formed: it is built either from
/// components via the factory functions or by parsing a canonical name, so
/// a malformed pane name fails loudly at construction instead of silently
/// missing the cache at lookup time.
///
/// Grammar (the driver's chunk/rebuild suffixes included):
///   "RIC_Q<q>_S<s>P<p>_R<r>[_c<n>][_rb]"   reduce input cache
///   "ROC_Q<q>_S<s>P<p>_R<r>[_c<n>][_rb]"   per-pane reduce output cache
///   "JOC_Q<q>_P<l>x<r>_R<r>"               pane-pair join output cache
class CacheKey {
 public:
  enum class Kind { kInvalid, kReduceInput, kReduceOutput, kJoinOutput };

  /// An invalid (empty) key; usable as a map value placeholder. All other
  /// constructions produce valid keys.
  CacheKey() = default;

  static CacheKey ReduceInput(QueryId query, SourceId source, PaneId pane,
                              int32_t partition);
  static CacheKey ReduceOutput(QueryId query, SourceId source, PaneId pane,
                               int32_t partition);
  static CacheKey JoinOutput(QueryId query, PaneId left, PaneId right,
                             int32_t partition);

  /// Parses a canonical cache name; nullopt when malformed (wrong prefix,
  /// negative components, trailing garbage).
  static std::optional<CacheKey> Parse(const std::string& name);
  /// Like Parse but CHECK-fails on malformed input — for names that are
  /// structurally guaranteed valid (signatures, manifests).
  static CacheKey FromName(const std::string& name);

  /// Derived keys for the driver's multi-chunk and rebuild materializations.
  /// Chunk applies once, rebuild applies once, in that order.
  CacheKey WithChunk(int32_t chunk) const;
  CacheKey Rebuilt() const;

  /// Content-addressed dedup key for one pane's cached images (DESIGN
  /// §17): two queries map to the same key exactly when their cached
  /// bytes for the pane are provably identical — same pipeline signature
  /// (mapper / combiner / partitioner / reducer count), same execution
  /// mode (which cache kinds the driver materializes), same source, same
  /// pane grid, same pane. Deliberately query-id-free; this is the name
  /// space physical sharing happens in.
  static std::string ContentKey(const std::string& pipeline_signature,
                                int32_t execution_mode, SourceId source,
                                int64_t pane_size, PaneId pane);

  bool valid() const { return kind_ != Kind::kInvalid; }
  Kind kind() const { return kind_; }
  QueryId query() const { return query_; }
  SourceId source() const { return source_; }    // RIC/ROC only.
  PaneId pane() const { return pane_; }          // Left pane for JOC.
  PaneId pane_right() const { return pane_right_; }  // JOC only.
  int32_t partition() const { return partition_; }
  int32_t chunk() const { return chunk_; }  // -1 when no chunk suffix.
  bool rebuilt() const { return rebuilt_; }
  const std::string& name() const { return name_; }

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.name_ == b.name_;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) {
    return !(a == b);
  }
  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return a.name_ < b.name_;
  }

 private:
  Kind kind_ = Kind::kInvalid;
  QueryId query_ = 0;
  SourceId source_ = 0;
  PaneId pane_ = 0;
  PaneId pane_right_ = 0;
  int32_t partition_ = 0;
  int32_t chunk_ = -1;
  bool rebuilt_ = false;
  std::string name_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_KEY_H_
