#ifndef REDOOP_CORE_WINDOW_H_
#define REDOOP_CORE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace redoop {

/// A sliding-window constraint on a data source: process the last `win`
/// seconds of data, re-executing every `slide` seconds (paper §2.1).
struct WindowSpec {
  Timestamp win = 0;
  Timestamp slide = 0;

  /// The paper's `overlap` factor: (win - slide) / win — the fraction of a
  /// window shared with its predecessor.
  double Overlap() const;

  bool Valid() const { return win > 0 && slide > 0 && slide <= win; }
};

/// Half-open pane-id range [first, last).
struct PaneRange {
  PaneId first = 0;
  PaneId last = 0;

  int64_t size() const { return last - first; }
  bool Contains(PaneId p) const { return p >= first && p < last; }
  bool empty() const { return last <= first; }

  friend bool operator==(const PaneRange& a, const PaneRange& b) {
    return a.first == b.first && a.last == b.last;
  }
};

/// Pane/window arithmetic for one (WindowSpec, pane size) pair. Recurrence
/// i (0-based) triggers at time `win + i*slide` and covers data in
/// [i*slide, i*slide + win). With pane = GCD(win, slide) every window is an
/// exact union of panes.
class WindowGeometry {
 public:
  /// `pane_size` must evenly divide both win and slide.
  WindowGeometry(WindowSpec spec, Timestamp pane_size);

  const WindowSpec& spec() const { return spec_; }
  Timestamp pane_size() const { return pane_size_; }
  int64_t panes_per_window() const { return spec_.win / pane_size_; }
  int64_t panes_per_slide() const { return spec_.slide / pane_size_; }

  /// Wall-clock (data time) at which recurrence i fires.
  Timestamp TriggerTime(int64_t recurrence) const;

  /// Data time range [begin, end) that recurrence i processes.
  Timestamp WindowBegin(int64_t recurrence) const;
  Timestamp WindowEnd(int64_t recurrence) const;

  /// Pane covering timestamp t.
  PaneId PaneForTime(Timestamp t) const;

  /// Time range [begin, end) of pane p.
  Timestamp PaneBegin(PaneId p) const;
  Timestamp PaneEnd(PaneId p) const;

  /// Panes of recurrence i's window.
  PaneRange PanesForRecurrence(int64_t recurrence) const;

  /// Panes of recurrence i that were NOT in recurrence i-1 (all of them for
  /// i == 0) — the data Redoop must actually process anew.
  PaneRange NewPanesForRecurrence(int64_t recurrence) const;

  /// Panes that recurrence i no longer needs but i-1 did (empty for i==0).
  PaneRange DroppedPanesAtRecurrence(int64_t recurrence) const;

  /// The last recurrence whose window contains pane p.
  int64_t LastRecurrenceUsingPane(PaneId p) const;

  /// The first recurrence whose window contains pane p.
  int64_t FirstRecurrenceUsingPane(PaneId p) const;

  /// True once pane p can never be needed again after recurrence i ran
  /// (i.e. p lies strictly before window i+1's start... see .cc).
  bool PaneExpiredAfter(PaneId p, int64_t completed_recurrence) const;

 private:
  WindowSpec spec_;
  Timestamp pane_size_;
};

/// Lifespan of pane `p` of one source with respect to a partner source in a
/// binary join (paper §4.2): the range of partner panes that co-occur with
/// p in at least one window, i.e. the pairs that must be joined before p
/// can expire. Both sources use the same geometry here (the paper's
/// experiments use equal window constraints on both join inputs).
PaneRange JoinLifespan(const WindowGeometry& geometry, PaneId p);

}  // namespace redoop

#endif  // REDOOP_CORE_WINDOW_H_
