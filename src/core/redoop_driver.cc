#include "core/redoop_driver.h"

#include <cstdio>

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "core/fleet.h"
#include "core/pane_naming.h"
#include "obs/slo/slo_tracker.h"

namespace redoop {

namespace {
/// Effective incremental strategy given the cache-tier ablation switches.
enum class EffectivePattern {
  kPerPaneMerge,
  kPanePairJoin,
  kPanePairJoinNoOutputCache,
  kCachedInputRecompute,
  kNoCaching,
};

EffectivePattern Effective(IncrementalPattern pattern,
                           const RedoopDriverOptions& options) {
  switch (pattern) {
    case IncrementalPattern::kPerPaneMerge:
      if (options.cache.reduce_output) return EffectivePattern::kPerPaneMerge;
      if (options.cache.reduce_input)
        return EffectivePattern::kCachedInputRecompute;
      return EffectivePattern::kNoCaching;
    case IncrementalPattern::kPanePairJoin:
      if (!options.cache.reduce_input) return EffectivePattern::kNoCaching;
      return options.cache.reduce_output
                 ? EffectivePattern::kPanePairJoin
                 : EffectivePattern::kPanePairJoinNoOutputCache;
    case IncrementalPattern::kCachedInputRecompute:
      return options.cache.reduce_input
                 ? EffectivePattern::kCachedInputRecompute
                 : EffectivePattern::kNoCaching;
  }
  return EffectivePattern::kNoCaching;
}

/// Pane size the geometry is built with: an invalid override falls back to
/// the GCD grid so the geometry itself stays well-formed — the rejection
/// is reported through the driver's init_status() instead of an abort.
Timestamp EffectivePaneSize(const WindowSpec& window, Timestamp override_pane) {
  if (override_pane > 0 && window.win % override_pane == 0 &&
      window.slide % override_pane == 0) {
    return override_pane;
  }
  return Gcd(window.win, window.slide);
}
}  // namespace

RedoopDriver::RedoopDriver(Cluster* cluster, BatchFeed* feed,
                           RecurringQuery query, RedoopDriverOptions options)
    : cluster_(cluster),
      feed_(feed),
      query_(std::move(query)),
      options_(options),
      geometry_(query_.window(),
                EffectivePaneSize(query_.window(),
                                  options.adaptive.pane_size_override)),
      analyzer_(cluster->dfs().options().block_size_bytes),
      profiler_(options.profiler.alpha, options.profiler.beta) {
  REDOOP_CHECK(cluster_ != nullptr);
  REDOOP_CHECK(feed_ != nullptr);
  query_.CheckValid();

  // User-reachable misconfiguration becomes a typed error surfaced by
  // RunRecurrence/Run rather than an abort deep inside the run.
  const Timestamp override_pane = options_.adaptive.pane_size_override;
  if (override_pane > 0 &&
      (query_.window().win % override_pane != 0 ||
       query_.window().slide % override_pane != 0)) {
    init_status_ = Status::InvalidArgument(StringPrintf(
        "pane_size_override %lld must divide win %lld and slide %lld",
        static_cast<long long>(override_pane),
        static_cast<long long>(query_.window().win),
        static_cast<long long>(query_.window().slide)));
  }
  for (const QuerySource& s : query_.sources) {
    if (!init_status_.ok()) break;
    if (!feed_->HasSource(s.id)) {
      init_status_ = Status::NotFound(StringPrintf(
          "query source %d is not registered with the feed",
          static_cast<int>(s.id)));
    }
  }

  // Observability: every component journals into one context; sim-time
  // stamps come from the cluster's simulator.
  if (options_.obs != nullptr) {
    obs_ = options_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::ObservabilityContext>();
    obs_ = owned_obs_.get();
  }
  obs_->SetTimeSource(
      [cluster = cluster_] { return cluster->simulator().Now(); });
  // Attribution: one query-labeled scope, copied into every component.
  // telemetry_window_ / trace_ctx_ are the driver-owned cells the scopes
  // read at emit time. DFS stays cluster-scoped (shared across drivers).
  scope_ = obs::TelemetryScope(obs_, query_.name, &telemetry_window_,
                               &trace_ctx_);
  controller_.set_telemetry(scope_);
  {
    CacheStore::Options store_options;
    store_options.budget_bytes = options_.cache.budget_bytes;
    store_options.policy = options_.cache.eviction_policy;
    store_options.columnar_payloads = options_.cache.columnar_payloads;
    store_options.telemetry = scope_;
    store_options.on_evict = [this](const CacheStore::EvictionNotice& n) {
      OnCacheEvicted(n);
    };
    store_ = std::make_unique<CacheStore>(std::move(store_options));
  }
  profiler_.set_telemetry(scope_);
  default_scheduler_.set_telemetry(scope_);
  cluster_->dfs().set_observability(obs_);
  options_.runner.obs = obs_;
  options_.runner.telemetry = &scope_;

  base_plan_ = analyzer_.Plan(query_.window(), SourceStatistics{0.0});
  base_plan_.pane_size = geometry_.pane_size();
  current_plan_ = base_plan_;
  controller_.RegisterQuery(query_, geometry_.pane_size());

  if (options_.scheduler.cache_aware) {
    CacheAwareSchedulerOptions sched_options;
    sched_options.load_weight_s = options_.scheduler.load_weight_s;
    cache_aware_scheduler_ = std::make_unique<CacheAwareScheduler>(
        &cluster_->cost_model(), sched_options);
    cache_aware_scheduler_->set_telemetry(scope_);
  }
  runner_ = std::make_unique<JobRunner>(cluster_, scheduler(),
                                        options_.runner);
  runner_->SetDiskFullHandler([this](NodeId node, int64_t needed) {
    // On-demand (emergency) purging of expired caches, paper §4.1.
    return registries_[static_cast<size_t>(node)]->OnDemandPurge(
        &cluster_->node(node), needed);
  });

  for (const QuerySource& s : query_.sources) {
    packers_[s.id] = std::make_unique<DynamicDataPacker>(
        &cluster_->dfs(), s.id, current_plan_, options_.file_namespace);
  }
  const double purge_cycle = options_.cache.purge_cycle_s >= 0
                                 ? options_.cache.purge_cycle_s
                                 : static_cast<double>(query_.slide());
  for (int32_t n = 0; n < cluster_->num_nodes(); ++n) {
    registries_.push_back(
        std::make_unique<LocalCacheRegistry>(n, purge_cycle));
    registries_.back()->set_telemetry(scope_.WithNode(n));
  }
  ingested_until_.assign(query_.sources.size(), 0);

  // Cache-loss rollback hook (paper §5 failure recovery). The shared flag
  // guards against the cluster outliving this driver.
  auto alive = std::make_shared<bool>(true);
  alive_flag_ = alive;
  cluster_->AddCacheLossListener(
      [this, alive](NodeId node, const std::vector<std::string>& lost) {
        if (!*alive) return;
        OnCacheLossEvent(node, lost);
      });

  // Fleet rollback hook (DESIGN §17): when another holder's budget evicts
  // a shared pane image, this query drops its copies too. The coordinator
  // runs drivers serially and owns both the context and the drivers, so
  // the raw `this` capture is safe for the driver's lifetime.
  if (options_.fleet != nullptr) {
    options_.fleet->RegisterQuery(query_.id, [this](SourceId s, PaneId p) {
      EvictFleetPane(s, p);
    });
  }
}

RedoopDriver::~RedoopDriver() {
  if (alive_flag_ != nullptr) *alive_flag_ = false;
}

TaskScheduler* RedoopDriver::scheduler() {
  if (cache_aware_scheduler_ != nullptr) return cache_aware_scheduler_.get();
  return &default_scheduler_;
}

const LocalCacheRegistry& RedoopDriver::registry(NodeId node) const {
  REDOOP_CHECK(node >= 0 && node < static_cast<NodeId>(registries_.size()));
  return *registries_[static_cast<size_t>(node)];
}

const DynamicDataPacker& RedoopDriver::packer(SourceId source) const {
  auto it = packers_.find(source);
  REDOOP_CHECK(it != packers_.end()) << "unknown source " << source;
  return *it->second;
}

JobConfig RedoopDriver::BaseJobConfig(const std::string& suffix) const {
  JobConfig config = query_.config;
  config.name = query_.name + "-" + suffix;
  return config;
}

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

void RedoopDriver::IngestInterval(Timestamp from, Timestamp to) {
  (void)from;  // Per-source progress is tracked in ingested_until_.
  Simulator& sim = cluster_->simulator();
  for (size_t si = 0; si < query_.sources.size(); ++si) {
    const SourceId source = query_.sources[si].id;
    if (ingested_until_[si] >= to) continue;
    const std::vector<RecordBatch> batches =
        feed_->BatchesFor(source, ingested_until_[si], to);
    for (const RecordBatch& batch : batches) {
      REDOOP_CHECK(batch.start == ingested_until_[si])
          << "feed returned a non-contiguous batch";
      ingested_until_[si] = batch.end;
      if (proactive_mode_ &&
          sim.Now() < static_cast<SimTime>(batch.end)) {
        // Proactive execution: process data as it lands instead of waiting
        // for the trigger (paper §3.3).
        sim.RunUntil(static_cast<SimTime>(batch.end));
      }
      auto files = packers_[source]->Ingest(batch);
      REDOOP_CHECK(files.ok()) << files.status().ToString();
      HandlePaneFiles(source, *files);
      if (proactive_mode_) DrainWorkLists();
    }
    REDOOP_CHECK(ingested_until_[si] == to);
  }
}

void RedoopDriver::HandlePaneFiles(SourceId source,
                                   const std::vector<PaneFileInfo>& files) {
  for (const PaneFileInfo& f : files) {
    for (PaneId pane = f.first_pane; pane <= f.last_pane; ++pane) {
      PaneIngestState& ps = pane_states_[{source, pane}];
      if (!f.file_name.empty()) {
        FileSlice slice;
        slice.file_name = f.file_name;
        if (f.first_pane != f.last_pane) {
          // Multi-pane file: locate this pane via the file header.
          auto file_or = cluster_->dfs().GetFile(f.file_name);
          REDOOP_CHECK(file_or.ok());
          auto entry = (*file_or)->pane_header.Find(pane);
          REDOOP_CHECK(entry.has_value())
              << "pane " << pane << " missing from header of " << f.file_name;
          slice.record_begin = entry->record_offset;
          slice.record_end = entry->record_offset + entry->record_count;
          slice.bytes = entry->byte_size;
        } else {
          slice.record_begin = 0;
          slice.record_end = -1;
          slice.bytes = f.bytes;
        }
        ps.bytes += slice.bytes;
        fresh_bytes_accum_ += slice.bytes;
        source_window_bytes_[source] += slice.bytes;
        ps.unprocessed.push_back(slice);
        ps.all_slices.push_back(slice);
        controller_.OnPaneInHdfs(query_.id, source, pane, {f.file_name});
      }
      if (!f.is_subpane || f.subpane_index == f.subpane_count - 1) {
        ps.complete = true;
      }
      if (ps.complete && ps.unprocessed.empty() && !ps.cached_reported) {
        // Empty (or fully processed) complete pane.
        ps.cached_reported = true;
        controller_.OnPaneCached(query_.id, source, pane);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Work lists
// ---------------------------------------------------------------------------

void RedoopDriver::DrainWorkLists() {
  const EffectivePattern pattern = Effective(query_.pattern, options_);
  while (true) {
    if (auto map_item = controller_.PopMapTask()) {
      if (pattern == EffectivePattern::kNoCaching) continue;  // Nothing to do.
      // Join/recompute patterns fold the caching pass into the window job
      // when not running proactively; the pane's slices stay queued in
      // pane_states_ until window preparation (rebuilds still run here).
      const bool fold_later =
          !proactive_mode_ && !map_item->rebuild &&
          (pattern == EffectivePattern::kPanePairJoin ||
           pattern == EffectivePattern::kPanePairJoinNoOutputCache ||
           pattern == EffectivePattern::kCachedInputRecompute);
      if (!fold_later) RunPaneJob(*map_item);
      continue;
    }
    // Batch every pending pane pair into one job (shared startup).
    std::vector<PanePairWorkItem> pairs;
    while (auto pair_item = controller_.PopReduceTask()) {
      pairs.push_back(*pair_item);
    }
    if (!pairs.empty()) {
      if (pattern == EffectivePattern::kPanePairJoin) {
        if (proactive_mode_ || !options_.cache.hybrid_join_strategy) {
          // Eager: compute pairs as soon as both sides are cached.
          RunPanePairBatch(pairs);
        } else {
          // Defer to the window's strategy decision.
          for (const PanePairWorkItem& p : pairs) {
            if (deferred_pair_keys_.insert({p.left, p.right}).second) {
              deferred_pairs_.push_back(p);
            }
          }
        }
      }
      // Without output caching, in-window pairs are recomputed during
      // window assembly; drop the items.
      continue;
    }
    break;
  }
}

void RedoopDriver::RunPaneJob(const PaneWorkItem& item) {
  if (item.rebuild) {
    RebuildPane(item.source, item.pane);
    return;
  }
  PaneIngestState& ps = pane_states_[{item.source, item.pane}];
  if (ps.unprocessed.empty()) {
    if (ps.complete && !ps.cached_reported) {
      ps.cached_reported = true;
      controller_.OnPaneCached(query_.id, item.source, item.pane);
    }
    return;
  }
  RunPaneSlices(item.source, item.pane, ps.unprocessed);
  ps.unprocessed.clear();
  ++ps.chunks_processed;
  if (ps.complete && !ps.cached_reported) {
    ps.cached_reported = true;
    controller_.OnPaneCached(query_.id, item.source, item.pane);
  }
}

void RedoopDriver::RunPaneSlices(SourceId source, PaneId pane,
                                 const std::vector<FileSlice>& slices,
                                 std::vector<int32_t> active_partitions) {
  const EffectivePattern pattern = Effective(query_.pattern, options_);
  PaneIngestState& ps = pane_states_[{source, pane}];
  const int32_t chunk = ps.chunks_processed;

  // Cross-query dedup (DESIGN §17): if another query with an identical
  // upstream pipeline already built this pane on the same grid, adopt its
  // images instead of re-running the job; if not, run the job and publish
  // ours. Eligibility is decided before the job mutates the manifests.
  const bool dedup_eligible =
      FleetDedupEligible(source, pane, slices, active_partitions);
  if (dedup_eligible && TryAdoptPane(source, pane)) return;

  JobSpec spec;
  spec.config = BaseJobConfig(StringPrintf("pane-S%dP%ld", source, pane));
  const bool make_roc = pattern == EffectivePattern::kPerPaneMerge;
  if (!make_roc) {
    // Caching-only pass: the shuffled inputs are the product.
    spec.config.reducer = std::make_shared<const NullReducer>();
  }
  spec.per_source_mappers[source] = query_.MapperFor(source);
  for (const FileSlice& slice : slices) {
    MapInput input;
    input.file_name = slice.file_name;
    input.source = source;
    input.pane = pane;
    input.record_begin = slice.record_begin;
    input.record_end = slice.record_end;
    spec.map_inputs.push_back(std::move(input));
  }
  const QueryId qid = query_.id;
  const std::string chunk_suffix =
      chunk > 0 ? StringPrintf("_c%d", chunk) : "";
  spec.cache.cache_reduce_input = options_.cache.reduce_input;
  spec.cache.input_cache_name = [qid, chunk_suffix](SourceId s, PaneId p,
                                                    int32_t r) {
    return ReduceInputCacheName(qid, s, p, r) + chunk_suffix;
  };
  spec.cache.cache_reduce_output = make_roc;
  spec.cache.output_cache_name = [qid, source, pane,
                                  chunk_suffix](int32_t r) {
    return ReduceOutputCacheName(qid, source, pane, r) + chunk_suffix;
  };
  spec.active_partitions = std::move(active_partitions);

  JobResult result = runner_->Run(spec);
  REDOOP_CHECK(result.status.ok()) << result.status.ToString();
  RegisterJobCaches(result, source, pane);
  AccumulateJobStats(result);
  if (dedup_eligible) PublishFleetPane(source, pane, result.caches);
}

void RedoopDriver::RunPanePairBatch(
    const std::vector<PanePairWorkItem>& pairs) {
  if (pairs.empty()) return;
  const SourceId left_source = query_.sources[0].id;
  const SourceId right_source = query_.sources[1].id;
  const int32_t num_partitions = query_.config.num_reducers;

  JobSpec spec;
  spec.config = BaseJobConfig("pane-pairs");
  // Pair outputs are the query's actual results: they are published to the
  // job output area in HDFS once, at pair-computation time (the window
  // assembly then only unions them).
  spec.output_prefix =
      StringPrintf("out/%s/pairs-%ld", query_.name.c_str(),
                   pair_batch_counter_++);
  // Anchor each pair's tasks on the pane shared by the most pairs in this
  // batch (typically the freshly arrived pane): its cached partitions then
  // serve all partner joins from the page cache.
  std::map<std::pair<SourceId, PaneId>, int64_t> pane_frequency;
  for (const PanePairWorkItem& pair : pairs) {
    ++pane_frequency[{left_source, pair.left}];
    ++pane_frequency[{right_source, pair.right}];
  }
  for (const PanePairWorkItem& pair : pairs) {
    const auto left_caches = controller_.CachesForPane(
        query_.id, left_source, pair.left, CacheType::kReduceInput);
    const auto right_caches = controller_.CachesForPane(
        query_.id, right_source, pair.right, CacheType::kReduceInput);
    const bool anchor_left = pane_frequency[{left_source, pair.left}] >=
                             pane_frequency[{right_source, pair.right}];
    for (int32_t r = 0; r < num_partitions; ++r) {
      ExplicitReduceTask task;
      task.partition = r;
      task.label_left = pair.left;
      task.label_right = pair.right;
      task.output_cache_name =
          JoinOutputCacheName(query_.id, pair.left, pair.right, r);
      for (const CacheSignature* sig : left_caches) {
        if (sig->partition == r) {
          AppendSideInput(*sig, &task.side_inputs);
          if (anchor_left) task.preferred_node = sig->node;
        }
      }
      for (const CacheSignature* sig : right_caches) {
        if (sig->partition == r) {
          AppendSideInput(*sig, &task.side_inputs);
          if (!anchor_left) task.preferred_node = sig->node;
        }
      }
      spec.explicit_reduce_tasks.push_back(std::move(task));
    }
  }

  JobResult result = runner_->Run(spec);
  REDOOP_CHECK(result.status.ok()) << result.status.ToString();
  RegisterJobCaches(result, /*source_for_roc=*/0, kInvalidPane);
  AccumulateJobStats(result);
  for (const PanePairWorkItem& pair : pairs) {
    controller_.MarkPanePairDone(query_.id, pair.left, pair.right);
  }
}

void RedoopDriver::RebuildPane(SourceId source, PaneId pane) {
  auto it = pane_states_.find({source, pane});
  if (it == pane_states_.end()) return;  // Pane already expired.
  PaneIngestState& ps = it->second;

  // Determine which of the pane's caches actually vanished; the survivors
  // stay valid (caching is pane- and partition-grained, so a failure costs
  // only the lost slices, paper §6.4). The replay still re-runs the pane's
  // map tasks — their outputs are gone — but only the lost partitions'
  // reduce/caching tasks.
  std::set<int32_t> lost_ric;
  std::set<int32_t> lost_roc;
  auto classify = [&](std::vector<CacheKey>* manifest,
                      std::set<int32_t>* lost) {
    manifest->erase(
        std::remove_if(manifest->begin(), manifest->end(),
                       [&](const CacheKey& key) {
                         if (store_->Has(key)) {
                           // Survivor: pin it so the rebuild's own Puts
                           // cannot evict what the pane still relies on.
                           recurrence_leases_.push_back(
                               store_->Acquire(key));
                           return false;
                         }
                         if (key.partition() >= 0) {
                           lost->insert(key.partition());
                         }
                         const NodeId node =
                             controller_.DropSignature(key.name());
                         if (node != kInvalidNode &&
                             node < cluster_->num_nodes()) {
                           if (cluster_->node(node).alive()) {
                             cluster_->node(node).DeleteLocalFile(
                                 key.name());
                           }
                           registries_[static_cast<size_t>(node)]->Remove(
                               key);
                         }
                         return true;
                       }),
        manifest->end());
  };
  classify(&ps.ric_names, &lost_ric);
  classify(&ps.roc_names, &lost_roc);
  if (lost_ric.empty() && lost_roc.empty()) {
    // Nothing actually missing (stale rebuild request).
    if (ps.complete && !ps.cached_reported) {
      ps.cached_reported = true;
      controller_.OnPaneCached(query_.id, source, pane);
    }
    return;
  }

  // Partitions whose reduce-output cache vanished but whose reduce-input
  // cache survives can be re-reduced straight from the input cache — no
  // re-mapping of the pane.
  std::set<int32_t> reducible;
  for (int32_t partition : lost_roc) {
    if (lost_ric.count(partition) > 0) continue;
    bool have_ric = false;
    for (const CacheKey& key : ps.ric_names) {
      if (key.partition() == partition) have_ric = true;
    }
    if (have_ric) reducible.insert(partition);
  }
  // Which lost caches force a replay of the pane's map tasks? Join
  // patterns read the input caches directly, so a lost one must come back.
  // The aggregation pattern's window assembly reads only output caches —
  // a lost input cache there is just a recovery asset and is dropped
  // lazily (re-materialized only if its partition's output is ever lost
  // too).
  const bool ric_needed_by_assembly =
      Effective(query_.pattern, options_) != EffectivePattern::kPerPaneMerge;
  std::set<int32_t> remap;
  if (ric_needed_by_assembly) remap = lost_ric;
  for (int32_t partition : lost_roc) {
    if (reducible.count(partition) == 0) remap.insert(partition);
  }

  if (!reducible.empty()) {
    RebuildOutputsFromInputs(source, pane,
                             std::vector<int32_t>(reducible.begin(),
                                                  reducible.end()));
  }
  if (!remap.empty() && !ps.all_slices.empty()) {
    ++ps.chunks_processed;  // Fresh chunk tag: rebuilt caches get new names.
    RunPaneSlices(source, pane, ps.all_slices,
                  std::vector<int32_t>(remap.begin(), remap.end()));
    ++ps.chunks_processed;
  }
  ps.unprocessed.clear();
  REDOOP_CHECK(ps.complete) << "rebuilding an incomplete pane";
  ps.cached_reported = true;
  controller_.OnPaneCached(query_.id, source, pane);
}

void RedoopDriver::RebuildOutputsFromInputs(
    SourceId source, PaneId pane, std::vector<int32_t> partitions) {
  PaneIngestState& ps = pane_states_[{source, pane}];
  JobSpec spec;
  spec.config =
      BaseJobConfig(StringPrintf("roc-rebuild-S%dP%ld", source, pane));
  for (const CacheKey& key : ps.ric_names) {
    if (std::find(partitions.begin(), partitions.end(), key.partition()) ==
        partitions.end()) {
      continue;
    }
    const CacheSignature* sig = controller_.Find(key.name());
    if (sig != nullptr) AppendSideInput(*sig, &spec.side_inputs);
  }
  const QueryId qid = query_.id;
  const int32_t chunk = ps.chunks_processed;
  const std::string chunk_suffix =
      chunk > 0 ? StringPrintf("_c%d", chunk) : "";
  spec.cache.cache_reduce_output = true;
  spec.cache.output_cache_name = [qid, source, pane,
                                  chunk_suffix](int32_t r) {
    return ReduceOutputCacheName(qid, source, pane, r) + chunk_suffix + "_rb";
  };
  spec.active_partitions = std::move(partitions);

  JobResult result = runner_->Run(spec);
  REDOOP_CHECK(result.status.ok()) << result.status.ToString();
  RegisterJobCaches(result, source, pane);
  AccumulateJobStats(result);
}

// ---------------------------------------------------------------------------
// Cache registration
// ---------------------------------------------------------------------------

void RedoopDriver::AppendSideInput(const CacheSignature& sig,
                                   std::vector<ReduceSideInput>* out) {
  const CacheKey key = CacheKey::FromName(sig.name);
  const CacheStore::Entry* entry = store_->Find(key);
  REDOOP_CHECK(entry != nullptr) << "cache payload missing: " << sig.name;
  // Pin for the rest of the recurrence: a side input already handed to a
  // job spec must not be reclaimed by a later Put's budget sweep.
  recurrence_leases_.push_back(store_->Acquire(key));
  ReduceSideInput side;
  side.cache_name = sig.name;
  side.partition = sig.partition;
  side.source = sig.source;
  side.pane = sig.pane;
  side.location = sig.node;
  side.bytes = sig.bytes;
  side.records = sig.records;
  // Shared with the store, not copied; columnar entries decode here (once,
  // memoized) — the lazy "decompress on cache hit" moment.
  side.payload = entry->payload();
  out->push_back(std::move(side));
}

std::vector<ReduceSideInput> RedoopDriver::SideInputsFor(
    const std::vector<const CacheSignature*>& caches) {
  std::vector<ReduceSideInput> out;
  out.reserve(caches.size());
  for (const CacheSignature* sig : caches) AppendSideInput(*sig, &out);
  return out;
}

void RedoopDriver::RegisterJobCaches(const JobResult& result,
                                     SourceId source_for_roc,
                                     PaneId pane_for_roc) {
  for (const MaterializedCache& cache : result.caches) {
    // Free validation: a job that emitted a malformed cache file name dies
    // here, not as an unfindable registry row windows later.
    const CacheKey key = CacheKey::FromName(cache.name);
    CacheSignature sig;
    sig.name = cache.name;
    sig.partition = cache.partition;
    sig.node = cache.node;
    sig.bytes = cache.bytes;
    sig.records = cache.records;
    sig.ready = CacheReady::kCacheAvailable;
    if (cache.is_reduce_output) {
      sig.type = CacheType::kReduceOutput;
      if (cache.pane_right != kInvalidPane) {
        sig.pane = cache.pane;           // Pane-pair output.
        sig.pane_right = cache.pane_right;
      } else {
        sig.source = source_for_roc;     // Per-pane aggregation partial.
        sig.pane = pane_for_roc;
      }
    } else {
      sig.type = CacheType::kReduceInput;
      sig.source = cache.source;
      sig.pane = cache.pane;
    }
    // Manifest bookkeeping for loss detection.
    if (sig.pane_right == kInvalidPane && sig.pane != kInvalidPane) {
      PaneIngestState& ps = pane_states_[{sig.source, sig.pane}];
      if (sig.type == CacheType::kReduceInput) {
        ps.ric_names.push_back(key);
      } else {
        ps.roc_names.push_back(key);
      }
      // Serving this pane later in the same recurrence is not a cache hit.
      panes_built_this_recurrence_.insert({sig.source, sig.pane});
      pane_built_window_[{sig.source, sig.pane}] = telemetry_window_;
    }
    store_->Put(key, CacheStore::PanePayload(cache.payload),
                CacheStore::PaneStats{sig.bytes, sig.records});
    // Pin the fresh entry for the rest of the recurrence: the window that
    // just paid to build it must be able to read it back.
    recurrence_leases_.push_back(store_->Acquire(key));
    registries_[static_cast<size_t>(sig.node)]->AddEntry(key, sig.type,
                                                         sig.bytes);
    // The registry ships its delta to the master with its next heartbeat
    // (paper §2.3); the bus records the in-flight metadata traffic.
    cluster_->heartbeat_bus().Send(sig.node, cluster_->simulator().Now(),
                                   "cache-add", sig.name);
    controller_.AddSignature(std::move(sig), query_.id);
  }
  cluster_->heartbeat_bus().DeliverUpTo(cluster_->simulator().Now());
}

void RedoopDriver::AccumulateJobStats(const JobResult& result) {
  shuffle_accum_ += result.shuffle_time_total;
  reduce_accum_ += result.reduce_time_total;
  map_phase_accum_ += result.map_phase_time;
  work_accum_ += result.Elapsed();
  counters_accum_.MergeFrom(result.counters);
  task_reports_accum_.insert(task_reports_accum_.end(),
                             result.task_reports.begin(),
                             result.task_reports.end());
}

// ---------------------------------------------------------------------------
// Window assembly
// ---------------------------------------------------------------------------

void RedoopDriver::EnsureWindowPanes(int64_t recurrence) {
  const EffectivePattern pattern = Effective(query_.pattern, options_);
  if (pattern == EffectivePattern::kNoCaching) return;
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it == pane_states_.end()) continue;  // Pane had no data.
      const PaneIngestState& ps = it->second;
      bool missing = false;
      for (const CacheKey& key : ps.ric_names) {
        if (!store_->Has(key)) missing = true;
      }
      for (const CacheKey& key : ps.roc_names) {
        if (!store_->Has(key)) missing = true;
      }
      if (missing) {
        // RebuildPane pins the survivors and re-materializes the rest.
        RebuildPane(qs.id, p);
      } else {
        // Pin the pane's manifest for this window: assembly reads these
        // entries, so the budget sweep must not reclaim them mid-window.
        for (const CacheKey& key : ps.ric_names) {
          recurrence_leases_.push_back(store_->Acquire(key));
        }
        for (const CacheKey& key : ps.roc_names) {
          recurrence_leases_.push_back(store_->Acquire(key));
        }
      }
    }
  }
}

std::vector<PanePairWorkItem> RedoopDriver::MissingWindowPairs(
    int64_t recurrence) const {
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  const int32_t num_partitions = query_.config.num_reducers;
  std::vector<PanePairWorkItem> missing;
  for (PaneId l = panes.first; l < panes.last; ++l) {
    for (PaneId r = panes.first; r < panes.last; ++r) {
      bool needs_run = !controller_.IsPanePairDone(query_.id, l, r);
      if (!needs_run) {
        for (int32_t part = 0; part < num_partitions; ++part) {
          if (controller_.Find(JoinOutputCacheName(query_.id, l, r, part)) ==
              nullptr) {
            // Pair output absent: lost to a failure, or the pair was
            // retired by a recompute-path window without materializing it.
            needs_run = true;
          }
        }
      }
      if (needs_run) missing.push_back(PanePairWorkItem{query_.id, l, r});
    }
  }
  return missing;
}

double RedoopDriver::EstimatePairPathCost(
    const std::vector<PanePairWorkItem>& pairs) const {
  const CostModel& cost = cluster_->cost_model();
  const SourceId left_source = query_.sources[0].id;
  const SourceId right_source = query_.sources[1].id;
  auto pane_bytes = [&](SourceId s, PaneId p) {
    auto it = pane_states_.find({s, p});
    return it == pane_states_.end() ? int64_t{0} : it->second.bytes;
  };
  // Reads: each distinct pane once (optimistic: co-located tasks hit the
  // page cache); CPU: every pair scans both sides.
  std::set<std::pair<SourceId, PaneId>> distinct;
  double cpu_bytes = 0.0;
  for (const PanePairWorkItem& pair : pairs) {
    distinct.insert({left_source, pair.left});
    distinct.insert({right_source, pair.right});
    cpu_bytes += static_cast<double>(pane_bytes(left_source, pair.left) +
                                     pane_bytes(right_source, pair.right));
  }
  double read_bytes = 0.0;
  for (const auto& [s, p] : distinct) {
    read_bytes += static_cast<double>(pane_bytes(s, p));
  }
  return cost.LocalReadTime(static_cast<int64_t>(read_bytes)) +
         cost.ReduceComputeTime(static_cast<int64_t>(cpu_bytes)) +
         static_cast<double>(pairs.size()) * cost.TaskStartupTime();
}

double RedoopDriver::EstimateRecomputePathCost(int64_t recurrence) const {
  const CostModel& cost = cluster_->cost_model();
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  int64_t window_bytes = 0;
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it != pane_states_.end()) window_bytes += it->second.bytes;
    }
  }
  // Read + join-scan the whole window, then write the full output anew
  // (estimated from the previous window's output volume).
  return cost.LocalReadTime(window_bytes) +
         cost.ReduceComputeTime(window_bytes) +
         cost.HdfsWriteTime(last_join_output_bytes_);
}

JobSpec RedoopDriver::BuildFoldedWindowSpec(int64_t recurrence) {
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  JobSpec spec;
  spec.config = BaseJobConfig(StringPrintf("window-%ld", recurrence));
  spec.output_prefix = query_.OutputPathForRecurrence(recurrence);
  const QueryId qid = query_.id;
  for (const QuerySource& qs : query_.sources) {
    spec.per_source_mappers[qs.id] = query_.MapperFor(qs.id);
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it == pane_states_.end()) continue;  // Empty pane.
      // Not-yet-cached slices are mapped; already-cached data arrives at
      // the reducers straight from the local caches (paper Fig. 5: reducer
      // input physically comes from the mappers AND the local FS).
      for (const FileSlice& slice : it->second.unprocessed) {
        MapInput input;
        input.file_name = slice.file_name;
        input.source = qs.id;
        input.pane = p;
        input.record_begin = slice.record_begin;
        input.record_end = slice.record_end;
        spec.map_inputs.push_back(std::move(input));
      }
      for (const CacheSignature* sig : controller_.CachesForPane(
               qid, qs.id, p, CacheType::kReduceInput)) {
        AppendSideInput(*sig, &spec.side_inputs);
      }
    }
  }
  spec.cache.cache_reduce_input = options_.cache.reduce_input;
  spec.cache.input_cache_name = [this, qid](SourceId s, PaneId p, int32_t r) {
    auto it = pane_states_.find({s, p});
    const int32_t chunk =
        it == pane_states_.end() ? 0 : it->second.chunks_processed;
    const std::string suffix = chunk > 0 ? StringPrintf("_c%d", chunk) : "";
    return ReduceInputCacheName(qid, s, p, r) + suffix;
  };
  return spec;
}

void RedoopDriver::FinishFoldedPanes(int64_t recurrence) {
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it == pane_states_.end()) continue;
      PaneIngestState& ps = it->second;
      if (!ps.unprocessed.empty()) {
        ps.unprocessed.clear();
        ++ps.chunks_processed;
      }
      if (ps.complete && !ps.cached_reported) {
        ps.cached_reported = true;
        controller_.OnPaneCached(query_.id, qs.id, p);
      }
    }
  }
}

void RedoopDriver::EnsureWindowPanesCached(int64_t recurrence) {
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it == pane_states_.end()) continue;
      PaneIngestState& ps = it->second;
      if (!ps.unprocessed.empty()) {
        RunPaneSlices(qs.id, p, ps.unprocessed);
        ps.unprocessed.clear();
        ++ps.chunks_processed;
      }
      if (ps.complete && !ps.cached_reported) {
        ps.cached_reported = true;
        controller_.OnPaneCached(query_.id, qs.id, p);
      }
    }
  }
}

void RedoopDriver::RunJoinWindowRecompute(int64_t recurrence) {
  // The folded window job: map the fresh panes, join against the cached
  // older panes, publish the window output, and keep the fresh panes'
  // shuffled inputs as caches (the merge spill, at no extra write cost).
  JobSpec spec = BuildFoldedWindowSpec(recurrence);

  std::vector<KeyValue> output;
  if (!spec.map_inputs.empty() || !spec.side_inputs.empty()) {
    JobResult result = runner_->Run(spec);
    REDOOP_CHECK(result.status.ok()) << result.status.ToString();
    RegisterJobCaches(result, /*source_for_roc=*/0, kInvalidPane);
    AccumulateJobStats(result);
    output = std::move(result.output);
  }
  FinishFoldedPanes(recurrence);
  last_join_output_bytes_ = TotalLogicalBytes(output);
  join_window_override_ = std::move(output);

  // The pairs this window covers are retired in the status matrix (their
  // outputs were delivered, just not cached); expiration bookkeeping
  // proceeds as usual, and any future window that wants a pair's cached
  // output will recompute it (MissingWindowPairs treats done-without-
  // output as missing).
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  for (PaneId l = panes.first; l < panes.last; ++l) {
    for (PaneId r = panes.first; r < panes.last; ++r) {
      controller_.MarkPanePairDone(query_.id, l, r);
    }
  }
}

void RedoopDriver::PrepareJoinWindow(int64_t recurrence) {
  const EffectivePattern pattern = Effective(query_.pattern, options_);
  if (pattern != EffectivePattern::kPanePairJoin) return;
  join_window_override_.reset();

  // Drop deferred pairs that already ran (e.g. proactively).
  deferred_pairs_.erase(
      std::remove_if(deferred_pairs_.begin(), deferred_pairs_.end(),
                     [&](const PanePairWorkItem& p) {
                       if (controller_.IsPanePairDone(query_.id, p.left,
                                                      p.right)) {
                         deferred_pair_keys_.erase({p.left, p.right});
                         return true;
                       }
                       return false;
                     }),
      deferred_pairs_.end());

  const std::vector<PanePairWorkItem> missing = MissingWindowPairs(recurrence);
  {
    // Pin the in-window pair outputs already materialized: assembly unions
    // them later this recurrence, so the pair batch's own Puts must not
    // evict them in the meantime.
    const PaneRange w = geometry_.PanesForRecurrence(recurrence);
    for (PaneId l = w.first; l < w.last; ++l) {
      for (PaneId r = w.first; r < w.last; ++r) {
        for (int32_t part = 0; part < query_.config.num_reducers; ++part) {
          const CacheKey key =
              CacheKey::JoinOutput(query_.id, l, r, part);
          if (store_->Has(key)) {
            recurrence_leases_.push_back(store_->Acquire(key));
          }
        }
      }
    }
  }
  {
    // Pair-grain cache accounting: every in-window pair whose output is
    // already materialized is served from cache; the missing ones must run.
    const PaneRange w = geometry_.PanesForRecurrence(recurrence);
    const int64_t span = w.last - w.first;
    const int64_t misses = static_cast<int64_t>(missing.size());
    const int64_t hits = span * span - misses;
    if (hits > 0) {
      scope_.Increment(obs::metric::kCachePairHits, hits);
      counters_accum_.Increment(counter::kCachePairHits, hits);
      scope_.Emit(obs::event::kCachePairHit)
          .With("recurrence", recurrence)
          .With("count", hits);
    }
    if (misses > 0) {
      scope_.Increment(obs::metric::kCachePairMisses, misses);
      counters_accum_.Increment(counter::kCachePairMisses, misses);
      scope_.Emit(obs::event::kCachePairMiss)
          .With("recurrence", recurrence)
          .With("count", misses);
    }
  }
  if (missing.empty()) return;  // Everything cached already.

  // Strategy choice on steady-state costs: the pair path's recurring work
  // is the pairs involving freshly arrived panes, regardless of how large
  // the transition investment is this window (a myopic comparison on
  // `missing` would lock the driver into recompute forever, since pairs
  // retired by a recompute window have no cached output).
  const PaneRange window = geometry_.PanesForRecurrence(recurrence);
  const PaneRange fresh = geometry_.NewPanesForRecurrence(recurrence);
  std::vector<PanePairWorkItem> steady_pairs;
  for (PaneId l = window.first; l < window.last; ++l) {
    for (PaneId r = window.first; r < window.last; ++r) {
      if (fresh.Contains(l) || fresh.Contains(r)) {
        steady_pairs.push_back(PanePairWorkItem{query_.id, l, r});
      }
    }
  }
  const bool choose_pairs =
      !options_.cache.hybrid_join_strategy ||
      EstimatePairPathCost(steady_pairs) <=
          EstimateRecomputePathCost(recurrence);
  if (choose_pairs) {
    // The pair path needs every in-window pane's reducer inputs cached
    // first (pairs read from caches), then recomputes the missing pairs —
    // including panes that became cache-ready during this preparation.
    EnsureWindowPanesCached(recurrence);
    const std::vector<PanePairWorkItem> needed =
        MissingWindowPairs(recurrence);
    RunPanePairBatch(needed);
    for (const PanePairWorkItem& p : needed) {
      deferred_pair_keys_.erase({p.left, p.right});
    }
  } else {
    RunJoinWindowRecompute(recurrence);
    // Deferred in-window pairs are covered by the recompute.
    deferred_pairs_.erase(
        std::remove_if(deferred_pairs_.begin(), deferred_pairs_.end(),
                       [&](const PanePairWorkItem& p) {
                         if (controller_.IsPanePairDone(query_.id, p.left,
                                                        p.right)) {
                           deferred_pair_keys_.erase({p.left, p.right});
                           return true;
                         }
                         return false;
                       }),
        deferred_pairs_.end());
  }
}

void RedoopDriver::EmitPaneCacheStats(int64_t recurrence) {
  if (Effective(query_.pattern, options_) == EffectivePattern::kNoCaching) {
    return;  // No cache tier enabled; hit/miss is meaningless.
  }
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it == pane_states_.end()) continue;  // Pane carried no data.
      const PaneIngestState& ps = it->second;
      bool cached = !ps.ric_names.empty() || !ps.roc_names.empty();
      // Compressed footprint of the at-rest payloads backing this pane —
      // the bytes a hit actually moves (columnar entries report their
      // encoded image; row entries report logical size).
      int64_t compressed = 0;
      for (const CacheKey& key : ps.ric_names) {
        const CacheStore::Entry* entry = store_->Find(key);
        if (entry == nullptr) cached = false;
        else compressed += entry->compressed_bytes;
      }
      for (const CacheKey& key : ps.roc_names) {
        const CacheStore::Entry* entry = store_->Find(key);
        if (entry == nullptr) cached = false;
        else compressed += entry->compressed_bytes;
      }
      const bool built_now =
          panes_built_this_recurrence_.count({qs.id, p}) > 0;
      const bool hit = cached && !built_now;
      if (hit) {
        scope_.Increment(obs::metric::kCachePaneHits);
        scope_.Increment(obs::metric::kCachePaneHitBytes, ps.bytes);
        scope_.Increment(obs::metric::kCachePaneHitCompressedBytes,
                         compressed);
        counters_accum_.Increment(counter::kCachePaneHits);
      } else {
        scope_.Increment(obs::metric::kCachePaneMisses);
        scope_.Increment(obs::metric::kCachePaneMissBytes, ps.bytes);
        counters_accum_.Increment(counter::kCachePaneMisses);
      }
      obs::Event& verdict =
          scope_.Emit(hit ? obs::event::kCachePaneHit
                          : obs::event::kCachePaneMiss)
              .With("recurrence", recurrence)
              .With("source", qs.id)
              .With("pane", p)
              .With("bytes", ps.bytes)
              .With("reason", hit          ? "reused"
                              : built_now ? "built_this_recurrence"
                                          : "uncached");
      // Only hits report compressed traffic: a miss moves no cached bytes.
      if (hit) verdict.With("compressed_bytes", compressed);
      // Lineage: a reuse hit consumes the artifact built in an earlier
      // window — name that window so the trace's follows-from edge points
      // at the right pane span even after rebuilds.
      if (hit) {
        auto built = pane_built_window_.find({qs.id, p});
        if (built != pane_built_window_.end()) {
          verdict.With("built_in", built->second);
        }
      }
    }
  }
}

WindowReport RedoopDriver::AssembleWindow(int64_t recurrence) {
  const EffectivePattern pattern = Effective(query_.pattern, options_);
  const PaneRange panes = geometry_.PanesForRecurrence(recurrence);
  const int32_t num_partitions = query_.config.num_reducers;

  EmitPaneCacheStats(recurrence);

  JobSpec spec;
  spec.config = BaseJobConfig(StringPrintf("window-%ld", recurrence));
  spec.output_prefix = query_.OutputPathForRecurrence(recurrence);

  switch (pattern) {
    case EffectivePattern::kPerPaneMerge: {
      // Merge per-pane partial aggregates (pane-based, not tuple-based).
      spec.config.reducer =
          query_.finalizer ? query_.finalizer : query_.config.reducer;
      const SourceId source = query_.sources[0].id;
      for (PaneId p = panes.first; p < panes.last; ++p) {
        auto caches = controller_.CachesForPane(query_.id, source, p,
                                                CacheType::kReduceOutput);
        auto sides = SideInputsFor(caches);
        spec.side_inputs.insert(spec.side_inputs.end(), sides.begin(),
                                sides.end());
      }
      break;
    }
    case EffectivePattern::kPanePairJoinNoOutputCache:
      // Without pair-output caching, each window is re-joined from the
      // cached reducer inputs — exactly the folded recompute below.
      [[fallthrough]];
    case EffectivePattern::kCachedInputRecompute: {
      // The folded window job (paper Fig. 5): map only the fresh panes,
      // pull the overlapping panes from the reducer-input caches, and keep
      // the fresh panes' shuffled inputs as next window's caches.
      JobSpec folded = BuildFoldedWindowSpec(recurrence);
      folded.config.name = spec.config.name;
      if (query_.finalizer != nullptr &&
          query_.pattern == IncrementalPattern::kPerPaneMerge) {
        // Input-cache-only mode reduces whole windows directly, so the
        // window finalization composes into the reduce per key group.
        folded.config.reducer = std::make_shared<const ComposedReducer>(
            query_.config.reducer, query_.finalizer);
      }
      JobResult result = runner_->Run(folded);
      REDOOP_CHECK(result.status.ok()) << result.status.ToString();
      RegisterJobCaches(result, /*source_for_roc=*/0, kInvalidPane);
      AccumulateJobStats(result);
      FinishFoldedPanes(recurrence);

      WindowReport report;
      report.recurrence = recurrence;
      report.output = std::move(result.output);
      SortByKey(&report.output);
      report.output_records = static_cast<int64_t>(report.output.size());
      for (const QuerySource& qs : query_.sources) {
        for (PaneId p = panes.first; p < panes.last; ++p) {
          auto it = pane_states_.find({qs.id, p});
          if (it != pane_states_.end())
            report.window_input_bytes += it->second.bytes;
        }
      }
      return report;
    }
    case EffectivePattern::kPanePairJoin: {
      if (join_window_override_.has_value()) {
        // The recompute path already produced (and published) the window
        // output in one pass over the cached reducer inputs.
        WindowReport report;
        report.recurrence = recurrence;
        report.output = std::move(*join_window_override_);
        join_window_override_.reset();
        SortByKey(&report.output);
        report.output_records = static_cast<int64_t>(report.output.size());
        for (const QuerySource& qs : query_.sources) {
          for (PaneId p = panes.first; p < panes.last; ++p) {
            auto it = pane_states_.find({qs.id, p});
            if (it != pane_states_.end())
              report.window_input_bytes += it->second.bytes;
          }
        }
        return report;
      }
      // The window result is the union of the in-window pane-pair outputs.
      // Each pair's output was already materialized (and written to the
      // job output area in HDFS) exactly once, when the pair task ran;
      // finalization is a pure metadata union — no re-reading or
      // re-writing of result bytes (this is where the join's Fig. 7 gains
      // come from: Hadoop rewrites the whole window's output every
      // recurrence).
      WindowReport report;
      report.recurrence = recurrence;
      for (PaneId l = panes.first; l < panes.last; ++l) {
        for (PaneId r = panes.first; r < panes.last; ++r) {
          for (int32_t part = 0; part < num_partitions; ++part) {
            const CacheSignature* sig = controller_.Find(
                JoinOutputCacheName(query_.id, l, r, part));
            REDOOP_CHECK(sig != nullptr)
                << "missing pair output " << l << "x" << r << " R" << part;
            if (sig->records == 0) continue;
            const CacheStore::Entry* entry =
                store_->Find(CacheKey::FromName(sig->name));
            REDOOP_CHECK(entry != nullptr);
            entry->payload()->AppendToKeyValues(&report.output);
          }
        }
      }
      SortByKey(&report.output);
      report.output_records = static_cast<int64_t>(report.output.size());
      last_join_output_bytes_ = TotalLogicalBytes(report.output);
      for (const QuerySource& qs : query_.sources) {
        for (PaneId p = panes.first; p < panes.last; ++p) {
          auto it = pane_states_.find({qs.id, p});
          if (it != pane_states_.end())
            report.window_input_bytes += it->second.bytes;
        }
      }
      return report;
    }
    case EffectivePattern::kNoCaching: {
      // Degenerate mode: recompute the window from the pane files.
      for (const QuerySource& qs : query_.sources) {
        spec.per_source_mappers[qs.id] = query_.MapperFor(qs.id);
        for (PaneId p = panes.first; p < panes.last; ++p) {
          auto it = pane_states_.find({qs.id, p});
          if (it == pane_states_.end()) continue;
          for (const FileSlice& slice : it->second.all_slices) {
            MapInput input;
            input.file_name = slice.file_name;
            input.source = qs.id;
            input.pane = p;
            input.record_begin = slice.record_begin;
            input.record_end = slice.record_end;
            spec.map_inputs.push_back(std::move(input));
          }
        }
      }
      break;
    }
  }

  JobResult result = runner_->Run(spec);
  REDOOP_CHECK(result.status.ok()) << result.status.ToString();
  AccumulateJobStats(result);

  WindowReport report;
  report.recurrence = recurrence;
  report.output = std::move(result.output);
  SortByKey(&report.output);
  report.output_records = static_cast<int64_t>(report.output.size());
  for (const QuerySource& qs : query_.sources) {
    for (PaneId p = panes.first; p < panes.last; ++p) {
      auto it = pane_states_.find({qs.id, p});
      if (it != pane_states_.end()) report.window_input_bytes += it->second.bytes;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Recurrence loop
// ---------------------------------------------------------------------------

StatusOr<WindowReport> RedoopDriver::RunRecurrence(int64_t recurrence) {
  REDOOP_RETURN_IF_ERROR(init_status_);
  if (recurrence != next_recurrence_) {
    return Status::FailedPrecondition(StringPrintf(
        "recurrence %lld out of order (expected %lld): recurrences must "
        "run consecutively",
        static_cast<long long>(recurrence),
        static_cast<long long>(next_recurrence_)));
  }
  ++next_recurrence_;

  const Timestamp trigger = geometry_.TriggerTime(recurrence);
  const Timestamp window_end = geometry_.WindowEnd(recurrence);
  Simulator& sim = cluster_->simulator();

  panes_built_this_recurrence_.clear();
  telemetry_window_ = recurrence;  // Scopes stamp this onto every event.
  // Window trace context: every scope copy points at trace_ctx_, so one
  // store here makes the whole component tree stamp this window's ids.
  // The trace id hashes the same system/query labels the journal stamps.
  const int64_t sample_period = options_.trace.sample_period;
  trace_ctx_.trace_id = obs::trace::TraceIdFor(
      obs_->journal().CommonFieldOr("system", ""), query_.name);
  trace_ctx_.span_id =
      obs::trace::WindowSpanId(trace_ctx_.trace_id, recurrence);
  trace_ctx_.window = recurrence;
  trace_ctx_.sampled =
      sample_period > 0 && recurrence % sample_period == 0;
  obs::Event& open =
      scope_.EmitAt(sim.Now(), obs::event::kWindowOpen)
          .With("recurrence", recurrence)
          .With("trigger", trigger)
          .With("window_begin", geometry_.WindowBegin(recurrence))
          .With("window_end", window_end);
  const double deadline = query_.EffectiveDeadline();
  if (deadline > 0) open.With("deadline", deadline);

  // Fleet admission (DESIGN §17): the coordinator's fair-share queue set
  // this note just before dispatching; journal it inside the window
  // bracket so per-tenant slot-wait lands on the right recurrence.
  if (pending_admission_.has_value()) {
    const FleetAdmission& adm = *pending_admission_;
    scope_.Increment(obs::metric::kFleetAdmitted);
    scope_.Record(obs::metric::kFleetAdmissionWait, adm.wait_s);
    scope_.SetGauge(obs::metric::kFleetQueueDepth,
                    static_cast<double>(adm.queued));
    scope_.EmitAt(sim.Now(), obs::event::kFleetAdmit)
        .With("recurrence", recurrence)
        .With("wait", adm.wait_s)
        .With("queued", adm.queued)
        .With("attained", adm.attained_s)
        .With("weight", adm.weight);
    pending_admission_.reset();
  }

  // 1. Ingest the inter-trigger data; the packer materializes panes and, in
  //    proactive mode, partial processing happens as data lands.
  IngestInterval(geometry_.WindowBegin(recurrence), window_end);
  for (const QuerySource& qs : query_.sources) {
    HandlePaneFiles(qs.id, packers_[qs.id]->FlushUpTo(window_end));
  }
  if (proactive_mode_) DrainWorkLists();

  // 2. Wait for the trigger (or start late if the previous window overran).
  if (sim.Now() < static_cast<SimTime>(trigger)) {
    sim.RunUntil(static_cast<SimTime>(trigger));
  }
  scope_.EmitAt(sim.Now(), obs::event::kWindowTrigger)
      .With("recurrence", recurrence)
      .With("trigger", trigger);

  // 3. Remaining incremental work, failure repair, and window assembly.
  DrainWorkLists();
  EnsureWindowPanes(recurrence);
  PrepareJoinWindow(recurrence);
  WindowReport report = AssembleWindow(recurrence);

  report.trigger_time = trigger;
  report.finished_at = sim.Now();
  report.response_time = sim.Now() - static_cast<SimTime>(trigger);
  if (query_.emit_deltas) {
    report.delta = ComputeWindowDelta(previous_output_, report.output);
    previous_output_ = report.output;
  }
  report.shuffle_time = shuffle_accum_;
  report.reduce_time = reduce_accum_;
  report.map_phase_time = map_phase_accum_;
  report.fresh_input_bytes = fresh_bytes_accum_;
  report.counters = counters_accum_;
  report.task_reports = std::move(task_reports_accum_);
  task_reports_accum_.clear();
  shuffle_accum_ = 0.0;
  reduce_accum_ = 0.0;
  map_phase_accum_ = 0.0;
  fresh_bytes_accum_ = 0;
  counters_accum_ = Counters();

  scope_.Increment(obs::metric::kWindowsCompleted);
  scope_.Record(obs::metric::kWindowResponseTime,
                         report.response_time);
  // Always-sample-on-SLO-violation: an unsampled window that blew its
  // deadline is promoted retroactively, so its completion record (and the
  // teardown that follows) is traceable; the marker explains why stamps
  // appear mid-window.
  if (!trace_ctx_.sampled && trace_ctx_.active() && deadline > 0 &&
      report.response_time > deadline) {
    trace_ctx_.sampled = true;
    scope_.EmitAt(report.finished_at, obs::event::kTraceSample)
        .With("recurrence", recurrence)
        .With("reason", "slo_violation");
  }
  scope_.EmitAt(report.finished_at, obs::event::kWindowComplete)
      .With("recurrence", recurrence)
      .With("trigger", trigger)
      .With("response_time", report.response_time)
      .With("output_records", report.output_records)
      .With("fresh_bytes", report.fresh_input_bytes);

  AfterRecurrence(recurrence, report);
  telemetry_window_ = -1;  // Between-recurrence events are unattributed.
  trace_ctx_ = obs::trace::TraceContext();  // ... and untraced.
  return report;
}

void RedoopDriver::AfterRecurrence(int64_t recurrence,
                                   const WindowReport& report) {
  // The profiler tracks the recurrence's total execution time — the sum of
  // all job time spent for this window, whether it ran before the trigger
  // (proactively) or after. Observing the response time instead would make
  // the control loop disengage proactive mode the moment it helps. The
  // cold recurrence 0 (a whole window of backlog, an order of magnitude
  // above steady state) is excluded — feeding it in poisons the Holt trend
  // with a huge negative slope for several recurrences.
  if (recurrence > 0) {
    profiler_.Observe(std::max(work_accum_, report.response_time),
                      report.fresh_input_bytes);
  }
  work_accum_ = 0.0;

  // Adaptive re-planning (paper §3.3): forecast next execution time; when
  // it threatens the slide budget, switch to finer sub-panes + proactive
  // early processing.
  if (options_.adaptive.enabled && profiler_.observation_count() >= 2) {
    const double budget =
        options_.adaptive.proactive_threshold * static_cast<double>(query_.slide());
    const double forecast = profiler_.Forecast(1);
    const double scale = budget > 0 ? forecast / budget : 0.0;
    for (const QuerySource& qs : query_.sources) {
      const double rate =
          static_cast<double>(source_window_bytes_[qs.id]) /
          static_cast<double>(query_.slide());
      PartitionPlan plan =
          analyzer_.Plan(query_.window(), SourceStatistics{rate});
      plan.pane_size = geometry_.pane_size();  // Grid possibly overridden.
      plan = analyzer_.AdaptPlan(plan, scale, options_.adaptive.max_subpanes);
      packers_[qs.id]->UpdatePlan(plan);
      current_plan_ = plan;
    }
    proactive_mode_ = current_plan_.subpanes_per_pane > 1;
  }
  source_window_bytes_.clear();

  // Expiration: flip doneQueryMask bits, shift the status matrix, route
  // purge notifications to the local cache registries.
  const std::vector<PurgeNotification> notifications =
      controller_.FinishRecurrence(query_.id, recurrence);
  for (const PurgeNotification& n : notifications) {
    const CacheKey key = CacheKey::FromName(n.name);
    if (n.node >= 0 && n.node < cluster_->num_nodes()) {
      registries_[static_cast<size_t>(n.node)]->MarkExpired(key);
      // Master -> node purge notification (paper §4.2) rides the bus too.
      cluster_->heartbeat_bus().Send(n.node, cluster_->simulator().Now(),
                                     "cache-expire", n.name);
    }
    store_->Remove(key);
  }
  // Retire this recurrence's pins, then trim the store back under budget.
  // Doing both here (not lease-by-lease) keeps the victim sequence a pure
  // function of the recurrence boundary, independent of lease destruction
  // order.
  recurrence_leases_.clear();
  store_->EnforceBudget();
  cluster_->heartbeat_bus().DeliverUpTo(cluster_->simulator().Now() +
                                        cluster_->heartbeat_bus().interval());
  // Periodic purging on every live node (paper §4.1).
  for (int32_t n = 0; n < cluster_->num_nodes(); ++n) {
    TaskNode& node = cluster_->node(n);
    if (!node.alive()) continue;
    registries_[static_cast<size_t>(n)]->MaybePeriodicPurge(
        &node, cluster_->simulator().Now());
  }
  // Retire driver-side pane state that no future window can touch, along
  // with the pane files in DFS.
  const PaneRange next_window = geometry_.PanesForRecurrence(recurrence + 1);
  for (auto it = pane_states_.begin(); it != pane_states_.end();) {
    if (it->first.second < next_window.first) {
      for (const FileSlice& slice : it->second.all_slices) {
        if (cluster_->dfs().Exists(slice.file_name)) {
          // Multi-pane files may be shared with a live pane; only drop
          // files whose entire range expired.
          auto file_or = cluster_->dfs().GetFile(slice.file_name);
          if (file_or.ok() &&
              (*file_or)->time_end <=
                  geometry_.PaneBegin(next_window.first)) {
            REDOOP_CHECK_OK(cluster_->dfs().DeleteFile(slice.file_name));
          }
        }
      }
      it = pane_states_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<RunReport> RedoopDriver::Run(int64_t n) {
  RunReport report;
  report.system = options_.adaptive.enabled ? "redoop-adaptive" : "redoop";
  for (int64_t i = 0; i < n; ++i) {
    StatusOr<WindowReport> window = RunRecurrence(i);
    REDOOP_RETURN_IF_ERROR(window.status());
    report.windows.push_back(std::move(window).value());
  }
  report.observability = obs_->metrics().Snapshot();
  // Fold the per-query SLO rollup (deadline attainment, lag, cache hit
  // rate) into the exported snapshot. Derived from the journal alone, so
  // redoop_inspect reproduces these figures from the journal file.
  obs::analysis::AnalysisOptions slo_options;
  slo_options.group_by_query = true;
  obs::slo::ExportTo(obs::slo::ComputeSlo(obs_->journal(), slo_options),
                     &report.observability);
  return report;
}

// ---------------------------------------------------------------------------
// Ad-hoc queries over the cached history
// ---------------------------------------------------------------------------

StatusOr<std::vector<KeyValue>> RedoopDriver::RunAdHocQuery(Timestamp begin,
                                                            Timestamp end) {
  if (query_.pattern != IncrementalPattern::kPerPaneMerge) {
    return Status::InvalidArgument(
        "ad-hoc range queries are supported for aggregation "
        "(kPerPaneMerge) queries");
  }
  if (begin < 0 || end <= begin) {
    return Status::InvalidArgument("empty or negative ad-hoc range");
  }
  const Timestamp pane_size = geometry_.pane_size();
  const PaneId first_pane = begin / pane_size;
  const PaneId last_pane = (end + pane_size - 1) / pane_size;  // Exclusive.
  const SourceId source = query_.sources[0].id;

  JobSpec spec;
  spec.config = BaseJobConfig(
      StringPrintf("adhoc-%ld-%ld", begin, end));
  spec.config.reducer =
      query_.finalizer
          ? std::static_pointer_cast<const Reducer>(
                std::make_shared<const ComposedReducer>(query_.config.reducer,
                                                        query_.finalizer))
          : query_.config.reducer;

  // The retained horizon starts at the oldest pane still tracked; ranges
  // reaching before it cannot be answered (their files were reclaimed).
  if (!pane_states_.empty() &&
      first_pane < pane_states_.begin()->first.second) {
    return Status::OutOfRange(StringPrintf(
        "ad-hoc range starts at pane %ld but history begins at pane %ld",
        first_pane, pane_states_.begin()->first.second));
  }

  for (PaneId p = first_pane; p < last_pane; ++p) {
    auto it = pane_states_.find({source, p});
    if (it == pane_states_.end()) continue;  // Pane carried no data.
    const PaneIngestState& ps = it->second;
    const bool fully_covered =
        begin <= geometry_.PaneBegin(p) && geometry_.PaneEnd(p) <= end;
    const bool has_cached_outputs = fully_covered && !ps.roc_names.empty();
    bool served_from_cache = false;
    if (has_cached_outputs) {
      // Serve the pane from its cached partial outputs.
      served_from_cache = true;
      for (const CacheKey& key : ps.roc_names) {
        const CacheSignature* sig = controller_.Find(key.name());
        if (sig == nullptr || !store_->Has(key)) {
          served_from_cache = false;
          break;
        }
      }
      if (served_from_cache) {
        for (const CacheKey& key : ps.roc_names) {
          AppendSideInput(*controller_.Find(key.name()), &spec.side_inputs);
        }
      }
    }
    if (!served_from_cache) {
      // Re-map the pane's files, clipped to the requested range.
      spec.per_source_mappers[source] =
          std::make_shared<const WindowFilterMapper>(query_.MapperFor(source),
                                                     begin, end);
      for (const FileSlice& slice : ps.all_slices) {
        MapInput input;
        input.file_name = slice.file_name;
        input.source = source;
        input.pane = p;
        input.record_begin = slice.record_begin;
        input.record_end = slice.record_end;
        spec.map_inputs.push_back(std::move(input));
      }
    }
  }

  JobResult result = runner_->Run(spec);
  REDOOP_RETURN_IF_ERROR(result.status);
  AccumulateJobStats(result);
  std::vector<KeyValue> output = std::move(result.output);
  SortByKey(&output);
  return output;
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

void RedoopDriver::OnCacheLossEvent(NodeId node,
                                    const std::vector<std::string>& lost) {
  for (const std::string& name : lost) {
    WindowAwareCacheController::LossImpact impact =
        controller_.OnCacheLost(node, name);
    for (const PurgeNotification& n : impact.lost_caches) {
      store_->Remove(CacheKey::FromName(n.name));
      if (n.node >= 0 && n.node < cluster_->num_nodes()) {
        if (n.node != node && cluster_->node(n.node).alive()) {
          cluster_->node(n.node).DeleteLocalFile(n.name);
        }
        registries_[static_cast<size_t>(n.node)]->Remove(
            CacheKey::FromName(n.name));
      }
    }
  }
}

void RedoopDriver::OnCacheEvicted(const CacheStore::EvictionNotice& notice) {
  // The store already dropped the payload and journaled the eviction; this
  // rolls the *planner* back so the pane reads as recompute-needed: drop
  // the signature, flip the matrix/ready bits, clear stale work-list
  // entries, and purge the node-side metadata and file. No eager rebuild —
  // a future window that actually reads the pane re-materializes it via
  // EnsureWindowPanes / MissingWindowPairs (lazy, no thrash under a tight
  // budget).
  const NodeId node = controller_.OnCacheEvicted(notice.key);
  if (node != kInvalidNode && node < cluster_->num_nodes()) {
    if (cluster_->node(node).alive()) {
      cluster_->node(node).DeleteLocalFile(notice.key.name());
    }
    registries_[static_cast<size_t>(node)]->Remove(notice.key);
  }
  // Fleet dedup (DESIGN §17): the evicted entry may be one physical image
  // shared with other queries — they lose it too. The fan-out drops the
  // index entry and calls every other holder's EvictFleetPane.
  if (options_.fleet != nullptr &&
      notice.key.kind() != CacheKey::Kind::kJoinOutput) {
    auto it = fleet_pane_keys_.find({notice.key.source(), notice.key.pane()});
    if (it != fleet_pane_keys_.end()) {
      const std::string content_key = it->second;
      const SourceId source = it->first.first;
      const PaneId pane = it->first.second;
      fleet_pane_keys_.erase(it);
      options_.fleet->FanoutEviction(content_key, source, pane, query_.id);
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet serving (DESIGN §17)
// ---------------------------------------------------------------------------

void RedoopDriver::NoteFleetAdmission(const FleetAdmission& note) {
  pending_admission_ = note;
}

bool RedoopDriver::FleetDedupEligible(
    SourceId source, PaneId pane, const std::vector<FileSlice>& slices,
    const std::vector<int32_t>& active_partitions) const {
  if (options_.fleet == nullptr || !options_.fleet->options().cache_dedup) {
    return false;
  }
  if (query_.pipeline_signature.empty()) return false;
  if (!active_partitions.empty()) return false;  // Partition-scoped rebuild.
  if (Effective(query_.pattern, options_) == EffectivePattern::kNoCaching) {
    return false;
  }
  auto it = pane_states_.find({source, pane});
  if (it == pane_states_.end()) return false;
  const PaneIngestState& ps = it->second;
  // Only the initial, complete, single-chunk build is content-addressable:
  // partial chunks and rebuilds depend on per-query ingest history.
  return ps.complete && ps.chunks_processed == 0 &&
         slices.size() == ps.all_slices.size() && ps.ric_names.empty() &&
         ps.roc_names.empty();
}

std::string RedoopDriver::FleetContentKey(SourceId source, PaneId pane) const {
  return CacheKey::ContentKey(
      query_.pipeline_signature,
      static_cast<int32_t>(Effective(query_.pattern, options_)), source,
      geometry_.pane_size(), pane);
}

bool RedoopDriver::TryAdoptPane(SourceId source, PaneId pane) {
  FleetContext* fleet = options_.fleet;
  const std::string content_key = FleetContentKey(source, pane);
  const std::vector<CacheImage>* images = fleet->dedup().Find(content_key);
  if (images == nullptr) return false;
  PaneIngestState& ps = pane_states_[{source, pane}];
  int64_t adopted_bytes = 0;
  for (const CacheImage& image : *images) {
    // Register the shared image under this query's own key and signature,
    // at the producer's node placement — exactly what RegisterJobCaches
    // would have done, minus the job.
    const CacheKey key =
        image.is_reduce_output
            ? CacheKey::ReduceOutput(query_.id, source, pane, image.partition)
            : CacheKey::ReduceInput(query_.id, source, pane, image.partition);
    CacheSignature sig;
    sig.name = key.name();
    sig.partition = image.partition;
    sig.node = image.node;
    sig.bytes = image.bytes;
    sig.records = image.records;
    sig.ready = CacheReady::kCacheAvailable;
    sig.type = image.is_reduce_output ? CacheType::kReduceOutput
                                      : CacheType::kReduceInput;
    sig.source = source;
    sig.pane = pane;
    if (sig.type == CacheType::kReduceInput) {
      ps.ric_names.push_back(key);
    } else {
      ps.roc_names.push_back(key);
    }
    panes_built_this_recurrence_.insert({source, pane});
    pane_built_window_[{source, pane}] = telemetry_window_;
    store_->Put(key, CacheStore::PanePayload(image.payload),
                CacheStore::PaneStats{sig.bytes, sig.records});
    recurrence_leases_.push_back(store_->Acquire(key));
    registries_[static_cast<size_t>(sig.node)]->AddEntry(key, sig.type,
                                                         sig.bytes);
    cluster_->heartbeat_bus().Send(sig.node, cluster_->simulator().Now(),
                                   "cache-add", sig.name);
    adopted_bytes += sig.bytes;
    controller_.AddSignature(std::move(sig), query_.id);
  }
  cluster_->heartbeat_bus().DeliverUpTo(cluster_->simulator().Now());
  fleet->dedup().AddHolder(content_key, query_.id);
  fleet_pane_keys_[{source, pane}] = content_key;
  ++fleet->stats().dedup_adoptions;
  fleet->stats().dedup_bytes += adopted_bytes;
  scope_.Increment(obs::metric::kFleetDedupAdoptions);
  scope_.Increment(obs::metric::kFleetDedupBytes, adopted_bytes);
  scope_.Emit(obs::event::kFleetAdopt)
      .With("source", static_cast<int64_t>(source))
      .With("pane", static_cast<int64_t>(pane))
      .With("bytes", adopted_bytes)
      .With("images", static_cast<int64_t>(images->size()));
  return true;
}

void RedoopDriver::PublishFleetPane(
    SourceId source, PaneId pane,
    const std::vector<MaterializedCache>& caches) {
  if (caches.empty()) return;
  const std::string content_key = FleetContentKey(source, pane);
  std::vector<CacheImage> images;
  images.reserve(caches.size());
  for (const MaterializedCache& cache : caches) {
    CacheImage image;
    image.is_reduce_output = cache.is_reduce_output;
    image.partition = cache.partition;
    image.node = cache.node;
    image.bytes = cache.bytes;
    image.records = cache.records;
    image.payload = cache.payload;
    images.push_back(std::move(image));
  }
  options_.fleet->dedup().Publish(content_key, source, pane,
                                  geometry_.pane_size(), query_.id,
                                  std::move(images));
  fleet_pane_keys_[{source, pane}] = content_key;
  ++options_.fleet->stats().dedup_published;
  scope_.Increment(obs::metric::kFleetDedupPublished);
}

void RedoopDriver::EvictFleetPane(SourceId source, PaneId pane) {
  auto it = fleet_pane_keys_.find({source, pane});
  if (it == fleet_pane_keys_.end()) return;
  fleet_pane_keys_.erase(it);
  auto ps_it = pane_states_.find({source, pane});
  if (ps_it == pane_states_.end()) return;
  PaneIngestState& ps = ps_it->second;
  int64_t dropped = 0;
  int64_t dropped_bytes = 0;
  auto drop = [&](const CacheKey& key) {
    if (!store_->Has(key)) return;
    const CacheStore::Entry* entry = store_->Find(key);
    dropped_bytes += entry->bytes;
    store_->Remove(key);  // Remove never re-enters eviction callbacks.
    const NodeId node = controller_.OnCacheEvicted(key);
    if (node != kInvalidNode && node < cluster_->num_nodes()) {
      if (cluster_->node(node).alive()) {
        cluster_->node(node).DeleteLocalFile(key.name());
      }
      registries_[static_cast<size_t>(node)]->Remove(key);
    }
    ++dropped;
  };
  for (const CacheKey& key : ps.ric_names) drop(key);
  for (const CacheKey& key : ps.roc_names) drop(key);
  // Manifests stay intact: EnsureWindowPanes sees the missing store
  // entries and rebuilds the pane lazily, only when a window reads it.
  scope_.Increment(obs::metric::kFleetDedupEvictFanout);
  scope_.Emit(obs::event::kFleetEvictFanout)
      .With("source", static_cast<int64_t>(source))
      .With("pane", static_cast<int64_t>(pane))
      .With("entries", dropped)
      .With("bytes", dropped_bytes);
}

}  // namespace redoop
