#ifndef REDOOP_CORE_CACHE_CONTROLLER_H_
#define REDOOP_CORE_CACHE_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/cache_key.h"
#include "core/cache_status_matrix.h"
#include "core/cache_types.h"
#include "core/recurring_query.h"
#include "core/window.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// An entry of the master's map task list (paper §4.3): a pane whose data
/// became available in HDFS (ready bit 1) and needs its map/caching pass —
/// or whose caches were lost and must be rebuilt.
struct PaneWorkItem {
  QueryId query = 0;
  SourceId source = 0;
  PaneId pane = kInvalidPane;
  /// HDFS pane/sub-pane files carrying this pane's records.
  std::vector<std::string> files;
  bool rebuild = false;
};

/// An entry of the reduce task list: a pane pair whose reduce-input caches
/// are both available (ready bit 2) and which lies within the panes'
/// lifespans (join queries).
struct PanePairWorkItem {
  QueryId query = 0;
  PaneId left = kInvalidPane;
  PaneId right = kInvalidPane;
};

/// A purge notification the master sends to a task node's local cache
/// registry once a cache's doneQueryMask is fully set (paper §4.2).
struct PurgeNotification {
  NodeId node = kInvalidNode;
  std::string name;
};

/// The Window-Aware Cache Controller (paper §4.2): master-side metadata for
/// every cache on any task node's local FS. Maintains cache signatures
/// (ready bits, doneQueryMask), per-join-query cache status matrices, the
/// map/reduce task lists that feed the scheduler, pane lifecycle state, and
/// the expiration/purge pipeline. All operations are metadata-only and
/// cheap (the micro-benchmarks verify the paper's "negligible overhead"
/// claim).
class WindowAwareCacheController {
 public:
  WindowAwareCacheController() = default;
  WindowAwareCacheController(const WindowAwareCacheController&) = delete;
  WindowAwareCacheController& operator=(const WindowAwareCacheController&) =
      delete;

  /// Registers a query; its bit position in every doneQueryMask is the
  /// returned index. `pane_size` fixes the pane grid of its sources.
  int32_t RegisterQuery(const RecurringQuery& query, Timestamp pane_size);

  int32_t query_count() const { return static_cast<int32_t>(queries_.size()); }

  // --- Pane lifecycle ---------------------------------------------------

  /// Pane data landed in HDFS (ready bit -> 1); the pane joins the map task
  /// list. Call again for additional files of the same pane (sub-panes);
  /// the files accumulate but the pane is listed once.
  void OnPaneInHdfs(QueryId query, SourceId source, PaneId pane,
                    const std::vector<std::string>& files);

  /// All reduce-input caches of the pane are materialized (ready bit -> 2).
  /// For join queries, newly runnable pane pairs (both cached, within
  /// lifespan, not yet done) enter the reduce task list.
  void OnPaneCached(QueryId query, SourceId source, PaneId pane);

  CacheReady PaneReady(QueryId query, SourceId source, PaneId pane) const;
  std::vector<std::string> PaneFiles(QueryId query, SourceId source,
                                     PaneId pane) const;

  // --- Cache signatures ---------------------------------------------------

  /// Registers a cache file created on a node. Bits of queries that never
  /// use the cache are pre-set (paper: set to 1 at initialization time).
  void AddSignature(CacheSignature signature, QueryId owner);

  const CacheSignature* Find(const std::string& name) const;
  /// All signatures for (source, pane) of the given type, partition order.
  std::vector<const CacheSignature*> CachesForPane(QueryId query,
                                                   SourceId source, PaneId pane,
                                                   CacheType type) const;
  size_t signature_count() const { return signatures_.size(); }

  // --- Join bookkeeping ---------------------------------------------------

  void MarkPanePairDone(QueryId query, PaneId left, PaneId right);
  bool IsPanePairDone(QueryId query, PaneId left, PaneId right) const;
  const CacheStatusMatrix* matrix(QueryId query) const;

  // --- Task lists ---------------------------------------------------------

  std::optional<PaneWorkItem> PopMapTask();
  std::optional<PanePairWorkItem> PopReduceTask();
  size_t map_task_list_size() const { return map_task_list_.size(); }
  size_t reduce_task_list_size() const { return reduce_task_list_.size(); }

  // --- Expiration / purging -----------------------------------------------

  /// Declares recurrence `recurrence` of `query` complete. Flips
  /// doneQueryMask bits of caches the query no longer needs, shifts the
  /// status matrix, and returns purge notifications for now-expired caches
  /// (their signatures are dropped here; local registries purge lazily).
  std::vector<PurgeNotification> FinishRecurrence(QueryId query,
                                                  int64_t recurrence);

  // --- Failure recovery (paper §5) ----------------------------------------

  struct LossImpact {
    /// Panes whose reduce-input caches were lost: ready bit rolled back to
    /// 1 (HDFS-available) and a rebuild item inserted into the map task
    /// list. Pending reduce-list pairs using them were evicted.
    std::vector<PaneWorkItem> rebuilds;
    /// Caches invalidated by the loss (the lost file plus sibling caches
    /// that the rebuild will re-materialize), with their last known node.
    std::vector<PurgeNotification> lost_caches;
  };

  /// Rolls back metadata for one lost cache file.
  LossImpact OnCacheLost(NodeId node, const std::string& name);

  /// Rolls back metadata for every cache that lived on a dead node.
  LossImpact OnNodeLost(NodeId node);

  /// Drops one signature without rollback (driver-initiated invalidation
  /// before a pane rebuild). No-op when unknown. Returns the dropped
  /// signature's node, or kInvalidNode.
  NodeId DropSignature(const std::string& name);

  /// Rolls back metadata for a cache the budget-bounded store evicted.
  /// Unlike OnCacheLost this never enqueues an eager rebuild — under
  /// budget pressure that would thrash (evict, rebuild, evict again);
  /// recovery is lazy, riding the driver's window-preparation checks
  /// (manifest validation and missing-pair scans) so an evicted pane is
  /// recomputed only when a window actually reads it again. For a
  /// join-output cache the status-matrix cell flips back to not-done iff
  /// a future (unfinished) window still uses the pair. Returns the
  /// evicted signature's node, or kInvalidNode when unknown.
  NodeId OnCacheEvicted(const CacheKey& key);

  /// Journals cache lifecycle decisions (add/evict/invalidate/rebuild,
  /// pane readiness, matrix transitions) through an attribution scope:
  /// events carry the scope's query/window and counters land on the
  /// labeled per-query series too.
  void set_telemetry(obs::TelemetryScope scope) {
    scope_ = std::move(scope);
  }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    scope_ = obs::TelemetryScope(obs);
  }

 private:
  struct PaneState {
    CacheReady ready = CacheReady::kNotAvailable;
    std::vector<std::string> files;
    bool in_map_list = false;
  };

  struct QueryState {
    RecurringQuery query;  // Copy of the registration-time spec.
    int32_t mask_bit = 0;
    Timestamp pane_size = 0;
    std::unique_ptr<WindowGeometry> geometry;
    std::unique_ptr<CacheStatusMatrix> matrix;  // Join queries only.
    std::map<std::pair<SourceId, PaneId>, PaneState> panes;
    /// Names of caches owned by this query, keyed by (source, pane).
    std::multimap<std::pair<SourceId, PaneId>, std::string> caches_by_pane;
    /// Join-output caches keyed by (left, right).
    std::multimap<std::pair<PaneId, PaneId>, std::string> caches_by_pair;
    std::set<std::pair<PaneId, PaneId>> pairs_enqueued;
    /// Highest recurrence FinishRecurrence has sealed — the horizon that
    /// decides whether an evicted pane pair still has a future reader.
    int64_t last_finished_recurrence = -1;
  };

  QueryState* FindQuery(QueryId id);
  const QueryState* FindQuery(QueryId id) const;
  void EnqueueReadyPairs(QueryState* q, SourceId source, PaneId pane);
  void ExpireCache(const std::string& name, QueryState* q,
                   std::vector<PurgeNotification>* out);
  LossImpact HandleLostCache(NodeId node, const std::string& name);

  std::map<QueryId, std::unique_ptr<QueryState>> queries_;
  std::map<std::string, CacheSignature> signatures_;
  std::deque<PaneWorkItem> map_task_list_;
  std::deque<PanePairWorkItem> reduce_task_list_;
  obs::TelemetryScope scope_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_CONTROLLER_H_
