#ifndef REDOOP_CORE_RECURRING_QUERY_H_
#define REDOOP_CORE_RECURRING_QUERY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "core/window.h"
#include "mapreduce/job.h"

namespace redoop {

/// One evolving input of a recurring query and its window constraint.
struct QuerySource {
  SourceId id = 0;
  std::string name;
  WindowSpec window;
};

/// How consecutive recurrences share work (the paper's finalization
/// patterns, §2.1/§5):
///  - kPerPaneMerge: the reduce function is an associative partial
///    aggregator; Redoop caches per-pane reduce outputs and the window
///    result is a merge of pane partials (aggregation queries).
///  - kPanePairJoin: two sources; Redoop caches per-pane reduce inputs and
///    computes pane-pair join outputs driven by the cache status matrix;
///    the window result is the union of in-window pane-pair outputs.
///  - kCachedInputRecompute: Redoop caches per-pane reduce inputs only and
///    re-reduces the whole window from caches each recurrence (fallback for
///    non-decomposable reduce functions; also the cache ablation midpoint).
enum class IncrementalPattern {
  kPerPaneMerge,
  kPanePairJoin,
  kCachedInputRecompute,
};

/// A registered recurring query (paper §5 API): the map/reduce body exactly
/// as in Hadoop, window constraints per source, the execution frequency,
/// and the finalization that merges partial outputs into the window result.
struct RecurringQuery {
  QueryId id = 0;
  std::string name = "query";

  /// The user job body. `config.num_reducers` is fixed across recurrences
  /// (required for cache validity, paper §4.3).
  JobConfig config;

  /// Per-source mapper overrides (e.g. join-side tagging); sources not
  /// listed use config.mapper.
  std::map<SourceId, std::shared_ptr<const Mapper>> source_mappers;

  std::vector<QuerySource> sources;

  /// The mapper for one source (override or the default).
  std::shared_ptr<const Mapper> MapperFor(SourceId source) const;

  IncrementalPattern pattern = IncrementalPattern::kPerPaneMerge;

  /// Content signature of the query's upstream pipeline: everything that
  /// determines a cached pane's bytes given (source, pane grid) — the
  /// mapper, combiner, partitioner, and reducer count. Queries with equal
  /// non-empty signatures over the same source and pane size produce
  /// byte-identical cached panes, so the fleet dedup layer (DESIGN §17)
  /// can share one physical image between them. Empty (the default) opts
  /// the query out of cross-query dedup; query factories set it.
  std::string pipeline_signature;

  /// Update-style delivery (the paper's Example 2): when set, every
  /// WindowReport also carries the delta of the window's result against
  /// the previous recurrence's (added/removed rows). The full result is
  /// still produced; deltas are derived from the sorted outputs.
  bool emit_deltas = false;

  /// Per-window completion deadline in seconds from the trigger, used by
  /// the SLO tracker (attainment / lag). Negative (the default) means
  /// "one slide" — a recurring query that cannot finish within its slide
  /// falls behind its own cadence, so the slide is the natural SLO. Zero
  /// disables deadline tracking entirely (no attainment, no lag).
  double deadline_s = -1.0;

  /// The effective deadline: deadline_s, defaulted to the slide; 0 when
  /// tracking is disabled.
  double EffectiveDeadline() const;

  /// Finalization: merges partial outputs (per-pane or per-pane-pair) into
  /// the window result. For kPerPaneMerge the default (null) reuses
  /// `config.reducer` — correct whenever the reducer is a semigroup
  /// (sum-of-sums == sum). For kPanePairJoin the default is a pure union.
  std::shared_ptr<const Reducer> finalizer;

  /// Output location in DFS for recurrence i; default
  /// "out/<name>/rec-<i>" (the paper's GetOutputPaths contract: a unique
  /// path per recurrence).
  std::function<std::string(int64_t recurrence)> get_output_path;

  /// The query's execution frequency == the slide shared by its sources.
  Timestamp slide() const;
  /// The (common) window spec. The engine requires all sources of one
  /// query to share win/slide, as in the paper's experiments.
  const WindowSpec& window() const;

  std::string OutputPathForRecurrence(int64_t recurrence) const;

  /// Validates shape invariants (>=1 source, equal windows, reducer set,
  /// pattern/source-count consistency). Aborts on violation.
  void CheckValid() const;
};

}  // namespace redoop

#endif  // REDOOP_CORE_RECURRING_QUERY_H_
