#ifndef REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_
#define REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_

#include "mapreduce/scheduler.h"
#include "sim/cost_model.h"

namespace redoop {

struct CacheAwareSchedulerOptions {
  /// Weight (seconds per unit of load) converting a node's busy-slot
  /// fraction into the same units as the I/O cost term, so Eq. 4's
  /// `Load_i + C_task,i` is a meaningful sum. Larger values favour load
  /// balancing; smaller values favour cache locality.
  double load_weight_s = 30.0;
  /// Bonus (seconds subtracted from the score) for the task's preferred
  /// node — used to co-locate pane-pair tasks that share a cached pane, so
  /// repeat reads hit the OS page cache.
  double preferred_bonus_s = 10.0;
};

/// Redoop's window-aware task scheduler (paper §4.3, Eq. 4):
///
///     node = argmin_i [ Load_i + C_task,i ]
///
/// where Load_i is node i's busy-slot fraction and C_task,i the I/O cost of
/// running the task there (low on nodes already holding the task's cached
/// reducer inputs, higher elsewhere — the SOPA-style I/O-dominant cost
/// model). Only nodes with a free slot of the right kind are considered: a
/// fully occupied node loses the task even if it holds the cache.
/// Map placement keeps Hadoop's replica locality (the map task list is
/// FIFO, §4.3 Algorithm 2).
class CacheAwareScheduler : public TaskScheduler {
 public:
  CacheAwareScheduler(const CostModel* cost_model,
                      CacheAwareSchedulerOptions options = {});

  NodeId SelectNodeForMap(const MapPlacementRequest& request,
                          const Cluster& cluster) override;
  NodeId SelectNodeForReduce(const ReducePlacementRequest& request,
                             const Cluster& cluster) override;

  /// Eq. 4's C_task,i for a reduce task on `node`: simulated seconds to
  /// read the task's cached inputs from where they live.
  double ReduceIoCost(const ReducePlacementRequest& request, NodeId node) const;

 private:
  const CostModel* cost_model_;
  CacheAwareSchedulerOptions options_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_
