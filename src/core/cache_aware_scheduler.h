#ifndef REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_
#define REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "mapreduce/scheduler.h"
#include "sim/cost_model.h"

namespace redoop {

struct CacheAwareSchedulerOptions {
  /// Weight (seconds per unit of load) converting a node's busy-slot
  /// fraction into the same units as the I/O cost term, so Eq. 4's
  /// `Load_i + C_task,i` is a meaningful sum. Larger values favour load
  /// balancing; smaller values favour cache locality.
  double load_weight_s = 30.0;
  /// Bonus (seconds subtracted from the score) for the task's preferred
  /// node — used to co-locate pane-pair tasks that share a cached pane, so
  /// repeat reads hit the OS page cache.
  double preferred_bonus_s = 10.0;
};

/// Redoop's window-aware task scheduler (paper §4.3, Eq. 4):
///
///     node = argmin_i [ Load_i + C_task,i ]
///
/// where Load_i is node i's busy-slot fraction and C_task,i the I/O cost of
/// running the task there (low on nodes already holding the task's cached
/// reducer inputs, higher elsewhere — the SOPA-style I/O-dominant cost
/// model). Only nodes with a free slot of the right kind are considered: a
/// fully occupied node loses the task even if it holds the cache.
/// Map placement keeps Hadoop's replica locality (the map task list is
/// FIFO, §4.3 Algorithm 2).
class CacheAwareScheduler : public TaskScheduler {
 public:
  CacheAwareScheduler(const CostModel* cost_model,
                      CacheAwareSchedulerOptions options = {});

  NodeId SelectNodeForMap(const MapPlacementRequest& request,
                          const Cluster& cluster) override;
  NodeId SelectNodeForReduce(const ReducePlacementRequest& request,
                             const Cluster& cluster) override;

  /// Eq. 4's C_task,i for a reduce task on `node`: simulated seconds to
  /// read the task's cached inputs from where they live.
  double ReduceIoCost(const ReducePlacementRequest& request, NodeId node) const;

 private:
  const CostModel* cost_model_;
  CacheAwareSchedulerOptions options_;
};

/// Weighted fair-share bookkeeping for multi-tenant admission (DESIGN
/// §17). Each tenant accrues `service / weight` as it runs; among
/// admission candidates, the one with the least attained weighted service
/// goes first, so an overrunning query cannot starve lighter tenants.
/// Deterministic: ties break on (trigger time, registration index).
class FairShareLedger {
 public:
  /// `weight` must be positive; a tenant registered twice keeps its
  /// latest weight but its attained service.
  void RegisterTenant(QueryId id, double weight);

  /// Accrues `service_s` simulated seconds of service to `id`.
  void Charge(QueryId id, double service_s);

  /// Attained weighted service (sum of service / weight), 0 for unknown.
  double AttainedService(QueryId id) const;
  double Weight(QueryId id) const;

  struct Candidate {
    QueryId id = 0;
    Timestamp trigger = 0;
    size_t index = 0;  // registration order, the final tiebreak
  };

  /// Index (into `candidates`) of the tenant to admit next: least
  /// attained weighted service, ties by earlier trigger then lower index.
  size_t PickNext(const std::vector<Candidate>& candidates) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double attained_s = 0.0;
  };
  std::map<QueryId, Tenant> tenants_;
};

}  // namespace redoop

#endif  // REDOOP_CORE_CACHE_AWARE_SCHEDULER_H_
