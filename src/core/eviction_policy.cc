#include "core/eviction_policy.h"

#include <algorithm>
#include <list>
#include <map>
#include <utility>

#include "common/logging.h"

namespace redoop {
namespace {

/// LRU and FIFO share one structure: a recency/arrival list (front =
/// coldest) plus an ordered index. LRU refreshes position on access, FIFO
/// does not.
class ListOrderPolicy : public EvictionPolicy {
 public:
  ListOrderPolicy(EvictionPolicyKind kind, bool refresh_on_access)
      : kind_(kind), refresh_on_access_(refresh_on_access) {}

  void OnInsert(const std::string& key, int64_t /*bytes*/) override {
    OnRemove(key);
    order_.push_back(key);
    index_[key] = std::prev(order_.end());
  }

  void OnAccess(const std::string& key) override {
    if (!refresh_on_access_) return;
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.splice(order_.end(), order_, it->second);
  }

  void OnRemove(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  std::string PickVictim(
      const std::function<bool(const std::string&)>& evictable) override {
    for (const std::string& key : order_) {
      if (evictable(key)) return key;
    }
    return "";
  }

  EvictionPolicyKind kind() const override { return kind_; }

 private:
  const EvictionPolicyKind kind_;
  const bool refresh_on_access_;
  std::list<std::string> order_;
  std::map<std::string, std::list<std::string>::iterator> index_;
};

/// SIEVE: a FIFO queue with one visited bit per entry and a hand that scans
/// from the oldest entry toward the newest, clearing visited bits as it
/// passes and evicting the first cold (unvisited) entry. Pinned entries are
/// skipped without touching their bit, so a pin never distorts the scan
/// order of its neighbours.
class SievePolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key, int64_t /*bytes*/) override {
    OnRemove(key);
    queue_.push_back(Node{key, false});
    index_[key] = std::prev(queue_.end());
  }

  void OnAccess(const std::string& key) override {
    auto it = index_.find(key);
    if (it != index_.end()) it->second->visited = true;
  }

  void OnRemove(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    if (hand_ == key) AdvanceHand(it->second);
    queue_.erase(it->second);
    index_.erase(it);
  }

  std::string PickVictim(
      const std::function<bool(const std::string&)>& evictable) override {
    if (queue_.empty()) return "";
    auto it = hand_.empty() ? queue_.begin() : index_.at(hand_);
    // One lap may only clear visited bits; the second lap then finds the
    // first cold evictable entry, so 2N+1 steps always suffice.
    for (size_t step = 0; step < 2 * queue_.size() + 1; ++step) {
      if (evictable(it->key)) {
        if (!it->visited) {
          AdvanceHand(it);
          return it->key;
        }
        it->visited = false;
      }
      ++it;
      if (it == queue_.end()) it = queue_.begin();
    }
    return "";
  }

  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kSieve;
  }

 private:
  struct Node {
    std::string key;
    bool visited = false;
  };

  void AdvanceHand(std::list<Node>::iterator at) {
    auto next = std::next(at);
    if (next == queue_.end()) next = queue_.begin();
    hand_ = (next == at) ? std::string() : next->key;
  }

  std::list<Node> queue_;
  std::map<std::string, std::list<Node>::iterator> index_;
  std::string hand_;  // Key under the hand; "" = start from the oldest.
};

/// S3-FIFO: a small probationary FIFO absorbs one-hit wonders, a main FIFO
/// holds proven entries, and a ghost FIFO of recently demoted keys promotes
/// re-inserted panes straight to main. Eviction drains the small queue while
/// it exceeds its byte target (promoting entries with >1 hit), otherwise the
/// main queue with one second-chance round per accumulated hit.
class S3FifoPolicy : public EvictionPolicy {
 public:
  explicit S3FifoPolicy(int64_t budget_bytes)
      : small_target_(std::max<int64_t>(budget_bytes / 10, 1)) {}

  void OnInsert(const std::string& key, int64_t bytes) override {
    OnRemove(key);
    auto ghost = ghost_index_.find(key);
    const bool proven = ghost != ghost_index_.end();
    if (proven) {
      ghost_.erase(ghost->second);
      ghost_index_.erase(ghost);
    }
    std::list<Node>& queue = proven ? main_ : small_;
    queue.push_back(Node{key, bytes, 0});
    index_[key] = Slot{proven, std::prev(queue.end())};
    (proven ? main_bytes_ : small_bytes_) += bytes;
  }

  void OnAccess(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    it->second.at->freq = std::min(it->second.at->freq + 1, 3);
  }

  void OnRemove(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    const Slot& slot = it->second;
    (slot.in_main ? main_bytes_ : small_bytes_) -= slot.at->bytes;
    if (!slot.in_main) RememberGhost(key);
    (slot.in_main ? main_ : small_).erase(slot.at);
    index_.erase(it);
  }

  std::string PickVictim(
      const std::function<bool(const std::string&)>& evictable) override {
    // Promotions and second chances are bounded by the accumulated hit
    // counts (<= 3 per entry), so 5N+5 steps always terminate the scan.
    const size_t limit = 5 * (small_.size() + main_.size()) + 5;
    for (size_t step = 0; step < limit; ++step) {
      const bool drain_small =
          !small_.empty() && (small_bytes_ > small_target_ || main_.empty());
      if (drain_small) {
        auto it = FirstActionable(&small_, evictable);
        if (it != small_.end()) {
          if (it->freq > 1) {
            Promote(it);
            continue;
          }
          return it->key;
        }
        // Small queue fully pinned and cold: fall through to main.
      }
      auto it = FirstActionable(&main_, evictable);
      if (it == main_.end()) return "";
      if (it->freq > 0) {
        --it->freq;
        main_.splice(main_.end(), main_, it);
        continue;
      }
      return it->key;
    }
    return "";
  }

  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kS3Fifo;
  }

 private:
  struct Node {
    std::string key;
    int64_t bytes = 0;
    int freq = 0;
  };
  struct Slot {
    bool in_main = false;
    std::list<Node>::iterator at;
  };

  /// Oldest entry the policy may act on: evictable, or hot enough to move.
  std::list<Node>::iterator FirstActionable(
      std::list<Node>* queue,
      const std::function<bool(const std::string&)>& evictable) {
    const bool in_main = queue == &main_;
    for (auto it = queue->begin(); it != queue->end(); ++it) {
      const bool movable = in_main ? it->freq > 0 : it->freq > 1;
      if (movable || evictable(it->key)) return it;
    }
    return queue->end();
  }

  void Promote(std::list<Node>::iterator it) {
    small_bytes_ -= it->bytes;
    main_bytes_ += it->bytes;
    it->freq = 0;
    main_.splice(main_.end(), small_, it);
    index_[it->key] = Slot{true, it};
  }

  void RememberGhost(const std::string& key) {
    ghost_.push_back(key);
    ghost_index_[key] = std::prev(ghost_.end());
    const size_t cap = std::max<size_t>(2 * index_.size(), 64);
    while (ghost_.size() > cap) {
      ghost_index_.erase(ghost_.front());
      ghost_.pop_front();
    }
  }

  const int64_t small_target_;
  std::list<Node> small_;
  std::list<Node> main_;
  int64_t small_bytes_ = 0;
  int64_t main_bytes_ = 0;
  std::map<std::string, Slot> index_;
  std::list<std::string> ghost_;
  std::map<std::string, std::list<std::string>::iterator> ghost_index_;
};

/// Frequency/recency hybrid: each entry carries its observed reuse count
/// and last-access sequence number; the victim is the entry with the lowest
/// blended score (normalized frequency weighted over normalized recency),
/// ties broken by insertion order. This is the H-SVM-LRU shape with the
/// SVM's predicted-reuse feature replaced by the measured per-pane reuse
/// count the journal already tracks.
class HybridPolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key, int64_t /*bytes*/) override {
    ++seq_;
    info_[key] = Info{0, seq_, seq_};
  }

  void OnAccess(const std::string& key) override {
    auto it = info_.find(key);
    if (it == info_.end()) return;
    ++it->second.reuses;
    it->second.last_seq = ++seq_;
  }

  void OnRemove(const std::string& key) override { info_.erase(key); }

  std::string PickVictim(
      const std::function<bool(const std::string&)>& evictable) override {
    int64_t max_reuses = 0;
    uint64_t min_seq = 0;
    uint64_t max_seq = 0;
    bool first = true;
    for (const auto& [key, info] : info_) {
      max_reuses = std::max(max_reuses, info.reuses);
      min_seq = first ? info.last_seq : std::min(min_seq, info.last_seq);
      max_seq = first ? info.last_seq : std::max(max_seq, info.last_seq);
      first = false;
    }
    const double seq_span = static_cast<double>(max_seq - min_seq) + 1.0;
    const std::string* victim = nullptr;
    double victim_score = 0.0;
    uint64_t victim_ins = 0;
    for (const auto& [key, info] : info_) {
      if (!evictable(key)) continue;
      const double freq =
          static_cast<double>(info.reuses) / static_cast<double>(max_reuses + 1);
      const double recency =
          static_cast<double>(info.last_seq - min_seq) / seq_span;
      const double score = kFrequencyWeight * freq +
                           (1.0 - kFrequencyWeight) * recency;
      if (victim == nullptr || score < victim_score ||
          (score == victim_score && info.ins_seq < victim_ins)) {
        victim = &key;
        victim_score = score;
        victim_ins = info.ins_seq;
      }
    }
    return victim == nullptr ? "" : *victim;
  }

  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kHybrid;
  }

 private:
  struct Info {
    int64_t reuses = 0;
    uint64_t last_seq = 0;
    uint64_t ins_seq = 0;
  };

  static constexpr double kFrequencyWeight = 0.6;

  std::map<std::string, Info> info_;
  uint64_t seq_ = 0;
};

}  // namespace

const char* EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kFifo:
      return "fifo";
    case EvictionPolicyKind::kS3Fifo:
      return "s3fifo";
    case EvictionPolicyKind::kSieve:
      return "sieve";
    case EvictionPolicyKind::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::optional<EvictionPolicyKind> ParseEvictionPolicy(const std::string& name) {
  if (name == "lru") return EvictionPolicyKind::kLru;
  if (name == "fifo") return EvictionPolicyKind::kFifo;
  if (name == "s3fifo") return EvictionPolicyKind::kS3Fifo;
  if (name == "sieve") return EvictionPolicyKind::kSieve;
  if (name == "hybrid") return EvictionPolicyKind::kHybrid;
  return std::nullopt;
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   int64_t budget_bytes) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return std::make_unique<ListOrderPolicy>(kind, /*refresh_on_access=*/true);
    case EvictionPolicyKind::kFifo:
      return std::make_unique<ListOrderPolicy>(kind,
                                               /*refresh_on_access=*/false);
    case EvictionPolicyKind::kS3Fifo:
      return std::make_unique<S3FifoPolicy>(budget_bytes);
    case EvictionPolicyKind::kSieve:
      return std::make_unique<SievePolicy>();
    case EvictionPolicyKind::kHybrid:
      return std::make_unique<HybridPolicy>();
  }
  REDOOP_CHECK(false) << "unknown eviction policy";
  return nullptr;
}

}  // namespace redoop
