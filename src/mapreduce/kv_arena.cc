#include "mapreduce/kv_arena.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/task_executor.h"

namespace redoop {

namespace {

/// Three-way lexicographic compare of raw byte ranges (memcmp + length
/// tie-break) — what std::string::compare does, without the strings.
int CompareBytes(std::string_view a, std::string_view b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace

uint64_t FlatKvBuffer::Allocate(size_t n) {
  if (chunks_.empty() || chunks_.back().capacity - chunks_.back().used < n) {
    Chunk chunk;
    chunk.capacity = n > kChunkSize ? n : kChunkSize;
    chunk.data = std::make_unique<char[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
    REDOOP_CHECK(chunks_.size() <= (1ull << 32))
        << "FlatKvBuffer chunk index overflow";
  }
  Chunk& chunk = chunks_.back();
  REDOOP_CHECK(chunk.used <= (1ull << 32) - n)
      << "FlatKvBuffer intra-chunk offset overflow";
  const uint64_t addr =
      (static_cast<uint64_t>(chunks_.size() - 1) << 32) | chunk.used;
  chunk.used += n;
  return addr;
}

void FlatKvBuffer::Append(std::string_view key, std::string_view value,
                          int32_t logical_bytes) {
  KvSlice slice;
  slice.key_len = static_cast<uint32_t>(key.size());
  slice.value_len = static_cast<uint32_t>(value.size());
  slice.logical_bytes = logical_bytes;
  slice.addr = Allocate(key.size() + value.size());
  char* dst = chunks_[static_cast<size_t>(slice.addr >> 32)].data.get() +
              static_cast<uint32_t>(slice.addr);
  if (!key.empty()) std::memcpy(dst, key.data(), key.size());
  if (!value.empty()) std::memcpy(dst + key.size(), value.data(), value.size());
  slices_.push_back(slice);
  total_logical_bytes_ += logical_bytes;
}

int FlatKvBuffer::Compare(size_t i, const FlatKvBuffer& other,
                          size_t j) const {
  const int c = CompareBytes(key(i), other.key(j));
  if (c != 0) return c;
  return CompareBytes(value(i), other.value(j));
}

bool FlatKvBuffer::IsSorted() const {
  for (size_t i = 1; i < slices_.size(); ++i) {
    if (Compare(i - 1, *this, i) > 0) return false;
  }
  return true;
}

std::vector<uint32_t> FlatKvBuffer::SortedOrder() const {
  std::vector<uint32_t> order(slices_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  SortSliceIndices(*this, &order);
  return order;
}

namespace {

/// The strict total order both sort paths realize: prefix, then full
/// (key, value) bytes, then buffer index. Index uniqueness makes this a
/// total order, so any correct sort yields the same permutation.
struct KvEntryLess {
  const FlatKvBuffer* buf;
  bool operator()(const KvSortEntry& a, const KvSortEntry& b) const {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    const int c = buf->Compare(a.index, *buf, b.index);
    if (c != 0) return c < 0;
    return a.index < b.index;  // Stable for equal (key, value).
  }
};

/// Byte histograms for all eight radix passes, filled in one sweep over
/// the entries. counts[b][v] = entries whose prefix byte `b` (b = 0 is the
/// least significant) equals `v`.
struct RadixHistograms {
  uint64_t counts[8][256];
};

/// Builds entries[begin, end) from the index slice and accumulates their
/// prefix bytes into `hist`. Slices are disjoint, so parallel calls touch
/// disjoint entry ranges and private histograms — merging is an addition.
void BuildEntriesAndHistogram(const FlatKvBuffer& buf, const uint32_t* src,
                              KvSortEntry* entries, size_t begin, size_t end,
                              RadixHistograms* hist) {
  std::memset(hist->counts, 0, sizeof(hist->counts));
  for (size_t k = begin; k < end; ++k) {
    const uint32_t index = src[k];
    const uint64_t prefix = buf.prefix(index);
    entries[k].prefix = prefix;
    entries[k].index = index;
    for (int b = 0; b < 8; ++b) {
      ++hist->counts[b][(prefix >> (8 * b)) & 0xFF];
    }
  }
}

/// LSD radix sort of `entries` by prefix: least-significant byte first,
/// stable scatter per pass, passes where every prefix shares the byte are
/// skipped. Afterwards entries are prefix-ordered with equal-prefix runs
/// still in input order; the caller finishes those runs by comparison.
void RadixScatterPasses(std::vector<KvSortEntry>* entries,
                        const RadixHistograms& hist) {
  const size_t n = entries->size();
  std::vector<KvSortEntry> scratch(n);
  KvSortEntry* from = entries->data();
  KvSortEntry* to = scratch.data();
  for (int b = 0; b < 8; ++b) {
    const uint64_t* counts = hist.counts[b];
    uint64_t offsets[256];
    uint64_t sum = 0;
    bool trivial = false;
    for (int v = 0; v < 256; ++v) {
      if (counts[v] == n) trivial = true;
      offsets[v] = sum;
      sum += counts[v];
    }
    if (trivial) continue;  // All prefixes share this byte: identity pass.
    const int shift = 8 * b;
    for (size_t k = 0; k < n; ++k) {
      const KvSortEntry e = from[k];
      to[offsets[(e.prefix >> shift) & 0xFF]++] = e;
    }
    std::swap(from, to);
  }
  if (from != entries->data()) {
    std::memcpy(entries->data(), from, n * sizeof(KvSortEntry));
  }
}

/// Sorts `entries` in place by the full KvEntryLess order via LSD radix on
/// the prefix plus a comparison finish of equal-prefix runs. When
/// `executor` is non-null the entry-build/histogram sweep fans out over
/// worker threads; the per-slice histograms merge by addition in slice
/// order, so the merged counts — and therefore the scatter — are
/// independent of scheduling.
void RadixSortEntries(const FlatKvBuffer& buf, const uint32_t* src,
                      std::vector<KvSortEntry>* entries,
                      exec::TaskExecutor* executor) {
  const size_t n = entries->size();
  RadixHistograms hist;
  // Entries below this per-slice size are not worth a task round-trip.
  constexpr size_t kMinEntriesPerTask = 64 * 1024;
  const size_t max_tasks =
      executor == nullptr
          ? 1
          : std::min<size_t>(
                static_cast<size_t>(executor->thread_count()),
                (n + kMinEntriesPerTask - 1) / kMinEntriesPerTask);
  if (max_tasks <= 1) {
    BuildEntriesAndHistogram(buf, src, entries->data(), 0, n, &hist);
  } else {
    std::vector<RadixHistograms> parts(max_tasks);
    std::vector<exec::TaskFuture<int>> futures;
    futures.reserve(max_tasks);
    const size_t per_task = (n + max_tasks - 1) / max_tasks;
    for (size_t t = 0; t < max_tasks; ++t) {
      const size_t begin = t * per_task;
      const size_t end = std::min(n, begin + per_task);
      KvSortEntry* data = entries->data();
      RadixHistograms* part = &parts[t];
      futures.push_back(executor->Submit([&buf, src, data, begin, end, part] {
        BuildEntriesAndHistogram(buf, src, data, begin, end, part);
        return 0;
      }));
    }
    for (auto& f : futures) f.Wait();
    std::memset(hist.counts, 0, sizeof(hist.counts));
    for (const RadixHistograms& part : parts) {
      for (int b = 0; b < 8; ++b) {
        for (int v = 0; v < 256; ++v) hist.counts[b][v] += part.counts[b][v];
      }
    }
  }
  RadixScatterPasses(entries, hist);
  // Comparison finish: each equal-prefix run is contiguous now; full-byte
  // order and the index tie-break are decided here. The full comparator
  // (not just the tail) keeps this line-for-line the comparison path's
  // order, so outputs match it byte for byte.
  KvSortEntry* data = entries->data();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && data[j].prefix == data[i].prefix) ++j;
    if (j - i > 1) std::sort(data + i, data + j, KvEntryLess{&buf});
    i = j;
  }
}

}  // namespace

void SortSliceIndices(const FlatKvBuffer& buf,
                      std::vector<uint32_t>* indices) {
  SortSliceIndicesWith(buf, indices, KvSortMode::kAuto, nullptr);
}

void SortSliceIndicesWith(const FlatKvBuffer& buf,
                          std::vector<uint32_t>* indices, KvSortMode mode,
                          exec::TaskExecutor* executor) {
  const size_t n = indices->size();
  const bool radix =
      mode == KvSortMode::kRadix ||
      (mode == KvSortMode::kAuto && n >= kKvRadixSortMinEntries);
  std::vector<KvSortEntry> entries(n);
  if (radix) {
    RadixSortEntries(buf, indices->data(), &entries, executor);
  } else {
    for (size_t k = 0; k < n; ++k) {
      entries[k].index = (*indices)[k];
      entries[k].prefix = buf.prefix(entries[k].index);
    }
    std::sort(entries.begin(), entries.end(), KvEntryLess{&buf});
  }
  for (size_t k = 0; k < n; ++k) {
    (*indices)[k] = entries[k].index;
  }
}

FlatKvBuffer FlatKvBuffer::SortedCopy() const {
  const std::vector<uint32_t> order = SortedOrder();
  FlatKvBuffer sorted;
  sorted.Reserve(order.size());
  for (uint32_t i : order) sorted.AppendFrom(*this, i);
  return sorted;
}

void FlatKvBuffer::ShrinkToFit() {
  slices_.shrink_to_fit();
  if (chunks_.empty()) return;
  // Only the last chunk can have unreferenced tail capacity; earlier
  // chunks were closed because they could not fit the next pair.
  Chunk& last = chunks_.back();
  if (last.used == last.capacity) return;
  if (last.used == 0) {
    chunks_.pop_back();
    return;
  }
  auto trimmed = std::make_unique<char[]>(last.used);
  std::memcpy(trimmed.get(), last.data.get(), last.used);
  last.data = std::move(trimmed);
  last.capacity = last.used;
}

void FlatKvBuffer::Clear() {
  chunks_.clear();
  slices_.clear();
  total_logical_bytes_ = 0;
}

std::vector<KeyValue> FlatKvBuffer::ToKeyValues() const {
  std::vector<KeyValue> out;
  out.reserve(size());
  AppendToKeyValues(&out);
  return out;
}

void FlatKvBuffer::AppendToKeyValues(std::vector<KeyValue>* out) const {
  out->reserve(out->size() + size());
  for (size_t i = 0; i < size(); ++i) {
    out->emplace_back(std::string(key(i)), std::string(value(i)),
                      logical_bytes(i));
  }
}

FlatKvBuffer FlatKvBuffer::FromKeyValues(std::span<const KeyValue> kvs) {
  FlatKvBuffer buf;
  buf.Reserve(kvs.size());
  for (const KeyValue& kv : kvs) buf.Append(kv.key, kv.value, kv.logical_bytes);
  return buf;
}

int64_t FlatKvBuffer::HostBytes() const {
  int64_t total = static_cast<int64_t>(slices_.capacity() * sizeof(KvSlice));
  for (const Chunk& chunk : chunks_) {
    total += static_cast<int64_t>(chunk.capacity);
  }
  return total;
}

namespace {

/// Loser tree over flat run heads — the MergeSortedRuns kernel operating
/// on slices. Each run's current head caches its normalized key prefix,
/// so a match is usually one uint64 compare; full bytes are only read on
/// prefix ties.
class FlatLoserTree {
 public:
  explicit FlatLoserTree(std::span<const FlatKvBuffer* const> runs)
      : runs_(runs), pos_(runs.size(), 0), head_prefix_(runs.size(), 0) {
    for (size_t r = 0; r < runs_.size(); ++r) {
      if (!runs_[r]->empty()) head_prefix_[r] = runs_[r]->prefix(0);
    }
    size_ = 1;
    while (size_ < runs_.size()) size_ <<= 1;
    tree_.assign(2 * size_, kSentinel);
    std::vector<size_t> winner(2 * size_, kSentinel);
    for (size_t i = 0; i < size_; ++i) {
      winner[size_ + i] =
          (i < runs_.size() && !runs_[i]->empty()) ? i : kSentinel;
    }
    for (size_t n = size_ - 1; n >= 1; --n) {
      const size_t a = winner[2 * n];
      const size_t b = winner[2 * n + 1];
      if (Beats(a, b)) {
        winner[n] = a;
        tree_[n] = b;
      } else {
        winner[n] = b;
        tree_[n] = a;
      }
      if (n == 1) tree_[0] = winner[1];
    }
    if (size_ == 1) tree_[0] = winner[1];
  }

  bool Done() const { return tree_[0] == kSentinel; }

  /// Appends the smallest head to `out` and advances its run.
  void PopInto(FlatKvBuffer* out) {
    const size_t run = tree_[0];
    out->AppendFrom(*runs_[run], pos_[run]);
    ++pos_[run];
    size_t winner = kSentinel;
    if (pos_[run] < runs_[run]->size()) {
      head_prefix_[run] = runs_[run]->prefix(pos_[run]);
      winner = run;
    }
    for (size_t n = (size_ + run) / 2; n >= 1; n /= 2) {
      if (Beats(tree_[n], winner)) std::swap(tree_[n], winner);
    }
    tree_[0] = winner;
  }

 private:
  static constexpr size_t kSentinel = static_cast<size_t>(-1);

  /// True when run `a`'s head wins (strictly smaller (key, value), or
  /// equal with the lower run index — the stability tie-break).
  bool Beats(size_t a, size_t b) const {
    if (a == kSentinel) return false;
    if (b == kSentinel) return true;
    if (head_prefix_[a] != head_prefix_[b]) {
      return head_prefix_[a] < head_prefix_[b];
    }
    const int c = runs_[a]->Compare(pos_[a], *runs_[b], pos_[b]);
    if (c != 0) return c < 0;
    return a < b;
  }

  std::span<const FlatKvBuffer* const> runs_;
  std::vector<size_t> pos_;           // Head index per run.
  std::vector<uint64_t> head_prefix_; // Normalized prefix of each head.
  std::vector<size_t> tree_;          // [0] = winner; [1..) = losers.
  size_t size_ = 1;                   // Leaf count (power of two).
};

}  // namespace

FlatKvBuffer MergeFlatRuns(std::span<const FlatKvBuffer* const> runs) {
  size_t total = 0;
  size_t non_empty = 0;
  const FlatKvBuffer* last = nullptr;
  for (const FlatKvBuffer* run : runs) {
    total += run->size();
    if (!run->empty()) {
      ++non_empty;
      last = run;
    }
  }
  FlatKvBuffer merged;
  merged.Reserve(total);
  if (non_empty == 0) return merged;
  if (non_empty == 1) {  // Single run: a straight byte copy, no compares.
    for (size_t i = 0; i < last->size(); ++i) merged.AppendFrom(*last, i);
    return merged;
  }
  FlatLoserTree tree(runs);
  while (!tree.Done()) tree.PopInto(&merged);
  return merged;
}

KeyValue& KvGroupScratch::Slot(size_t k) {
  if (k >= storage_.size()) storage_.resize(k + 1);
  return storage_[k];
}

std::span<const KeyValue> KvGroupScratch::Fill(const KvRange& range) {
  for (size_t k = 0; k < range.size(); ++k) {
    KeyValue& kv = Slot(k);
    kv.key.assign(range.key(k));
    kv.value.assign(range.value(k));
    kv.logical_bytes = range.logical_bytes(k);
  }
  return {storage_.data(), range.size()};
}

}  // namespace redoop
