#ifndef REDOOP_MAPREDUCE_KV_H_
#define REDOOP_MAPREDUCE_KV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace redoop {

/// An intermediate or output key/value pair. `logical_bytes` is its size in
/// the simulated world (drives shuffle/sort/reduce costs).
struct KeyValue {
  std::string key;
  std::string value;
  int32_t logical_bytes = 0;

  KeyValue() = default;
  KeyValue(std::string k, std::string v, int32_t bytes)
      : key(std::move(k)), value(std::move(v)), logical_bytes(bytes) {}
  /// Convenience: sizes the pair from its string lengths plus framing.
  KeyValue(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)),
        logical_bytes(static_cast<int32_t>(key.size() + value.size() + 8)) {}

  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value &&
           a.logical_bytes == b.logical_bytes;
  }
};

/// Total logical size of a span of pairs.
int64_t TotalLogicalBytes(const std::vector<KeyValue>& kvs);

/// Sorts by (key, value) — the deterministic total order used after the
/// shuffle so results are byte-identical across schedules.
void SortByKey(std::vector<KeyValue>* kvs);

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_KV_H_
