#ifndef REDOOP_MAPREDUCE_KV_H_
#define REDOOP_MAPREDUCE_KV_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace redoop {

/// An intermediate or output key/value pair. `logical_bytes` is its size in
/// the simulated world (drives shuffle/sort/reduce costs).
struct KeyValue {
  std::string key;
  std::string value;
  int32_t logical_bytes = 0;

  KeyValue() = default;
  KeyValue(std::string k, std::string v, int32_t bytes)
      : key(std::move(k)), value(std::move(v)), logical_bytes(bytes) {}
  /// Convenience: sizes the pair from its string lengths plus framing.
  KeyValue(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)),
        logical_bytes(static_cast<int32_t>(key.size() + value.size() + 8)) {}

  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value &&
           a.logical_bytes == b.logical_bytes;
  }
};

/// The deterministic (key, value) total order used everywhere after the
/// shuffle: bucket sorts, cached runs, and the reduce-side merge all agree
/// on it, so results are byte-identical across schedules.
struct KeyValueLess {
  bool operator()(const KeyValue& a, const KeyValue& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

/// Total logical size of a span of pairs.
int64_t TotalLogicalBytes(std::span<const KeyValue> kvs);

/// Sorts by (key, value) — see KeyValueLess.
void SortByKey(std::vector<KeyValue>* kvs);

/// True when `kvs` is non-decreasing under KeyValueLess.
bool IsSortedByKey(std::span<const KeyValue> kvs);

/// K-way merge of sorted runs into one sorted vector (loser tree, one
/// comparison path of log2(k) per output element instead of the
/// O(N log N) comparison sort the concat+SortByKey path pays).
///
/// Each run must individually be sorted under KeyValueLess. Pairs that
/// compare equal are emitted in run order (earlier run first), then in
/// within-run order — i.e. the merge is stable with respect to the
/// concatenation order of `runs`, which keeps reduce groups deterministic.
std::vector<KeyValue> MergeSortedRuns(
    std::span<const std::span<const KeyValue>> runs);

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_KV_H_
