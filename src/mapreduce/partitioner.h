#ifndef REDOOP_MAPREDUCE_PARTITIONER_H_
#define REDOOP_MAPREDUCE_PARTITIONER_H_

#include <cstdint>
#include <string_view>

namespace redoop {

/// Assigns intermediate keys to reduce partitions. Redoop requires the
/// partitioning function of a recurring query to stay fixed across
/// recurrences (paper §4.3) so that cached reducer inputs remain valid;
/// implementations must therefore be deterministic and stateless. The key
/// arrives as a string_view straight out of the flat KV arena — no
/// temporary std::string is built per pair.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Returns a partition in [0, num_partitions).
  virtual int32_t Partition(std::string_view key,
                            int32_t num_partitions) const = 0;
};

/// Default Hadoop-style partitioner: stable hash of the key modulo the
/// partition count.
class HashPartitioner : public Partitioner {
 public:
  int32_t Partition(std::string_view key,
                    int32_t num_partitions) const override;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_PARTITIONER_H_
