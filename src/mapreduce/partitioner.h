#ifndef REDOOP_MAPREDUCE_PARTITIONER_H_
#define REDOOP_MAPREDUCE_PARTITIONER_H_

#include <cstdint>
#include <string>

namespace redoop {

/// Assigns intermediate keys to reduce partitions. Redoop requires the
/// partitioning function of a recurring query to stay fixed across
/// recurrences (paper §4.3) so that cached reducer inputs remain valid;
/// implementations must therefore be deterministic and stateless.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Returns a partition in [0, num_partitions).
  virtual int32_t Partition(const std::string& key,
                            int32_t num_partitions) const = 0;
};

/// Default Hadoop-style partitioner: stable hash of the key modulo the
/// partition count.
class HashPartitioner : public Partitioner {
 public:
  int32_t Partition(const std::string& key,
                    int32_t num_partitions) const override;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_PARTITIONER_H_
