#ifndef REDOOP_MAPREDUCE_REDUCER_H_
#define REDOOP_MAPREDUCE_REDUCER_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/kv.h"

namespace redoop {

/// Collects a reduce function's output pairs.
class ReduceContext {
 public:
  ReduceContext() = default;

  void Emit(std::string key, std::string value, int32_t logical_bytes) {
    output_.emplace_back(std::move(key), std::move(value), logical_bytes);
  }
  void Emit(std::string key, std::string value) {
    output_.emplace_back(std::move(key), std::move(value));
  }

  const std::vector<KeyValue>& output() const { return output_; }
  std::vector<KeyValue> TakeOutput() { return std::move(output_); }
  void Clear() { output_.clear(); }

 private:
  std::vector<KeyValue> output_;
};

/// User reduce function: consumes one key group (all shuffled values for a
/// key, in deterministic sorted order) and emits zero or more output pairs.
/// The group is a zero-copy view into the merged reduce input (or the
/// map-side sort buffer for combiners); it is only valid for the duration
/// of the call. Implementations must be stateless.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const std::string& key,
                      std::span<const KeyValue> values,
                      ReduceContext* context) const = 0;
};

/// Null reducer: consumes everything, emits nothing. Used by Redoop's
/// pane-caching pass, whose only purpose is materializing the shuffled,
/// sorted reducer inputs as caches.
class NullReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    (void)key;
    (void)values;
    (void)context;
  }
};

/// Identity reducer: re-emits every value under its key.
class IdentityReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    for (const KeyValue& v : values) {
      context->Emit(key, v.value, v.logical_bytes);
    }
  }
};

/// Per-key composition `second ∘ first`: runs `first` on the key group,
/// then feeds its output through `second`. This is how a single-job
/// baseline expresses a Redoop query whose finalization differs from its
/// reduce body (reduce per pane, finalize per window == reduce then
/// finalize when the whole window is one group).
class ComposedReducer : public Reducer {
 public:
  ComposedReducer(std::shared_ptr<const Reducer> first,
                  std::shared_ptr<const Reducer> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    ReduceContext intermediate;
    first_->Reduce(key, values, &intermediate);
    if (intermediate.output().empty()) return;
    second_->Reduce(key, intermediate.output(), context);
  }

 private:
  std::shared_ptr<const Reducer> first_;
  std::shared_ptr<const Reducer> second_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_REDUCER_H_
