#ifndef REDOOP_MAPREDUCE_REDUCER_H_
#define REDOOP_MAPREDUCE_REDUCER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"

namespace redoop {

/// Collects a reduce function's output pairs. Like MapContext, storage is
/// a flat arena; the std::string Emit signature is an adapter that copies
/// bytes once, so existing reducers compile and behave unchanged while the
/// engine keeps the output flat end-to-end (cache payloads, merges).
class ReduceContext {
 public:
  ReduceContext() = default;

  void Emit(std::string_view key, std::string_view value,
            int32_t logical_bytes) {
    buffer_.Append(key, value, logical_bytes);
  }
  void Emit(std::string_view key, std::string_view value) {
    buffer_.Append(key, value);
  }

  /// Materializes the collected pairs as strings, in emission order.
  /// Compatibility/testing surface — the engine consumes flat() instead.
  std::vector<KeyValue> output() const { return buffer_.ToKeyValues(); }
  std::vector<KeyValue> TakeOutput() {
    std::vector<KeyValue> out = buffer_.ToKeyValues();
    buffer_.Clear();
    return out;
  }

  const FlatKvBuffer& flat() const { return buffer_; }
  FlatKvBuffer TakeFlat() { return std::move(buffer_); }
  void Clear() { buffer_.Clear(); }

 private:
  FlatKvBuffer buffer_;
};

/// User reduce function: consumes one key group (all shuffled values for a
/// key, in deterministic sorted order) and emits zero or more output pairs.
/// The group is a view into the merged reduce input (or the map-side
/// combine groups); it is only valid for the duration of the call.
/// Implementations must be stateless.
///
/// Two input surfaces exist:
///   - Reduce(key, span<const KeyValue>, ...) — the classic string
///     interface every existing reducer implements. The engine
///     materializes each group's strings into reusable scratch before the
///     call, so user code sees exactly what it always saw.
///   - ReduceFlat(key, KvRange, ...) — opt-in zero-materialization path
///     over the flat buffer. A reducer that overrides it and returns true
///     from PrefersFlatInput() skips per-pair string construction
///     entirely. Both paths must emit identical bytes.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const std::string& key,
                      std::span<const KeyValue> values,
                      ReduceContext* context) const = 0;

  /// True to have the engine call ReduceFlat instead of materializing
  /// the group for Reduce.
  virtual bool PrefersFlatInput() const { return false; }

  /// Flat twin of Reduce. The default adapter materializes and forwards,
  /// so calling ReduceFlat is always safe; override together with
  /// PrefersFlatInput() to skip the materialization.
  virtual void ReduceFlat(std::string_view key, const KvRange& values,
                          ReduceContext* context) const {
    KvGroupScratch scratch;
    Reduce(std::string(key), scratch.Fill(values), context);
  }
};

/// Null reducer: consumes everything, emits nothing. Used by Redoop's
/// pane-caching pass, whose only purpose is materializing the shuffled,
/// sorted reducer inputs as caches — with the flat path it never touches
/// a single pair.
class NullReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    (void)key;
    (void)values;
    (void)context;
  }
  bool PrefersFlatInput() const override { return true; }
  void ReduceFlat(std::string_view key, const KvRange& values,
                  ReduceContext* context) const override {
    (void)key;
    (void)values;
    (void)context;
  }
};

/// Identity reducer: re-emits every value under its key.
class IdentityReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    for (const KeyValue& v : values) {
      context->Emit(key, v.value, v.logical_bytes);
    }
  }
  bool PrefersFlatInput() const override { return true; }
  void ReduceFlat(std::string_view key, const KvRange& values,
                  ReduceContext* context) const override {
    for (size_t i = 0; i < values.size(); ++i) {
      context->Emit(key, values.value(i), values.logical_bytes(i));
    }
  }
};

/// Per-key composition `second ∘ first`: runs `first` on the key group,
/// then feeds its output through `second`. This is how a single-job
/// baseline expresses a Redoop query whose finalization differs from its
/// reduce body (reduce per pane, finalize per window == reduce then
/// finalize when the whole window is one group).
class ComposedReducer : public Reducer {
 public:
  ComposedReducer(std::shared_ptr<const Reducer> first,
                  std::shared_ptr<const Reducer> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    ReduceContext intermediate;
    first_->Reduce(key, values, &intermediate);
    if (intermediate.flat().empty()) return;
    const std::vector<KeyValue> staged = intermediate.output();
    second_->Reduce(key, staged, context);
  }

 private:
  std::shared_ptr<const Reducer> first_;
  std::shared_ptr<const Reducer> second_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_REDUCER_H_
