#ifndef REDOOP_MAPREDUCE_TRACE_H_
#define REDOOP_MAPREDUCE_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/task.h"

namespace redoop {

/// Exports task execution timelines in the Chrome trace-event format
/// (load the file in chrome://tracing or https://ui.perfetto.dev): one
/// lane per cluster node, one slice per task attempt, with the phase
/// breakdown in the slice arguments. Simulated seconds are rendered as
/// trace microseconds.
class TraceWriter {
 public:
  TraceWriter() = default;

  /// Adds every report of one job under the given label.
  void AddJob(const std::string& job_label,
              const std::vector<TaskReport>& reports);

  size_t event_count() const { return events_.size(); }

  /// The complete trace as Chrome trace JSON.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    std::string job;
    TaskReport report;
  };

  std::vector<Event> events_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_TRACE_H_
