#ifndef REDOOP_MAPREDUCE_TRACE_H_
#define REDOOP_MAPREDUCE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/task.h"
#include "obs/event_journal.h"

namespace redoop {

/// Exports execution timelines in the Chrome trace-event format (load the
/// file in chrome://tracing or https://ui.perfetto.dev). Three processes:
///   pid 1 — task attempts, one lane per cluster node, one slice per
///           attempt with the phase breakdown in the slice arguments;
///   pid 2 — cache lifetimes, one lane per node, one slice per cache from
///           its materialization to its eviction/invalidation/purge;
///   pid 3 — counter series (cache occupancy bytes, tasks running).
/// Simulated seconds are rendered as trace microseconds.
class TraceWriter {
 public:
  TraceWriter() = default;

  /// Adds every report of one job under the given label.
  void AddJob(const std::string& job_label,
              const std::vector<TaskReport>& reports);

  /// Adds one sample of a counter series ("C" event in the counters
  /// process).
  void AddCounterSample(const std::string& series, double time_s,
                        double value);

  /// Adds one cache's lifetime as a slice in the caches process, laned by
  /// the node holding it.
  void AddCacheSpan(const std::string& name, int64_t node, double start_s,
                    double end_s, int64_t bytes, const std::string& kind);

  /// Reconstructs visualization lanes from a structured event journal:
  ///   - per-node cache-lifetime slices (cache.add until the matching
  ///     cache.evict / cache.invalidate / cache.purge; caches still live
  ///     at the journal's end close at its last event time);
  ///   - a "cache_bytes" occupancy counter stepped at every transition;
  ///   - a "tasks_running" counter from sched.assign (+1) and
  ///     task.finish / task.fail (-1) deltas.
  void AddJournal(const obs::EventJournal& journal);

  /// Slices + counter samples + spans added so far (metadata excluded).
  size_t event_count() const { return events_.size() + extra_.size(); }

  /// The complete trace as Chrome trace JSON.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    std::string job;
    TaskReport report;
  };

  std::vector<Event> events_;
  /// Pre-rendered JSON objects for counter/cache/metadata events.
  std::vector<std::string> extra_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_TRACE_H_
