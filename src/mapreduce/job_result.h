#ifndef REDOOP_MAPREDUCE_JOB_RESULT_H_
#define REDOOP_MAPREDUCE_JOB_RESULT_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "mapreduce/counters.h"
#include "mapreduce/kv.h"
#include "mapreduce/task.h"

namespace redoop {

/// Outcome of one MapReduce job execution on the simulated cluster.
struct JobResult {
  Status status;
  SimTime submitted_at = 0.0;
  SimTime finished_at = 0.0;

  /// End-to-end job response time.
  SimDuration Elapsed() const { return finished_at - submitted_at; }

  /// Phase aggregates matching the paper's Fig. 6/7 (b,d,f) methodology:
  /// shuffle time is the copying of map outputs to reducers; reduce time is
  /// everything a reducer does after the shuffle (sort + grouping + reduce
  /// calls + writes), summed over reduce tasks.
  SimDuration shuffle_time_total = 0.0;
  SimDuration reduce_time_total = 0.0;
  /// Map phase span: first map start to last map finish.
  SimDuration map_phase_time = 0.0;

  /// Final output pairs, partitions concatenated in partition order, each
  /// partition sorted by (key, value).
  std::vector<KeyValue> output;

  Counters counters;
  std::vector<TaskReport> task_reports;
  /// Caches materialized per the spec's CacheDirectives.
  std::vector<MaterializedCache> caches;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_JOB_RESULT_H_
