#ifndef REDOOP_MAPREDUCE_TASK_H_
#define REDOOP_MAPREDUCE_TASK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"

namespace redoop {

enum class TaskType { kMap, kReduce };

enum class TaskState { kPending, kRunning, kCompleted, kFailed };

/// Per-task timing breakdown (seconds of simulated time).
struct TaskTiming {
  /// When the task became eligible to run: maps after job startup, reduces
  /// when the map barrier lifted. scheduled_at - ready_at is the time the
  /// attempt spent queued for a free slot.
  SimTime ready_at = 0.0;
  SimTime scheduled_at = 0.0;
  SimTime finished_at = 0.0;
  SimDuration startup = 0.0;
  SimDuration read = 0.0;     // Input read (HDFS / local spill / cache).
  SimDuration shuffle = 0.0;  // Reduce only: copying map outputs.
  SimDuration sort = 0.0;     // Sort/merge phase.
  SimDuration compute = 0.0;  // User function CPU.
  SimDuration write = 0.0;    // Spill / cache / HDFS output writes.

  SimDuration Total() const {
    return startup + read + shuffle + sort + compute + write;
  }

  /// Slot-wait: time spent schedulable but queued behind busy slots.
  SimDuration SlotWait() const { return scheduled_at - ready_at; }
};

/// Completion report for one task attempt that ran to completion (the
/// successful attempt; earlier failed attempts bump `attempt`).
struct TaskReport {
  TaskId id = 0;
  TaskType type = TaskType::kMap;
  NodeId node = kInvalidNode;
  int32_t partition = -1;  // Reduce tasks only.
  SourceId source = 0;     // Map tasks: input source.
  PaneId pane = kInvalidPane;  // Map tasks: input pane.
  int32_t attempt = 0;
  TaskTiming timing;
};

/// A cache file materialized by a job (reduce input or reduce output),
/// reported back so the Redoop layer can register it.
struct MaterializedCache {
  std::string name;
  NodeId node = kInvalidNode;
  int32_t partition = 0;
  SourceId source = 0;        // Reduce-input caches only.
  PaneId pane = kInvalidPane; // Reduce-input caches; left pane for pairs.
  PaneId pane_right = kInvalidPane;  // Pane-pair output caches only.
  bool is_reduce_output = false;
  int64_t bytes = 0;
  int64_t records = 0;
  /// The cached pairs as an immutable flat buffer, shared (not copied)
  /// into the cache store and any aliasing side inputs.
  std::shared_ptr<const FlatKvBuffer> payload;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_TASK_H_
