#include "mapreduce/job_runner.h"

#include <algorithm>
#include <deque>
#include <set>
#include <span>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {

namespace {

/// FNV-1a over key bytes — the hash-combine table hash. Any hash works:
/// group *iteration* order is first-occurrence order, never table order,
/// so the hash choice is unobservable in the output.
uint64_t HashKeyBytes(std::string_view key) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

/// Map-side combine over one partition's pairs (`idx`, in emission order)
/// without sorting the raw pairs first: an open-addressing hash table
/// groups equal keys, the combiner runs per group, and only the (smaller)
/// combined output pays a sort. Determinism does not depend on the hash:
/// groups are visited in first-occurrence order and each group's members
/// are ordered by (value, emission index) — exactly the sequence the old
/// sort-then-scan combine presented.
FlatKvBuffer CombinePartition(const FlatKvBuffer& flat,
                              const std::vector<uint32_t>& idx,
                              const Reducer* combiner) {
  if (idx.empty()) return FlatKvBuffer();
  // Table capacity: power of two, load factor <= 0.5.
  size_t cap = 16;
  while (cap < idx.size() * 2) cap <<= 1;
  std::vector<uint32_t> table(cap, kNoSlot);  // slot -> group id
  struct Group {
    uint64_t hash = 0;
    uint32_t head = 0;  // First position in idx (defines the group key).
    uint32_t tail = 0;
    uint32_t count = 0;
  };
  std::vector<Group> groups;
  // Intrusive chain threading each group's positions, in arrival order.
  std::vector<uint32_t> next(idx.size(), kNoSlot);
  for (uint32_t pos = 0; pos < static_cast<uint32_t>(idx.size()); ++pos) {
    const std::string_view key = flat.key(idx[pos]);
    const uint64_t h = HashKeyBytes(key);
    size_t slot = h & (cap - 1);
    while (true) {
      if (table[slot] == kNoSlot) {
        table[slot] = static_cast<uint32_t>(groups.size());
        Group g;
        g.hash = h;
        g.head = g.tail = pos;
        g.count = 1;
        groups.push_back(g);
        break;
      }
      Group& g = groups[table[slot]];
      if (g.hash == h && flat.key(idx[g.head]) == key) {
        next[g.tail] = pos;
        g.tail = pos;
        ++g.count;
        break;
      }
      slot = (slot + 1) & (cap - 1);
    }
  }
  ReduceContext combine_out;
  KvGroupScratch scratch;
  const bool flat_combine = combiner->PrefersFlatInput();
  std::vector<uint32_t> members;
  for (const Group& g : groups) {
    members.clear();
    members.reserve(g.count);
    for (uint32_t pos = g.head;; pos = next[pos]) {
      members.push_back(idx[pos]);
      if (pos == g.tail) break;
    }
    // Members share the key; order them by (value, emission index) so the
    // combiner sees the same sequence a sorted bucket scan would.
    std::sort(members.begin(), members.end(),
              [&flat](uint32_t a, uint32_t b) {
                const std::string_view va = flat.value(a);
                const std::string_view vb = flat.value(b);
                if (va != vb) return va < vb;
                return a < b;
              });
    const std::string_view key = flat.key(members.front());
    if (flat_combine) {
      combiner->ReduceFlat(key, KvRange(flat, members), &combine_out);
    } else {
      combiner->Reduce(scratch.KeyFor(key),
                       scratch.Fill(KvRange(flat, members)), &combine_out);
    }
  }
  // One sorted materialization of the (combined, smaller) output.
  FlatKvBuffer combined = combine_out.TakeFlat();
  FlatKvBuffer bucket = combined.SortedCopy();
  bucket.ShrinkToFit();
  return bucket;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal task/run state
// ---------------------------------------------------------------------------

struct JobRunner::MapTaskState {
  TaskId id = 0;
  int64_t index = 0;  // Position in RunState::maps.
  // Input slice.
  const DfsFile* file = nullptr;
  int64_t record_begin = 0;
  int64_t record_end = 0;
  int64_t input_bytes = 0;
  std::vector<NodeId> replica_nodes;
  SourceId source = 0;
  PaneId pane = kInvalidPane;

  TaskState state = TaskState::kPending;
  NodeId node = kInvalidNode;
  int32_t attempt = 0;
  /// When this attempt became schedulable (job startup done, or re-queue).
  SimTime ready_at = 0.0;
  TaskTiming timing;
  /// Speculative backup attempt, if launched (kInvalidNode = none).
  NodeId backup_node = kInvalidNode;
  TaskId backup_id = 0;
  SimDuration nominal_duration = 0.0;
  /// Straggler draw for the current attempt, consumed at Start (before any
  /// offload) so the RNG stream is thread-count invariant.
  double straggler_factor = 1.0;
  /// Partitioned, sorted map output: one flat bucket per reduce partition.
  /// Published once per attempt as an immutable shared payload — in-flight
  /// reduce closures hold their own reference, so a failure-triggered
  /// re-run can never mutate data a worker thread is still merging.
  std::shared_ptr<const std::vector<FlatKvBuffer>> buckets;
  std::vector<int64_t> bucket_bytes;
  int64_t output_records = 0;
  int64_t output_bytes = 0;
};

/// Everything a map payload produces: computed off the simulator thread
/// (or inline at threads=1) from immutable inputs only.
struct JobRunner::MapPayloadResult {
  std::shared_ptr<const std::vector<FlatKvBuffer>> buckets;
  std::vector<int64_t> bucket_bytes;
  int64_t output_records = 0;  // Pre-combine, sizing the sort charge.
  int64_t output_bytes = 0;    // Pre-combine.
};

/// Everything a reduce payload produces. Pane merges come out in
/// runs_by_pane (source, pane) map order — deterministic — with empty
/// merges already skipped, mirroring the seed's inline loop.
struct JobRunner::ReducePayloadResult {
  std::shared_ptr<const FlatKvBuffer> output;
  int64_t output_bytes = 0;
  struct PaneMerge {
    SourceId source = 0;
    PaneId pane = kInvalidPane;
    std::shared_ptr<const FlatKvBuffer> payload;
    int64_t bytes = 0;
    int64_t records = 0;
  };
  std::vector<PaneMerge> pane_merges;
};

struct JobRunner::ReduceTaskState {
  TaskId id = 0;
  int32_t partition = 0;
  std::vector<ReduceSideInput> side_inputs;
  NodeId preferred_node = kInvalidNode;
  /// Explicit-task fields (pane-pair jobs): skip the shuffle, use a
  /// per-task output cache name, carry pane labels.
  bool is_explicit = false;
  std::string output_cache_name;
  PaneId label_left = kInvalidPane;
  PaneId label_right = kInvalidPane;

  TaskState state = TaskState::kPending;
  NodeId node = kInvalidNode;
  int32_t attempt = 0;
  /// When this attempt became schedulable (map barrier lift, or re-queue).
  SimTime ready_at = 0.0;
  TaskTiming timing;
  /// Speculative backup attempt, if launched (kInvalidNode = none).
  NodeId backup_node = kInvalidNode;
  TaskId backup_id = 0;
  SimDuration nominal_duration = 0.0;
  /// Straggler draw for the current attempt (see MapTaskState).
  double straggler_factor = 1.0;
  /// Shared so output caches and the job result alias it instead of
  /// deep-copying every pair.
  std::shared_ptr<const FlatKvBuffer> output;
  std::vector<MaterializedCache> caches;
};

struct JobRunner::RunState {
  const JobSpec* spec = nullptr;
  std::shared_ptr<const Partitioner> partitioner;
  JobResult result;
  std::vector<std::unique_ptr<MapTaskState>> maps;
  std::vector<std::unique_ptr<ReduceTaskState>> reduces;
  int64_t maps_completed = 0;
  int64_t reduces_completed = 0;
  /// Per-reduce-partition total of completed map bucket bytes, maintained
  /// incrementally as maps finish (and rolled back when a completed map's
  /// output is lost to a node failure). Replaces the O(maps × reduces)
  /// rescan the scheduling loop used to pay per placement decision.
  std::vector<int64_t> partition_shuffle_bytes;
  bool reduces_unlocked = false;  // Set once all maps are done.
  bool finished = false;
  Status failure;  // First fatal error.
  SimTime first_map_start = -1.0;
  SimTime last_map_finish = 0.0;
  /// (node, cache name) pairs already read during this job: repeat reads on
  /// the same node hit the OS page cache and are charged only latency.
  std::set<std::pair<NodeId, std::string>> warm_reads;
  /// Weak self-reference so scheduled events can keep the state alive past
  /// the Run() call (stale completions are then safely ignored).
  std::weak_ptr<RunState> self;
  /// One waiter per offloaded payload. Run() drains these before
  /// returning so no worker thread still references the spec, the DFS, or
  /// the user functions once the caller regains control — including
  /// payloads whose join event went stale (failed/re-issued attempts).
  std::vector<std::function<void()>> pending_payloads;
};

// ---------------------------------------------------------------------------
// Construction / failure listener
// ---------------------------------------------------------------------------

JobRunner::JobRunner(Cluster* cluster, TaskScheduler* scheduler,
                     JobRunnerOptions options)
    : cluster_(cluster),
      scheduler_(scheduler),
      options_(options),
      scope_(options.telemetry != nullptr ? *options.telemetry
                                          : obs::TelemetryScope(options.obs)),
      random_(options.seed) {
  REDOOP_CHECK(cluster_ != nullptr);
  REDOOP_CHECK(scheduler_ != nullptr);
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
  } else {
    const int32_t threads = options_.threads == 0
                                ? exec::TaskExecutor::DefaultThreadCount()
                                : options_.threads;
    if (threads > 1) {
      owned_executor_ = std::make_unique<exec::TaskExecutor>(threads);
      executor_ = owned_executor_.get();
    }
  }
  cluster_->AddFailureListener(
      [this](NodeId node, const std::vector<std::string>& lost) {
        (void)lost;
        OnNodeFailure(node);
      });
}

JobRunner::~JobRunner() = default;

// ---------------------------------------------------------------------------
// Task construction
// ---------------------------------------------------------------------------

void JobRunner::BuildMapTasks(const JobSpec& spec, RunState* run) {
  for (const MapInput& input : spec.map_inputs) {
    auto file_or = cluster_->dfs().GetFile(input.file_name);
    if (!file_or.ok()) {
      run->failure = file_or.status();
      return;
    }
    const DfsFile* file = *file_or;
    const int64_t file_records = file->record_count();
    const int64_t begin = std::max<int64_t>(0, input.record_begin);
    const int64_t end = input.record_end < 0
                            ? file_records
                            : std::min(input.record_end, file_records);
    if (begin >= end) continue;  // Empty slice: nothing to map.
    // One map task per HDFS block overlapping the requested slice
    // (Hadoop: one map per input split).
    for (const Block& block : file->blocks) {
      const int64_t slice_begin = std::max(begin, block.record_begin);
      const int64_t slice_end = std::min(end, block.record_end);
      if (slice_begin >= slice_end) continue;
      auto task = std::make_unique<MapTaskState>();
      task->id = next_task_id_++;
      task->index = static_cast<int64_t>(run->maps.size());
      task->file = file;
      task->record_begin = slice_begin;
      task->record_end = slice_end;
      const std::vector<Record>& rows = file->rows();
      for (int64_t r = slice_begin; r < slice_end; ++r) {
        task->input_bytes += rows[static_cast<size_t>(r)].logical_bytes;
      }
      task->replica_nodes = block.replicas;
      task->source = input.source;
      task->pane = input.pane;
      bool any_replica_alive = false;
      for (NodeId n : task->replica_nodes) {
        if (cluster_->node(n).alive()) any_replica_alive = true;
      }
      if (!any_replica_alive) {
        run->failure = Status::Unavailable(StringPrintf(
            "block %ld of %s has no live replica", block.id,
            file->name.c_str()));
        return;
      }
      run->maps.push_back(std::move(task));
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduling loop
// ---------------------------------------------------------------------------

void JobRunner::TryScheduleTasks(RunState* run) {
  if (run->finished) return;
  // Maps first (FIFO over pending tasks).
  for (auto& task : run->maps) {
    if (task->state != TaskState::kPending) continue;
    MapPlacementRequest request;
    request.replica_nodes = task->replica_nodes;
    request.source = task->source;
    request.pane = task->pane;
    request.input_bytes = task->input_bytes;
    const NodeId node = scheduler_->SelectNodeForMap(request, *cluster_);
    if (node == kInvalidNode) break;  // No free map slots anywhere.
    StartMapTask(run, task.get(), node);
  }
  // Reduces once the map barrier lifted.
  if (!run->reduces_unlocked) return;
  for (auto& task : run->reduces) {
    if (task->state != TaskState::kPending) continue;
    ReducePlacementRequest request;
    request.partition = task->partition;
    request.side_inputs = task->side_inputs;
    request.preferred_node = task->preferred_node;
    request.shuffle_bytes =
        run->partition_shuffle_bytes[static_cast<size_t>(task->partition)];
    const NodeId node = scheduler_->SelectNodeForReduce(request, *cluster_);
    if (node == kInvalidNode) break;  // No free reduce slots anywhere.
    StartReduceTask(run, task.get(), node);
  }
}

// ---------------------------------------------------------------------------
// Map execution
// ---------------------------------------------------------------------------

void JobRunner::StartMapTask(RunState* run, MapTaskState* task, NodeId node) {
  TaskNode& n = cluster_->node(node);
  REDOOP_CHECK(n.AcquireMapSlot()) << "scheduler chose node without slot";
  task->state = TaskState::kRunning;
  task->node = node;
  task->timing = TaskTiming();
  task->timing.ready_at = task->ready_at;
  task->timing.scheduled_at = cluster_->simulator().Now();
  if (run->first_map_start < 0) {
    run->first_map_start = task->timing.scheduled_at;
  }
  if (scope_.active()) {
    obs::Event& e =
        scope_.EmitAt(task->timing.scheduled_at, obs::event::kTaskStart)
            .With("kind", "map")
            .With("task", task->id)
            .With("node", node)
            .With("source", task->source)
            .With("pane", task->pane)
            .With("attempt", task->attempt)
            .With("wait", task->timing.SlotWait());
    StampTaskContext(task->id, task->attempt, &e);
  }

  const CostModel& cost = cluster_->cost_model();
  const JobSpec& spec = *run->spec;

  // Per-source mapper override first (e.g. join-side tagging).
  const Mapper* mapper = spec.config.mapper.get();
  auto override_it = spec.per_source_mappers.find(task->source);
  if (override_it != spec.per_source_mappers.end()) {
    mapper = override_it->second.get();
  }
  const int32_t num_partitions = spec.config.num_reducers;

  // Everything start-known is charged and journaled now, before the
  // payload runs: locality, the DFS read, the input-sized phases, and the
  // straggler draw. Result-dependent phases land in InstallMapResult.
  const bool local = std::find(task->replica_nodes.begin(),
                               task->replica_nodes.end(),
                               node) != task->replica_nodes.end();
  if (scope_.active()) {
    scope_.Increment(
        local ? obs::metric::kDfsReadLocalBytes
              : obs::metric::kDfsReadRemoteBytes,
        task->input_bytes);
    scope_.EmitAt(cluster_->simulator().Now(), obs::event::kDfsRead)
        .With("file", task->file->name)
        .With("node", node)
        .With("task", task->id)
        .With("bytes", task->input_bytes)
        .With("source", task->source)
        .With("pane", task->pane)
        .With("locality", local ? "local" : "remote");
  }
  task->timing.startup = cost.TaskStartupTime();
  task->timing.read = local ? cost.LocalReadTime(task->input_bytes)
                            : cost.RemoteReadTime(task->input_bytes);
  task->straggler_factor = DrawStragglerFactor();

  // The payload closure is pure: it captures only immutable inputs (DFS
  // records, stateless user functions) and returns fresh data. Which
  // thread runs it — and when, in host time — is unobservable.
  auto payload = [file = task->file, begin = task->record_begin,
                  end = task->record_end, mapper,
                  combiner = spec.config.combiner,
                  partitioner = run->partitioner, num_partitions] {
    return ExecuteMapPayload(file, begin, end, mapper, combiner.get(),
                             partitioner.get(), num_partitions);
  };
  if (executor_ == nullptr) {
    InstallMapResult(run, task, payload());
    return;
  }
  auto future = executor_->Submit(std::move(payload));
  run->pending_payloads.push_back([future]() mutable { future.Wait(); });
  // Join point: installs at the same virtual instant, in submission
  // order, after every event already queued for this instant — exactly
  // where the inline result would have been consumed.
  const TaskId id = task->id;
  std::shared_ptr<RunState> keepalive = run->self.lock();
  cluster_->simulator().ScheduleJoin([this, keepalive, task, id,
                                      future]() mutable {
    RunState* run = keepalive.get();
    if (run->finished || run != active_run_ ||
        task->state != TaskState::kRunning || task->id != id) {
      return;  // Attempt failed/re-issued before the join fired.
    }
    InstallMapResult(run, task, future.Take());
  });
}

JobRunner::MapPayloadResult JobRunner::ExecuteMapPayload(
    const DfsFile* file, int64_t record_begin, int64_t record_end,
    const Mapper* mapper, const Reducer* combiner,
    const Partitioner* partitioner, int32_t num_partitions) {
  MapPayloadResult out;
  MapContext context;
  // Most mappers emit about one pair per record; ShrinkToFit on the final
  // buckets trims any over-reservation before they are retained for the
  // whole shuffle.
  context.Reserve(static_cast<size_t>(record_end - record_begin));
  const std::vector<Record>& rows = file->rows();  // Decoded once, memoized.
  for (int64_t r = record_begin; r < record_end; ++r) {
    mapper->Map(rows[static_cast<size_t>(r)], &context);
  }
  // Partition by slice, straight off the arena: the key never leaves the
  // flat buffer, each partition collects pair indices, and the bytes are
  // copied exactly once — into their sorted (or combined) bucket.
  const FlatKvBuffer& output = context.flat();
  out.output_records = static_cast<int64_t>(output.size());
  out.output_bytes = output.total_logical_bytes();
  std::vector<uint32_t> pair_partition(output.size());
  std::vector<size_t> partition_counts(static_cast<size_t>(num_partitions), 0);
  for (size_t i = 0; i < output.size(); ++i) {
    const int32_t p = partitioner->Partition(output.key(i), num_partitions);
    pair_partition[i] = static_cast<uint32_t>(p);
    ++partition_counts[static_cast<size_t>(p)];
  }
  std::vector<std::vector<uint32_t>> partition_indices(
      static_cast<size_t>(num_partitions));
  for (size_t p = 0; p < partition_indices.size(); ++p) {
    partition_indices[p].reserve(partition_counts[p]);
  }
  for (size_t i = 0; i < output.size(); ++i) {
    partition_indices[pair_partition[i]].push_back(static_cast<uint32_t>(i));
  }

  std::vector<FlatKvBuffer> buckets(static_cast<size_t>(num_partitions));
  out.bucket_bytes.assign(static_cast<size_t>(num_partitions), 0);
  for (size_t p = 0; p < buckets.size(); ++p) {
    std::vector<uint32_t>& idx = partition_indices[p];
    if (combiner != nullptr) {
      // Map-side combine: key groups collapse before the spill/shuffle via
      // a hash table over the raw pairs — only the combined output is
      // sorted. The sort is charged on the pre-combine volume; everything
      // downstream (spill, shuffle, reduce) sees the combined one.
      buckets[p] = CombinePartition(output, idx, combiner);
    } else {
      SortSliceIndices(output, &idx);
      FlatKvBuffer bucket;
      bucket.Reserve(idx.size());
      for (uint32_t i : idx) bucket.AppendFrom(output, i);
      bucket.ShrinkToFit();
      buckets[p] = std::move(bucket);
    }
    out.bucket_bytes[p] = buckets[p].total_logical_bytes();
  }
  out.buckets =
      std::make_shared<const std::vector<FlatKvBuffer>>(std::move(buckets));
  return out;
}

void JobRunner::InstallMapResult(RunState* run, MapTaskState* task,
                                 MapPayloadResult result) {
  const CostModel& cost = cluster_->cost_model();
  const JobSpec& spec = *run->spec;
  task->buckets = std::move(result.buckets);
  task->bucket_bytes = std::move(result.bucket_bytes);
  task->output_records = result.output_records;
  task->output_bytes = result.output_bytes;

  int64_t spilled_bytes = 0;
  for (int64_t b : task->bucket_bytes) spilled_bytes += b;
  task->timing.compute = cost.MapComputeTime(task->input_bytes);
  if (spec.config.combiner != nullptr) {
    // The combiner scans the full pre-combine output once.
    task->timing.compute += cost.ReduceComputeTime(task->output_bytes);
  }
  task->timing.sort = cost.SortTime(task->output_bytes, task->output_records);
  task->timing.write = cost.LocalWriteTime(spilled_bytes);
  const SimDuration duration =
      ArmAttempt(run, task, task->timing.Total(), /*is_map=*/true);

  // Capture the run state by shared_ptr: a stale completion event (for an
  // attempt that was failed and re-issued) may fire after the job returned.
  const TaskId id = task->id;
  std::shared_ptr<RunState> keepalive = run->self.lock();
  cluster_->simulator().Schedule(duration, [this, keepalive, task, id] {
    RunState* run = keepalive.get();
    if (run->finished || run != active_run_ ||
        task->state != TaskState::kRunning || task->id != id) {
      return;
    }
    FinishMapTask(run, task, task->node);
  });
}

void JobRunner::FinishMapTask(RunState* run, MapTaskState* task,
                              NodeId winner_node) {
  task->state = TaskState::kCompleted;
  task->timing.finished_at = cluster_->simulator().Now();
  // Release the primary's slot and kill the speculative backup, if any
  // (whichever of the two finished first is the winner).
  if (cluster_->node(task->node).alive()) {
    cluster_->node(task->node).ReleaseMapSlot();
  }
  if (task->backup_node != kInvalidNode) {
    if (cluster_->node(task->backup_node).alive()) {
      cluster_->node(task->backup_node).ReleaseMapSlot();
    }
    task->backup_node = kInvalidNode;
    task->backup_id = 0;
  }
  task->node = winner_node;  // Map outputs live with the winner.
  run->last_map_finish =
      std::max(run->last_map_finish, task->timing.finished_at);
  ++run->maps_completed;
  for (size_t p = 0; p < task->bucket_bytes.size(); ++p) {
    run->partition_shuffle_bytes[p] += task->bucket_bytes[p];
  }

  TaskReport report;
  report.id = task->id;
  report.type = TaskType::kMap;
  report.node = task->node;
  report.source = task->source;
  report.pane = task->pane;
  report.attempt = task->attempt;
  report.timing = task->timing;
  run->result.task_reports.push_back(report);

  Counters& c = run->result.counters;
  c.Increment(counter::kMapTasks);
  c.Increment(counter::kMapInputRecords, task->record_end - task->record_begin);
  c.Increment(counter::kMapInputBytes, task->input_bytes);
  c.Increment(counter::kMapOutputRecords, task->output_records);
  c.Increment(counter::kMapOutputBytes, task->output_bytes);
  c.Increment(counter::kHdfsReadBytes, task->input_bytes);

  if (scope_.active()) {
    scope_.Increment(obs::metric::kTasksMap);
    scope_.Record(
        obs::metric::kTaskMapDuration,
        report.timing.finished_at - report.timing.scheduled_at);
    scope_.EmitAt(report.timing.finished_at, obs::event::kTaskFinish)
        .With("kind", "map")
        .With("task", report.id)
        .With("node", report.node)
        .With("source", report.source)
        .With("pane", report.pane)
        .With("attempt", report.attempt)
        .With("start", report.timing.scheduled_at)
        .With("duration", report.timing.finished_at -
                              report.timing.scheduled_at)
        .With("bytes", task->input_bytes)
        .With("wait", report.timing.SlotWait())
        .With("startup", report.timing.startup)
        .With("read", report.timing.read)
        .With("sort", report.timing.sort)
        .With("compute", report.timing.compute)
        .With("write", report.timing.write);
  }

  if (AllMapsDone(*run) && !run->reduces_unlocked) {
    run->reduces_unlocked = true;
    // The barrier lifted: every pending reduce becomes schedulable now.
    for (auto& reduce : run->reduces) {
      if (reduce->state == TaskState::kPending) {
        reduce->ready_at = cluster_->simulator().Now();
      }
    }
  }
  TryScheduleTasks(run);
  MaybeFinishJob(run);
}

bool JobRunner::AllMapsDone(const RunState& run) const {
  return run.maps_completed == static_cast<int64_t>(run.maps.size());
}

// ---------------------------------------------------------------------------
// Reduce execution
// ---------------------------------------------------------------------------

void JobRunner::StartReduceTask(RunState* run, ReduceTaskState* task,
                                NodeId node) {
  TaskNode& n = cluster_->node(node);
  REDOOP_CHECK(n.AcquireReduceSlot()) << "scheduler chose node without slot";
  task->state = TaskState::kRunning;
  task->node = node;
  task->timing = TaskTiming();
  task->timing.ready_at = task->ready_at;
  task->timing.scheduled_at = cluster_->simulator().Now();
  task->output.reset();
  task->caches.clear();
  if (scope_.active()) {
    obs::Event& e =
        scope_.EmitAt(task->timing.scheduled_at, obs::event::kTaskStart)
            .With("kind", "reduce")
            .With("task", task->id)
            .With("node", node)
            .With("partition", task->partition)
            .With("attempt", task->attempt)
            .With("wait", task->timing.SlotWait());
    StampTaskContext(task->id, task->attempt, &e);
  }

  const CostModel& cost = cluster_->cost_model();
  const JobSpec& spec = *run->spec;
  Counters& counters = run->result.counters;
  const int32_t partition = task->partition;

  task->timing.startup = cost.TaskStartupTime();

  // ---- Shuffle: view this partition's sorted bucket from every map
  // output. The buckets are collected as zero-copy runs for the k-way
  // merge below; nothing is concatenated or re-sorted. ----
  int64_t new_bytes = 0;
  int64_t new_records = 0;
  std::vector<const FlatKvBuffer*> runs;
  // (source, pane) -> this partition's sorted bucket runs, for
  // reduce-input caching.
  std::map<std::pair<SourceId, PaneId>, std::vector<const FlatKvBuffer*>>
      runs_by_pane;
  for (const auto& map : run->maps) {
    REDOOP_CHECK(map->state == TaskState::kCompleted);
    const FlatKvBuffer& bucket = (*map->buckets)[static_cast<size_t>(partition)];
    if (bucket.empty()) continue;
    const int64_t bytes = map->bucket_bytes[static_cast<size_t>(partition)];
    new_bytes += bytes;
    new_records += static_cast<int64_t>(bucket.size());
    if (map->node == node) {
      task->timing.shuffle += cost.LocalReadTime(bytes);
      counters.Increment(counter::kShuffleLocalBytes, bytes);
    } else {
      task->timing.shuffle += cost.LocalReadTime(bytes) + cost.TransferTime(bytes);
      counters.Increment(counter::kShuffleRemoteBytes, bytes);
    }
    runs.push_back(&bucket);
    if (spec.cache.cache_reduce_input) {
      runs_by_pane[{map->source, map->pane}].push_back(&bucket);
    }
  }

  // ---- Cached side inputs (reduce input caches from prior recurrences). --
  // A cache already read on this node during this job (e.g. a new pane
  // joined against many partners by co-located pane-pair tasks) stays in
  // the OS page cache; repeat reads pay only the access latency. This is
  // optimistic for tasks running concurrently with the first reader, but
  // the savings shape is right.
  int64_t cached_bytes = 0;
  int64_t cached_records = 0;
  // Cached payloads are materialized sorted (they are merge outputs), so
  // they join the merge as runs directly. The sorted-copy fallback guards
  // against exotic caches (e.g. a multi-emission reducer's output cache
  // fed back as a side input); the deque keeps earlier pointers stable.
  std::deque<FlatKvBuffer> resort_scratch;
  for (const ReduceSideInput& side : task->side_inputs) {
    REDOOP_CHECK(side.partition == partition);
    REDOOP_CHECK(side.payload != nullptr);
    const bool warm = !run->warm_reads.insert({node, side.cache_name}).second;
    if (warm) {
      task->timing.read += cost.options().disk_seek_s;
    } else if (side.location == node) {
      task->timing.read += cost.LocalReadTime(side.bytes);
      counters.Increment(counter::kCacheReadLocalBytes, side.bytes);
      if (scope_.active()) {
        scope_.Increment(obs::metric::kCacheReadLocalBytes,
                                          side.bytes);
      }
    } else {
      task->timing.read += cost.RemoteReadTime(side.bytes);
      counters.Increment(counter::kCacheReadRemoteBytes, side.bytes);
      if (scope_.active()) {
        scope_.Increment(obs::metric::kCacheReadRemoteBytes,
                                          side.bytes);
      }
    }
    cached_bytes += side.bytes;
    cached_records += side.records;
    if (side.payload->IsSorted()) {
      runs.push_back(side.payload.get());
    } else {
      resort_scratch.push_back(side.payload->SortedCopy());
      runs.push_back(&resort_scratch.back());
    }
  }

  // ---- Sort / merge charges. The *simulated* charge is start-known:
  // newly shuffled data pays a full sort plus the merge spill to local
  // disk (Hadoop reducers materialize their merged input before reducing);
  // cached runs are already sorted per pane and only pay a linear merge
  // pass. The *host* does what the charge models — one k-way merge of the
  // sorted runs instead of a concat + full re-sort — inside the payload
  // below. ----
  task->timing.sort = cost.SortTime(new_bytes, new_records) +
                      cost.options().sort_factor *
                          static_cast<double>(cached_bytes);
  const SimDuration merge_spill = cost.LocalWriteTime(new_bytes);
  const int64_t total_input_bytes = new_bytes + cached_bytes;
  task->timing.compute = cost.ReduceComputeTime(total_input_bytes);
  counters.Increment(counter::kReduceInputRecords,
                     new_records + cached_records);
  counters.Increment(counter::kReduceInputBytes, total_input_bytes);
  task->straggler_factor = DrawStragglerFactor();

  // Keep every run's backing storage alive (and immutable) for the
  // payload's lifetime: map buckets are publish-once shared payloads (a
  // failure-triggered re-run installs a fresh vector, never mutates this
  // one), side inputs are shared cache payloads, and the resort scratch
  // moves into the closure (deque moves preserve element addresses, so
  // the pointers stay valid).
  std::vector<std::shared_ptr<const std::vector<FlatKvBuffer>>> bucket_refs;
  bucket_refs.reserve(run->maps.size());
  for (const auto& map : run->maps) bucket_refs.push_back(map->buckets);
  std::vector<std::shared_ptr<const FlatKvBuffer>> side_refs;
  side_refs.reserve(task->side_inputs.size());
  for (const ReduceSideInput& side : task->side_inputs) {
    side_refs.push_back(side.payload);
  }

  // The payload is pure: merge, group, user reduce, per-pane cache merges.
  // All shared-state accounting (counters, warm reads, journal) already
  // happened above; naming the caches and charging write costs happens at
  // install, on the simulator thread.
  auto payload = [runs = std::move(runs),
                  runs_by_pane = std::move(runs_by_pane),
                  scratch = std::move(resort_scratch),
                  bucket_refs = std::move(bucket_refs),
                  side_refs = std::move(side_refs),
                  reducer = spec.config.reducer] {
    ReducePayloadResult out;
    const FlatKvBuffer input = MergeFlatRuns(runs);
    // Grouping + user reduce calls: each key group is a zero-copy view
    // into the merged flat input. Reducers that opt into the flat surface
    // never see a per-pair string; the classic interface gets its groups
    // materialized into reusable scratch.
    ReduceContext context;
    KvGroupScratch group_scratch;
    const bool flat_reduce = reducer->PrefersFlatInput();
    size_t i = 0;
    while (i < input.size()) {
      const std::string_view group_key = input.key(i);
      size_t j = i;
      while (j < input.size() && input.key(j) == group_key) ++j;
      if (flat_reduce) {
        reducer->ReduceFlat(group_key, KvRange(input, i, j), &context);
      } else {
        reducer->Reduce(group_scratch.KeyFor(group_key),
                        group_scratch.Fill(KvRange(input, i, j)), &context);
      }
      i = j;
    }
    out.output = std::make_shared<const FlatKvBuffer>(context.TakeFlat());
    out.output_bytes = out.output->total_logical_bytes();
    for (const auto& [key, pane_runs] : runs_by_pane) {
      // Each pane's cache is the merge of that pane's sorted map buckets —
      // the same k-way kernel, never a re-sort.
      FlatKvBuffer pairs = MergeFlatRuns(pane_runs);
      if (pairs.empty()) continue;
      ReducePayloadResult::PaneMerge merge;
      merge.source = key.first;
      merge.pane = key.second;
      merge.bytes = pairs.total_logical_bytes();
      merge.records = static_cast<int64_t>(pairs.size());
      merge.payload =
          std::make_shared<const FlatKvBuffer>(std::move(pairs));
      out.pane_merges.push_back(std::move(merge));
    }
    return out;
  };
  if (executor_ == nullptr) {
    InstallReduceResult(run, task, merge_spill, payload());
    return;
  }
  auto future = executor_->Submit(std::move(payload));
  run->pending_payloads.push_back([future]() mutable { future.Wait(); });
  const TaskId id = task->id;
  std::shared_ptr<RunState> keepalive = run->self.lock();
  cluster_->simulator().ScheduleJoin([this, keepalive, task, id, merge_spill,
                                      future]() mutable {
    RunState* run = keepalive.get();
    if (run->finished || run != active_run_ ||
        task->state != TaskState::kRunning || task->id != id) {
      return;  // Attempt failed/re-issued before the join fired.
    }
    InstallReduceResult(run, task, merge_spill, future.Take());
  });
}

void JobRunner::InstallReduceResult(RunState* run, ReduceTaskState* task,
                                    SimDuration merge_spill,
                                    ReducePayloadResult result) {
  const CostModel& cost = cluster_->cost_model();
  const JobSpec& spec = *run->spec;
  Counters& counters = run->result.counters;
  const int32_t partition = task->partition;
  const NodeId node = task->node;

  task->output = std::move(result.output);
  const int64_t output_bytes = result.output_bytes;

  // ---- Writes: reduce-output cache and HDFS output. Reduce-input caches
  // are the merge spill *kept* instead of deleted (paper §4: caching the
  // shuffled, sorted reducer input), so they add no write cost beyond the
  // spill already charged at start. ----
  int64_t write_bytes = output_bytes;  // Plain local materialization.
  if (spec.cache.cache_reduce_input) {
    REDOOP_CHECK(spec.cache.input_cache_name != nullptr);
    for (ReducePayloadResult::PaneMerge& merge : result.pane_merges) {
      MaterializedCache cache;
      cache.name =
          spec.cache.input_cache_name(merge.source, merge.pane, partition);
      cache.node = node;
      cache.partition = partition;
      cache.source = merge.source;
      cache.pane = merge.pane;
      cache.is_reduce_output = false;
      cache.bytes = merge.bytes;
      cache.records = merge.records;
      cache.payload = std::move(merge.payload);
      counters.Increment(counter::kCacheWriteBytes, cache.bytes);
      task->caches.push_back(std::move(cache));
    }
  }
  if (task->is_explicit && !task->output_cache_name.empty()) {
    // Explicit (pane-pair) tasks materialize their output cache even when
    // empty, so "pair done with empty result" is distinguishable from
    // "pair output lost" during window assembly.
    MaterializedCache cache;
    cache.name = task->output_cache_name;
    cache.node = node;
    cache.partition = partition;
    cache.pane = task->label_left;
    cache.pane_right = task->label_right;
    cache.is_reduce_output = true;
    cache.bytes = output_bytes;
    cache.records = static_cast<int64_t>(task->output->size());
    cache.payload = task->output;  // Shared with the job result, not copied.
    write_bytes += cache.bytes;
    counters.Increment(counter::kCacheWriteBytes, cache.bytes);
    task->caches.push_back(std::move(cache));
  } else if (spec.cache.cache_reduce_output && !task->output->empty()) {
    REDOOP_CHECK(spec.cache.output_cache_name != nullptr);
    MaterializedCache cache;
    cache.name = spec.cache.output_cache_name(partition);
    cache.node = node;
    cache.partition = partition;
    cache.is_reduce_output = true;
    cache.bytes = output_bytes;
    cache.records = static_cast<int64_t>(task->output->size());
    cache.payload = task->output;  // Shared with the job result, not copied.
    write_bytes += cache.bytes;
    counters.Increment(counter::kCacheWriteBytes, cache.bytes);
    task->caches.push_back(std::move(cache));
  }
  task->timing.write = merge_spill + cost.LocalWriteTime(write_bytes);
  if (!spec.output_prefix.empty()) {
    task->timing.write += cost.HdfsWriteTime(output_bytes);
    counters.Increment(counter::kHdfsWriteBytes, output_bytes);
  }

  counters.Increment(counter::kReduceOutputRecords,
                     static_cast<int64_t>(task->output->size()));
  counters.Increment(counter::kReduceOutputBytes, output_bytes);

  const SimDuration duration =
      ArmAttempt(run, task, task->timing.Total(), /*is_map=*/false);
  const TaskId id = task->id;
  std::shared_ptr<RunState> keepalive = run->self.lock();
  cluster_->simulator().Schedule(duration, [this, keepalive, task, id] {
    RunState* run = keepalive.get();
    if (run->finished || run != active_run_ ||
        task->state != TaskState::kRunning || task->id != id) {
      return;
    }
    FinishReduceTask(run, task, task->node);
  });
}

void JobRunner::FinishReduceTask(RunState* run, ReduceTaskState* task,
                                 NodeId winner_node) {
  task->state = TaskState::kCompleted;
  task->timing.finished_at = cluster_->simulator().Now();
  if (cluster_->node(task->node).alive()) {
    cluster_->node(task->node).ReleaseReduceSlot();
  }
  if (task->backup_node != kInvalidNode) {
    if (cluster_->node(task->backup_node).alive()) {
      cluster_->node(task->backup_node).ReleaseReduceSlot();
    }
    task->backup_node = kInvalidNode;
    task->backup_id = 0;
  }
  task->node = winner_node;  // Caches/outputs live with the winner.
  ++run->reduces_completed;

  // Register cache files on the node's local FS so capacity/locality and
  // later failure injection see them. A full disk triggers on-demand
  // purging (paper §4.1) before the cache is dropped as a last resort.
  for (MaterializedCache& cache : task->caches) {
    cache.node = task->node;
    TaskNode& n = cluster_->node(task->node);
    bool stored = n.PutLocalFile(cache.name, cache.bytes);
    if (!stored && disk_full_handler_ != nullptr) {
      disk_full_handler_(task->node, cache.bytes);
      stored = n.PutLocalFile(cache.name, cache.bytes);
    }
    if (!stored) {
      REDOOP_LOG(Warning) << "node " << task->node
                          << " local FS full; cache dropped: " << cache.name;
      cache.bytes = -1;  // Mark dropped; filtered below.
    }
  }

  TaskReport report;
  report.id = task->id;
  report.type = TaskType::kReduce;
  report.node = task->node;
  report.partition = task->partition;
  report.attempt = task->attempt;
  report.timing = task->timing;
  run->result.task_reports.push_back(report);
  run->result.counters.Increment(counter::kReduceTasks);

  if (scope_.active()) {
    scope_.Increment(obs::metric::kTasksReduce);
    scope_.Record(
        obs::metric::kTaskReduceDuration,
        report.timing.finished_at - report.timing.scheduled_at);
    scope_.EmitAt(report.timing.finished_at, obs::event::kTaskFinish)
        .With("kind", "reduce")
        .With("task", report.id)
        .With("node", report.node)
        .With("partition", report.partition)
        .With("attempt", report.attempt)
        .With("start", report.timing.scheduled_at)
        .With("duration",
              report.timing.finished_at - report.timing.scheduled_at)
        .With("side_inputs",
              static_cast<int64_t>(task->side_inputs.size()))
        .With("wait", report.timing.SlotWait())
        .With("startup", report.timing.startup)
        .With("read", report.timing.read)
        .With("shuffle", report.timing.shuffle)
        .With("sort", report.timing.sort)
        .With("compute", report.timing.compute)
        .With("write", report.timing.write);
  }

  TryScheduleTasks(run);
  MaybeFinishJob(run);
}

// ---------------------------------------------------------------------------
// Stragglers & speculative execution
// ---------------------------------------------------------------------------

double JobRunner::DrawStragglerFactor() {
  if (options_.straggler_probability > 0.0 &&
      random_.Bernoulli(options_.straggler_probability)) {
    return options_.straggler_slowdown;
  }
  return 1.0;
}

template <typename TaskStateT>
SimDuration JobRunner::ArmAttempt(RunState* run, TaskStateT* task,
                                  SimDuration nominal_duration, bool is_map) {
  task->nominal_duration = nominal_duration;
  task->backup_node = kInvalidNode;
  task->backup_id = 0;

  // The Bernoulli draw happened at Start (DrawStragglerFactor), before any
  // payload offload: a same-instant failure can kill an attempt between
  // its start and its join, and the RNG stream must not depend on whether
  // that join still applies the factor.
  const SimDuration actual = nominal_duration * task->straggler_factor;
  if (!options_.speculative_execution) return actual;

  // Speculation check: if the attempt is still running well past its
  // nominal duration, launch a backup on any free slot; the first finisher
  // wins (Hadoop's speculative execution).
  const TaskId primary_id = task->id;
  std::shared_ptr<RunState> keepalive = run->self.lock();
  cluster_->simulator().Schedule(
      nominal_duration * options_.speculation_factor,
      [this, keepalive, task, primary_id, nominal_duration, is_map] {
        RunState* run = keepalive.get();
        if (run->finished || run != active_run_) return;
        if (task->state != TaskState::kRunning || task->id != primary_id) {
          return;  // Finished (or re-issued) before the check fired.
        }
        if (task->backup_id != 0) return;  // Already speculating.
        const NodeId node =
            scheduler_internal::LeastLoadedWithFreeSlot(*cluster_, is_map);
        if (node == kInvalidNode) return;  // No spare capacity.
        TaskNode& n = cluster_->node(node);
        const bool acquired =
            is_map ? n.AcquireMapSlot() : n.AcquireReduceSlot();
        if (!acquired) return;
        task->backup_node = node;
        task->backup_id = next_task_id_++;
        const TaskId backup_id = task->backup_id;
        if (scope_.active()) {
          scope_.Increment(obs::metric::kTaskSpeculations);
          scope_.EmitAt(cluster_->simulator().Now(),
                       obs::event::kTaskSpeculate)
              .With("kind", is_map ? "map" : "reduce")
              .With("task", primary_id)
              .With("backup_task", backup_id)
              .With("node", node);
        }
        // The backup gets a fresh straggler draw (it is most likely fast —
        // that is the whole point).
        SimDuration backup_duration = nominal_duration;
        if (options_.straggler_probability > 0.0 &&
            random_.Bernoulli(options_.straggler_probability)) {
          backup_duration = nominal_duration * options_.straggler_slowdown;
        }
        auto keepalive2 = keepalive;
        cluster_->simulator().Schedule(
            backup_duration,
            [this, keepalive2, task, primary_id, backup_id, is_map] {
              RunState* run = keepalive2.get();
              if (run->finished || run != active_run_) return;
              if (task->state != TaskState::kRunning ||
                  task->id != primary_id || task->backup_id != backup_id) {
                return;  // Primary won or attempt was re-issued.
              }
              const NodeId winner = task->backup_node;
              if constexpr (std::is_same_v<TaskStateT, MapTaskState>) {
                (void)is_map;
                FinishMapTask(run, task, winner);
              } else {
                FinishReduceTask(run, task, winner);
              }
            });
      });
  return actual;
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

void JobRunner::OnNodeFailure(NodeId node) {
  RunState* run = active_run_;
  if (run == nullptr || run->finished) return;

  // Running tasks on the dead node fail and are re-queued; speculative
  // backups on the dead node simply vanish (their slot died with it).
  for (auto& task : run->maps) {
    if (task->state != TaskState::kRunning) continue;
    if (task->node == node) {
      FailTaskAttempt(run, TaskType::kMap, task->index);
    } else if (task->backup_node == node) {
      task->backup_node = kInvalidNode;
      task->backup_id = 0;
    }
  }
  for (size_t i = 0; i < run->reduces.size(); ++i) {
    auto& task = run->reduces[i];
    if (task->state != TaskState::kRunning) continue;
    if (task->node == node) {
      FailTaskAttempt(run, TaskType::kReduce, static_cast<int64_t>(i));
    } else if (task->backup_node == node) {
      task->backup_node = kInvalidNode;
      task->backup_id = 0;
    }
  }
  // Completed map outputs stored on the dead node are lost; if any reduce
  // still needs them, those maps must re-run (paper §2.2 fault tolerance:
  // "a failure of a reduce task entails retrieving the corresponding map
  // outputs again").
  const bool reduces_outstanding =
      run->reduces_completed < static_cast<int64_t>(run->reduces.size());
  if (reduces_outstanding) {
    for (auto& task : run->maps) {
      if (task->state == TaskState::kCompleted && task->node == node) {
        // The lost output's contribution to the per-partition shuffle
        // totals rolls back; the re-run adds it again on completion.
        for (size_t p = 0; p < task->bucket_bytes.size(); ++p) {
          run->partition_shuffle_bytes[p] -= task->bucket_bytes[p];
        }
        task->state = TaskState::kPending;
        task->id = next_task_id_++;
        ++task->attempt;
        task->ready_at = cluster_->simulator().Now();
        --run->maps_completed;
        run->reduces_unlocked = false;
        run->result.counters.Increment(counter::kMapTaskRetries);
      }
    }
  }
  // Input blocks may have lost replicas; if a pending map's block is now
  // completely unreadable the job fails.
  for (auto& task : run->maps) {
    if (task->state != TaskState::kPending) continue;
    bool any = false;
    for (NodeId r : task->replica_nodes) {
      if (cluster_->node(r).alive()) any = true;
    }
    if (!any) {
      run->failure = Status::Unavailable(
          StringPrintf("map input lost all replicas after node %d died", node));
      run->finished = true;
      return;
    }
  }
  TryScheduleTasks(run);
}

void JobRunner::StampTaskContext(int64_t task, int64_t attempt,
                                 obs::Event* e) const {
  const obs::trace::TraceContext* tc = scope_.trace();
  if (tc == nullptr || !tc->active() || !tc->sampled) return;
  e->With("ctx",
          tc->Child(obs::trace::TaskSpanId(tc->trace_id, task, attempt))
              .Serialize());
}

void JobRunner::FailTaskAttempt(RunState* run, TaskType type, int64_t index) {
  if (scope_.active()) {
    const bool is_map = type == TaskType::kMap;
    const auto* map_task =
        is_map ? run->maps[static_cast<size_t>(index)].get() : nullptr;
    const auto* reduce_task =
        is_map ? nullptr : run->reduces[static_cast<size_t>(index)].get();
    scope_.Increment(obs::metric::kTaskFailures);
    // The work identity (source/pane or partition) lets the trace link the
    // re-issued attempt — which gets a fresh task id — back to this
    // failure with a follows-from edge.
    obs::Event& e =
        scope_.EmitAt(cluster_->simulator().Now(), obs::event::kTaskFail)
            .With("kind", is_map ? "map" : "reduce")
            .With("task", is_map ? map_task->id : reduce_task->id)
            .With("node", is_map ? map_task->node : reduce_task->node)
            .With("attempt",
                  is_map ? map_task->attempt : reduce_task->attempt);
    if (is_map) {
      e.With("source", map_task->source).With("pane", map_task->pane);
    } else {
      e.With("partition", reduce_task->partition);
    }
  }
  if (type == TaskType::kMap) {
    MapTaskState* task = run->maps[static_cast<size_t>(index)].get();
    // Slot was already reclaimed by TaskNode::Fail(); just re-queue. A
    // live speculative backup is abandoned and its slot returned.
    if (task->backup_node != kInvalidNode) {
      if (cluster_->node(task->backup_node).alive()) {
        cluster_->node(task->backup_node).ReleaseMapSlot();
      }
      task->backup_node = kInvalidNode;
      task->backup_id = 0;
    }
    task->state = TaskState::kPending;
    task->id = next_task_id_++;
    ++task->attempt;
    task->ready_at = cluster_->simulator().Now();
    run->result.counters.Increment(counter::kMapTaskRetries);
    if (task->attempt >= options_.max_task_attempts) {
      run->failure = Status::Aborted(
          StringPrintf("map task %ld exceeded max attempts", index));
      run->finished = true;
    }
  } else {
    ReduceTaskState* task = run->reduces[static_cast<size_t>(index)].get();
    if (task->backup_node != kInvalidNode) {
      if (cluster_->node(task->backup_node).alive()) {
        cluster_->node(task->backup_node).ReleaseReduceSlot();
      }
      task->backup_node = kInvalidNode;
      task->backup_id = 0;
    }
    task->state = TaskState::kPending;
    task->id = next_task_id_++;
    ++task->attempt;
    task->ready_at = cluster_->simulator().Now();
    run->result.counters.Increment(counter::kReduceTaskRetries);
    if (task->attempt >= options_.max_task_attempts) {
      run->failure = Status::Aborted(
          StringPrintf("reduce task %ld exceeded max attempts", index));
      run->finished = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void JobRunner::MaybeFinishJob(RunState* run) {
  if (run->finished) return;
  if (!AllMapsDone(*run)) return;
  if (run->reduces_completed < static_cast<int64_t>(run->reduces.size()))
    return;
  run->finished = true;
}

JobResult JobRunner::Run(const JobSpec& spec) {
  REDOOP_CHECK(active_run_ == nullptr) << "JobRunner is not reentrant";
  REDOOP_CHECK(spec.config.num_reducers > 0);
  REDOOP_CHECK(spec.config.reducer != nullptr);
  REDOOP_CHECK(spec.map_inputs.empty() || spec.config.mapper != nullptr);

  auto run_owner = std::make_shared<RunState>();
  RunState& run = *run_owner;
  run.self = run_owner;
  run.spec = &spec;
  run.partition_shuffle_bytes.assign(
      static_cast<size_t>(spec.config.num_reducers), 0);
  run.partitioner = spec.config.partitioner
                        ? spec.config.partitioner
                        : std::make_shared<const HashPartitioner>();
  run.result.submitted_at = cluster_->simulator().Now();
  active_run_ = &run;

  BuildMapTasks(spec, &run);
  if (!run.failure.ok()) {
    active_run_ = nullptr;
    run.result.status = run.failure;
    run.result.finished_at = cluster_->simulator().Now();
    return std::move(run.result);
  }

  // Build reduce tasks: either the standard one-per-partition phase or the
  // explicit task list (pane-pair jobs).
  if (!spec.explicit_reduce_tasks.empty()) {
    REDOOP_CHECK(spec.map_inputs.empty())
        << "explicit reduce tasks cannot be combined with map inputs";
    REDOOP_CHECK(spec.side_inputs.empty())
        << "explicit reduce tasks carry their own side inputs";
    for (const ExplicitReduceTask& explicit_task :
         spec.explicit_reduce_tasks) {
      auto task = std::make_unique<ReduceTaskState>();
      task->id = next_task_id_++;
      task->partition = explicit_task.partition;
      task->side_inputs = explicit_task.side_inputs;
      task->is_explicit = true;
      task->output_cache_name = explicit_task.output_cache_name;
      task->label_left = explicit_task.label_left;
      task->label_right = explicit_task.label_right;
      task->preferred_node = explicit_task.preferred_node;
      run.reduces.push_back(std::move(task));
    }
  } else {
    for (int32_t p = 0; p < spec.config.num_reducers; ++p) {
      if (!spec.active_partitions.empty() &&
          std::find(spec.active_partitions.begin(),
                    spec.active_partitions.end(),
                    p) == spec.active_partitions.end()) {
        continue;  // Partition filtered out (cache-rebuild job).
      }
      auto task = std::make_unique<ReduceTaskState>();
      task->id = next_task_id_++;
      task->partition = p;
      for (const ReduceSideInput& side : spec.side_inputs) {
        if (side.partition == p) task->side_inputs.push_back(side);
      }
      if (p < static_cast<int32_t>(spec.preferred_reduce_nodes.size())) {
        task->preferred_node =
            spec.preferred_reduce_nodes[static_cast<size_t>(p)];
      }
      run.reduces.push_back(std::move(task));
    }
  }

  if (scope_.active()) {
    scope_.Increment(obs::metric::kJobs);
    scope_.EmitAt(run.result.submitted_at, obs::event::kJobStart)
        .With("job", spec.config.name)
        .With("maps", static_cast<int64_t>(run.maps.size()))
        .With("reduces", static_cast<int64_t>(run.reduces.size()));
  }

  // Job startup, then the scheduling loop drives everything.
  cluster_->simulator().Schedule(
      cluster_->cost_model().JobStartupTime(), [this, run_owner] {
        RunState* run = run_owner.get();
        if (run->finished || run != active_run_) return;
        const SimTime now = cluster_->simulator().Now();
        for (auto& map : run->maps) map->ready_at = now;
        if (run->maps.empty()) {
          run->reduces_unlocked = true;
          for (auto& reduce : run->reduces) reduce->ready_at = now;
        }
        TryScheduleTasks(run);
        MaybeFinishJob(run);
      });

  // Drive the simulation until the job finishes. The guard catches
  // deadlocks (e.g. every node dead) instead of spinning forever.
  while (!run.finished) {
    if (!cluster_->simulator().Step()) {
      run.failure = Status::Internal(
          "simulation ran out of events before job completion "
          "(no schedulable nodes?)");
      break;
    }
  }
  active_run_ = nullptr;
  // Drain every offloaded payload — including those whose join event went
  // stale (failed/re-issued attempts) or will never fire (job aborted with
  // events still queued). After this loop no worker thread references the
  // spec, the DFS, or the user functions.
  for (auto& wait : run.pending_payloads) wait();
  run.pending_payloads.clear();

  JobResult& result = run.result;
  result.status = run.failure;
  result.finished_at = cluster_->simulator().Now();
  if (run.first_map_start >= 0) {
    result.map_phase_time = run.last_map_finish - run.first_map_start;
  }

  if (scope_.active()) {
    scope_.EmitAt(result.finished_at, obs::event::kJobFinish)
        .With("job", spec.config.name)
        .With("status", result.status.ok()
                            ? "ok"
                            : StatusCodeToString(result.status.code()))
        .With("elapsed", result.finished_at - result.submitted_at);
  }

  if (result.status.ok()) {
    // Assemble output and caches in deterministic partition order.
    for (auto& task : run.reduces) {
      result.shuffle_time_total += task->timing.shuffle;
      result.reduce_time_total += task->timing.read + task->timing.sort +
                                  task->timing.compute + task->timing.write;
      if (task->output != nullptr) {
        task->output->AppendToKeyValues(&result.output);
      }
      for (MaterializedCache& cache : task->caches) {
        if (cache.bytes < 0) continue;  // Dropped: node disk was full.
        result.caches.push_back(std::move(cache));
      }
    }
    // Write the job output to DFS when requested.
    if (!spec.output_prefix.empty()) {
      std::vector<Record> out_records;
      out_records.reserve(result.output.size());
      for (const KeyValue& kv : result.output) {
        out_records.emplace_back(0, kv.key, kv.value, kv.logical_bytes);
      }
      const std::string out_name = spec.output_prefix + "/part-all";
      if (cluster_->dfs().Exists(out_name)) {
        REDOOP_CHECK_OK(cluster_->dfs().DeleteFile(out_name));
      }
      auto created = cluster_->dfs().CreateFile(out_name,
                                                std::move(out_records), 0, 0);
      REDOOP_CHECK(created.ok()) << created.status().ToString();
    }
  }
  return std::move(result);
}

}  // namespace redoop
