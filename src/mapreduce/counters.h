#ifndef REDOOP_MAPREDUCE_COUNTERS_H_
#define REDOOP_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace redoop {

/// Well-known counter names (Hadoop-style job counters).
namespace counter {
inline constexpr const char* kMapInputRecords = "map.input.records";
inline constexpr const char* kMapInputBytes = "map.input.bytes";
inline constexpr const char* kMapOutputRecords = "map.output.records";
inline constexpr const char* kMapOutputBytes = "map.output.bytes";
inline constexpr const char* kMapTasks = "map.tasks";
inline constexpr const char* kMapTaskRetries = "map.task.retries";
inline constexpr const char* kShuffleRemoteBytes = "shuffle.remote.bytes";
inline constexpr const char* kShuffleLocalBytes = "shuffle.local.bytes";
inline constexpr const char* kReduceInputRecords = "reduce.input.records";
inline constexpr const char* kReduceInputBytes = "reduce.input.bytes";
inline constexpr const char* kReduceOutputRecords = "reduce.output.records";
inline constexpr const char* kReduceOutputBytes = "reduce.output.bytes";
inline constexpr const char* kReduceTasks = "reduce.tasks";
inline constexpr const char* kReduceTaskRetries = "reduce.task.retries";
inline constexpr const char* kCacheReadLocalBytes = "cache.read.local.bytes";
inline constexpr const char* kCacheReadRemoteBytes = "cache.read.remote.bytes";
inline constexpr const char* kCacheWriteBytes = "cache.write.bytes";
// Pane-level cache reuse, accounted per window by the Redoop driver: a
// pane is a hit when served from caches built by a prior recurrence.
inline constexpr const char* kCachePaneHits = "cache.pane.hits";
inline constexpr const char* kCachePaneMisses = "cache.pane.misses";
// Pane-pair reuse in the join path (cache status matrix).
inline constexpr const char* kCachePairHits = "cache.pair.hits";
inline constexpr const char* kCachePairMisses = "cache.pair.misses";
inline constexpr const char* kHdfsReadBytes = "hdfs.read.bytes";
inline constexpr const char* kHdfsWriteBytes = "hdfs.write.bytes";
}  // namespace counter

/// A named bag of monotonically increasing int64 counters.
class Counters {
 public:
  Counters() = default;

  void Increment(std::string_view name, int64_t delta = 1);
  int64_t Get(std::string_view name) const;

  /// Adds every counter of `other` into this bag.
  void MergeFrom(const Counters& other);

  const std::map<std::string, int64_t, std::less<>>& values() const {
    return values_;
  }

  /// Multi-line "name = value" dump, sorted by name.
  std::string ToString() const;

 private:
  /// Transparent comparator: Increment/Get on the hot path look names up
  /// straight from string_view, allocating a key string only on first
  /// insertion.
  std::map<std::string, int64_t, std::less<>> values_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_COUNTERS_H_
