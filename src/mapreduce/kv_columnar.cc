#include "mapreduce/kv_columnar.h"

#include "common/logging.h"
#include "dfs/columnar.h"

namespace redoop {

ColumnarKvPane ColumnarKvPane::Encode(const FlatKvBuffer& buf) {
  ColumnarKvPane pane;
  pane.count_ = static_cast<int64_t>(buf.size());
  FrontCodedWriter keys;
  for (size_t i = 0; i < buf.size(); ++i) {
    keys.Append(buf.key(i));
    const std::string_view value = buf.value(i);
    PutVarint(&pane.values_, value.size());
    pane.values_.append(value);
    PutVarint(&pane.logical_, ZigZagEncode(buf.logical_bytes(i)));
  }
  const Codec* codec = DefaultColumnCodec();
  std::string compressed;
  codec->Compress(keys.bytes(), &compressed);
  pane.keys_.swap(compressed);
  codec->Compress(pane.values_, &compressed);
  pane.values_.swap(compressed);
  codec->Compress(pane.logical_, &compressed);
  pane.logical_.swap(compressed);
  return pane;
}

FlatKvBuffer ColumnarKvPane::Decode() const {
  const Codec* codec = DefaultColumnCodec();
  std::string keys, values, logical;
  REDOOP_CHECK(codec->Decompress(keys_, &keys) &&
               codec->Decompress(values_, &values) &&
               codec->Decompress(logical_, &logical))
      << "corrupt columnar kv pane";
  FlatKvBuffer buf;
  buf.Reserve(static_cast<size_t>(count_));
  FrontCodedReader key_reader(keys);
  const char* vp = values.data();
  const char* vend = vp + values.size();
  const char* lp = logical.data();
  const char* lend = lp + logical.size();
  std::string key;
  for (int64_t i = 0; i < count_; ++i) {
    REDOOP_CHECK(key_reader.Next(&key)) << "corrupt key column";
    uint64_t raw = 0;
    vp = GetVarint(vp, vend, &raw);
    REDOOP_CHECK(vp != nullptr && raw <= static_cast<uint64_t>(vend - vp))
        << "corrupt value column";
    const std::string_view value(vp, raw);
    vp += raw;
    lp = GetVarint(lp, lend, &raw);
    REDOOP_CHECK(lp != nullptr) << "corrupt logical-bytes column";
    buf.Append(key, value, static_cast<int32_t>(ZigZagDecode(raw)));
  }
  return buf;
}

}  // namespace redoop
