#include "mapreduce/trace.h"

#include <cstdio>

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_utils.h"
#include "obs/trace/span_builder.h"
#include "obs/trace/trace_context.h"

namespace redoop {

void TraceWriter::AddJob(const std::string& job_label,
                         const std::vector<TaskReport>& reports) {
  for (const TaskReport& report : reports) {
    events_.push_back(Event{job_label, report});
  }
}

void TraceWriter::AddCounterSample(const std::string& series, double time_s,
                                   double value) {
  extra_.push_back(StringPrintf(
      "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.0f,\"pid\":3,\"tid\":0,"
      "\"args\":{\"value\":%.3f}}",
      series.c_str(), time_s * 1e6, value));
}

void TraceWriter::AddCacheSpan(const std::string& name, int64_t node,
                               double start_s, double end_s, int64_t bytes,
                               const std::string& kind) {
  extra_.push_back(StringPrintf(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.0f,"
      "\"dur\":%.0f,\"pid\":2,\"tid\":%ld,"
      "\"args\":{\"bytes\":%ld,\"kind\":\"%s\"}}",
      name.c_str(), kind.c_str(), start_s * 1e6,
      std::max(0.0, end_s - start_s) * 1e6, node, bytes, kind.c_str()));
}

void TraceWriter::AddJournal(const obs::EventJournal& journal) {
  double last_time = 0.0;
  for (const obs::Event& e : journal.events()) {
    last_time = std::max(last_time, e.time());
  }

  struct OpenCache {
    double start = 0.0;
    int64_t node = 0;
    int64_t bytes = 0;
    std::string kind;
  };
  std::map<std::string, OpenCache> open;
  double occupancy = 0.0;
  std::vector<std::pair<double, int>> task_deltas;

  for (const obs::Event& e : journal.events()) {
    const std::string& type = e.type();
    if (type == obs::event::kCacheAdd) {
      const std::string name = e.StrOr("name", "");
      auto it = open.find(name);
      if (it != open.end()) {
        // Same-name re-add (chunked rebuild): close the prior span.
        AddCacheSpan(name, it->second.node, it->second.start, e.time(),
                     it->second.bytes, it->second.kind);
        occupancy -= static_cast<double>(it->second.bytes);
        open.erase(it);
      }
      OpenCache oc;
      oc.start = e.time();
      oc.node = e.IntOr("node", 0);
      oc.bytes = e.IntOr("bytes", 0);
      oc.kind = e.StrOr("kind", "cache");
      occupancy += static_cast<double>(oc.bytes);
      open.emplace(name, std::move(oc));
      AddCounterSample("cache_bytes", e.time(), occupancy);
    } else if (type == obs::event::kCacheEvict ||
               type == obs::event::kCacheInvalidate ||
               type == obs::event::kCachePurge) {
      auto it = open.find(e.StrOr("name", ""));
      if (it == open.end()) continue;  // Purge after evict, or unknown.
      AddCacheSpan(it->first, it->second.node, it->second.start, e.time(),
                   it->second.bytes, it->second.kind);
      occupancy -= static_cast<double>(it->second.bytes);
      open.erase(it);
      AddCounterSample("cache_bytes", e.time(), occupancy);
    } else if (type == obs::event::kSchedAssign) {
      task_deltas.emplace_back(e.time(), +1);
    } else if (type == obs::event::kTaskFinish ||
               type == obs::event::kTaskFail) {
      task_deltas.emplace_back(e.time(), -1);
    }
  }

  // Caches still alive when the journal ends stretch to its last event.
  for (const auto& [name, oc] : open) {
    AddCacheSpan(name, oc.node, oc.start, last_time, oc.bytes, oc.kind);
  }

  // Cross-window causality: one flow arrow per follows-from edge of the
  // reconstructed span DAG, drawn in the cache-lifetimes lane. A
  // pane_reuse arrow runs from the window that built a pane to each later
  // window whose cache hit consumed it; a recovery arrow runs from a node
  // failure to the rebuild it caused.
  obs::trace::Trace trace;
  if (obs::trace::BuildTrace(journal, &trace).ok()) {
    for (const obs::trace::FollowsFrom& edge : trace.follows) {
      const obs::trace::Span* from = trace.Find(edge.from);
      const double from_ts = from != nullptr ? from->end : edge.time;
      const int64_t tid = from != nullptr && from->node >= 0 ? from->node : 0;
      std::string name;
      if (edge.kind == "pane_reuse") {
        name = StringPrintf("pane_reuse S%ld/P%ld", edge.source, edge.pane);
      } else {
        name = edge.kind;
      }
      const std::string id = StringPrintf(
          "%s-%ld", obs::trace::IdHex(edge.from).c_str(), edge.window_to);
      extra_.push_back(StringPrintf(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"s\",\"id\":\"%s\","
          "\"ts\":%.0f,\"pid\":2,\"tid\":%ld,"
          "\"args\":{\"window_from\":%ld,\"window_to\":%ld}}",
          name.c_str(), edge.kind.c_str(), id.c_str(), from_ts * 1e6, tid,
          edge.window_from, edge.window_to));
      extra_.push_back(StringPrintf(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":\"%s\",\"ts\":%.0f,\"pid\":2,\"tid\":%ld,"
          "\"args\":{\"window_from\":%ld,\"window_to\":%ld}}",
          name.c_str(), edge.kind.c_str(), id.c_str(),
          std::max(edge.time, from_ts) * 1e6, tid, edge.window_from,
          edge.window_to));
    }
  }

  // Slot-utilization series: starts before finishes at equal timestamps so
  // the running count never dips below its true value.
  std::stable_sort(task_deltas.begin(), task_deltas.end(),
                   [](const std::pair<double, int>& a,
                      const std::pair<double, int>& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second > b.second;
                   });
  int running = 0;
  for (const auto& [t, delta] : task_deltas) {
    running += delta;
    AddCounterSample("tasks_running", t, running);
  }
}

std::string TraceWriter::ToJson() const {
  std::string out = "{\"traceEvents\":[\n";
  // Process-name metadata so Perfetto labels the three lanes.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"task attempts\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"cache lifetimes\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
      "\"args\":{\"name\":\"counters\"}}";
  for (const Event& event : events_) {
    const TaskReport& r = event.report;
    out += ",\n";
    const char* kind = r.type == TaskType::kMap ? "map" : "reduce";
    out += StringPrintf(
        "{\"name\":\"%s %s#%ld\",\"cat\":\"%s\",\"ph\":\"X\","
        "\"ts\":%.0f,\"dur\":%.0f,\"pid\":1,\"tid\":%d,"
        "\"args\":{\"job\":\"%s\",\"partition\":%d,\"source\":%d,"
        "\"pane\":%ld,\"attempt\":%d,\"startup\":%.3f,\"read\":%.3f,"
        "\"shuffle\":%.3f,\"sort\":%.3f,\"compute\":%.3f,\"write\":%.3f}}",
        kind, event.job.c_str(), r.id, kind,
        r.timing.scheduled_at * 1e6, r.timing.Total() * 1e6, r.node,
        event.job.c_str(), r.partition, r.source, r.pane, r.attempt,
        r.timing.startup, r.timing.read, r.timing.shuffle, r.timing.sort,
        r.timing.compute, r.timing.write);
  }
  for (const std::string& json : extra_) {
    out += ",\n";
    out += json;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceWriter::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open trace file: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace redoop
