#include "mapreduce/trace.h"

#include <cstdio>

#include "common/string_utils.h"

namespace redoop {

void TraceWriter::AddJob(const std::string& job_label,
                         const std::vector<TaskReport>& reports) {
  for (const TaskReport& report : reports) {
    events_.push_back(Event{job_label, report});
  }
}

std::string TraceWriter::ToJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& event : events_) {
    const TaskReport& r = event.report;
    if (!first) out += ",\n";
    first = false;
    const char* kind = r.type == TaskType::kMap ? "map" : "reduce";
    out += StringPrintf(
        "{\"name\":\"%s %s#%ld\",\"cat\":\"%s\",\"ph\":\"X\","
        "\"ts\":%.0f,\"dur\":%.0f,\"pid\":1,\"tid\":%d,"
        "\"args\":{\"job\":\"%s\",\"partition\":%d,\"source\":%d,"
        "\"pane\":%ld,\"attempt\":%d,\"startup\":%.3f,\"read\":%.3f,"
        "\"shuffle\":%.3f,\"sort\":%.3f,\"compute\":%.3f,\"write\":%.3f}}",
        kind, event.job.c_str(), r.id, kind,
        r.timing.scheduled_at * 1e6, r.timing.Total() * 1e6, r.node,
        event.job.c_str(), r.partition, r.source, r.pane, r.attempt,
        r.timing.startup, r.timing.read, r.timing.shuffle, r.timing.sort,
        r.timing.compute, r.timing.write);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceWriter::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open trace file: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace redoop
