#ifndef REDOOP_MAPREDUCE_KV_COLUMNAR_H_
#define REDOOP_MAPREDUCE_KV_COLUMNAR_H_

#include <cstdint>
#include <string>

#include "mapreduce/kv_arena.h"

namespace redoop {

/// A cached KV pane payload transposed into three independently-encoded
/// columns (the CacheStore's at-rest form when columnar payloads are on):
///
///   keys    : front-coded — varint(shared-prefix len), varint(suffix len),
///             suffix bytes. Cache payloads are sorted runs, so adjacent
///             keys share long prefixes and the column collapses hard.
///   values  : varint length + raw bytes (the varint lengths double as the
///             offset array — cumulative sums recover every boundary).
///   logical : zigzag varint per-pair logical_bytes.
///
/// Encode/Decode round-trips a FlatKvBuffer byte-identically in pair
/// order, so reducers fed from a decoded pane group and emit exactly what
/// the row layout produced. Columns pass through DefaultColumnCodec()
/// (identity today; the plug-point for a real codec).
///
/// compressed_bytes() is the encoded image size — what a cache hit
/// actually moves, vs. the logical bytes the simulation charges.
class ColumnarKvPane {
 public:
  ColumnarKvPane() = default;

  static ColumnarKvPane Encode(const FlatKvBuffer& buf);

  /// Reconstructs the pairs (order, bytes, and logical sizes preserved).
  FlatKvBuffer Decode() const;

  int64_t pair_count() const { return count_; }
  int64_t compressed_bytes() const {
    return static_cast<int64_t>(keys_.size() + values_.size() +
                                logical_.size());
  }

 private:
  std::string keys_;
  std::string values_;
  std::string logical_;
  int64_t count_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_KV_COLUMNAR_H_
