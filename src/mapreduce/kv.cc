#include "mapreduce/kv.h"

#include <algorithm>

namespace redoop {

int64_t TotalLogicalBytes(const std::vector<KeyValue>& kvs) {
  int64_t total = 0;
  for (const KeyValue& kv : kvs) total += kv.logical_bytes;
  return total;
}

void SortByKey(std::vector<KeyValue>* kvs) {
  std::sort(kvs->begin(), kvs->end(),
            [](const KeyValue& a, const KeyValue& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.value < b.value;
            });
}

}  // namespace redoop
