#include "mapreduce/kv.h"

#include <algorithm>

namespace redoop {

int64_t TotalLogicalBytes(std::span<const KeyValue> kvs) {
  int64_t total = 0;
  for (const KeyValue& kv : kvs) total += kv.logical_bytes;
  return total;
}

void SortByKey(std::vector<KeyValue>* kvs) {
  std::sort(kvs->begin(), kvs->end(), KeyValueLess());
}

bool IsSortedByKey(std::span<const KeyValue> kvs) {
  return std::is_sorted(kvs.begin(), kvs.end(), KeyValueLess());
}

namespace {

/// Loser tree over the run heads. Internal nodes hold the *loser* of the
/// match played at that node; the overall winner sits at tree_[0]. Refilling
/// after popping the winner replays exactly one leaf-to-root path:
/// ceil(log2(k)) comparisons per output element.
class LoserTree {
 public:
  explicit LoserTree(std::span<const std::span<const KeyValue>> runs)
      : runs_(runs), pos_(runs.size(), 0) {
    size_ = 1;
    while (size_ < runs_.size()) size_ <<= 1;
    tree_.assign(2 * size_, kSentinel);
    // Seed the bracket bottom-up: leaves are run indices (or the sentinel
    // for padding / empty runs), each internal node keeps the loser and
    // forwards the winner.
    std::vector<size_t> winner(2 * size_, kSentinel);
    for (size_t i = 0; i < size_; ++i) {
      winner[size_ + i] = (i < runs_.size() && !runs_[i].empty()) ? i
                                                                  : kSentinel;
    }
    for (size_t n = size_ - 1; n >= 1; --n) {
      const size_t a = winner[2 * n];
      const size_t b = winner[2 * n + 1];
      if (Beats(a, b)) {
        winner[n] = a;
        tree_[n] = b;
      } else {
        winner[n] = b;
        tree_[n] = a;
      }
      if (n == 1) tree_[0] = winner[1];
    }
    if (size_ == 1) tree_[0] = winner[1];
  }

  bool Done() const { return tree_[0] == kSentinel; }

  /// Returns the smallest head and advances its run.
  const KeyValue& Pop() {
    const size_t run = tree_[0];
    const KeyValue& kv = runs_[run][pos_[run]];
    ++pos_[run];
    // Replay the path from this run's leaf to the root.
    size_t winner = pos_[run] < runs_[run].size() ? run : kSentinel;
    for (size_t n = (size_ + run) / 2; n >= 1; n /= 2) {
      if (Beats(tree_[n], winner)) std::swap(tree_[n], winner);
    }
    tree_[0] = winner;
    return kv;
  }

 private:
  static constexpr size_t kSentinel = static_cast<size_t>(-1);

  /// True when run `a`'s head wins (strictly smaller, or equal with the
  /// lower run index — the tie-break that makes the merge stable).
  bool Beats(size_t a, size_t b) const {
    if (a == kSentinel) return false;
    if (b == kSentinel) return true;
    const KeyValue& ka = runs_[a][pos_[a]];
    const KeyValue& kb = runs_[b][pos_[b]];
    int c = ka.key.compare(kb.key);
    if (c != 0) return c < 0;
    c = ka.value.compare(kb.value);
    if (c != 0) return c < 0;
    return a < b;
  }

  std::span<const std::span<const KeyValue>> runs_;
  std::vector<size_t> pos_;   // Head index per run.
  std::vector<size_t> tree_;  // [0] = winner; [1..) = losers per node.
  size_t size_ = 1;           // Leaf count (power of two).
};

}  // namespace

std::vector<KeyValue> MergeSortedRuns(
    std::span<const std::span<const KeyValue>> runs) {
  size_t total = 0;
  size_t non_empty = 0;
  std::span<const KeyValue> last;
  for (const auto& run : runs) {
    total += run.size();
    if (!run.empty()) {
      ++non_empty;
      last = run;
    }
  }
  std::vector<KeyValue> merged;
  merged.reserve(total);
  if (non_empty == 1) {  // Single run: a straight copy, no comparisons.
    merged.assign(last.begin(), last.end());
    return merged;
  }
  if (non_empty == 0) return merged;
  LoserTree tree(runs);
  while (!tree.Done()) merged.push_back(tree.Pop());
  return merged;
}

}  // namespace redoop
