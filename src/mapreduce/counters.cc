#include "mapreduce/counters.h"

#include "common/string_utils.h"

namespace redoop {

void Counters::Increment(std::string_view name, int64_t delta) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    values_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t Counters::Get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::MergeFrom(const Counters& other) {
  for (const auto& [name, value] : other.values()) {
    values_[name] += value;
  }
}

std::string Counters::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    out += StringPrintf("%s = %ld\n", name.c_str(), value);
  }
  return out;
}

}  // namespace redoop
