#ifndef REDOOP_MAPREDUCE_SCHEDULER_H_
#define REDOOP_MAPREDUCE_SCHEDULER_H_

#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "mapreduce/job.h"
#include "obs/telemetry_scope.h"

namespace redoop {

/// Everything a scheduler may consider when placing a map task.
struct MapPlacementRequest {
  /// Nodes holding a replica of the task's input block (data locality).
  std::vector<NodeId> replica_nodes;
  SourceId source = 0;
  PaneId pane = kInvalidPane;
  int64_t input_bytes = 0;
};

/// Everything a scheduler may consider when placing a reduce task.
struct ReducePlacementRequest {
  int32_t partition = 0;
  /// Cached side inputs this reduce task will read and where they live.
  std::vector<ReduceSideInput> side_inputs;
  /// Hint from the job spec (e.g. the node that produced this partition's
  /// caches in an earlier recurrence).
  NodeId preferred_node = kInvalidNode;
  /// Bytes arriving from the new shuffle (not cached).
  int64_t shuffle_bytes = 0;
};

/// Task placement policy. Implementations pick a live node with a free slot
/// of the right kind, or kInvalidNode to signal "wait for a slot". The
/// default implementation mirrors Hadoop's FIFO scheduler with data
/// locality; Redoop's window-aware scheduler (paper §4.3) subclasses this.
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  virtual NodeId SelectNodeForMap(const MapPlacementRequest& request,
                                  const Cluster& cluster) = 0;
  virtual NodeId SelectNodeForReduce(const ReducePlacementRequest& request,
                                     const Cluster& cluster) = 0;

  /// Journals placement decisions (sched.assign, locality classes) with
  /// the scope's query/window attribution.
  void set_telemetry(obs::TelemetryScope scope) { scope_ = std::move(scope); }
  /// Unattributed convenience (standalone/test use); null disables
  /// emission.
  void set_observability(obs::ObservabilityContext* obs) {
    scope_ = obs::TelemetryScope(obs);
  }

 protected:
  obs::TelemetryScope scope_;
};

/// Hadoop's default placement shape: prefer a replica-local node with a
/// free slot, otherwise the least-loaded live node with a free slot.
/// Reduce tasks go to the least-loaded node (no cache awareness).
class DefaultScheduler : public TaskScheduler {
 public:
  NodeId SelectNodeForMap(const MapPlacementRequest& request,
                          const Cluster& cluster) override;
  NodeId SelectNodeForReduce(const ReducePlacementRequest& request,
                             const Cluster& cluster) override;
};

namespace scheduler_internal {
/// Least-loaded live node with a free slot of the requested kind; breaks
/// ties by node id for determinism. Returns kInvalidNode when none.
NodeId LeastLoadedWithFreeSlot(const Cluster& cluster, bool map_slot);

/// Journals a map placement (sched.assign, locality class) through
/// `scope`; no-op when the scope is inactive or no node was found. Shared
/// by every scheduler so map-locality accounting is uniform across
/// policies.
void EmitMapAssignment(const obs::TelemetryScope& scope,
                       const MapPlacementRequest& request, NodeId node,
                       const char* policy);
}  // namespace scheduler_internal

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_SCHEDULER_H_
