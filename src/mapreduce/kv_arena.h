#ifndef REDOOP_MAPREDUCE_KV_ARENA_H_
#define REDOOP_MAPREDUCE_KV_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/kv.h"

namespace redoop {

namespace exec {
class TaskExecutor;
}  // namespace exec

/// One pair inside a FlatKvBuffer: a packed arena address plus lengths.
/// 24 bytes, no per-pair heap allocation — versus sizeof(KeyValue) == 72
/// plus up to two string heap blocks. The address packs (chunk index <<
/// 32 | byte offset inside the chunk); key bytes start at the address,
/// value bytes follow immediately.
struct KvSlice {
  uint64_t addr = 0;
  uint32_t key_len = 0;
  uint32_t value_len = 0;
  int32_t logical_bytes = 0;
};

/// Compact 16-byte sort entry: the pair's 8-byte big-endian normalized key
/// prefix plus its index in the buffer. Sorting a buffer sorts these —
/// most comparisons are one uint64 compare that never touches the arena;
/// only prefix ties fall back to full byte comparison.
///
/// The normalized prefix is the first 8 key bytes, zero-padded on the
/// right for shorter keys and loaded big-endian so that integer `<` equals
/// lexicographic byte order. Zero padding is order-safe: if key A is a
/// proper prefix of key B, every padded byte of A is 0x00 <= B's real
/// byte, so prefix(A) <= prefix(B) with equality only when the first 8
/// bytes coincide — exactly the ties the fallback resolves. Keys with
/// embedded NULs work for the same reason: a real 0x00 byte and padding
/// compare equal, making the entries tie, and the length-aware fallback
/// then orders "a" before "a\0".
struct KvSortEntry {
  uint64_t prefix = 0;
  uint32_t index = 0;
};

/// Flat, arena-backed KV storage: key/value bytes live contiguously in
/// chunked slabs, pairs are described by KvSlice views. This is the
/// intermediate-pair representation of the execution engine — map output,
/// partition buckets, shuffle runs, merged reduce input, and cache
/// payloads — replacing std::vector<KeyValue> and its two heap strings
/// per pair.
///
/// Mutation model: append-only while building, then published immutably
/// (shared_ptr<const FlatKvBuffer>). Chunk storage never relocates on
/// append, so string_views handed out by key()/value() stay valid for the
/// buffer's lifetime.
class FlatKvBuffer {
 public:
  FlatKvBuffer() = default;
  FlatKvBuffer(FlatKvBuffer&&) noexcept = default;
  FlatKvBuffer& operator=(FlatKvBuffer&&) noexcept = default;
  FlatKvBuffer(const FlatKvBuffer&) = delete;
  FlatKvBuffer& operator=(const FlatKvBuffer&) = delete;

  /// Pre-sizes the slice index (one entry per expected pair). Arena chunks
  /// grow on demand; over-reservation is trimmed by ShrinkToFit().
  void Reserve(size_t pairs) { slices_.reserve(pairs); }

  void Append(std::string_view key, std::string_view value,
              int32_t logical_bytes);
  /// Convenience mirroring KeyValue's framing-sized constructor.
  void Append(std::string_view key, std::string_view value) {
    Append(key, value,
           static_cast<int32_t>(key.size() + value.size() + 8));
  }
  /// Copies pair `index` of `other` (bytes and logical size).
  void AppendFrom(const FlatKvBuffer& other, size_t index) {
    Append(other.key(index), other.value(index),
           other.logical_bytes(index));
  }

  size_t size() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }

  std::string_view key(size_t i) const {
    const KvSlice& s = slices_[i];
    return {ChunkData(s.addr), s.key_len};
  }
  std::string_view value(size_t i) const {
    const KvSlice& s = slices_[i];
    return {ChunkData(s.addr) + s.key_len, s.value_len};
  }
  int32_t logical_bytes(size_t i) const { return slices_[i].logical_bytes; }
  int64_t total_logical_bytes() const { return total_logical_bytes_; }

  /// The pair's 8-byte big-endian normalized key prefix (see KvSortEntry).
  uint64_t prefix(size_t i) const { return NormalizedPrefix(key(i)); }

  /// Three-way (key, value) comparison of pair `i` with `other`'s pair
  /// `j` — the byte order every sort/merge in the engine agrees on
  /// (KeyValueLess lifted to slices).
  int Compare(size_t i, const FlatKvBuffer& other, size_t j) const;

  /// True when pairs are non-decreasing under (key, value) — the flat twin
  /// of IsSortedByKey.
  bool IsSorted() const;

  /// Indices of all pairs ordered by (key, value), equal pairs in index
  /// order (stable). Runs the prefix-accelerated sort: entries are 16
  /// bytes, and only prefix ties dereference the arena.
  std::vector<uint32_t> SortedOrder() const;

  /// A new buffer holding this one's pairs in SortedOrder() — bytes are
  /// laid out contiguously in output order, so downstream scans (merge,
  /// grouping) are sequential.
  FlatKvBuffer SortedCopy() const;

  /// Trims slack: unreferenced tail capacity of the current chunk and the
  /// slice index's over-reservation. Call before retaining a buffer beyond
  /// the build (e.g. map buckets kept for the whole shuffle).
  void ShrinkToFit();

  void Clear();

  /// Materialization to the string representation (job results, the
  /// user-facing Reduce adapter, tests).
  KeyValue Get(size_t i) const {
    return KeyValue(std::string(key(i)), std::string(value(i)),
                    logical_bytes(i));
  }
  std::vector<KeyValue> ToKeyValues() const;
  void AppendToKeyValues(std::vector<KeyValue>* out) const;
  static FlatKvBuffer FromKeyValues(std::span<const KeyValue> kvs);

  /// Normalized prefix of an arbitrary key (exposed for sort entries built
  /// outside the buffer, e.g. per-run head caches in the merge).
  static uint64_t NormalizedPrefix(std::string_view key) {
    uint64_t p = 0;
    const size_t n = key.size() < 8 ? key.size() : 8;
    for (size_t i = 0; i < n; ++i) {
      p |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
           << (56 - 8 * i);
    }
    return p;
  }

  /// Approximate host memory footprint (arena bytes + slice index), for
  /// benchmarks and capacity accounting.
  int64_t HostBytes() const;

 private:
  /// 256 KiB chunks: big enough that slab overhead is noise, small enough
  /// that a short bucket does not pin megabytes. A pair larger than the
  /// chunk payload gets its own exactly-sized chunk.
  static constexpr size_t kChunkSize = 256 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  const char* ChunkData(uint64_t addr) const {
    return chunks_[static_cast<size_t>(addr >> 32)].data.get() +
           static_cast<uint32_t>(addr);
  }
  /// Returns the address of `n` fresh bytes, opening a chunk if needed.
  uint64_t Allocate(size_t n);

  std::vector<Chunk> chunks_;
  std::vector<KvSlice> slices_;
  int64_t total_logical_bytes_ = 0;
};

/// Sorts `indices` (pairs of `buf`) by (key, value), equal pairs staying
/// in index order — SortedOrder() restricted to a subset. Used by the map
/// path to order one partition's pairs without touching the others.
///
/// Adaptive: large runs go through an LSD radix sort over the 16-byte sort
/// entries (8 histogram+scatter passes on the normalized prefix, then a
/// comparison finish of equal-prefix runs); tiny runs keep the comparison
/// sort, whose constant factor wins below ~1k entries. Both paths order by
/// the same strict total order (prefix, key bytes, value bytes, index), so
/// the output permutation is identical whichever path runs.
void SortSliceIndices(const FlatKvBuffer& buf, std::vector<uint32_t>* indices);

/// Forced sort strategy for SortSliceIndicesWith. kAuto is what
/// SortSliceIndices uses: radix at >= kKvRadixSortMinEntries, comparison
/// below. The forced modes exist for benchmarks and equivalence tests.
enum class KvSortMode { kAuto, kComparison, kRadix };

/// Entry count at which kAuto switches from the comparison sort to radix.
inline constexpr size_t kKvRadixSortMinEntries = 1024;

/// SortSliceIndices with an explicit strategy and an optional executor.
/// With an executor, the radix path builds its byte histograms in parallel
/// (per-thread histograms over disjoint slices, merged additively in slice
/// order) — the scatter passes stay sequential. The executor never changes
/// the output permutation, only wall-clock.
void SortSliceIndicesWith(const FlatKvBuffer& buf,
                          std::vector<uint32_t>* indices, KvSortMode mode,
                          exec::TaskExecutor* executor = nullptr);

/// A lightweight view of a key group inside a FlatKvBuffer: either a
/// contiguous slice [begin, end) (merged reduce input) or an arbitrary
/// index subset (hash-combine groups). This is what flat-aware reducers
/// consume instead of std::span<const KeyValue>.
class KvRange {
 public:
  KvRange(const FlatKvBuffer& buf, size_t begin, size_t end)
      : buf_(&buf), begin_(begin), count_(end - begin) {}
  KvRange(const FlatKvBuffer& buf, std::span<const uint32_t> indices)
      : buf_(&buf), indices_(indices.data()), count_(indices.size()) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::string_view key(size_t k) const { return buf_->key(Index(k)); }
  std::string_view value(size_t k) const { return buf_->value(Index(k)); }
  int32_t logical_bytes(size_t k) const {
    return buf_->logical_bytes(Index(k));
  }
  const FlatKvBuffer& buffer() const { return *buf_; }
  size_t Index(size_t k) const {
    return indices_ == nullptr ? begin_ + k : indices_[k];
  }

 private:
  const FlatKvBuffer* buf_;
  const uint32_t* indices_ = nullptr;  // Null: contiguous from begin_.
  size_t begin_ = 0;
  size_t count_ = 0;
};

/// K-way merge of sorted flat runs into one sorted flat buffer — the
/// loser-tree kernel of MergeSortedRuns ported to slices, with the run
/// heads' normalized key prefixes cached so most matches are decided by
/// one integer compare. Ties (equal key and value) are emitted in run
/// order, then within-run order: the merge is stable with respect to the
/// concatenation order of `runs`, keeping reduce groups deterministic.
FlatKvBuffer MergeFlatRuns(std::span<const FlatKvBuffer* const> runs);

/// Reusable scratch that materializes flat pairs as KeyValue strings for
/// the user-facing Reduce interface. String capacity is recycled across
/// Fill calls, so steady-state grouping does one assign per pair instead
/// of two heap allocations.
class KvGroupScratch {
 public:
  /// Views the group as a KeyValue span (valid until the next Fill or
  /// destruction).
  std::span<const KeyValue> Fill(const KvRange& range);

  /// Reusable key string for the Reduce(const std::string&, ...) call.
  const std::string& KeyFor(std::string_view key) {
    key_.assign(key);
    return key_;
  }

 private:
  KeyValue& Slot(size_t k);

  std::vector<KeyValue> storage_;
  std::string key_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_KV_ARENA_H_
