#ifndef REDOOP_MAPREDUCE_JOB_RUNNER_H_
#define REDOOP_MAPREDUCE_JOB_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "common/random.h"
#include "exec/task_executor.h"
#include "mapreduce/job.h"
#include "mapreduce/job_result.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/task.h"
#include "obs/observability.h"

namespace redoop {

struct JobRunnerOptions {
  /// A task is retried this many times before failing the job (Hadoop's
  /// mapred.map.max.attempts default).
  int32_t max_task_attempts = 4;
  /// Straggler model: with this probability a task attempt runs
  /// `straggler_slowdown` times slower (background load, bad disk, ...).
  /// Deterministic per (seed, attempt).
  double straggler_probability = 0.0;
  double straggler_slowdown = 4.0;
  /// Hadoop's speculative execution: once a task has run
  /// `speculation_factor` times its nominal duration, a backup attempt is
  /// launched on another free slot and the first finisher wins. The
  /// paper's experiments ran with speculation disabled (§6.1), which is
  /// the default here too.
  bool speculative_execution = false;
  double speculation_factor = 1.3;
  uint64_t seed = 99;
  /// Metrics/journal sink for task lifecycle, DFS reads, and job events;
  /// null (the default) disables emission. Must outlive the runner.
  obs::ObservabilityContext* obs = nullptr;
  /// Attribution scope for emission (query/window labels). When non-null
  /// it is copied at construction and takes precedence over `obs`; the
  /// pointed-to scope only needs to live until the constructor returns.
  const obs::TelemetryScope* telemetry = nullptr;
  /// Host worker threads executing task payloads (the user map/reduce
  /// functions, combiner, and k-way merges). 1 runs every payload inline
  /// on the simulator thread; N > 1 offloads payloads to a work-stealing
  /// pool whose results re-join the event loop at deterministic points;
  /// 0 means "auto" (hardware_concurrency). Window outputs, counters,
  /// journal contents, and simulated times are byte-identical at every
  /// setting — threads only changes host wall-clock.
  int32_t threads = 1;
  /// Optional shared executor (e.g. one pool across a MultiQueryCoordinator's
  /// drivers); overrides `threads` when non-null. Must outlive the runner.
  exec::TaskExecutor* executor = nullptr;
};

/// Executes MapReduce jobs on the simulated cluster: splits inputs into
/// tasks (one map per HDFS block slice), drives the scheduler as slots free
/// up, actually runs the user map/reduce functions on the records, accounts
/// simulated time through the cost model, and survives node failures via
/// task re-execution. This is the JobTracker + TaskTracker execution path
/// of Hadoop, collapsed into one deterministic event-driven engine.
class JobRunner {
 public:
  /// `cluster` and `scheduler` must outlive the runner.
  JobRunner(Cluster* cluster, TaskScheduler* scheduler,
            JobRunnerOptions options = JobRunnerOptions());
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Runs the job to completion (advancing simulated time) and returns the
  /// result. Errors (missing input file, unreadable block, task attempts
  /// exhausted) are reported in JobResult::status.
  JobResult Run(const JobSpec& spec);

  /// Invoked when a node's local FS cannot fit a new cache file: handler
  /// should free space (on-demand purging of expired caches, paper §4.1)
  /// and return the bytes freed. The write is retried once.
  using DiskFullHandler = std::function<int64_t(NodeId node, int64_t needed)>;
  void SetDiskFullHandler(DiskFullHandler handler) {
    disk_full_handler_ = std::move(handler);
  }

 private:
  struct MapTaskState;
  struct ReduceTaskState;
  struct RunState;
  struct MapPayloadResult;
  struct ReducePayloadResult;

  void BuildMapTasks(const JobSpec& spec, RunState* run);
  void TryScheduleTasks(RunState* run);
  void StartMapTask(RunState* run, MapTaskState* task, NodeId node);
  /// Installs an offloaded (or inline) map payload's results, charges the
  /// result-dependent cost-model phases, and arms the attempt. Runs on the
  /// simulator thread — inline for threads=1, from the join event otherwise.
  void InstallMapResult(RunState* run, MapTaskState* task,
                        MapPayloadResult result);
  void FinishMapTask(RunState* run, MapTaskState* task, NodeId winner_node);
  void StartReduceTask(RunState* run, ReduceTaskState* task, NodeId node);
  /// Reduce twin of InstallMapResult. `merge_spill` is the start-computed
  /// merge-spill write charge folded into timing.write here.
  void InstallReduceResult(RunState* run, ReduceTaskState* task,
                           SimDuration merge_spill,
                           ReducePayloadResult result);
  void FinishReduceTask(RunState* run, ReduceTaskState* task,
                        NodeId winner_node);
  /// Consumes the per-attempt straggler draw (call exactly once per
  /// attempt, at Start — before any payload offload — so the RNG stream
  /// is identical at every thread count and failure interleaving).
  double DrawStragglerFactor();
  /// Applies the pre-drawn straggler factor and, when speculation is on,
  /// arms the backup-launch check. Returns the attempt's actual duration.
  template <typename TaskState>
  SimDuration ArmAttempt(RunState* run, TaskState* task,
                         SimDuration nominal_duration, bool is_map);
  void OnNodeFailure(NodeId node);
  void FailTaskAttempt(RunState* run, TaskType type, int64_t index);
  /// Stamps the serialized per-task TraceContext ("ctx") onto a task.start
  /// event — the propagation token a remote worker would carry across the
  /// process boundary. No-op when the driver isn't tracing this window.
  void StampTaskContext(int64_t task, int64_t attempt, obs::Event* e) const;
  bool AllMapsDone(const RunState& run) const;
  void MaybeFinishJob(RunState* run);

  static MapPayloadResult ExecuteMapPayload(const DfsFile* file,
                                            int64_t record_begin,
                                            int64_t record_end,
                                            const Mapper* mapper,
                                            const Reducer* combiner,
                                            const Partitioner* partitioner,
                                            int32_t num_partitions);

  Cluster* cluster_;
  TaskScheduler* scheduler_;
  JobRunnerOptions options_;
  obs::TelemetryScope scope_;  // From options.telemetry, else options.obs.
  DiskFullHandler disk_full_handler_;
  Random random_;  // Straggler draws (deterministic from options.seed).
  RunState* active_run_ = nullptr;  // Non-null only inside Run().
  TaskId next_task_id_ = 1;
  /// Payload pool: null in inline mode (threads=1). Points at
  /// options_.executor when shared, else at owned_executor_.
  exec::TaskExecutor* executor_ = nullptr;
  std::unique_ptr<exec::TaskExecutor> owned_executor_;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_JOB_RUNNER_H_
