#ifndef REDOOP_MAPREDUCE_JOB_H_
#define REDOOP_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"
#include "mapreduce/mapper.h"
#include "mapreduce/partitioner.h"
#include "mapreduce/reducer.h"

namespace redoop {

/// Static configuration of a MapReduce job: the user functions and the
/// reduce-side parallelism. Mapper/reducer/partitioner instances are shared
/// (they are stateless by contract) and must outlive the job execution.
struct JobConfig {
  std::string name = "job";
  std::shared_ptr<const Mapper> mapper;
  std::shared_ptr<const Reducer> reducer;
  /// Optional map-side combiner, run over each map task's sorted partition
  /// buckets before they are spilled/shuffled (Hadoop's combiner). Must be
  /// associative/commutative and emit the same format it consumes;
  /// aggregation reducers usually double as their own combiner.
  std::shared_ptr<const Reducer> combiner;
  std::shared_ptr<const Partitioner> partitioner;  // Defaults to hash.
  int32_t num_reducers = 1;
};

/// One map input: a DFS file (or a record subrange of it, for a pane inside
/// a multi-pane file), tagged with the (source, pane) it carries so that
/// cached reducer inputs can be attributed to panes.
struct MapInput {
  std::string file_name;
  SourceId source = 0;
  PaneId pane = kInvalidPane;
  /// Half-open record range; record_end == -1 means "to end of file".
  int64_t record_begin = 0;
  int64_t record_end = -1;
};

/// A cached reducer input injected into one reduce partition: the shuffled,
/// sorted pairs of some (source, pane, partition), resident on `location`'s
/// local file system. If the reduce task is scheduled elsewhere the data is
/// fetched over the network (paper §4.3: this is what the cache-aware
/// scheduler tries to avoid).
struct ReduceSideInput {
  std::string cache_name;
  int32_t partition = 0;
  SourceId source = 0;
  PaneId pane = kInvalidPane;
  NodeId location = kInvalidNode;
  int64_t bytes = 0;
  int64_t records = 0;
  /// Shared payload (typically aliased with the cache store's entry): side
  /// inputs, caches, and results all reference the same immutable flat
  /// buffer instead of deep-copying it — cached panes pay no per-string
  /// heap overhead when stored or re-scanned.
  std::shared_ptr<const FlatKvBuffer> payload;
};

/// Instructions for materializing caches out of a job run (paper §4:
/// Redoop caches at two stages — reduce input and reduce output).
struct CacheDirectives {
  /// Write each reduce partition's newly shuffled input, split per
  /// (source, pane), to the reducer node's local FS.
  bool cache_reduce_input = false;
  /// Write each reduce partition's output to the reducer node's local FS.
  bool cache_reduce_output = false;
  /// Names the reduce-input cache file for (source, pane, partition).
  std::function<std::string(SourceId, PaneId, int32_t)> input_cache_name;
  /// Names the reduce-output cache file for partition.
  std::function<std::string(int32_t)> output_cache_name;
};

/// An explicitly specified reduce task, used by Redoop's pane-pair join
/// jobs: the task's entire input is its side inputs (no shuffle), and its
/// output may be cached under a per-task name. When a job carries explicit
/// reduce tasks it must have no map inputs.
struct ExplicitReduceTask {
  /// The hash partition this task covers (labels the cached output).
  int32_t partition = 0;
  std::vector<ReduceSideInput> side_inputs;
  /// When non-empty, the task's output (possibly empty) is materialized as
  /// a reduce-output cache with this name.
  std::string output_cache_name;
  /// Pane-pair labels for reporting/cache attribution.
  PaneId label_left = kInvalidPane;
  PaneId label_right = kInvalidPane;
  /// Placement hint: tasks sharing a side input anchor on one node so that
  /// repeat reads of the shared cache hit the page cache.
  NodeId preferred_node = kInvalidNode;
};

/// A complete executable job specification.
struct JobSpec {
  JobConfig config;
  std::vector<MapInput> map_inputs;
  std::vector<ReduceSideInput> side_inputs;
  /// Per-source mapper overrides (joins tag tuples by source); sources not
  /// listed use config.mapper.
  std::map<SourceId, std::shared_ptr<const Mapper>> per_source_mappers;
  /// When non-empty, these tasks replace the standard one-task-per-
  /// partition reduce phase; map_inputs and side_inputs must be empty.
  std::vector<ExplicitReduceTask> explicit_reduce_tasks;
  CacheDirectives cache;
  /// When non-empty, only these reduce partitions run (cache-rebuild jobs
  /// regenerate just the lost partitions; the deterministic partitioner
  /// guarantees the replay routes the same keys there). Maps still execute
  /// fully — their cost cannot be avoided — but other partitions' buckets
  /// are discarded. Standard reduce phase only.
  std::vector<int32_t> active_partitions;
  /// When set, each reduce partition's output is also written to HDFS under
  /// "<output_prefix>/part-<partition>".
  std::string output_prefix;
  /// Nodes the scheduler should prefer for reduce partition p (e.g. where
  /// partition p's caches live). Parallel to partition ids; optional.
  std::vector<NodeId> preferred_reduce_nodes;
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_JOB_H_
