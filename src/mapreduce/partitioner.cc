#include "mapreduce/partitioner.h"

#include "common/hash.h"
#include "common/logging.h"

namespace redoop {

int32_t HashPartitioner::Partition(std::string_view key,
                                   int32_t num_partitions) const {
  REDOOP_CHECK(num_partitions > 0);
  return static_cast<int32_t>(Fnv1a64(key) %
                              static_cast<uint64_t>(num_partitions));
}

}  // namespace redoop
