#include "mapreduce/scheduler.h"

namespace redoop {

namespace scheduler_internal {

NodeId LeastLoadedWithFreeSlot(const Cluster& cluster, bool map_slot) {
  NodeId best = kInvalidNode;
  double best_load = 2.0;
  for (int32_t i = 0; i < cluster.num_nodes(); ++i) {
    const TaskNode& n = cluster.node(i);
    if (!n.alive()) continue;
    const int32_t free = map_slot ? n.free_map_slots() : n.free_reduce_slots();
    if (free <= 0) continue;
    const double load = n.Load();
    if (load < best_load) {
      best_load = load;
      best = n.id();
    }
  }
  return best;
}

}  // namespace scheduler_internal

namespace {

bool HoldsReplica(const MapPlacementRequest& request, NodeId node) {
  for (NodeId candidate : request.replica_nodes) {
    if (candidate == node) return true;
  }
  return false;
}

}  // namespace

namespace scheduler_internal {

void EmitMapAssignment(const obs::TelemetryScope& scope,
                       const MapPlacementRequest& request, NodeId node,
                       const char* policy) {
  if (!scope.active() || node == kInvalidNode) return;
  const bool data_local = HoldsReplica(request, node);
  scope.Increment(data_local ? obs::metric::kSchedMapLocal
                             : obs::metric::kSchedMapRemote);
  scope.Emit(obs::event::kSchedAssign)
      .With("kind", "map")
      .With("policy", policy)
      .With("node", node)
      .With("source", request.source)
      .With("pane", request.pane)
      .With("bytes", request.input_bytes)
      .With("locality", data_local ? "data_local" : "remote");
}

}  // namespace scheduler_internal

NodeId DefaultScheduler::SelectNodeForMap(const MapPlacementRequest& request,
                                          const Cluster& cluster) {
  // Data locality first: any replica holder with a free map slot, least
  // loaded among them.
  NodeId best = kInvalidNode;
  double best_load = 2.0;
  for (NodeId candidate : request.replica_nodes) {
    if (candidate < 0 || candidate >= cluster.num_nodes()) continue;
    const TaskNode& n = cluster.node(candidate);
    if (!n.alive() || n.free_map_slots() <= 0) continue;
    if (n.Load() < best_load) {
      best_load = n.Load();
      best = candidate;
    }
  }
  if (best == kInvalidNode) {
    best = scheduler_internal::LeastLoadedWithFreeSlot(cluster,
                                                       /*map_slot=*/true);
  }
  scheduler_internal::EmitMapAssignment(scope_, request, best, "default");
  return best;
}

NodeId DefaultScheduler::SelectNodeForReduce(
    const ReducePlacementRequest& request, const Cluster& cluster) {
  // Hadoop's default scheduler is cache/locality blind here.
  const NodeId best =
      scheduler_internal::LeastLoadedWithFreeSlot(cluster, /*map_slot=*/false);
  if (scope_.active() && best != kInvalidNode) {
    scope_.Increment(obs::metric::kSchedReduceAssignments);
    scope_.Emit(obs::event::kSchedAssign)
        .With("kind", "reduce")
        .With("policy", "default")
        .With("node", best)
        .With("partition", request.partition)
        .With("shuffle_bytes", request.shuffle_bytes);
  }
  return best;
}

}  // namespace redoop
