#include "mapreduce/scheduler.h"

namespace redoop {

namespace scheduler_internal {

NodeId LeastLoadedWithFreeSlot(const Cluster& cluster, bool map_slot) {
  NodeId best = kInvalidNode;
  double best_load = 2.0;
  for (int32_t i = 0; i < cluster.num_nodes(); ++i) {
    const TaskNode& n = cluster.node(i);
    if (!n.alive()) continue;
    const int32_t free = map_slot ? n.free_map_slots() : n.free_reduce_slots();
    if (free <= 0) continue;
    const double load = n.Load();
    if (load < best_load) {
      best_load = load;
      best = n.id();
    }
  }
  return best;
}

}  // namespace scheduler_internal

NodeId DefaultScheduler::SelectNodeForMap(const MapPlacementRequest& request,
                                          const Cluster& cluster) {
  // Data locality first: any replica holder with a free map slot, least
  // loaded among them.
  NodeId best = kInvalidNode;
  double best_load = 2.0;
  for (NodeId candidate : request.replica_nodes) {
    if (candidate < 0 || candidate >= cluster.num_nodes()) continue;
    const TaskNode& n = cluster.node(candidate);
    if (!n.alive() || n.free_map_slots() <= 0) continue;
    if (n.Load() < best_load) {
      best_load = n.Load();
      best = candidate;
    }
  }
  if (best != kInvalidNode) return best;
  return scheduler_internal::LeastLoadedWithFreeSlot(cluster, /*map_slot=*/true);
}

NodeId DefaultScheduler::SelectNodeForReduce(
    const ReducePlacementRequest& request, const Cluster& cluster) {
  (void)request;  // Hadoop's default scheduler is cache/locality blind here.
  return scheduler_internal::LeastLoadedWithFreeSlot(cluster,
                                                     /*map_slot=*/false);
}

}  // namespace redoop
