#ifndef REDOOP_MAPREDUCE_MAPPER_H_
#define REDOOP_MAPREDUCE_MAPPER_H_

#include <string>
#include <string_view>
#include <vector>

#include "dfs/record.h"
#include "mapreduce/kv.h"
#include "mapreduce/kv_arena.h"

namespace redoop {

/// Collects a map function's output pairs. Storage is a flat arena
/// (FlatKvBuffer): Emit copies the bytes once and never allocates a
/// per-pair string — the std::string-based Emit signature is a thin
/// adapter over the flat path, so existing mappers compile and behave
/// unchanged.
class MapContext {
 public:
  MapContext() = default;

  /// Pre-sizes the pair index for an expected output count (e.g. the map
  /// split's record count — most mappers emit about one pair per record).
  void Reserve(size_t pairs) { buffer_.Reserve(pairs); }

  void Emit(std::string_view key, std::string_view value,
            int32_t logical_bytes) {
    buffer_.Append(key, value, logical_bytes);
  }
  void Emit(std::string_view key, std::string_view value) {
    buffer_.Append(key, value);
  }

  /// Materializes the collected pairs as strings, in emission order.
  /// Compatibility/testing surface — the engine consumes flat() instead.
  std::vector<KeyValue> output() const { return buffer_.ToKeyValues(); }

  const FlatKvBuffer& flat() const { return buffer_; }
  FlatKvBuffer TakeFlat() { return std::move(buffer_); }
  void Clear() { buffer_.Clear(); }

 private:
  FlatKvBuffer buffer_;
};

/// User map function, exactly the Hadoop interface shape: consumes one input
/// record at a time and emits zero or more intermediate pairs.
/// Implementations must be stateless (one instance is shared by every map
/// task of a job, possibly across recurrences).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const Record& record, MapContext* context) const = 0;
};

/// Identity mapper: passes (key, value) through unchanged.
class IdentityMapper : public Mapper {
 public:
  void Map(const Record& record, MapContext* context) const override {
    context->Emit(record.key, record.value, record.logical_bytes);
  }
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_MAPPER_H_
