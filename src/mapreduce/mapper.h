#ifndef REDOOP_MAPREDUCE_MAPPER_H_
#define REDOOP_MAPREDUCE_MAPPER_H_

#include <string>
#include <vector>

#include "dfs/record.h"
#include "mapreduce/kv.h"

namespace redoop {

/// Collects a map function's output pairs.
class MapContext {
 public:
  MapContext() = default;

  void Emit(std::string key, std::string value, int32_t logical_bytes) {
    output_.emplace_back(std::move(key), std::move(value), logical_bytes);
  }
  void Emit(std::string key, std::string value) {
    output_.emplace_back(std::move(key), std::move(value));
  }

  const std::vector<KeyValue>& output() const { return output_; }
  /// Direct access to the collected pairs so callers can partition them in
  /// place (move the strings out) without an intermediate copy.
  std::vector<KeyValue>* mutable_output() { return &output_; }
  std::vector<KeyValue> TakeOutput() { return std::move(output_); }
  void Clear() { output_.clear(); }

 private:
  std::vector<KeyValue> output_;
};

/// User map function, exactly the Hadoop interface shape: consumes one input
/// record at a time and emits zero or more intermediate pairs.
/// Implementations must be stateless (one instance is shared by every map
/// task of a job, possibly across recurrences).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const Record& record, MapContext* context) const = 0;
};

/// Identity mapper: passes (key, value) through unchanged.
class IdentityMapper : public Mapper {
 public:
  void Map(const Record& record, MapContext* context) const override {
    context->Emit(record.key, record.value, record.logical_bytes);
  }
};

}  // namespace redoop

#endif  // REDOOP_MAPREDUCE_MAPPER_H_
