#include "dfs/pane_header.h"

#include <algorithm>

#include "common/logging.h"

namespace redoop {

namespace {
// Nominal serialized footprint of one header entry: pane id + offsets.
constexpr int64_t kEntryBytes = 40;
constexpr int64_t kHeaderFixedBytes = 16;
}  // namespace

void PaneHeader::Add(const PaneHeaderEntry& entry) {
  REDOOP_CHECK(entry.record_count >= 0);
  REDOOP_CHECK(entry.byte_size >= 0);
  if (!entries_.empty()) {
    REDOOP_CHECK(entry.pane_id > entries_.back().pane_id)
        << "pane header entries must be added in increasing pane order";
  }
  entries_.push_back(entry);
}

std::optional<PaneHeaderEntry> PaneHeader::Find(int64_t pane_id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pane_id,
      [](const PaneHeaderEntry& e, int64_t id) { return e.pane_id < id; });
  if (it == entries_.end() || it->pane_id != pane_id) return std::nullopt;
  return *it;
}

int64_t PaneHeader::first_pane_id() const {
  REDOOP_CHECK(!entries_.empty());
  return entries_.front().pane_id;
}

int64_t PaneHeader::last_pane_id() const {
  REDOOP_CHECK(!entries_.empty());
  return entries_.back().pane_id;
}

void PaneHeader::AnnotateCompressed(size_t index, int64_t offset,
                                    int64_t size) {
  REDOOP_CHECK(index < entries_.size());
  REDOOP_CHECK(offset >= 0 && size >= 0);
  entries_[index].compressed_offset = offset;
  entries_[index].compressed_size = size;
}

int64_t PaneHeader::logical_bytes() const {
  if (entries_.empty()) return 0;  // Plain files carry no header.
  return kHeaderFixedBytes +
         static_cast<int64_t>(entries_.size()) * kEntryBytes;
}

}  // namespace redoop
