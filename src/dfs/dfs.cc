#include "dfs/dfs.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {

DfsOptions DfsOptions::FromConfig(const Config& config) {
  DfsOptions o;
  o.block_size_bytes = config.GetInt("dfs.block_size", o.block_size_bytes);
  o.replication = static_cast<int32_t>(
      config.GetInt("dfs.replication", o.replication));
  o.placement_seed = static_cast<uint64_t>(
      config.GetInt("dfs.placement_seed", static_cast<int64_t>(o.placement_seed)));
  return o;
}

Dfs::Dfs(int32_t num_nodes, DfsOptions options)
    : num_nodes_(num_nodes),
      options_(options),
      random_(options.placement_seed),
      node_alive_(static_cast<size_t>(num_nodes), true),
      node_bytes_(static_cast<size_t>(num_nodes), 0) {
  REDOOP_CHECK(num_nodes > 0);
  REDOOP_CHECK(options_.block_size_bytes > 0);
  REDOOP_CHECK(options_.replication > 0);
}

StatusOr<FileId> Dfs::CreateFile(std::string_view name,
                                 std::vector<Record> records,
                                 Timestamp time_begin, Timestamp time_end) {
  return CreateFileWithHeader(name, std::move(records), time_begin, time_end,
                              PaneHeader());
}

StatusOr<FileId> Dfs::CreateFileWithHeader(std::string_view name,
                                           std::vector<Record> records,
                                           Timestamp time_begin,
                                           Timestamp time_end,
                                           PaneHeader header) {
  if (by_name_.count(std::string(name)) > 0) {
    return Status::AlreadyExists(StringPrintf(
        "dfs file already exists: %.*s", static_cast<int>(name.size()),
        name.data()));
  }
  auto file = std::make_unique<DfsFile>();
  file->id = next_file_id_++;
  file->name = std::string(name);
  file->size_bytes = TotalLogicalBytes(records) + header.logical_bytes();
  file->pane_header = std::move(header);
  file->time_begin = time_begin;
  file->time_end = time_end;
  file->record_count_ = static_cast<int64_t>(records.size());
  EncodeSegments(file.get(), records);
  PlaceBlocks(file.get(), records);

  const FileId id = file->id;
  by_name_[file->name] = id;
  DfsFile* stored = file.get();
  files_[id] = std::move(file);
  if (obs_ != nullptr) {
    obs_->metrics().Increment(obs::metric::kDfsFilesCreated);
    obs_->metrics().Increment(obs::metric::kDfsBytesWritten,
                              stored->size_bytes);
    obs_->Emit(obs::event::kDfsFileCreate)
        .With("file", stored->name)
        .With("bytes", stored->size_bytes)
        .With("blocks", static_cast<int64_t>(stored->blocks.size()))
        .With("records", stored->record_count());
  }
  return id;
}

const std::vector<Record>& DfsFile::rows() const {
  std::call_once(decode_once_, [this] {
    rows_.reserve(static_cast<size_t>(record_count_));
    for (const ColumnarRecordBlock& segment : segments_) {
      segment.DecodeInto(&rows_);
    }
  });
  return rows_;
}

void Dfs::EncodeSegments(DfsFile* file, const std::vector<Record>& records) {
  const int64_t total = static_cast<int64_t>(records.size());
  // Pane-granular segments only when the header tiles the record range
  // exactly; anything else (plain files, headerless panes) encodes whole.
  bool tiled = !file->pane_header.empty();
  int64_t expect = 0;
  for (const PaneHeaderEntry& e : file->pane_header.entries()) {
    if (e.record_offset != expect) tiled = false;
    expect += e.record_count;
  }
  if (tiled && expect != total) tiled = false;
  if (!tiled) {
    file->segments_.push_back(ColumnarRecordBlock::Encode(records));
    return;
  }
  int64_t compressed_offset = 0;
  const auto& entries = file->pane_header.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    ColumnarRecordBlock segment = ColumnarRecordBlock::Encode(
        records.data() + entries[i].record_offset,
        static_cast<size_t>(entries[i].record_count));
    const int64_t size = segment.compressed_bytes();
    file->pane_header.AnnotateCompressed(i, compressed_offset, size);
    compressed_offset += size;
    file->segments_.push_back(std::move(segment));
  }
}

void Dfs::PlaceBlocks(DfsFile* file, const std::vector<Record>& records) {
  const int64_t block_size = options_.block_size_bytes;
  const int64_t record_count = static_cast<int64_t>(records.size());
  int64_t begin = 0;
  int64_t bytes_in_block = 0;
  int64_t index = 0;
  auto flush_block = [&](int64_t end) {
    Block block;
    block.id = next_block_id_++;
    block.file = file->id;
    block.record_begin = begin;
    block.record_end = end;
    block.size_bytes = bytes_in_block;
    block.replicas = ChooseReplicaNodes();
    for (NodeId n : block.replicas) node_bytes_[static_cast<size_t>(n)] += bytes_in_block;
    file->blocks.push_back(std::move(block));
    begin = end;
    bytes_in_block = 0;
  };

  for (; index < record_count; ++index) {
    bytes_in_block += records[static_cast<size_t>(index)].logical_bytes;
    if (bytes_in_block >= block_size) flush_block(index + 1);
  }
  if (bytes_in_block > 0 || file->blocks.empty()) {
    // Final partial block; empty files still get one (empty) block so that
    // metadata paths have something to point at.
    flush_block(record_count);
  }
}

std::vector<NodeId> Dfs::ChooseReplicaNodes() {
  const int32_t want =
      std::min<int32_t>(options_.replication, num_nodes_);
  std::vector<NodeId> chosen;
  chosen.reserve(static_cast<size_t>(want));

  // First replica: rotating writer node (approximates HDFS putting replica 1
  // on the writer; rotation spreads load like multiple concurrent writers).
  NodeId first = next_writer_;
  for (int32_t tries = 0; tries < num_nodes_; ++tries) {
    if (IsAlive(first)) break;
    first = static_cast<NodeId>((first + 1) % num_nodes_);
  }
  REDOOP_CHECK(IsAlive(first)) << "no live DFS nodes";
  next_writer_ = static_cast<NodeId>((first + 1) % num_nodes_);
  chosen.push_back(first);

  // Remaining replicas: distinct random live nodes.
  int guard = 0;
  while (static_cast<int32_t>(chosen.size()) < want && guard < 10000) {
    ++guard;
    NodeId candidate =
        static_cast<NodeId>(random_.Uniform(static_cast<uint64_t>(num_nodes_)));
    if (!IsAlive(candidate)) continue;
    if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end())
      continue;
    chosen.push_back(candidate);
  }
  return chosen;
}

bool Dfs::Exists(std::string_view name) const {
  return by_name_.count(std::string(name)) > 0;
}

StatusOr<const DfsFile*> Dfs::GetFile(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound(StringPrintf("no such dfs file: %.*s",
                                         static_cast<int>(name.size()),
                                         name.data()));
  }
  return GetFileById(it->second);
}

StatusOr<const DfsFile*> Dfs::GetFileById(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound(StringPrintf("no such dfs file id: %ld", id));
  }
  return const_cast<const DfsFile*>(it->second.get());
}

Status Dfs::DeleteFile(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound(StringPrintf("no such dfs file: %.*s",
                                         static_cast<int>(name.size()),
                                         name.data()));
  }
  auto fit = files_.find(it->second);
  REDOOP_CHECK(fit != files_.end());
  for (const Block& b : fit->second->blocks) {
    for (NodeId n : b.replicas) {
      node_bytes_[static_cast<size_t>(n)] -= b.size_bytes;
    }
  }
  if (obs_ != nullptr) {
    obs_->metrics().Increment(obs::metric::kDfsFilesDeleted);
    obs_->Emit(obs::event::kDfsFileDelete)
        .With("file", fit->second->name)
        .With("bytes", fit->second->size_bytes);
  }
  files_.erase(fit);
  by_name_.erase(it);
  return Status::OK();
}

std::vector<std::string> Dfs::ListFiles(std::string_view prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, id] : by_name_) {
    (void)id;
    if (StartsWith(name, prefix)) out.push_back(name);
  }
  return out;
}

std::vector<NodeId> Dfs::BlockLocations(BlockId block) const {
  for (const auto& [id, file] : files_) {
    (void)id;
    for (const Block& b : file->blocks) {
      if (b.id == block) {
        std::vector<NodeId> live;
        for (NodeId n : b.replicas) {
          if (IsAlive(n)) live.push_back(n);
        }
        return live;
      }
    }
  }
  return {};
}

void Dfs::OnNodeFailed(NodeId node) {
  REDOOP_CHECK(node >= 0 && node < num_nodes_);
  if (!node_alive_[static_cast<size_t>(node)]) return;
  node_alive_[static_cast<size_t>(node)] = false;
  // Replicas on the node are lost.
  for (auto& [id, file] : files_) {
    (void)id;
    for (Block& b : file->blocks) {
      auto it = std::find(b.replicas.begin(), b.replicas.end(), node);
      if (it != b.replicas.end()) {
        b.replicas.erase(it);
        node_bytes_[static_cast<size_t>(node)] -= b.size_bytes;
      }
    }
  }
  if (node_bytes_[static_cast<size_t>(node)] < 0) {
    node_bytes_[static_cast<size_t>(node)] = 0;
  }
  if (obs_ != nullptr) {
    obs_->Emit(obs::event::kDfsNodeFailed).With("node", node);
  }
}

void Dfs::OnNodeRecovered(NodeId node) {
  REDOOP_CHECK(node >= 0 && node < num_nodes_);
  node_alive_[static_cast<size_t>(node)] = true;
  node_bytes_[static_cast<size_t>(node)] = 0;
}

int64_t Dfs::ReplicateMissing() {
  int64_t created = 0;
  for (auto& [id, file] : files_) {
    (void)id;
    for (Block& b : file->blocks) {
      const int32_t want = std::min<int32_t>(options_.replication, [this] {
        int32_t alive = 0;
        for (bool a : node_alive_) alive += a ? 1 : 0;
        return alive;
      }());
      int guard = 0;
      while (static_cast<int32_t>(b.replicas.size()) < want &&
             guard < 10000) {
        ++guard;
        NodeId candidate = static_cast<NodeId>(
            random_.Uniform(static_cast<uint64_t>(num_nodes_)));
        if (!IsAlive(candidate)) continue;
        if (std::find(b.replicas.begin(), b.replicas.end(), candidate) !=
            b.replicas.end())
          continue;
        b.replicas.push_back(candidate);
        node_bytes_[static_cast<size_t>(candidate)] += b.size_bytes;
        ++created;
      }
    }
  }
  if (obs_ != nullptr && created > 0) {
    obs_->metrics().Increment(obs::metric::kDfsReplicasRestored, created);
  }
  return created;
}

bool Dfs::IsReadable(const DfsFile& file) const {
  for (const Block& b : file.blocks) {
    bool any = false;
    for (NodeId n : b.replicas) {
      if (IsAlive(n)) {
        any = true;
        break;
      }
    }
    if (!any && b.size_bytes > 0) return false;
  }
  return true;
}

int64_t Dfs::TotalStoredBytes() const {
  int64_t total = 0;
  for (int64_t b : node_bytes_) total += b;
  return total;
}

int64_t Dfs::StoredBytesOnNode(NodeId node) const {
  REDOOP_CHECK(node >= 0 && node < num_nodes_);
  return node_bytes_[static_cast<size_t>(node)];
}

bool Dfs::IsAlive(NodeId node) const {
  return node >= 0 && node < num_nodes_ &&
         node_alive_[static_cast<size_t>(node)];
}

}  // namespace redoop
