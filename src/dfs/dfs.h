#ifndef REDOOP_DFS_DFS_H_
#define REDOOP_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/status.h"
#include "dfs/columnar.h"
#include "dfs/pane_header.h"
#include "dfs/record.h"
#include "obs/observability.h"

namespace redoop {

/// One replicated HDFS block: a contiguous span of a file's records.
struct Block {
  BlockId id = 0;
  FileId file = 0;
  /// Half-open record-index range [record_begin, record_end) into the file.
  int64_t record_begin = 0;
  int64_t record_end = 0;
  int64_t size_bytes = 0;
  /// Nodes holding a replica (first is the "primary" written replica).
  std::vector<NodeId> replicas;
};

/// A file in the simulated HDFS: block/replica metadata, an optional pane
/// header for multi-pane files, and the record payload at rest in
/// columnar-compressed segments (one per pane for multi-pane files, one
/// for the whole file otherwise). The simulated world keeps charging
/// logical bytes, so the storage form is invisible to costs and outputs —
/// it changes host memory and the compressed-bytes accounting only.
struct DfsFile {
  FileId id = 0;
  std::string name;
  int64_t size_bytes = 0;
  std::vector<Block> blocks;
  /// Present for multi-pane files created by the Dynamic Data Packer.
  PaneHeader pane_header;
  /// Covered record-timestamp range [time_begin, time_end).
  Timestamp time_begin = 0;
  Timestamp time_end = 0;

  /// The file's records, decoded from the columnar segments on first
  /// access and memoized. call_once: map tasks read payload files
  /// concurrently on executor worker threads.
  const std::vector<Record>& rows() const;

  int64_t record_count() const { return record_count_; }

  /// Host bytes of the encoded image (all segments) — what a block read
  /// of this file really moves.
  int64_t compressed_bytes() const {
    int64_t total = 0;
    for (const ColumnarRecordBlock& s : segments_) {
      total += s.compressed_bytes();
    }
    return total;
  }

 private:
  friend class Dfs;
  std::vector<ColumnarRecordBlock> segments_;
  int64_t record_count_ = 0;
  mutable std::once_flag decode_once_;
  mutable std::vector<Record> rows_;
};

struct DfsOptions {
  int64_t block_size_bytes = 64 * kBytesPerMB;
  int32_t replication = 3;
  uint64_t placement_seed = 7;

  /// Keys: dfs.block_size, dfs.replication, dfs.placement_seed.
  static DfsOptions FromConfig(const Config& config);
};

/// Simulated HDFS namenode + datanodes: a flat namespace of replicated
/// block files spread over `num_nodes` storage nodes. Placement follows
/// HDFS's default policy shape (first replica on a rotating "writer" node,
/// remaining replicas on distinct random nodes).
class Dfs {
 public:
  Dfs(int32_t num_nodes, DfsOptions options = DfsOptions());

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  int32_t num_nodes() const { return num_nodes_; }
  const DfsOptions& options() const { return options_; }

  /// Creates a file from `records`, splitting it into blocks and placing
  /// replicas. Fails with AlreadyExists if the name is taken.
  StatusOr<FileId> CreateFile(std::string_view name,
                              std::vector<Record> records,
                              Timestamp time_begin, Timestamp time_end);

  /// As CreateFile, but attaches a pane header (multi-pane files).
  StatusOr<FileId> CreateFileWithHeader(std::string_view name,
                                        std::vector<Record> records,
                                        Timestamp time_begin,
                                        Timestamp time_end,
                                        PaneHeader header);

  bool Exists(std::string_view name) const;

  /// Looks up by name. The pointer stays valid until the file is deleted.
  StatusOr<const DfsFile*> GetFile(std::string_view name) const;
  StatusOr<const DfsFile*> GetFileById(FileId id) const;

  Status DeleteFile(std::string_view name);

  /// All file names with the given prefix, sorted lexicographically.
  std::vector<std::string> ListFiles(std::string_view prefix = "") const;

  /// Nodes currently holding a live replica of `block`.
  std::vector<NodeId> BlockLocations(BlockId block) const;

  /// Marks a node dead: its replicas disappear. Blocks that lose all
  /// replicas become unreadable until ReplicateMissing() or node recovery.
  void OnNodeFailed(NodeId node);

  /// Brings a failed node back (empty: its old replicas are gone).
  void OnNodeRecovered(NodeId node);

  /// Re-replicates under-replicated blocks onto live nodes. Returns the
  /// number of new replicas created.
  int64_t ReplicateMissing();

  /// True if every block of the file has at least one live replica.
  bool IsReadable(const DfsFile& file) const;

  int64_t TotalStoredBytes() const;
  int64_t StoredBytesOnNode(NodeId node) const;
  int64_t file_count() const { return static_cast<int64_t>(by_name_.size()); }

  /// Journal/metrics sink for namespace activity (file create/delete,
  /// node failures, re-replication); null disables emission.
  void set_observability(obs::ObservabilityContext* obs) { obs_ = obs; }

 private:
  void PlaceBlocks(DfsFile* file, const std::vector<Record>& records);
  /// Transposes `records` into the file's columnar segments — per pane
  /// when the header partitions the record range, whole-file otherwise —
  /// and annotates the header with each segment's compressed extent.
  static void EncodeSegments(DfsFile* file,
                             const std::vector<Record>& records);
  std::vector<NodeId> ChooseReplicaNodes();
  bool IsAlive(NodeId node) const;

  int32_t num_nodes_;
  DfsOptions options_;
  obs::ObservabilityContext* obs_ = nullptr;
  Random random_;
  NodeId next_writer_ = 0;  // Rotating first-replica target.
  FileId next_file_id_ = 1;
  BlockId next_block_id_ = 1;
  std::map<std::string, FileId> by_name_;
  std::map<FileId, std::unique_ptr<DfsFile>> files_;
  std::vector<bool> node_alive_;
  std::vector<int64_t> node_bytes_;
};

}  // namespace redoop

#endif  // REDOOP_DFS_DFS_H_
