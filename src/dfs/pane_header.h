#ifndef REDOOP_DFS_PANE_HEADER_H_
#define REDOOP_DFS_PANE_HEADER_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace redoop {

/// Locator for one logical pane inside a multi-pane file (paper §3.2,
/// "undersized" case: several panes share one physical file, e.g. S1P1_4).
struct PaneHeaderEntry {
  int64_t pane_id = 0;
  /// Index of the pane's first record within the file.
  int64_t record_offset = 0;
  int64_t record_count = 0;
  /// Logical byte offset/size of the pane within the file.
  int64_t byte_offset = 0;
  int64_t byte_size = 0;
  /// Offset/size of the pane's columnar-compressed segment within the
  /// file's encoded image — a pane-granular seek needs only its own
  /// segment, never the whole file. Filled by Dfs at file creation.
  int64_t compressed_offset = 0;
  int64_t compressed_size = 0;
};

/// The special file header Redoop prepends to multi-pane files so an
/// operation needing only some panes can seek directly to them instead of
/// scanning the whole file.
class PaneHeader {
 public:
  PaneHeader() = default;

  /// Appends an entry; pane ids must be added in strictly increasing order.
  void Add(const PaneHeaderEntry& entry);

  /// Binary-searches for `pane_id`; nullopt when the file lacks that pane.
  std::optional<PaneHeaderEntry> Find(int64_t pane_id) const;

  bool Contains(int64_t pane_id) const { return Find(pane_id).has_value(); }

  const std::vector<PaneHeaderEntry>& entries() const { return entries_; }
  size_t pane_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Smallest/largest pane id in the header. Requires !empty().
  int64_t first_pane_id() const;
  int64_t last_pane_id() const;

  /// Serialized size of the header itself in logical bytes (counted as
  /// extra I/O when the file is opened).
  int64_t logical_bytes() const;

  /// Records where entry `index`'s columnar segment landed in the file's
  /// encoded image (Dfs fills this while encoding pane segments).
  void AnnotateCompressed(size_t index, int64_t offset, int64_t size);

 private:
  std::vector<PaneHeaderEntry> entries_;
};

}  // namespace redoop

#endif  // REDOOP_DFS_PANE_HEADER_H_
