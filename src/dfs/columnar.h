#ifndef REDOOP_DFS_COLUMNAR_H_
#define REDOOP_DFS_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dfs/record.h"

namespace redoop {

// ---------------------------------------------------------------------------
// Varint / zigzag primitives shared by every columnar encoder.
// ---------------------------------------------------------------------------

/// Appends `v` LEB128-style: 7 payload bits per byte, high bit = "more".
void PutVarint(std::string* out, uint64_t v);

/// Decodes one varint from [p, end). Returns the position past it, or
/// nullptr on truncated/overlong input (> 10 bytes).
const char* GetVarint(const char* p, const char* end, uint64_t* v);

/// Maps signed to unsigned so small magnitudes stay small varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// ---------------------------------------------------------------------------
// Column codec plug-point.
// ---------------------------------------------------------------------------

/// Per-column byte-transform hook. Column encoders produce lightweight
/// front-coded/varint images; a Codec is the slot where a heavier general
/// codec (LZ4, zstd) would screw in without touching the column formats.
/// The tree ships only IdentityCodec — the container bakes in no codec
/// libraries — but everything downstream accounts compressed bytes through
/// this interface so swapping one in is a one-liner.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string_view name() const = 0;
  virtual void Compress(std::string_view in, std::string* out) const = 0;
  /// False on corrupt input (identity never fails).
  virtual bool Decompress(std::string_view in, std::string* out) const = 0;
};

/// The no-op codec: bytes pass through untouched.
class IdentityCodec : public Codec {
 public:
  std::string_view name() const override { return "identity"; }
  void Compress(std::string_view in, std::string* out) const override {
    out->assign(in.data(), in.size());
  }
  bool Decompress(std::string_view in, std::string* out) const override {
    out->assign(in.data(), in.size());
    return true;
  }
};

/// Process-wide codec applied to every column (identity singleton).
const Codec* DefaultColumnCodec();

// ---------------------------------------------------------------------------
// Front-coded byte columns.
// ---------------------------------------------------------------------------

/// Incremental front-coder: each appended string is stored as
/// varint(shared-prefix length with the previous string), varint(suffix
/// length), suffix bytes. Sorted or low-churn key streams collapse to a
/// few bytes per entry; worst case costs two varints over raw.
class FrontCodedWriter {
 public:
  void Append(std::string_view s);
  /// The encoded column; valid after any number of Appends.
  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
  std::string previous_;
};

/// Streaming decoder for a FrontCodedWriter column. Emits entries in
/// order; `Next` returns false on exhausted or corrupt input.
class FrontCodedReader {
 public:
  explicit FrontCodedReader(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  bool AtEnd() const { return p_ == end_; }
  /// Decodes the next entry into `*out` (reused across calls).
  bool Next(std::string* out);

 private:
  const char* p_;
  const char* end_;
  std::string previous_;
};

// ---------------------------------------------------------------------------
// Columnar record block — the DFS pane payload format.
// ---------------------------------------------------------------------------

/// One pane's records transposed into four independently-encoded columns:
///
///   timestamps : zigzag varint deltas (batch order is near-sorted in time)
///   keys       : front-coded (shared-prefix truncation + varint offsets)
///   values     : varint length + raw bytes
///   logical    : zigzag varint per-record logical_bytes
///
/// Encode/Decode round-trips records byte-identically in order, so the
/// simulated world — which charges logical bytes — cannot observe whether
/// a file was stored row-wise or columnar; only host memory and the
/// compressed-bytes accounting change.
class ColumnarRecordBlock {
 public:
  ColumnarRecordBlock() = default;

  static ColumnarRecordBlock Encode(const Record* records, size_t count);
  static ColumnarRecordBlock Encode(const std::vector<Record>& records) {
    return Encode(records.data(), records.size());
  }

  /// Reconstructs the original record vector (order and bytes preserved).
  std::vector<Record> Decode() const;
  /// Decode() appending into an existing vector (multi-segment files).
  void DecodeInto(std::vector<Record>* out) const;

  int64_t record_count() const { return count_; }
  /// Host bytes of the encoded image — the "real traffic" a cache hit or
  /// block read of this pane would move.
  int64_t compressed_bytes() const {
    return static_cast<int64_t>(timestamps_.size() + keys_.size() +
                                values_.size() + logical_.size());
  }

 private:
  std::string timestamps_;
  std::string keys_;
  std::string values_;
  std::string logical_;
  int64_t count_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_DFS_COLUMNAR_H_
