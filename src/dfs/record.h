#ifndef REDOOP_DFS_RECORD_H_
#define REDOOP_DFS_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace redoop {

/// A timestamped key/value tuple — the unit of data flowing through DFS
/// files and MapReduce tasks. `logical_bytes` is the record's on-disk size
/// in the simulated world; it drives I/O and CPU costs and may be larger
/// than the in-memory footprint (so experiments can model multi-GB inputs
/// with modest record counts).
struct Record {
  Timestamp timestamp = 0;
  std::string key;
  std::string value;
  int32_t logical_bytes = 0;

  Record() = default;
  Record(Timestamp ts, std::string k, std::string v, int32_t bytes)
      : timestamp(ts), key(std::move(k)), value(std::move(v)),
        logical_bytes(bytes) {}

  friend bool operator==(const Record& a, const Record& b) {
    return a.timestamp == b.timestamp && a.key == b.key && a.value == b.value &&
           a.logical_bytes == b.logical_bytes;
  }
};

/// Total logical size of a span of records.
int64_t TotalLogicalBytes(const std::vector<Record>& records);

/// A batch of records covering the half-open time range [start, end), the
/// form in which evolving data sources deliver data to HDFS (paper §2.1:
/// batch files arrive in order; tuples within a batch are unordered).
struct RecordBatch {
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<Record> records;

  int64_t logical_bytes() const { return TotalLogicalBytes(records); }
};

}  // namespace redoop

#endif  // REDOOP_DFS_RECORD_H_
