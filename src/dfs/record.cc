#include "dfs/record.h"

namespace redoop {

int64_t TotalLogicalBytes(const std::vector<Record>& records) {
  int64_t total = 0;
  for (const Record& r : records) total += r.logical_bytes;
  return total;
}

}  // namespace redoop
