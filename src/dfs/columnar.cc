#include "dfs/columnar.h"

#include <algorithm>

#include "common/logging.h"

namespace redoop {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

const char* GetVarint(const char* p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 70 && p < end; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;  // Truncated or overlong.
}

namespace {

size_t SharedPrefix(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

void FrontCodedWriter::Append(std::string_view s) {
  const size_t shared = SharedPrefix(previous_, s);
  PutVarint(&bytes_, shared);
  PutVarint(&bytes_, s.size() - shared);
  bytes_.append(s.data() + shared, s.size() - shared);
  previous_.assign(s);
}

bool FrontCodedReader::Next(std::string* out) {
  uint64_t shared = 0;
  uint64_t suffix = 0;
  p_ = GetVarint(p_, end_, &shared);
  if (p_ == nullptr) return false;
  p_ = GetVarint(p_, end_, &suffix);
  if (p_ == nullptr || shared > previous_.size() ||
      suffix > static_cast<uint64_t>(end_ - p_)) {
    p_ = end_ = nullptr;
    return false;
  }
  previous_.resize(shared);
  previous_.append(p_, suffix);
  p_ += suffix;
  out->assign(previous_);
  return true;
}

ColumnarRecordBlock ColumnarRecordBlock::Encode(const Record* records,
                                                size_t count) {
  ColumnarRecordBlock block;
  block.count_ = static_cast<int64_t>(count);
  FrontCodedWriter keys;
  int64_t prev_ts = 0;
  for (size_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    PutVarint(&block.timestamps_, ZigZagEncode(r.timestamp - prev_ts));
    prev_ts = r.timestamp;
    keys.Append(r.key);
    PutVarint(&block.values_, r.value.size());
    block.values_.append(r.value);
    PutVarint(&block.logical_, ZigZagEncode(r.logical_bytes));
  }
  const Codec* codec = DefaultColumnCodec();
  std::string compressed;
  for (std::string* column :
       {&block.timestamps_, &block.values_, &block.logical_}) {
    codec->Compress(*column, &compressed);
    column->swap(compressed);
  }
  codec->Compress(keys.bytes(), &compressed);
  block.keys_.swap(compressed);
  return block;
}

void ColumnarRecordBlock::DecodeInto(std::vector<Record>* out) const {
  const Codec* codec = DefaultColumnCodec();
  std::string timestamps, keys, values, logical;
  REDOOP_CHECK(codec->Decompress(timestamps_, &timestamps) &&
               codec->Decompress(keys_, &keys) &&
               codec->Decompress(values_, &values) &&
               codec->Decompress(logical_, &logical))
      << "corrupt columnar record block";
  out->reserve(out->size() + static_cast<size_t>(count_));
  FrontCodedReader key_reader(keys);
  const char* tp = timestamps.data();
  const char* tend = tp + timestamps.size();
  const char* vp = values.data();
  const char* vend = vp + values.size();
  const char* lp = logical.data();
  const char* lend = lp + logical.size();
  int64_t prev_ts = 0;
  for (int64_t i = 0; i < count_; ++i) {
    Record r;
    uint64_t raw = 0;
    tp = GetVarint(tp, tend, &raw);
    REDOOP_CHECK(tp != nullptr) << "corrupt timestamp column";
    prev_ts += ZigZagDecode(raw);
    r.timestamp = prev_ts;
    REDOOP_CHECK(key_reader.Next(&r.key)) << "corrupt key column";
    vp = GetVarint(vp, vend, &raw);
    REDOOP_CHECK(vp != nullptr &&
                 raw <= static_cast<uint64_t>(vend - vp))
        << "corrupt value column";
    r.value.assign(vp, raw);
    vp += raw;
    lp = GetVarint(lp, lend, &raw);
    REDOOP_CHECK(lp != nullptr) << "corrupt logical-bytes column";
    r.logical_bytes = static_cast<int32_t>(ZigZagDecode(raw));
    out->push_back(std::move(r));
  }
}

std::vector<Record> ColumnarRecordBlock::Decode() const {
  std::vector<Record> out;
  DecodeInto(&out);
  return out;
}

const Codec* DefaultColumnCodec() {
  static const IdentityCodec* const kCodec = new IdentityCodec();
  return kCodec;
}

}  // namespace redoop
