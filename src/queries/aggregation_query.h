#ifndef REDOOP_QUERIES_AGGREGATION_QUERY_H_
#define REDOOP_QUERIES_AGGREGATION_QUERY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/recurring_query.h"

namespace redoop {

/// A (count, sum, max) partial aggregate in its wire format
/// "count:sum:max". The format is a semigroup: merging partials with
/// AggregateValue::Merge is exactly the reduce of the underlying records,
/// which is what lets Redoop merge per-pane partial outputs (pattern
/// kPerPaneMerge) and still match plain Hadoop's answers bit for bit.
struct AggregateValue {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;

  static AggregateValue Parse(const std::string& s);
  std::string Serialize() const;
  void Merge(const AggregateValue& other);
};

/// Mapper: parses the numeric measure out of a record's value (the last
/// comma-separated field — response bytes for WCC, the last kinematic
/// component for FFG) and emits (key, "1:<v>:<v>").
class AggregationMapper : public Mapper {
 public:
  void Map(const Record& record, MapContext* context) const override;
};

/// Reducer: merges partial aggregates per key and re-emits the partial
/// format — associative and commutative, so it serves both as the per-pane
/// reducer and as the window finalizer.
class AggregationReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override;
};

/// Builds the paper's recurring aggregation query (Fig. 6 workload):
/// group-by-key (count, sum, max) over a single windowed source. With
/// `use_combiner` the reducer additionally runs as a map-side combiner
/// (the aggregate is a semigroup, so results are unchanged while shuffle
/// volume collapses).
RecurringQuery MakeAggregationQuery(QueryId id, const std::string& name,
                                    SourceId source, Timestamp win,
                                    Timestamp slide, int32_t num_reducers,
                                    bool use_combiner = false);

}  // namespace redoop

#endif  // REDOOP_QUERIES_AGGREGATION_QUERY_H_
