#include "queries/distinct_count_query.h"

#include <algorithm>
#include <set>

#include "common/string_utils.h"

namespace redoop {

namespace {
/// Splits a "a|b|c" partial into its elements (empty string -> none).
void AddElements(const std::string& serialized, std::set<std::string>* out) {
  size_t start = 0;
  while (start < serialized.size()) {
    size_t end = serialized.find('|', start);
    if (end == std::string::npos) end = serialized.size();
    if (end > start) out->insert(serialized.substr(start, end - start));
    start = end + 1;
  }
}

std::string SerializeElements(const std::set<std::string>& elements) {
  std::string out;
  for (const std::string& e : elements) {
    if (!out.empty()) out.push_back('|');
    out.append(e);
  }
  return out;
}
}  // namespace

void DistinctElementMapper::Map(const Record& record,
                                MapContext* context) const {
  // The element is the first comma-separated field of the value (the
  // object id in the WCC schema).
  const size_t pos = record.value.find(',');
  std::string element =
      pos == std::string::npos ? record.value : record.value.substr(0, pos);
  context->Emit(record.key, std::move(element),
                std::max<int32_t>(32, record.logical_bytes / 8));
}

void DistinctSetReducer::Reduce(const std::string& key,
                                std::span<const KeyValue> values,
                                ReduceContext* context) const {
  std::set<std::string> elements;
  for (const KeyValue& kv : values) {
    AddElements(kv.value, &elements);
  }
  std::string serialized = SerializeElements(elements);
  const int32_t bytes =
      std::max<int32_t>(32, static_cast<int32_t>(serialized.size()) + 8);
  context->Emit(key, std::move(serialized), bytes);
}

void DistinctCountFinalizer::Reduce(const std::string& key,
                                    std::span<const KeyValue> values,
                                    ReduceContext* context) const {
  std::set<std::string> elements;
  for (const KeyValue& kv : values) {
    AddElements(kv.value, &elements);
  }
  context->Emit(key, StringPrintf("%zu", elements.size()));
}

RecurringQuery MakeDistinctCountQuery(QueryId id, const std::string& name,
                                      SourceId source, Timestamp win,
                                      Timestamp slide, int32_t num_reducers) {
  RecurringQuery query;
  query.id = id;
  query.name = name;
  query.pattern = IncrementalPattern::kPerPaneMerge;
  query.config.name = name;
  query.config.mapper = std::make_shared<const DistinctElementMapper>();
  query.config.reducer = std::make_shared<const DistinctSetReducer>();
  query.finalizer = std::make_shared<const DistinctCountFinalizer>();
  query.config.num_reducers = num_reducers;
  query.pipeline_signature = StringPrintf("distinct:v1:r%d", num_reducers);
  QuerySource qs;
  qs.id = source;
  qs.name = StringPrintf("S%d", source);
  qs.window = WindowSpec{win, slide};
  query.sources.push_back(qs);
  return query;
}

}  // namespace redoop
