#ifndef REDOOP_QUERIES_DISTINCT_COUNT_QUERY_H_
#define REDOOP_QUERIES_DISTINCT_COUNT_QUERY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/recurring_query.h"

namespace redoop {

/// Mapper: emits (group key, element) — e.g. (client, object) for "how
/// many distinct objects did each client touch in the window".
class DistinctElementMapper : public Mapper {
 public:
  void Map(const Record& record, MapContext* context) const override;
};

/// Reducer: the per-pane partial is the *sorted set* of distinct elements,
/// serialized "a|b|c". Set union is a semigroup, so merging pane partials
/// equals deduplicating the whole window — the property kPerPaneMerge
/// needs. (Exact distinct counting is inherently linear-state; the partial
/// carries the set, not a counter.)
class DistinctSetReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override;
};

/// Finalizer: collapses the merged element set into its cardinality.
class DistinctCountFinalizer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override;
};

/// Builds a recurring exact distinct-count query: every `slide` seconds,
/// the number of distinct elements per key over the last `win` seconds.
RecurringQuery MakeDistinctCountQuery(QueryId id, const std::string& name,
                                      SourceId source, Timestamp win,
                                      Timestamp slide, int32_t num_reducers);

}  // namespace redoop

#endif  // REDOOP_QUERIES_DISTINCT_COUNT_QUERY_H_
