#include "queries/threshold_alert_query.h"

#include "common/logging.h"
#include "common/string_utils.h"
#include "queries/aggregation_query.h"

namespace redoop {

ThresholdAlertFinalizer::ThresholdAlertFinalizer(int64_t min_count)
    : min_count_(min_count) {
  REDOOP_CHECK(min_count >= 0);
}

void ThresholdAlertFinalizer::Reduce(const std::string& key,
                                     std::span<const KeyValue> values,
                                     ReduceContext* context) const {
  AggregateValue total;
  for (const KeyValue& kv : values) {
    total.Merge(AggregateValue::Parse(kv.value));
  }
  if (total.count <= min_count_) return;
  context->Emit(key, StringPrintf("ALERT count=%ld sum=%ld", total.count,
                                  total.sum));
}

RecurringQuery MakeThresholdAlertQuery(QueryId id, const std::string& name,
                                       SourceId source, Timestamp win,
                                       Timestamp slide, int32_t num_reducers,
                                       int64_t min_count) {
  RecurringQuery query =
      MakeAggregationQuery(id, name, source, win, slide, num_reducers);
  query.finalizer = std::make_shared<const ThresholdAlertFinalizer>(min_count);
  return query;
}

}  // namespace redoop
