#include "queries/threshold_alert_query.h"

#include "common/logging.h"
#include "common/string_utils.h"
#include "queries/aggregation_query.h"

namespace redoop {

ThresholdAlertFinalizer::ThresholdAlertFinalizer(int64_t min_count)
    : min_count_(min_count) {
  REDOOP_CHECK(min_count >= 0);
}

void ThresholdAlertFinalizer::Reduce(const std::string& key,
                                     std::span<const KeyValue> values,
                                     ReduceContext* context) const {
  AggregateValue total;
  for (const KeyValue& kv : values) {
    total.Merge(AggregateValue::Parse(kv.value));
  }
  if (total.count <= min_count_) return;
  context->Emit(key, StringPrintf("ALERT count=%ld sum=%ld", total.count,
                                  total.sum));
}

RecurringQuery MakeThresholdAlertQuery(QueryId id, const std::string& name,
                                       SourceId source, Timestamp win,
                                       Timestamp slide, int32_t num_reducers,
                                       int64_t min_count) {
  RecurringQuery query =
      MakeAggregationQuery(id, name, source, win, slide, num_reducers);
  // Keeps the aggregation pipeline_signature: the alert finalizer runs at
  // window assembly only, so cached panes are byte-identical to a plain
  // aggregation's and the two query kinds dedup against each other.
  query.finalizer = std::make_shared<const ThresholdAlertFinalizer>(min_count);
  return query;
}

}  // namespace redoop
