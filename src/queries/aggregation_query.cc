#include "queries/aggregation_query.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {

AggregateValue AggregateValue::Parse(const std::string& s) {
  AggregateValue v;
  const int matched =
      std::sscanf(s.c_str(), "%ld:%ld:%ld", &v.count, &v.sum, &v.max);
  REDOOP_CHECK(matched == 3) << "malformed aggregate value: " << s;
  return v;
}

std::string AggregateValue::Serialize() const {
  return StringPrintf("%ld:%ld:%ld", count, sum, max);
}

void AggregateValue::Merge(const AggregateValue& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

void AggregationMapper::Map(const Record& record,
                            MapContext* context) const {
  // The measure is the final comma-separated field of the value.
  const size_t pos = record.value.rfind(',');
  int64_t measure = 0;
  if (pos != std::string::npos) {
    // Tolerate non-integer tails (e.g. FFG's "-1.25") by reading the
    // leading integer part.
    std::sscanf(record.value.c_str() + pos + 1, "%ld", &measure);
    if (measure < 0) measure = -measure;
  }
  AggregateValue v;
  v.count = 1;
  v.sum = measure;
  v.max = measure;
  // The shuffled pair models a projection of the input tuple (group key +
  // carried dimensions), roughly a quarter of the raw record — the paper's
  // aggregation shuffles substantial volume (Fig. 6b) even though the
  // final aggregates are small.
  const int32_t projected_bytes =
      std::max<int32_t>(32, record.logical_bytes / 4);
  context->Emit(record.key, v.Serialize(), projected_bytes);
}

void AggregationReducer::Reduce(const std::string& key,
                                std::span<const KeyValue> values,
                                ReduceContext* context) const {
  AggregateValue total;
  for (const KeyValue& kv : values) {
    total.Merge(AggregateValue::Parse(kv.value));
  }
  context->Emit(key, total.Serialize());
}

RecurringQuery MakeAggregationQuery(QueryId id, const std::string& name,
                                    SourceId source, Timestamp win,
                                    Timestamp slide, int32_t num_reducers,
                                    bool use_combiner) {
  RecurringQuery query;
  query.id = id;
  query.name = name;
  query.pattern = IncrementalPattern::kPerPaneMerge;
  query.config.name = name;
  query.config.mapper = std::make_shared<const AggregationMapper>();
  query.config.reducer = std::make_shared<const AggregationReducer>();
  if (use_combiner) query.config.combiner = query.config.reducer;
  query.config.num_reducers = num_reducers;
  // Cached pane bytes depend only on the mapper/combiner/reducer bodies
  // and the reducer count; finalizers run at window assembly and do not
  // affect the signature (so threshold-alert panes dedup against these).
  query.pipeline_signature =
      StringPrintf("agg:v1:r%d:c%d", num_reducers, use_combiner ? 1 : 0);
  QuerySource qs;
  qs.id = source;
  qs.name = StringPrintf("S%d", source);
  qs.window = WindowSpec{win, slide};
  query.sources.push_back(qs);
  return query;
}

}  // namespace redoop
