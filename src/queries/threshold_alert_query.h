#ifndef REDOOP_QUERIES_THRESHOLD_ALERT_QUERY_H_
#define REDOOP_QUERIES_THRESHOLD_ALERT_QUERY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/recurring_query.h"

namespace redoop {

/// Finalizer for the threshold-alert query: merges the per-pane partial
/// aggregates of a key and emits an alert row only when the key's total
/// count within the window exceeds the threshold. This is a genuine
/// *finalization* function (paper §5): it differs from the reduce body, so
/// it runs only at window assembly time — per-pane partials must stay
/// unfiltered or counts split across panes would be lost.
class ThresholdAlertFinalizer : public Reducer {
 public:
  explicit ThresholdAlertFinalizer(int64_t min_count);

  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override;

 private:
  int64_t min_count_;
};

/// Builds a recurring "hot key" alert: every `slide` seconds, report every
/// key that appeared more than `min_count` times in the last `win` seconds
/// (e.g. clients hammering a site, cells with anomalous sensor density).
/// Pattern kPerPaneMerge with a custom finalizer; the plain-Hadoop
/// baseline runs the composition reduce-then-finalize in its single job.
RecurringQuery MakeThresholdAlertQuery(QueryId id, const std::string& name,
                                       SourceId source, Timestamp win,
                                       Timestamp slide, int32_t num_reducers,
                                       int64_t min_count);

}  // namespace redoop

#endif  // REDOOP_QUERIES_THRESHOLD_ALERT_QUERY_H_
