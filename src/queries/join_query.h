#ifndef REDOOP_QUERIES_JOIN_QUERY_H_
#define REDOOP_QUERIES_JOIN_QUERY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/recurring_query.h"

namespace redoop {

/// Mapper for one side of a repartition equi-join: emits
/// (key, "<tag>|<value>") so the reducer can separate the sides.
class JoinTaggingMapper : public Mapper {
 public:
  explicit JoinTaggingMapper(char tag) : tag_(tag) {}

  void Map(const Record& record, MapContext* context) const override;

 private:
  char tag_;
};

/// Reducer of a repartition equi-join: splits a key group by side tag and
/// emits one pair per (left, right) combination:
/// (key, "<left-payload>&<right-payload>"). Per-pair emission makes the
/// join decomposable over pane pairs (union over pane pairs == whole-window
/// join), which is what Redoop's kPanePairJoin pattern requires.
class EquiJoinReducer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override;
};

/// Builds the paper's recurring binary join query (Fig. 7 workload):
/// windowed equi-join of two sensor sources on the field grid cell.
RecurringQuery MakeJoinQuery(QueryId id, const std::string& name,
                             SourceId left_source, SourceId right_source,
                             Timestamp win, Timestamp slide,
                             int32_t num_reducers);

}  // namespace redoop

#endif  // REDOOP_QUERIES_JOIN_QUERY_H_
