#include "queries/join_query.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {

void JoinTaggingMapper::Map(const Record& record,
                            MapContext* context) const {
  std::string tagged;
  tagged.reserve(record.value.size() + 2);
  tagged.push_back(tag_);
  tagged.push_back('|');
  tagged.append(record.value);
  // The shuffled tuple carries (almost) the whole sensor reading — joins
  // project little away, which is why the paper's join is reduce-heavy.
  context->Emit(record.key, std::move(tagged),
                std::max<int32_t>(32, record.logical_bytes));
}

void EquiJoinReducer::Reduce(const std::string& key,
                             std::span<const KeyValue> values,
                             ReduceContext* context) const {
  std::vector<const std::string*> left;
  std::vector<const std::string*> right;
  for (const KeyValue& kv : values) {
    REDOOP_CHECK(kv.value.size() >= 2 && kv.value[1] == '|')
        << "untagged join input: " << kv.value;
    if (kv.value[0] == 'L') {
      left.push_back(&kv.value);
    } else if (kv.value[0] == 'R') {
      right.push_back(&kv.value);
    } else {
      REDOOP_LOG_FATAL << "unknown join tag in: " << kv.value;
    }
  }
  // Gather per-side logical sizes so the emitted pair's simulated size
  // reflects the concatenated tuples, not just the short value strings.
  std::vector<int32_t> left_bytes;
  std::vector<int32_t> right_bytes;
  for (const KeyValue& kv : values) {
    (kv.value[0] == 'L' ? left_bytes : right_bytes)
        .push_back(kv.logical_bytes);
  }
  for (size_t li = 0; li < left.size(); ++li) {
    for (size_t ri = 0; ri < right.size(); ++ri) {
      std::string joined;
      joined.reserve(left[li]->size() + right[ri]->size());
      joined.append(*left[li], 2, std::string::npos);
      joined.push_back('&');
      joined.append(*right[ri], 2, std::string::npos);
      // The emitted pair keeps the join columns of both tuples (about half
      // of each side's payload).
      context->Emit(key, std::move(joined),
                    (left_bytes[li] + right_bytes[ri]) / 2);
    }
  }
}

RecurringQuery MakeJoinQuery(QueryId id, const std::string& name,
                             SourceId left_source, SourceId right_source,
                             Timestamp win, Timestamp slide,
                             int32_t num_reducers) {
  RecurringQuery query;
  query.id = id;
  query.name = name;
  query.pattern = IncrementalPattern::kPanePairJoin;
  query.config.name = name;
  // config.mapper is a fallback; both sources get explicit tagging mappers.
  query.config.mapper = std::make_shared<const JoinTaggingMapper>('L');
  query.config.reducer = std::make_shared<const EquiJoinReducer>();
  query.config.num_reducers = num_reducers;
  // The side tag a source's mapper emits depends on which join side the
  // source is on, so the signature pins the (left, right) assignment.
  query.pipeline_signature = StringPrintf("join:v1:r%d:L%d:R%d", num_reducers,
                                          left_source, right_source);
  query.source_mappers[left_source] =
      std::make_shared<const JoinTaggingMapper>('L');
  query.source_mappers[right_source] =
      std::make_shared<const JoinTaggingMapper>('R');
  QuerySource left;
  left.id = left_source;
  left.name = StringPrintf("S%d", left_source);
  left.window = WindowSpec{win, slide};
  QuerySource right;
  right.id = right_source;
  right.name = StringPrintf("S%d", right_source);
  right.window = WindowSpec{win, slide};
  query.sources.push_back(left);
  query.sources.push_back(right);
  return query;
}

}  // namespace redoop
