#ifndef REDOOP_OBS_TELEMETRY_SCOPE_H_
#define REDOOP_OBS_TELEMETRY_SCOPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "obs/observability.h"
#include "obs/trace/trace_context.h"

namespace redoop {
namespace obs {

/// Attribution-carrying facade over an ObservabilityContext. A scope binds
/// a query name (and optionally node / phase dimensions) once, interning
/// the label set up front; after that every metric call lands on BOTH the
/// global series and the labeled per-query series, and every journal event
/// is stamped with `query` (and the current `window`, see below) before
/// the caller's own fields. Components hold a scope by value — it is a
/// small copyable handle — so a driver can hand the same attribution to
/// its cache controller, stores, schedulers, and job runner.
///
/// Window attribution: metric series must not carry the unbounded window
/// dimension (cardinality rule, DESIGN §13), but journal events should.
/// The driver owns a `int64_t` current-recurrence cell and passes its
/// address; scopes read it at emit time, so one driver-side store per
/// recurrence attributes every event emitted underneath it. A null cell
/// (component used standalone) simply omits the field.
///
/// An inactive scope (default-constructed or null context) ignores metric
/// calls; Emit/EmitAt on an inactive scope is a programming error
/// (checked), matching the `if (obs_ != nullptr)` guards the scope
/// replaces.
class TelemetryScope {
 public:
  TelemetryScope() = default;
  /// Unattributed scope: global series only, no event stamping. The
  /// drop-in equivalent of passing a bare ObservabilityContext*.
  explicit TelemetryScope(ObservabilityContext* obs) : obs_(obs) {}
  /// Query-attributed scope. `window_cell` and `trace_cell`, when
  /// non-null, must outlive the scope and every copy of it (driver-owned
  /// members). `trace_cell` points at the driver's current TraceContext:
  /// while it is active and sampled, every event emitted through this
  /// scope (and all copies) is stamped with the trace id and enclosing
  /// span id, which is how trace propagation reaches the schedulers,
  /// runner, and cache layers without any of them knowing about tracing.
  TelemetryScope(ObservabilityContext* obs, std::string query,
                 const int64_t* window_cell = nullptr,
                 const trace::TraceContext* trace_cell = nullptr);

  /// Derived scope with the node / phase dimension added (re-interns the
  /// extended label set; query and window plumbing are inherited).
  TelemetryScope WithNode(int32_t node) const;
  TelemetryScope WithPhase(std::string phase) const;

  bool active() const { return obs_ != nullptr; }
  ObservabilityContext* obs() const { return obs_; }
  const std::string& query() const { return labels_.query; }
  /// Current recurrence from the driver's window cell, -1 when unset.
  int64_t window() const {
    return window_cell_ != nullptr ? *window_cell_ : -1;
  }
  /// The driver's trace-context cell (null for untraced scopes). Callers
  /// that create child spans (JobRunner task envelopes) read it here.
  const trace::TraceContext* trace() const { return trace_cell_; }

  double Now() const { return obs_ != nullptr ? obs_->Now() : 0.0; }

  /// Journal emission with attribution stamped ahead of caller fields.
  /// Requires an active scope. Const: a scope is an immutable handle;
  /// writes go to the shared context it points at.
  Event& Emit(std::string type) const;
  Event& EmitAt(double time, std::string type) const;

  /// Metric writes: global series + labeled series (when attributed).
  /// No-ops on an inactive scope.
  void Increment(std::string_view name, int64_t delta = 1) const;
  void SetGauge(std::string_view name, double value) const;
  void AddGauge(std::string_view name, double delta) const;
  void Record(std::string_view name, double value) const;

 private:
  TelemetryScope(ObservabilityContext* obs, LabelSet labels,
                 const int64_t* window_cell,
                 const trace::TraceContext* trace_cell);

  ObservabilityContext* obs_ = nullptr;
  LabelSet labels_;
  LabelId label_id_ = kNoLabels;
  const int64_t* window_cell_ = nullptr;
  const trace::TraceContext* trace_cell_ = nullptr;
};

}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_TELEMETRY_SCOPE_H_
