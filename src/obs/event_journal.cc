#include "obs/event_journal.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_utils.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Span-boundary keys for atomic flight-recorder eviction. A begin event
// and its end event map to the same key; "" means the event is not a span
// boundary. Task ids are unique per run; job and window keys carry the
// query label so concurrent queries cannot alias.
std::string SpanBeginKey(const Event& e) {
  const std::string& t = e.type();
  if (t == event::kTaskStart) {
    return StringPrintf("task/%lld",
                        static_cast<long long>(e.IntOr("task", -1)));
  }
  if (t == event::kJobStart) {
    return "job/" + e.StrOr("query", "") + "/" + e.StrOr("job", "");
  }
  if (t == event::kWindowOpen) {
    return StringPrintf("window/%s/%lld", e.StrOr("query", "").c_str(),
                        static_cast<long long>(e.IntOr("recurrence", -1)));
  }
  return std::string();
}

std::string SpanEndKey(const Event& e) {
  const std::string& t = e.type();
  if (t == event::kTaskFinish || t == event::kTaskFail) {
    return StringPrintf("task/%lld",
                        static_cast<long long>(e.IntOr("task", -1)));
  }
  if (t == event::kJobFinish) {
    return "job/" + e.StrOr("query", "") + "/" + e.StrOr("job", "");
  }
  if (t == event::kWindowComplete) {
    return StringPrintf("window/%s/%lld", e.StrOr("query", "").c_str(),
                        static_cast<long long>(e.IntOr("recurrence", -1)));
  }
  return std::string();
}

}  // namespace

Event& Event::With(std::string_view key, std::string_view value) {
  EventField f;
  f.key = std::string(key);
  f.kind = EventField::Kind::kString;
  f.str = std::string(value);
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::With(std::string_view key, double value) {
  EventField f;
  f.key = std::string(key);
  f.kind = EventField::Kind::kDouble;
  f.f64 = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::WithInt(std::string_view key, int64_t value) {
  EventField f;
  f.key = std::string(key);
  f.kind = EventField::Kind::kInt;
  f.i64 = value;
  fields_.push_back(std::move(f));
  return *this;
}

const EventField* Event::Find(std::string_view key) const {
  for (const auto& f : fields_) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

int64_t Event::IntOr(std::string_view key, int64_t fallback) const {
  const EventField* f = Find(key);
  if (f == nullptr) return fallback;
  if (f->kind == EventField::Kind::kInt) return f->i64;
  if (f->kind == EventField::Kind::kDouble) {
    return static_cast<int64_t>(f->f64);
  }
  return fallback;
}

double Event::DoubleOr(std::string_view key, double fallback) const {
  const EventField* f = Find(key);
  if (f == nullptr) return fallback;
  if (f->kind == EventField::Kind::kDouble) return f->f64;
  if (f->kind == EventField::Kind::kInt) return static_cast<double>(f->i64);
  return fallback;
}

std::string Event::StrOr(std::string_view key,
                         std::string_view fallback) const {
  const EventField* f = Find(key);
  if (f == nullptr || f->kind != EventField::Kind::kString) {
    return std::string(fallback);
  }
  return f->str;
}

std::string Event::ToJson() const {
  std::string out = StringPrintf("{\"t\":%.6f,\"type\":\"%s\"", time_,
                                 JsonEscape(type_).c_str());
  for (const auto& f : fields_) {
    out += StringPrintf(",\"%s\":", JsonEscape(f.key).c_str());
    switch (f.kind) {
      case EventField::Kind::kString:
        out += StringPrintf("\"%s\"", JsonEscape(f.str).c_str());
        break;
      case EventField::Kind::kInt:
        out += StringPrintf("%lld", static_cast<long long>(f.i64));
        break;
      case EventField::Kind::kDouble: {
        std::string repr = FormatDouble(f.f64);
        // Keep doubles round-trippable as doubles: a bare integer repr
        // would re-parse as an int field.
        if (repr.find('.') == std::string::npos &&
            repr.find('e') == std::string::npos &&
            repr.find("inf") == std::string::npos &&
            repr.find("nan") == std::string::npos) {
          repr += ".0";
        }
        out += repr;
        break;
      }
    }
  }
  out += "}";
  return out;
}

void EventJournal::SetCommonField(std::string key, std::string value) {
  for (auto& [k, v] : common_fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  common_fields_.emplace_back(std::move(key), std::move(value));
}

std::string EventJournal::CommonFieldOr(std::string_view key,
                                        std::string_view fallback) const {
  for (const auto& [k, v] : common_fields_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

Event& EventJournal::Append(double time, std::string type) {
  // Single-writer assertion: the first Append (after construction, Clear,
  // or Parse) pins the owning thread; cross-thread appends are a contract
  // violation, not a supported mode — the journal is a deterministic
  // ordered stream, and two writers would make the order racy.
  const std::thread::id self = std::this_thread::get_id();
  if (writer_ == std::thread::id()) {
    writer_ = self;
  } else {
    REDOOP_CHECK(writer_ == self)
        << "EventJournal::Append from a second thread violates the "
           "single-writer contract";
  }
  SealAndEvict();
  events_.emplace_back(time, std::move(type));
  Event& e = events_.back();
  for (const auto& [key, value] : common_fields_) {
    e.With(key, value);
  }
  return e;
}

void EventJournal::SealAndEvict() {
  // The newest event's fluent .With chain completes before the next
  // Append, so its serialized size is only knowable (and charged) here.
  if (events_.size() > sealed_sizes_.size()) {
    const int64_t bytes =
        static_cast<int64_t>(events_.back().ToJson().size()) + 1;  // +'\n'
    if (retention_budget_ > 0) {
      // A span end whose begin was already evicted is dropped at the seal
      // point: retaining it would fabricate an end-without-begin span.
      const std::string end_key = SpanEndKey(events_.back());
      if (!end_key.empty() && pending_orphan_ends_.erase(end_key) > 0) {
        dropped_bytes_ += bytes;
        ++dropped_events_;
        events_.pop_back();
        return;
      }
      // A fresh begin supersedes any stale orphan entry for its key (the
      // key now names a new, fully retained span whose end must survive).
      const std::string begin_key = SpanBeginKey(events_.back());
      if (!begin_key.empty()) pending_orphan_ends_.erase(begin_key);
    }
    sealed_sizes_.push_back(bytes);
    sealed_bytes_ += bytes;
  }
  if (retention_budget_ <= 0) return;
  while (sealed_bytes_ > retention_budget_ && !sealed_sizes_.empty()) {
    const std::string begin_key = SpanBeginKey(events_.front());
    dropped_bytes_ += sealed_sizes_.front();
    sealed_bytes_ -= sealed_sizes_.front();
    sealed_sizes_.pop_front();
    events_.pop_front();
    ++dropped_events_;
    if (begin_key.empty()) continue;
    // Evict the whole span: drop the matching end event with its begin.
    // Spans with one key never interleave (task ids are unique; jobs and
    // windows of one query are serial), so the first matching end in the
    // sealed region is the right one.
    bool found = false;
    for (size_t i = 0; i < sealed_sizes_.size(); ++i) {
      if (SpanEndKey(events_[i]) != begin_key) continue;
      dropped_bytes_ += sealed_sizes_[i];
      sealed_bytes_ -= sealed_sizes_[i];
      sealed_sizes_.erase(sealed_sizes_.begin() +
                          static_cast<ptrdiff_t>(i));
      events_.erase(events_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped_events_;
      found = true;
      break;
    }
    // Not journaled (or not yet sealed): catch it when it arrives.
    if (!found) pending_orphan_ends_.insert(begin_key);
  }
}

size_t EventJournal::CountType(std::string_view type) const {
  size_t n = 0;
  for (const auto& e : events_) {
    if (e.type() == type) ++n;
  }
  return n;
}

std::string EventJournal::ToJsonl() const {
  std::string out;
  if (dropped_events_ > 0) {
    // Lead a truncated journal with its marker so any consumer sees the
    // loss before the first surviving event. The timestamp is the oldest
    // retained event's (0 if nothing survived), which is recomputed
    // identically on reserialize, keeping parse -> serialize an identity.
    Event marker(events_.empty() ? 0.0 : events_.front().time(),
                 event::kJournalTruncated);
    marker.With("dropped_events", dropped_events_)
        .With("dropped_bytes", dropped_bytes_);
    out += marker.ToJson();
    out += '\n';
  }
  for (const auto& e : events_) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

Status EventJournal::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  const std::string body = ToJsonl();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::OK();
}

namespace {

// Minimal scanner for the journal's own output format: one flat JSON
// object per line, keys and string values with the escapes JsonEscape
// emits, numbers as printf renders them.
class LineParser {
 public:
  LineParser(std::string_view line, size_t line_number)
      : s_(line), line_number_(line_number) {}

  Status Run(EventJournal* out) {
    if (!Consume('{')) return Error("expected '{'");
    double time = 0.0;
    std::string key;
    if (!ParseString(&key) || key != "t" || !Consume(':')) {
      return Error("expected \"t\" field first");
    }
    std::string number;
    bool is_double = false;
    if (!ParseNumber(&number, &is_double)) return Error("bad time");
    time = std::strtod(number.c_str(), nullptr);
    if (!Consume(',')) return Error("expected ','");
    if (!ParseString(&key) || key != "type" || !Consume(':')) {
      return Error("expected \"type\" field second");
    }
    std::string type;
    if (!ParseString(&type)) return Error("bad type");
    Event& e = out->Append(time, std::move(type));
    while (Consume(',')) {
      if (!ParseString(&key) || !Consume(':')) return Error("bad field key");
      if (Peek() == '"') {
        std::string value;
        if (!ParseString(&value)) return Error("bad string value");
        e.With(key, value);
      } else {
        if (!ParseNumber(&number, &is_double)) return Error("bad number");
        if (is_double) {
          e.With(key, std::strtod(number.c_str(), nullptr));
        } else {
          e.With(key, static_cast<int64_t>(
                          std::strtoll(number.c_str(), nullptr, 10)));
        }
      }
    }
    if (!Consume('}')) return Error("expected '}'");
    if (pos_ != s_.size()) return Error("trailing garbage after '}'");
    return Status::OK();
  }

 private:
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            out->push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseNumber(std::string* out, bool* is_double) {
    out->clear();
    *is_double = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a') {
        if (c == '.' || c == 'e' || c == 'E' || c == 'i' || c == 'n') {
          *is_double = true;
        }
        out->push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return !out->empty();
  }

  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StringPrintf("journal parse error at line %zu, offset %zu: %s",
                     line_number_, pos_, what));
  }

  std::string_view s_;
  size_t line_number_ = 0;
  size_t pos_ = 0;
};

}  // namespace

Status EventJournal::Parse(std::string_view jsonl, EventJournal* out) {
  // Accumulate into a fresh journal and swap in on success: `out`'s
  // registered common fields must not restamp parsed lines (they already
  // carry theirs inline — the seed appended through `out` directly, which
  // silently duplicated fields when loading into a configured journal),
  // and a failed parse must not leave `out` half-loaded.
  EventJournal parsed;
  size_t start = 0;
  size_t line_number = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    std::string_view line = jsonl.substr(start, end - start);
    ++line_number;
    if (!line.empty()) {
      Status s = LineParser(line, line_number).Run(&parsed);
      if (!s.ok()) {
        *out = EventJournal();
        return s;
      }
      // A truncation marker is journal metadata, not an event: fold it
      // back into the counters so a reserialize regenerates it.
      if (parsed.events_.back().type() == event::kJournalTruncated) {
        const Event& marker = parsed.events_.back();
        parsed.dropped_events_ += marker.IntOr("dropped_events", 0);
        parsed.dropped_bytes_ += marker.IntOr("dropped_bytes", 0);
        parsed.events_.pop_back();
      }
    }
    start = end + 1;
  }
  parsed.writer_ = std::thread::id();  // Unpin: parsing is not authorship.
  *out = std::move(parsed);
  return Status::OK();
}

Status EventJournal::LoadFile(const std::string& path, EventJournal* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for reading");
  }
  std::string body;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    body.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Unavailable("read error on " + path);
  }
  return Parse(body, out);
}

}  // namespace obs
}  // namespace redoop
