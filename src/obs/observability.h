#ifndef REDOOP_OBS_OBSERVABILITY_H_
#define REDOOP_OBS_OBSERVABILITY_H_

#include <functional>
#include <string>
#include <utility>

#include "obs/event_journal.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {

/// Bundles the metric registry and event journal for one simulated run and
/// carries the clock used to timestamp events. Drivers point the time
/// source at their Simulator; components without a clock (profiler, cache
/// controller, scheduler) call Now() through the context.
///
/// Instance-based by design: every RunSystem invocation in the CLI (or
/// every driver in a test) gets its own context, so concurrent simulated
/// systems never interleave events and runs stay bit-for-bit reproducible.
/// All instrumentation hooks accept a nullable ObservabilityContext*; a
/// null context disables emission at negligible cost.
class ObservabilityContext {
 public:
  ObservabilityContext() = default;
  ObservabilityContext(const ObservabilityContext&) = delete;
  ObservabilityContext& operator=(const ObservabilityContext&) = delete;

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }

  /// Installs the clock used by Emit(). Typically bound to a Simulator:
  ///   ctx.SetTimeSource([&sim] { return sim.Now(); });
  void SetTimeSource(std::function<double()> now) { now_ = std::move(now); }
  double Now() const { return now_ ? now_() : 0.0; }

  /// Appends a journal event stamped with the context clock.
  Event& Emit(std::string type) { return journal_.Append(Now(), std::move(type)); }
  /// Appends a journal event with an explicit timestamp (for emitters that
  /// know a better time than "now", e.g. task completion callbacks).
  Event& EmitAt(double time, std::string type) {
    return journal_.Append(time, std::move(type));
  }

  MetricsSnapshot Snapshot() const { return metrics_.Snapshot(); }

 private:
  MetricRegistry metrics_;
  EventJournal journal_;
  std::function<double()> now_;
};

/// Metric names. One flat dot-separated namespace; every name is listed
/// here so DESIGN.md's metric table has a single source of truth.
namespace metric {

// Pane-level cache reuse (reduce-input / reduce-output caches). A pane
// counts as a hit only when it is served from caches built by a *prior*
// recurrence; panes computed fresh in the current recurrence are misses.
inline constexpr const char* kCachePaneHits = "cache.pane.hits";
inline constexpr const char* kCachePaneMisses = "cache.pane.misses";
inline constexpr const char* kCachePaneHitBytes = "cache.pane.hit.bytes";
// Host bytes of the at-rest (columnar-compressed) payloads backing a pane
// hit — the traffic a hit really moves, vs. the logical bytes above.
inline constexpr const char* kCachePaneHitCompressedBytes =
    "cache.pane.hit.compressed.bytes";
inline constexpr const char* kCachePaneMissBytes = "cache.pane.miss.bytes";
// Pane-pair reuse in the join path (cache status matrix).
inline constexpr const char* kCachePairHits = "cache.pair.hits";
inline constexpr const char* kCachePairMisses = "cache.pair.misses";

// Cache population / lifecycle.
inline constexpr const char* kCacheAdds = "cache.adds";
inline constexpr const char* kCacheAddBytes = "cache.add.bytes";
inline constexpr const char* kCacheEvictions = "cache.evictions";
inline constexpr const char* kCacheInvalidations = "cache.invalidations";
inline constexpr const char* kCacheRebuilds = "cache.rebuilds";
inline constexpr const char* kCachePurgedBytes = "cache.purged.bytes";
// Budget-driven CacheStore evictions (distinct from lifespan-driven
// cache.evictions above).
inline constexpr const char* kCacheEvictedEntries = "cache.evicted.entries";
inline constexpr const char* kCacheEvictedBytes = "cache.evicted.bytes";
inline constexpr const char* kCacheStoreBytes = "cache.store.bytes";    // gauge
inline constexpr const char* kCacheStoreCompressedBytes =
    "cache.store.compressed.bytes";  // gauge
inline constexpr const char* kCacheStoreEntries = "cache.store.entries";  // gauge
inline constexpr const char* kCacheStorePinnedBytes =
    "cache.store.pinned.bytes";  // gauge

// Cache reads at reduce time (local = side input on the reducer's node).
inline constexpr const char* kCacheReadLocalBytes = "cache.read.local.bytes";
inline constexpr const char* kCacheReadRemoteBytes = "cache.read.remote.bytes";

// Scheduler decisions.
inline constexpr const char* kSchedMapLocal = "sched.map.data_local";
inline constexpr const char* kSchedMapRemote = "sched.map.remote";
inline constexpr const char* kSchedReduceAssignments = "sched.reduce.assignments";
inline constexpr const char* kSchedCacheAffinityTaken =
    "sched.reduce.cache_affinity.taken";
inline constexpr const char* kSchedCacheAffinityMissed =
    "sched.reduce.cache_affinity.missed";
inline constexpr const char* kSchedReduceIoCost = "sched.reduce.io_cost_s";  // histogram

// Profiler (Holt double exponential smoothing) forecast quality.
inline constexpr const char* kProfilerObservations = "profiler.observations";
inline constexpr const char* kProfilerAbsErr = "profiler.forecast.abs_error_s";  // histogram
inline constexpr const char* kProfilerRelErr = "profiler.forecast.rel_error";    // histogram

// DFS traffic.
inline constexpr const char* kDfsReadLocalBytes = "dfs.read.local.bytes";
inline constexpr const char* kDfsReadRemoteBytes = "dfs.read.remote.bytes";
inline constexpr const char* kDfsFilesCreated = "dfs.files.created";
inline constexpr const char* kDfsFilesDeleted = "dfs.files.deleted";
inline constexpr const char* kDfsBytesWritten = "dfs.bytes.written";
inline constexpr const char* kDfsReplicasRestored = "dfs.replicas.restored";

// Tasks and jobs.
inline constexpr const char* kTasksMap = "tasks.map";
inline constexpr const char* kTasksReduce = "tasks.reduce";
inline constexpr const char* kTaskFailures = "tasks.failures";
inline constexpr const char* kTaskSpeculations = "tasks.speculations";
inline constexpr const char* kJobs = "jobs";
inline constexpr const char* kTaskMapDuration = "task.map.duration_s";       // histogram
inline constexpr const char* kTaskReduceDuration = "task.reduce.duration_s"; // histogram

// Recurring windows.
inline constexpr const char* kWindowsCompleted = "windows.completed";
inline constexpr const char* kWindowResponseTime = "window.response_time_s";  // histogram

// Fleet serving (multi-tenant coordinator, DESIGN §17).
inline constexpr const char* kFleetAdmitted = "fleet.admitted";
inline constexpr const char* kFleetAdmissionWait =
    "fleet.admission.wait_s";  // histogram
inline constexpr const char* kFleetQueueDepth = "fleet.queue.depth";  // gauge
inline constexpr const char* kFleetScanRequests = "fleet.scan.requests";
inline constexpr const char* kFleetScanHits = "fleet.scan.hits";
inline constexpr const char* kFleetScanMisses = "fleet.scan.misses";
inline constexpr const char* kFleetScanBytesServed = "fleet.scan.bytes.served";
inline constexpr const char* kFleetScanBytesScanned =
    "fleet.scan.bytes.scanned";
inline constexpr const char* kFleetDedupPublished = "fleet.dedup.published";
inline constexpr const char* kFleetDedupAdoptions = "fleet.dedup.adoptions";
inline constexpr const char* kFleetDedupBytes = "fleet.dedup.bytes";
inline constexpr const char* kFleetDedupEvictFanout =
    "fleet.dedup.evict.fanout";

}  // namespace metric

}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_OBSERVABILITY_H_
