#ifndef REDOOP_OBS_EVENT_JOURNAL_H_
#define REDOOP_OBS_EVENT_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace redoop {
namespace obs {

/// One typed key/value field of an event. Field order is insertion order,
/// which keeps serialized journals deterministic.
struct EventField {
  enum class Kind { kString, kInt, kDouble };

  std::string key;
  Kind kind = Kind::kString;
  std::string str;
  int64_t i64 = 0;
  double f64 = 0.0;
};

/// A structured, sim-timestamped decision record. Built fluently:
///
///   journal.Append(now, event::kCacheAdd)
///       .With("name", sig.name).With("node", sig.node)
///       .With("bytes", sig.bytes);
///
/// Serialized as one JSON object per line:
///   {"t":123.456000,"type":"cache.add","name":"...","node":3,...}
class Event {
 public:
  Event(double time, std::string type)
      : time_(time), type_(std::move(type)) {}

  Event& With(std::string_view key, std::string_view value);
  Event& With(std::string_view key, const char* value) {
    return With(key, std::string_view(value));
  }
  Event& With(std::string_view key, const std::string& value) {
    return With(key, std::string_view(value));
  }
  Event& With(std::string_view key, double value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Event& With(std::string_view key, T value) {
    return WithInt(key, static_cast<int64_t>(value));
  }

  double time() const { return time_; }
  const std::string& type() const { return type_; }
  const std::vector<EventField>& fields() const { return fields_; }

  /// Field lookup helpers for consumers (trace reconstruction, tests).
  const EventField* Find(std::string_view key) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  double DoubleOr(std::string_view key, double fallback) const;
  std::string StrOr(std::string_view key, std::string_view fallback) const;

  /// One JSON object, no trailing newline. Doubles are printed with %.6f
  /// (time) / %.6g (fields); both are stable under parse → re-serialize.
  std::string ToJson() const;

 private:
  Event& WithInt(std::string_view key, int64_t value);

  double time_ = 0.0;
  std::string type_;
  std::vector<EventField> fields_;
};

/// Append-only journal of Events, exported as JSONL. Determinism comes
/// from append order plus fixed-format serialization.
///
/// Flight-recorder mode: SetRetentionBudget(bytes) bounds the journal to
/// a fixed serialized-byte budget. When a new Append would exceed it, the
/// oldest events are evicted (ring-buffer semantics) and counted in
/// dropped_events()/dropped_bytes(). A truncated journal serializes with
/// a leading "journal.truncated" marker line carrying those counters;
/// Parse recognizes the marker and restores the counters instead of
/// storing it as an event, so parse -> serialize stays the identity for
/// truncated journals too. Eviction is deterministic: it depends only on
/// the byte sizes and fields of the serialized events, which are
/// themselves deterministic.
///
/// Spans evict atomically: when eviction drops a span-begin event
/// (window.open, job.start, task.start), the matching end event
/// (window.complete, job.finish, task.finish/task.fail) is dropped with
/// it — immediately if already journaled, or the moment it is sealed if
/// it arrives later — and charged to the same truncation counters. A
/// retained journal therefore never contains an end without its begin,
/// so span reconstruction sees whole spans or nothing.
///
/// Single-writer contract (asserted): every Append must come from the one
/// thread that owns the journal — the simulator thread. The first Append
/// after construction, Clear(), or Parse pins the writing thread; an
/// Append from any other thread REDOOP_CHECK-fails. The parallel task
/// engine preserves this by emitting only from event-loop join points;
/// worker threads never touch the journal, so the drain stays a single
/// deterministic stream.
class EventJournal {
 public:
  EventJournal() = default;
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;
  EventJournal(EventJournal&&) = default;
  EventJournal& operator=(EventJournal&&) = default;

  /// Common fields are prepended (in registration order) to every event
  /// appended afterwards — e.g. system=redoop for multi-system CLI runs.
  void SetCommonField(std::string key, std::string value);

  /// The registered common-field value for `key`, or `fallback` when no
  /// such registration exists (used by emitters that need to derive the
  /// trace id from the same "system" label the journal stamps).
  std::string CommonFieldOr(std::string_view key,
                            std::string_view fallback) const;

  /// Appends an event and returns it for fluent .With(...) chaining. The
  /// reference is valid until the next Append. With a retention budget
  /// set, the previous event's size is sealed here and the oldest events
  /// are evicted while the sealed bytes exceed the budget (the newest
  /// event is always retained).
  Event& Append(double time, std::string type);

  /// Caps retained serialized bytes; <= 0 (the default) means unbounded.
  /// May be set or changed at any point before or between Appends (same
  /// single-writer thread); shrinking the budget evicts on the next
  /// Append.
  void SetRetentionBudget(int64_t max_bytes) { retention_budget_ = max_bytes; }
  int64_t retention_budget() const { return retention_budget_; }
  /// Events / serialized bytes evicted by the retention budget so far
  /// (or restored from a parsed "journal.truncated" marker).
  int64_t dropped_events() const { return dropped_events_; }
  int64_t dropped_bytes() const { return dropped_bytes_; }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::deque<Event>& events() const { return events_; }
  size_t CountType(std::string_view type) const;

  std::string ToJsonl() const;
  Status WriteFile(const std::string& path) const;

  /// Parses journal text in the exact format ToJsonl emits (used by tests
  /// and by TraceWriter when re-loading a journal from disk). Not a general
  /// JSON parser: one object per line, flat string/number fields. A
  /// malformed or truncated line fails with its 1-based line number in the
  /// error message; nothing is silently skipped (blank lines excepted).
  /// On success `out` is replaced wholesale — events, common-field
  /// registrations, and writer pinning; on failure it is cleared. Parsed
  /// lines are never restamped with `out`'s common fields (they carry
  /// theirs inline), so parse -> serialize is the identity through any
  /// journal. Must not target a journal another thread is appending to.
  static Status Parse(std::string_view jsonl, EventJournal* out);

  /// Reads `path` and parses it with Parse. Parse errors carry the line
  /// number; I/O errors carry the path. Same aliasing/threading contract
  /// as Parse: never load into a journal a live ObservabilityContext is
  /// still writing.
  static Status LoadFile(const std::string& path, EventJournal* out);

  /// Drops all events, resets the truncation counters, and unpins the
  /// writer thread (the next Append may come from a different thread).
  /// Common fields and the retention budget survive.
  void Clear() {
    events_.clear();
    sealed_sizes_.clear();
    sealed_bytes_ = 0;
    dropped_events_ = 0;
    dropped_bytes_ = 0;
    pending_orphan_ends_.clear();
    writer_ = std::thread::id();
  }

 private:
  /// Seals the size of the most recent event (its fluent .With chain is
  /// complete once the next Append or a serialization happens) and evicts
  /// from the front while over budget.
  void SealAndEvict();

  std::deque<Event> events_;
  std::vector<std::pair<std::string, std::string>> common_fields_;
  /// Serialized size of each sealed event; parallel prefix of events_
  /// (the newest event is unsealed until the next Append).
  std::deque<int64_t> sealed_sizes_;
  int64_t sealed_bytes_ = 0;
  int64_t retention_budget_ = 0;  ///< <= 0: unbounded.
  int64_t dropped_events_ = 0;
  int64_t dropped_bytes_ = 0;
  /// Span keys whose begin event was evicted before the matching end was
  /// journaled; the end is dropped at seal time when it arrives. A later
  /// begin with the same key clears the entry (the key now names a new,
  /// fully retained span).
  std::set<std::string> pending_orphan_ends_;
  /// Writer pin for the single-writer assertion; default id = unpinned.
  std::thread::id writer_;
};

/// Event type names. Keeping them in one place documents the schema and
/// guards against drift between emitters, tests, and trace reconstruction.
namespace event {

// Cache decisions (window-aware cache controller + local stores).
inline constexpr const char* kCacheAdd = "cache.add";
inline constexpr const char* kCacheEvict = "cache.evict";
inline constexpr const char* kCacheInvalidate = "cache.invalidate";
inline constexpr const char* kCacheRebuild = "cache.rebuild";
inline constexpr const char* kCachePurge = "cache.purge";
inline constexpr const char* kCachePaneHit = "cache.pane.hit";
inline constexpr const char* kCachePaneMiss = "cache.pane.miss";
// A budget eviction removed a resident pane payload from the CacheStore
// (the cell flips back to recompute; lifespan expiry stays cache.evict).
inline constexpr const char* kCachePaneEvict = "cache.pane.evict";
inline constexpr const char* kCachePairHit = "cache.pair.hit";
inline constexpr const char* kCachePairMiss = "cache.pair.miss";

// Pane readiness transitions (ready bit 0 -> 1 -> 2, paper §4.2).
inline constexpr const char* kPaneReady = "pane.ready";
// Cache-status-matrix transitions (join pair bookkeeping, paper §4.3).
inline constexpr const char* kMatrixDone = "matrix.done";
inline constexpr const char* kMatrixShift = "matrix.shift";

// Scheduler decisions.
inline constexpr const char* kSchedAssign = "sched.assign";

// Profiler prediction vs. actual (Holt forecast, paper §4.4).
inline constexpr const char* kProfilerObserve = "profiler.observe";

// DFS activity.
inline constexpr const char* kDfsRead = "dfs.read";
inline constexpr const char* kDfsFileCreate = "dfs.file.create";
inline constexpr const char* kDfsFileDelete = "dfs.file.delete";
inline constexpr const char* kDfsNodeFailed = "dfs.node.failed";

// Task attempt lifecycle. task.start / task.finish form a span pair keyed
// by the "task" field; the winning attempt's finish carries the per-phase
// timing breakdown and the slot-wait ("wait") duration.
inline constexpr const char* kTaskStart = "task.start";
inline constexpr const char* kTaskFinish = "task.finish";
inline constexpr const char* kTaskFail = "task.fail";
inline constexpr const char* kTaskSpeculate = "task.speculate";
inline constexpr const char* kJobStart = "job.start";
inline constexpr const char* kJobFinish = "job.finish";

// Recurring-window lifecycle.
inline constexpr const char* kWindowOpen = "window.open";
inline constexpr const char* kWindowTrigger = "window.trigger";
inline constexpr const char* kWindowComplete = "window.complete";

// Fleet serving (multi-tenant coordinator, DESIGN §17): admission of a
// recurrence by the fair-share queue, a shared-scan read with its hit /
// miss split, adoption of a deduplicated pane image built by another
// query, and the rollback fan-out when a shared image is evicted.
inline constexpr const char* kFleetAdmit = "fleet.admit";
inline constexpr const char* kFleetScan = "fleet.scan";
inline constexpr const char* kFleetAdopt = "fleet.pane.adopt";
inline constexpr const char* kFleetEvictFanout = "fleet.pane.evict_fanout";

// Head-sampling promotion: an unsampled window that violated its SLO
// deadline is retroactively sampled (always-sample-on-SLO-violation);
// carries query/recurrence/reason.
inline constexpr const char* kTraceSample = "trace.sample";

// Synthetic marker line a truncated flight-recorder journal leads with;
// carries dropped_events / dropped_bytes. Never stored as an event:
// ToJsonl synthesizes it, Parse folds it back into the journal counters.
inline constexpr const char* kJournalTruncated = "journal.truncated";

}  // namespace event

}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_EVENT_JOURNAL_H_
