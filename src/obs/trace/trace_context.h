#ifndef REDOOP_OBS_TRACE_TRACE_CONTEXT_H_
#define REDOOP_OBS_TRACE_TRACE_CONTEXT_H_

// Deterministic causal-trace identifiers and the propagation context.
//
// Every span ID is derived by hashing a canonical string built from
// content the journal already records deterministically (query name,
// recurrence number, task id, cache name, ...). Because the journal is
// byte-identical at any --threads setting, so is every ID derived from
// it — span IDs never depend on allocation order, wall clocks, or thread
// interleaving. The same derivation runs on both sides: emitters stamp
// IDs into events, and the offline span builder recomputes them from the
// same fields, so a stamped ID is a checkable claim, not a new fact.

#include <cstdint>
#include <string>
#include <string_view>

namespace redoop {
namespace obs {
namespace trace {

/// 64-bit span/trace identifier. 0 is reserved for "none"/root.
using SpanId = uint64_t;

/// FNV-1a over the bytes of `s`. The canonical-string hash behind every
/// derived ID.
uint64_t Fnv1a64(std::string_view s);

/// Hashes a canonical string into a non-zero id (0 maps to the FNV offset
/// basis so "no id" stays unambiguous).
SpanId DeriveId(std::string_view canonical);

/// 16 lowercase hex chars, the wire/JSON rendering of an id.
std::string IdHex(SpanId id);

// --- The ID scheme (DESIGN §14) -------------------------------------------
// trace  = H("trace:<system>/<query>")
// window = H("window:<trace16>:<recurrence>")
// phase  = H("phase:<window16>:<job>#<occurrence>:<map|reduce>")
// task   = H("task:<trace16>:<task id>:<attempt>")
// cacheop= H("cacheop:<trace16>:<event type>:<key>#<occurrence>")
// pane   = H("pane:<trace16>:S<source>:P<pane>:W<built window>")
// failure= H("failure:<trace16>:N<node>#<occurrence>")
//
// Occurrence counters disambiguate repeats (a job name rerun within a
// window, a cache re-added after a rebuild, a node failing twice); they
// count occurrences in journal order, which is itself deterministic.

SpanId TraceIdFor(std::string_view system, std::string_view query);
SpanId WindowSpanId(SpanId trace, int64_t recurrence);
SpanId PhaseSpanId(SpanId window_span, std::string_view job,
                   int64_t occurrence, std::string_view kind);
SpanId TaskSpanId(SpanId trace, int64_t task, int64_t attempt);
SpanId CacheOpSpanId(SpanId trace, std::string_view event_type,
                     std::string_view key, int64_t occurrence);
SpanId PaneSpanId(SpanId trace, int64_t source, int64_t pane,
                  int64_t built_window);
SpanId FailureSpanId(SpanId trace, int64_t node, int64_t occurrence);

/// The serializable propagation context threaded through TelemetryScope
/// into the drivers, schedulers, job runner, and cache layers. Designed to
/// cross a process boundary: Serialize() renders the full context as one
/// flat token a remote worker can Parse() back, so the future
/// multi-process backend inherits propagation by shipping the string in
/// its task envelope.
struct TraceContext {
  SpanId trace_id = 0;
  /// The current enclosing span (the open window while a recurrence runs).
  SpanId span_id = 0;
  int64_t window = -1;
  /// Head-sampling verdict for this window. Unsampled windows skip the
  /// per-event trace stamping (the measurable overhead); offline span
  /// reconstruction still works from the core events.
  bool sampled = true;

  bool active() const { return trace_id != 0; }

  /// "redoop-trace/<trace16>/<span16>/<window>/<s|u>".
  std::string Serialize() const;
  /// Parses a Serialize() token. Returns false (and leaves `out`
  /// untouched) on any malformed input.
  static bool Parse(std::string_view token, TraceContext* out);

  /// Child context for a sub-span (same trace/window/sampling, new parent).
  TraceContext Child(SpanId child_span) const {
    TraceContext c = *this;
    c.span_id = child_span;
    return c;
  }
};

}  // namespace trace
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_TRACE_TRACE_CONTEXT_H_
