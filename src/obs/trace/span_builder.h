#ifndef REDOOP_OBS_TRACE_SPAN_BUILDER_H_
#define REDOOP_OBS_TRACE_SPAN_BUILDER_H_

// Offline span reconstruction: turns an EventJournal into a causal trace —
// spans with containment parents (window → phase → task → cache op) plus
// follows-from edges for cross-window causality (pane produced in window W
// consumed by a cache hit in W+k; node death → the rebuild/re-attempt work
// it triggered).
//
// The builder derives every span ID from event content with the exact
// derivations in trace_context.h, so a trace built from a journal equals
// the IDs the emitters stamped at runtime; stamped fields ("trace",
// "pspan", "ctx") are cross-checked and any disagreement is reported in
// Trace::stamp_mismatches instead of being trusted.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_journal.h"
#include "obs/trace/trace_context.h"

namespace redoop {
namespace obs {
namespace trace {

enum class SpanKind {
  kWindow,   // window.open .. window.complete
  kPhase,    // one map/reduce wave of one job
  kTask,     // task.start .. task.finish/task.fail
  kCacheOp,  // instant cache/DFS decision (add, evict, hit, read, ...)
  kPane,     // a materialized pane artifact (pane.ready -> cache-available)
  kFailure,  // dfs.node.failed or task.fail
};

const char* SpanKindName(SpanKind kind);

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root of its trace.
  SpanId trace = 0;
  SpanKind kind = SpanKind::kCacheOp;
  /// Window/phase/task: human label ("window 3", "pane-S0P2/map",
  /// "task 17"). Cache ops: the event type. Failures: "node 4 failed" /
  /// "task 17 failed".
  std::string label;
  std::string system;
  std::string query;
  /// Cache name for name-keyed cache ops ("" otherwise).
  std::string detail;
  int64_t window = -1;
  double start = 0.0;
  double end = 0.0;
  int64_t node = -1;
  int64_t task = -1;
  int64_t attempt = 0;
  int64_t source = -1;
  int64_t pane = -1;
  int64_t partition = -1;
  int64_t bytes = 0;
};

/// A follows-from edge: `to` causally depends on `from` without being
/// contained in it.
struct FollowsFrom {
  SpanId from = 0;
  SpanId to = 0;
  /// "pane_reuse" (pane built in window_from, consumed in window_to) or
  /// "recovery" (failure span -> rebuild / re-attempt span it triggered).
  std::string kind;
  int64_t source = -1;
  int64_t pane = -1;
  int64_t window_from = -1;
  int64_t window_to = -1;
  double time = 0.0;  // When the consuming/recovering side happened.
};

struct Trace {
  std::vector<Span> spans;          // Journal order; deterministic.
  std::vector<FollowsFrom> follows;  // Journal order; deterministic.
  /// Human-readable reports of stamped trace fields that disagreed with
  /// the content-derived IDs (empty on a healthy journal).
  std::vector<std::string> stamp_mismatches;

  const Span* Find(SpanId id) const;
  size_t CountKind(SpanKind kind) const;
};

/// Reconstructs the span DAG from a journal. Works on any journal the
/// drivers emit — stamped trace fields are validated when present but not
/// required (unsampled windows reconstruct identically).
Status BuildTrace(const EventJournal& journal, Trace* out);

// --- Renderers (deterministic output) --------------------------------------

/// One-object summary: span/edge counts by kind plus the DAG critical-path
/// total from the analysis engine. This is the CI golden surface.
std::string TraceSummaryText(const Trace& trace, const EventJournal& journal);
std::string TraceSummaryJson(const Trace& trace, const EventJournal& journal);

/// The span tree of one window (all (system, query) groups), follows-from
/// edges annotated inline.
std::string WindowTreeText(const Trace& trace, int64_t window);
std::string WindowTreeJson(const Trace& trace, int64_t window);

/// Every build of pane (source, pane) and every window that consumed it
/// (cache hits via follows-from edges; in-window builds via miss ops).
std::string PaneLineageText(const Trace& trace, int64_t source, int64_t pane);
std::string PaneLineageJson(const Trace& trace, int64_t source, int64_t pane);

}  // namespace trace
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_TRACE_SPAN_BUILDER_H_
