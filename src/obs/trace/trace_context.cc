#include "obs/trace/trace_context.h"

#include <cstdlib>

#include "common/string_utils.h"

namespace redoop {
namespace obs {
namespace trace {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
constexpr const char* kTokenPrefix = "redoop-trace/";
}  // namespace

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

SpanId DeriveId(std::string_view canonical) {
  const uint64_t h = Fnv1a64(canonical);
  return h != 0 ? h : kFnvOffset;
}

std::string IdHex(SpanId id) {
  return StringPrintf("%016llx", static_cast<unsigned long long>(id));
}

SpanId TraceIdFor(std::string_view system, std::string_view query) {
  std::string canonical = "trace:";
  canonical.append(system);
  canonical += '/';
  canonical.append(query);
  return DeriveId(canonical);
}

SpanId WindowSpanId(SpanId trace, int64_t recurrence) {
  return DeriveId(StringPrintf("window:%s:%lld", IdHex(trace).c_str(),
                               static_cast<long long>(recurrence)));
}

SpanId PhaseSpanId(SpanId window_span, std::string_view job,
                   int64_t occurrence, std::string_view kind) {
  return DeriveId(StringPrintf(
      "phase:%s:%.*s#%lld:%.*s", IdHex(window_span).c_str(),
      static_cast<int>(job.size()), job.data(),
      static_cast<long long>(occurrence), static_cast<int>(kind.size()),
      kind.data()));
}

SpanId TaskSpanId(SpanId trace, int64_t task, int64_t attempt) {
  return DeriveId(StringPrintf("task:%s:%lld:%lld", IdHex(trace).c_str(),
                               static_cast<long long>(task),
                               static_cast<long long>(attempt)));
}

SpanId CacheOpSpanId(SpanId trace, std::string_view event_type,
                     std::string_view key, int64_t occurrence) {
  return DeriveId(StringPrintf(
      "cacheop:%s:%.*s:%.*s#%lld", IdHex(trace).c_str(),
      static_cast<int>(event_type.size()), event_type.data(),
      static_cast<int>(key.size()), key.data(),
      static_cast<long long>(occurrence)));
}

SpanId PaneSpanId(SpanId trace, int64_t source, int64_t pane,
                  int64_t built_window) {
  return DeriveId(StringPrintf("pane:%s:S%lld:P%lld:W%lld",
                               IdHex(trace).c_str(),
                               static_cast<long long>(source),
                               static_cast<long long>(pane),
                               static_cast<long long>(built_window)));
}

SpanId FailureSpanId(SpanId trace, int64_t node, int64_t occurrence) {
  return DeriveId(StringPrintf("failure:%s:N%lld#%lld", IdHex(trace).c_str(),
                               static_cast<long long>(node),
                               static_cast<long long>(occurrence)));
}

std::string TraceContext::Serialize() const {
  return StringPrintf("%s%s/%s/%lld/%c", kTokenPrefix,
                      IdHex(trace_id).c_str(), IdHex(span_id).c_str(),
                      static_cast<long long>(window), sampled ? 's' : 'u');
}

namespace {

bool ParseHex16(std::string_view s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace

bool TraceContext::Parse(std::string_view token, TraceContext* out) {
  const std::string_view prefix(kTokenPrefix);
  if (token.substr(0, prefix.size()) != prefix) return false;
  token.remove_prefix(prefix.size());

  const size_t slash1 = token.find('/');
  if (slash1 == std::string_view::npos) return false;
  const size_t slash2 = token.find('/', slash1 + 1);
  if (slash2 == std::string_view::npos) return false;
  const size_t slash3 = token.find('/', slash2 + 1);
  if (slash3 == std::string_view::npos) return false;

  TraceContext parsed;
  if (!ParseHex16(token.substr(0, slash1), &parsed.trace_id)) return false;
  if (!ParseHex16(token.substr(slash1 + 1, slash2 - slash1 - 1),
                  &parsed.span_id)) {
    return false;
  }
  const std::string window_str(
      token.substr(slash2 + 1, slash3 - slash2 - 1));
  if (window_str.empty()) return false;
  char* end = nullptr;
  parsed.window = std::strtoll(window_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  const std::string_view flag = token.substr(slash3 + 1);
  if (flag == "s") {
    parsed.sampled = true;
  } else if (flag == "u") {
    parsed.sampled = false;
  } else {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace trace
}  // namespace obs
}  // namespace redoop
