#include "obs/trace/span_builder.h"

#include <deque>
#include <map>
#include <utility>

#include "common/string_utils.h"
#include "obs/analysis/analysis.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {
namespace trace {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWindow: return "window";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kTask: return "task";
    case SpanKind::kCacheOp: return "cache_op";
    case SpanKind::kPane: return "pane";
    case SpanKind::kFailure: return "failure";
  }
  return "unknown";
}

const Span* Trace::Find(SpanId id) const {
  for (const Span& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

size_t Trace::CountKind(SpanKind kind) const {
  size_t n = 0;
  for (const Span& s : spans) {
    if (s.kind == kind) ++n;
  }
  return n;
}

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

/// Per-(system, query) reconstruction state.
struct GroupState {
  std::string system;
  std::string query;
  SpanId trace = 0;

  std::map<int64_t, size_t> window_index;  // recurrence -> span index.
  int64_t open_window = -1;

  bool job_open = false;
  std::string job_name;
  int64_t job_occurrence = 0;
  std::map<std::string, int64_t> job_occurrences;
  size_t map_phase = kNone;
  size_t reduce_phase = kNone;
  std::map<int64_t, size_t> task_spans;  // task id -> span index.

  /// Every build of a pane artifact, in journal order.
  std::map<std::pair<int64_t, int64_t>,
           std::vector<std::pair<int64_t, size_t>>>
      pane_builds;  // (source, pane) -> [(built window, span index)].
  std::map<std::string, int64_t> op_occurrences;  // "type\nkey" -> count.
  /// Failed attempts awaiting their re-issued attempt, FIFO per identity.
  std::map<std::string, std::deque<size_t>> pending_fails;
  /// Last cache.invalidate(reason=lost) op span per node — the recovery
  /// edge fallback when no dfs.node.failed was journaled (injected cache
  /// loss without a node death).
  std::map<int64_t, size_t> last_lost_invalidate;
};

/// Node-failure spans are system-scoped (dfs events carry no query label)
/// so recovery edges can reach them from any query's group.
struct SystemFailures {
  SpanId trace = 0;
  std::map<int64_t, int64_t> occurrences;  // node -> failures seen.
  std::map<int64_t, size_t> last_span;     // node -> span index.
};

class Builder {
 public:
  explicit Builder(Trace* out) : out_(out) {}

  void Consume(const EventJournal& journal) {
    size_t index = 0;
    for (const Event& e : journal.events()) {
      HandleEvent(e, index++);
    }
  }

 private:
  GroupState& GroupFor(const Event& e) {
    const std::string system = e.StrOr("system", "");
    const std::string query = e.StrOr("query", "");
    const std::string key = system + '\n' + query;
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      it = groups_.emplace(key, GroupState()).first;
      it->second.system = system;
      it->second.query = query;
      it->second.trace = TraceIdFor(system, query);
    }
    return it->second;
  }

  SystemFailures& FailuresFor(const std::string& system) {
    auto it = failures_.find(system);
    if (it == failures_.end()) {
      it = failures_.emplace(system, SystemFailures()).first;
      it->second.trace = TraceIdFor(system, "");
    }
    return it->second;
  }

  size_t AddSpan(Span span) {
    out_->spans.push_back(std::move(span));
    return out_->spans.size() - 1;
  }

  Span& At(size_t index) { return out_->spans[index]; }

  SpanId WindowParent(const GroupState& g, const Event& e) const {
    const int64_t w = e.IntOr("window", g.open_window);
    auto it = g.window_index.find(w);
    if (it != g.window_index.end()) return out_->spans[it->second].id;
    return 0;
  }

  void Mismatch(size_t index, const Event& e, const char* what,
                const std::string& got, const std::string& want) {
    out_->stamp_mismatches.push_back(StringPrintf(
        "event %zu (%s): %s stamped %s, derived %s", index, e.type().c_str(),
        what, got.c_str(), want.c_str()));
  }

  /// Cross-checks the stamped propagation fields against the derived IDs.
  void ValidateStamps(const GroupState& g, const Event& e, size_t index) {
    const EventField* trace_field = e.Find("trace");
    if (trace_field != nullptr) {
      const std::string want = IdHex(g.trace);
      if (trace_field->str != want) {
        Mismatch(index, e, "trace", trace_field->str, want);
      }
    }
    const EventField* pspan = e.Find("pspan");
    if (pspan != nullptr) {
      const int64_t w = e.IntOr("window", -1);
      if (w >= 0) {
        const std::string want = IdHex(WindowSpanId(g.trace, w));
        if (pspan->str != want) Mismatch(index, e, "pspan", pspan->str, want);
      }
    }
    const EventField* ctx_field = e.Find("ctx");
    if (ctx_field != nullptr) {
      TraceContext ctx;
      if (!TraceContext::Parse(ctx_field->str, &ctx)) {
        Mismatch(index, e, "ctx", ctx_field->str, "(parseable token)");
      } else {
        if (ctx.trace_id != g.trace) {
          Mismatch(index, e, "ctx.trace", IdHex(ctx.trace_id),
                   IdHex(g.trace));
        }
        const SpanId want = TaskSpanId(g.trace, e.IntOr("task", -1),
                                       e.IntOr("attempt", 0));
        if (ctx.span_id != want) {
          Mismatch(index, e, "ctx.span", IdHex(ctx.span_id), IdHex(want));
        }
      }
    }
  }

  void OpenWindow(GroupState& g, const Event& e) {
    const int64_t recurrence = e.IntOr("recurrence", -1);
    Span span;
    span.trace = g.trace;
    span.id = WindowSpanId(g.trace, recurrence);
    span.parent = 0;
    span.kind = SpanKind::kWindow;
    span.label = StringPrintf("window %lld",
                              static_cast<long long>(recurrence));
    span.system = g.system;
    span.query = g.query;
    span.window = recurrence;
    span.start = e.time();
    span.end = e.time();
    g.window_index[recurrence] = AddSpan(std::move(span));
    g.open_window = recurrence;
  }

  void CloseWindow(GroupState& g, const Event& e) {
    const int64_t recurrence = e.IntOr("recurrence", g.open_window);
    auto it = g.window_index.find(recurrence);
    if (it != g.window_index.end()) At(it->second).end = e.time();
    if (g.open_window == recurrence) g.open_window = -1;
  }

  void OpenJob(GroupState& g, const Event& e) {
    g.job_name = e.StrOr("job", "");
    g.job_occurrence = g.job_occurrences[g.job_name]++;
    g.job_open = true;
    g.map_phase = kNone;
    g.reduce_phase = kNone;
    g.task_spans.clear();
  }

  void CloseJob(GroupState& g) {
    g.job_open = false;
    g.map_phase = kNone;
    g.reduce_phase = kNone;
  }

  size_t EnsurePhase(GroupState& g, bool is_map, double time) {
    size_t& slot = is_map ? g.map_phase : g.reduce_phase;
    if (slot != kNone) return slot;
    const SpanId parent =
        g.open_window >= 0 && g.window_index.count(g.open_window) > 0
            ? out_->spans[g.window_index[g.open_window]].id
            : 0;
    Span span;
    span.trace = g.trace;
    span.id = PhaseSpanId(parent, g.job_name, g.job_occurrence,
                          is_map ? "map" : "reduce");
    span.parent = parent;
    span.kind = SpanKind::kPhase;
    span.label = g.job_name + (is_map ? "/map" : "/reduce");
    span.system = g.system;
    span.query = g.query;
    span.window = g.open_window;
    span.start = time;
    span.end = time;
    slot = AddSpan(std::move(span));
    return slot;
  }

  void StartTask(GroupState& g, const Event& e, size_t index) {
    const bool is_map = e.StrOr("kind", "map") == "map";
    const int64_t task = e.IntOr("task", -1);
    const int64_t attempt = e.IntOr("attempt", 0);
    const size_t phase = EnsurePhase(g, is_map, e.time());
    Span span;
    span.trace = g.trace;
    span.id = TaskSpanId(g.trace, task, attempt);
    span.parent = At(phase).id;
    span.kind = SpanKind::kTask;
    span.label = StringPrintf("task %lld", static_cast<long long>(task));
    span.system = g.system;
    span.query = g.query;
    span.window = g.open_window;
    span.start = e.time();
    span.end = e.time();
    span.node = e.IntOr("node", -1);
    span.task = task;
    span.attempt = attempt;
    span.source = e.IntOr("source", -1);
    span.pane = e.IntOr("pane", -1);
    span.partition = e.IntOr("partition", -1);
    const size_t span_index = AddSpan(std::move(span));
    g.task_spans[task] = span_index;

    // A re-issued attempt follows from the failure that killed its
    // predecessor (same task identity, previous attempt).
    if (attempt > 0) {
      const std::string key = FailIdentity(
          is_map, e.IntOr("source", -1), e.IntOr("pane", -1),
          e.IntOr("partition", -1), attempt);
      auto it = g.pending_fails.find(key);
      if (it != g.pending_fails.end() && !it->second.empty()) {
        AddFollows(At(it->second.front()).id, At(span_index).id, "recovery",
                   -1, -1, At(it->second.front()).window, g.open_window,
                   e.time());
        it->second.pop_front();
      }
    }
    (void)index;
  }

  void FinishTask(GroupState& g, const Event& e) {
    auto it = g.task_spans.find(e.IntOr("task", -1));
    if (it == g.task_spans.end()) return;
    Span& span = At(it->second);
    span.end = e.time();
    span.node = e.IntOr("node", span.node);
    span.bytes = e.IntOr("bytes", span.bytes);
    // The phase wave extends to its last finishing task.
    const size_t phase = span.kind == SpanKind::kTask && span.parent != 0
                             ? (e.StrOr("kind", "map") == "map" ? g.map_phase
                                                                : g.reduce_phase)
                             : kNone;
    if (phase != kNone && At(phase).end < e.time()) At(phase).end = e.time();
  }

  static std::string FailIdentity(bool is_map, int64_t source, int64_t pane,
                                  int64_t partition, int64_t next_attempt) {
    return StringPrintf("%s/%lld/%lld/%lld/%lld", is_map ? "map" : "reduce",
                        static_cast<long long>(source),
                        static_cast<long long>(pane),
                        static_cast<long long>(partition),
                        static_cast<long long>(next_attempt));
  }

  void FailTask(GroupState& g, const Event& e) {
    const int64_t task = e.IntOr("task", -1);
    const int64_t attempt = e.IntOr("attempt", 0);
    const bool is_map = e.StrOr("kind", "map") == "map";
    Span span;
    span.trace = g.trace;
    span.id = DeriveId(StringPrintf("taskfail:%s:%lld:%lld",
                                    IdHex(g.trace).c_str(),
                                    static_cast<long long>(task),
                                    static_cast<long long>(attempt)));
    auto it = g.task_spans.find(task);
    span.parent = it != g.task_spans.end() ? At(it->second).id
                                           : WindowParent(g, e);
    span.kind = SpanKind::kFailure;
    span.label = StringPrintf("task %lld failed",
                              static_cast<long long>(task));
    span.system = g.system;
    span.query = g.query;
    span.window = e.IntOr("window", g.open_window);
    span.start = e.time();
    span.end = e.time();
    span.node = e.IntOr("node", -1);
    span.task = task;
    span.attempt = attempt;
    span.source = e.IntOr("source", -1);
    span.pane = e.IntOr("pane", -1);
    span.partition = e.IntOr("partition", -1);
    const size_t span_index = AddSpan(std::move(span));
    if (it != g.task_spans.end()) At(it->second).end = e.time();
    g.pending_fails[FailIdentity(is_map, e.IntOr("source", -1),
                                 e.IntOr("pane", -1),
                                 e.IntOr("partition", -1), attempt + 1)]
        .push_back(span_index);
  }

  void NodeFailed(const Event& e) {
    const std::string system = e.StrOr("system", "");
    SystemFailures& f = FailuresFor(system);
    const int64_t node = e.IntOr("node", -1);
    const int64_t occurrence = f.occurrences[node]++;
    Span span;
    span.trace = f.trace;
    span.id = FailureSpanId(f.trace, node, occurrence);
    span.parent = 0;
    span.kind = SpanKind::kFailure;
    span.label = StringPrintf("node %lld failed",
                              static_cast<long long>(node));
    span.system = system;
    span.window = e.IntOr("window", -1);
    span.start = e.time();
    span.end = e.time();
    span.node = node;
    f.last_span[node] = AddSpan(std::move(span));
  }

  size_t CacheOp(GroupState& g, const Event& e) {
    const std::string name = e.StrOr("name", "");
    std::string key = name;
    if (key.empty()) {
      key = StringPrintf("S%lldP%lld",
                         static_cast<long long>(e.IntOr("source", -1)),
                         static_cast<long long>(e.IntOr("pane", -1)));
    }
    const std::string occ_key = e.type() + '\n' + key;
    const int64_t occurrence = g.op_occurrences[occ_key]++;
    Span span;
    span.trace = g.trace;
    span.id = CacheOpSpanId(g.trace, e.type(), key, occurrence);
    // Ops inside a task attempt (dfs.read) nest under it; driver/controller
    // ops nest under their window.
    const EventField* task_field = e.Find("task");
    if (task_field != nullptr &&
        g.task_spans.count(e.IntOr("task", -1)) > 0) {
      span.parent = At(g.task_spans[e.IntOr("task", -1)]).id;
    } else {
      span.parent = WindowParent(g, e);
    }
    span.kind = SpanKind::kCacheOp;
    span.label = e.type();
    span.system = g.system;
    span.query = g.query;
    span.detail = name;
    span.window = e.IntOr("window", g.open_window);
    span.start = e.time();
    span.end = e.time();
    span.node = e.IntOr("node", -1);
    span.task = e.IntOr("task", -1);
    span.source = e.IntOr("source", -1);
    span.pane = e.IntOr("pane", -1);
    span.partition = e.IntOr("partition", -1);
    span.bytes = e.IntOr("bytes", 0);
    return AddSpan(std::move(span));
  }

  void AddFollows(SpanId from, SpanId to, const char* kind, int64_t source,
                  int64_t pane, int64_t window_from, int64_t window_to,
                  double time) {
    FollowsFrom edge;
    edge.from = from;
    edge.to = to;
    edge.kind = kind;
    edge.source = source;
    edge.pane = pane;
    edge.window_from = window_from;
    edge.window_to = window_to;
    edge.time = time;
    out_->follows.push_back(std::move(edge));
  }

  void PaneReady(GroupState& g, const Event& e) {
    CacheOp(g, e);
    if (e.IntOr("ready", 0) != 2) return;  // 2 = cache-available: built.
    const int64_t source = e.IntOr("source", -1);
    const int64_t pane = e.IntOr("pane", -1);
    const int64_t window = e.IntOr("window", g.open_window);
    Span span;
    span.trace = g.trace;
    span.id = PaneSpanId(g.trace, source, pane, window);
    span.parent = WindowParent(g, e);
    span.kind = SpanKind::kPane;
    span.label = StringPrintf("pane S%lld/P%lld",
                              static_cast<long long>(source),
                              static_cast<long long>(pane));
    span.system = g.system;
    span.query = g.query;
    span.window = window;
    span.start = e.time();
    span.end = e.time();
    span.source = source;
    span.pane = pane;
    g.pane_builds[{source, pane}].emplace_back(window, AddSpan(std::move(span)));
  }

  void PaneHit(GroupState& g, const Event& e) {
    const size_t op = CacheOp(g, e);
    if (e.StrOr("reason", "") != "reused") return;
    const int64_t source = e.IntOr("source", -1);
    const int64_t pane = e.IntOr("pane", -1);
    auto it = g.pane_builds.find({source, pane});
    if (it == g.pane_builds.end() || it->second.empty()) return;
    // Prefer the build the emitter says served the hit; otherwise the
    // latest build (a rebuild supersedes the original artifact).
    const int64_t built_in = e.IntOr("built_in", -1);
    const std::pair<int64_t, size_t>* build = &it->second.back();
    if (built_in >= 0) {
      for (const auto& candidate : it->second) {
        if (candidate.first == built_in) build = &candidate;
      }
    }
    const int64_t window_to = e.IntOr("window", g.open_window);
    auto wit = g.window_index.find(window_to);
    const SpanId to = wit != g.window_index.end()
                          ? At(wit->second).id
                          : At(op).id;
    AddFollows(At(build->second).id, to, "pane_reuse", source, pane,
               build->first, window_to, e.time());
  }

  void Rebuild(GroupState& g, const Event& e) {
    const size_t op = CacheOp(g, e);
    const int64_t node = e.IntOr("node", -1);
    // Recovery lineage: the rebuild follows from the node death that lost
    // the cache, or (cache-only loss) from the invalidation record.
    SystemFailures& f = FailuresFor(g.system);
    auto fit = f.last_span.find(node);
    size_t from = kNone;
    if (fit != f.last_span.end()) {
      from = fit->second;
    } else {
      auto iit = g.last_lost_invalidate.find(node);
      if (iit != g.last_lost_invalidate.end()) from = iit->second;
    }
    if (from == kNone) return;
    AddFollows(At(from).id, At(op).id, "recovery", e.IntOr("source", -1),
               e.IntOr("pane", -1), At(from).window,
               e.IntOr("window", g.open_window), e.time());
  }

  void HandleEvent(const Event& e, size_t index) {
    const std::string& type = e.type();
    if (type == event::kDfsNodeFailed) {
      NodeFailed(e);
      return;
    }
    if (type == event::kDfsFileCreate || type == event::kDfsFileDelete ||
        type == event::kSchedAssign || type == event::kProfilerObserve ||
        type == event::kMatrixDone || type == event::kMatrixShift ||
        type == event::kWindowTrigger || type == event::kTaskSpeculate ||
        type == event::kTraceSample || type == event::kJournalTruncated) {
      return;  // Not part of the span model.
    }
    GroupState& g = GroupFor(e);
    ValidateStamps(g, e, index);
    if (type == event::kWindowOpen) {
      OpenWindow(g, e);
    } else if (type == event::kWindowComplete) {
      CloseWindow(g, e);
    } else if (type == event::kJobStart) {
      OpenJob(g, e);
    } else if (type == event::kJobFinish) {
      CloseJob(g);
    } else if (type == event::kTaskStart) {
      StartTask(g, e, index);
    } else if (type == event::kTaskFinish) {
      FinishTask(g, e);
    } else if (type == event::kTaskFail) {
      FailTask(g, e);
    } else if (type == event::kPaneReady) {
      PaneReady(g, e);
    } else if (type == event::kCachePaneHit) {
      PaneHit(g, e);
    } else if (type == event::kCacheRebuild) {
      Rebuild(g, e);
    } else if (type == event::kCacheInvalidate) {
      const size_t op = CacheOp(g, e);
      if (e.StrOr("reason", "") == "lost") {
        g.last_lost_invalidate[e.IntOr("node", -1)] = op;
      }
    } else if (type == event::kCacheAdd || type == event::kCacheEvict ||
               type == event::kCachePurge || type == event::kCachePaneMiss ||
               type == event::kCachePairHit ||
               type == event::kCachePairMiss || type == event::kDfsRead) {
      CacheOp(g, e);
    }
  }

  Trace* out_;
  std::map<std::string, GroupState> groups_;
  std::map<std::string, SystemFailures> failures_;
};

}  // namespace

Status BuildTrace(const EventJournal& journal, Trace* out) {
  *out = Trace();
  Builder builder(out);
  builder.Consume(journal);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

namespace {

double TotalCriticalPath(const EventJournal& journal) {
  analysis::RunAnalysis run;
  const Status s =
      analysis::AnalyzeJournal(journal, analysis::AnalysisOptions(), &run);
  if (!s.ok()) return 0.0;
  double total = 0.0;
  for (const analysis::SystemAnalysis& sys : run.systems) {
    total += sys.TotalCriticalPath();
  }
  return total;
}

size_t CountEdges(const Trace& trace, std::string_view kind) {
  size_t n = 0;
  for (const FollowsFrom& f : trace.follows) {
    if (f.kind == kind) ++n;
  }
  return n;
}

}  // namespace

std::string TraceSummaryText(const Trace& trace,
                             const EventJournal& journal) {
  std::string out = StringPrintf(
      "trace: %zu spans, %zu follows-from edges\n", trace.spans.size(),
      trace.follows.size());
  out += StringPrintf(
      "  windows=%zu phases=%zu tasks=%zu cache_ops=%zu panes=%zu "
      "failures=%zu\n",
      trace.CountKind(SpanKind::kWindow), trace.CountKind(SpanKind::kPhase),
      trace.CountKind(SpanKind::kTask), trace.CountKind(SpanKind::kCacheOp),
      trace.CountKind(SpanKind::kPane),
      trace.CountKind(SpanKind::kFailure));
  out += StringPrintf("  pane_reuse=%zu recovery=%zu\n",
                      CountEdges(trace, "pane_reuse"),
                      CountEdges(trace, "recovery"));
  out += StringPrintf("  critical_path_s=%s stamp_mismatches=%zu\n",
                      FormatDouble(TotalCriticalPath(journal)).c_str(),
                      trace.stamp_mismatches.size());
  return out;
}

std::string TraceSummaryJson(const Trace& trace,
                             const EventJournal& journal) {
  return StringPrintf(
      "{\"spans\": %zu, \"edges\": %zu, "
      "\"kinds\": {\"window\": %zu, \"phase\": %zu, \"task\": %zu, "
      "\"cache_op\": %zu, \"pane\": %zu, \"failure\": %zu}, "
      "\"follows\": {\"pane_reuse\": %zu, \"recovery\": %zu}, "
      "\"critical_path_s\": %s, \"stamp_mismatches\": %zu}\n",
      trace.spans.size(), trace.follows.size(),
      trace.CountKind(SpanKind::kWindow), trace.CountKind(SpanKind::kPhase),
      trace.CountKind(SpanKind::kTask), trace.CountKind(SpanKind::kCacheOp),
      trace.CountKind(SpanKind::kPane), trace.CountKind(SpanKind::kFailure),
      CountEdges(trace, "pane_reuse"), CountEdges(trace, "recovery"),
      FormatDouble(TotalCriticalPath(journal)).c_str(),
      trace.stamp_mismatches.size());
}

namespace {

using ChildIndex = std::map<SpanId, std::vector<size_t>>;

ChildIndex BuildChildIndex(const Trace& trace) {
  ChildIndex children;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].parent != 0) {
      children[trace.spans[i].parent].push_back(i);
    }
  }
  return children;
}

std::string SpanLineText(const Span& s) {
  std::string out = StringPrintf("[%s] %s", SpanKindName(s.kind),
                                 s.label.c_str());
  if (!s.detail.empty()) out += StringPrintf(" name=%s", s.detail.c_str());
  if (s.node >= 0) out += StringPrintf(" node=%lld",
                                       static_cast<long long>(s.node));
  if (s.attempt > 0) out += StringPrintf(" attempt=%lld",
                                         static_cast<long long>(s.attempt));
  out += StringPrintf(" t=[%s, %s] span=%s", FormatDouble(s.start).c_str(),
                      FormatDouble(s.end).c_str(), IdHex(s.id).c_str());
  return out;
}

void AppendFollowsNotes(const Trace& trace, const Span& s,
                        const std::string& indent, std::string* out) {
  for (const FollowsFrom& f : trace.follows) {
    if (f.to == s.id) {
      const Span* from = trace.Find(f.from);
      *out += StringPrintf(
          "%s  <- follows %s (%s, window %lld)\n", indent.c_str(),
          from != nullptr ? from->label.c_str() : IdHex(f.from).c_str(),
          f.kind.c_str(), static_cast<long long>(f.window_from));
    }
    if (f.from == s.id) {
      *out += StringPrintf("%s  -> feeds window %lld (%s)\n", indent.c_str(),
                           static_cast<long long>(f.window_to),
                           f.kind.c_str());
    }
  }
}

void AppendTreeText(const Trace& trace, const ChildIndex& children,
                    size_t index, int depth, std::string* out) {
  const Span& s = trace.spans[index];
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out += indent + SpanLineText(s) + "\n";
  AppendFollowsNotes(trace, s, indent, out);
  auto it = children.find(s.id);
  if (it == children.end()) return;
  for (size_t child : it->second) {
    AppendTreeText(trace, children, child, depth + 1, out);
  }
}

void AppendTreeJson(const Trace& trace, const ChildIndex& children,
                    size_t index, std::string* out) {
  const Span& s = trace.spans[index];
  *out += StringPrintf(
      "{\"span\": \"%s\", \"parent\": \"%s\", \"kind\": \"%s\", "
      "\"label\": \"%s\", \"window\": %lld, \"start\": %s, \"end\": %s",
      IdHex(s.id).c_str(), IdHex(s.parent).c_str(), SpanKindName(s.kind),
      s.label.c_str(), static_cast<long long>(s.window),
      FormatDouble(s.start).c_str(), FormatDouble(s.end).c_str());
  if (!s.detail.empty()) {
    *out += StringPrintf(", \"name\": \"%s\"", s.detail.c_str());
  }
  if (s.node >= 0) {
    *out += StringPrintf(", \"node\": %lld, \"attempt\": %lld",
                         static_cast<long long>(s.node),
                         static_cast<long long>(s.attempt));
  }
  std::string follows;
  for (const FollowsFrom& f : trace.follows) {
    if (f.to != s.id) continue;
    follows += follows.empty() ? "" : ", ";
    follows += StringPrintf(
        "{\"from\": \"%s\", \"kind\": \"%s\", \"window\": %lld}",
        IdHex(f.from).c_str(), f.kind.c_str(),
        static_cast<long long>(f.window_from));
  }
  if (!follows.empty()) {
    *out += StringPrintf(", \"follows_from\": [%s]", follows.c_str());
  }
  auto it = children.find(s.id);
  if (it != children.end()) {
    *out += ", \"children\": [";
    bool first = true;
    for (size_t child : it->second) {
      *out += first ? "" : ", ";
      first = false;
      AppendTreeJson(trace, children, child, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string WindowTreeText(const Trace& trace, int64_t window) {
  const ChildIndex children = BuildChildIndex(trace);
  std::string out;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& s = trace.spans[i];
    if (s.kind != SpanKind::kWindow || s.window != window) continue;
    out += StringPrintf("=== system %s query %s ===\n",
                        s.system.empty() ? "(unnamed)" : s.system.c_str(),
                        s.query.c_str());
    AppendTreeText(trace, children, i, 0, &out);
  }
  if (out.empty()) {
    out = StringPrintf("no spans for window %lld\n",
                       static_cast<long long>(window));
  }
  return out;
}

std::string WindowTreeJson(const Trace& trace, int64_t window) {
  const ChildIndex children = BuildChildIndex(trace);
  std::string out = StringPrintf("{\"window\": %lld, \"trees\": [",
                                 static_cast<long long>(window));
  bool first = true;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& s = trace.spans[i];
    if (s.kind != SpanKind::kWindow || s.window != window) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf("{\"system\": \"%s\", \"query\": \"%s\", \"tree\": ",
                        s.system.c_str(), s.query.c_str());
    AppendTreeJson(trace, children, i, &out);
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string PaneLineageText(const Trace& trace, int64_t source,
                            int64_t pane) {
  std::string out = StringPrintf("pane S%lld/P%lld\n",
                                 static_cast<long long>(source),
                                 static_cast<long long>(pane));
  size_t builds = 0;
  for (const Span& s : trace.spans) {
    if (s.kind == SpanKind::kPane && s.source == source && s.pane == pane) {
      ++builds;
      out += StringPrintf("  built in window %lld at t=%s (span %s)\n",
                          static_cast<long long>(s.window),
                          FormatDouble(s.start).c_str(),
                          IdHex(s.id).c_str());
    }
  }
  size_t consumers = 0;
  for (const FollowsFrom& f : trace.follows) {
    if (f.kind != "pane_reuse" || f.source != source || f.pane != pane) {
      continue;
    }
    ++consumers;
    out += StringPrintf(
        "  consumed by window %lld at t=%s (built in window %lld)\n",
        static_cast<long long>(f.window_to), FormatDouble(f.time).c_str(),
        static_cast<long long>(f.window_from));
  }
  for (const Span& s : trace.spans) {
    if (s.kind == SpanKind::kCacheOp && s.label == event::kCachePaneMiss &&
        s.source == source && s.pane == pane) {
      out += StringPrintf("  computed fresh in window %lld at t=%s\n",
                          static_cast<long long>(s.window),
                          FormatDouble(s.start).c_str());
    }
  }
  if (builds == 0 && consumers == 0) {
    out += "  (no trace activity for this pane)\n";
  }
  return out;
}

std::string PaneLineageJson(const Trace& trace, int64_t source,
                            int64_t pane) {
  std::string out = StringPrintf(
      "{\"source\": %lld, \"pane\": %lld, \"builds\": [",
      static_cast<long long>(source), static_cast<long long>(pane));
  bool first = true;
  for (const Span& s : trace.spans) {
    if (s.kind != SpanKind::kPane || s.source != source || s.pane != pane) {
      continue;
    }
    out += first ? "" : ", ";
    first = false;
    out += StringPrintf("{\"window\": %lld, \"time\": %s, \"span\": \"%s\"}",
                        static_cast<long long>(s.window),
                        FormatDouble(s.start).c_str(), IdHex(s.id).c_str());
  }
  out += "], \"consumers\": [";
  first = true;
  for (const FollowsFrom& f : trace.follows) {
    if (f.kind != "pane_reuse" || f.source != source || f.pane != pane) {
      continue;
    }
    out += first ? "" : ", ";
    first = false;
    out += StringPrintf(
        "{\"window\": %lld, \"time\": %s, \"built_in\": %lld}",
        static_cast<long long>(f.window_to), FormatDouble(f.time).c_str(),
        static_cast<long long>(f.window_from));
  }
  out += "], \"fresh_windows\": [";
  first = true;
  for (const Span& s : trace.spans) {
    if (s.kind == SpanKind::kCacheOp && s.label == event::kCachePaneMiss &&
        s.source == source && s.pane == pane) {
      out += first ? "" : ", ";
      first = false;
      out += StringPrintf("%lld", static_cast<long long>(s.window));
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace trace
}  // namespace obs
}  // namespace redoop
