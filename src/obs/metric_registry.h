#ifndef REDOOP_OBS_METRIC_REGISTRY_H_
#define REDOOP_OBS_METRIC_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace redoop {
namespace obs {

/// Low-cardinality dimensional labels for one metric series or journal
/// event. Unset dimensions ("" / -1) are omitted from the encoded form.
///
/// Cardinality contract (DESIGN §13): `query`, `node`, and `phase` may
/// label long-lived metric series — their value sets are bounded by the
/// workload definition and cluster size. `window` is unbounded over a
/// recurring run and must only ride on journal events, never on metric
/// series; it is part of LabelSet so event attribution and series
/// attribution share one vocabulary.
///
/// Label values must not contain '{', '}', ',', '=', '"', or newlines
/// (checked at intern time) so encoded names stay parseable.
struct LabelSet {
  std::string query;   ///< Recurring-query name; "" = unattributed.
  int64_t window = -1; ///< Recurrence index; -1 = none.
  int32_t node = -1;   ///< Cluster node id; -1 = none.
  std::string phase;   ///< e.g. "map" / "reduce"; "" = none.

  bool empty() const {
    return query.empty() && window < 0 && node < 0 && phase.empty();
  }
  bool operator==(const LabelSet& o) const {
    return query == o.query && window == o.window && node == o.node &&
           phase == o.phase;
  }
  bool operator<(const LabelSet& o) const;

  /// Canonical encoded suffix, e.g. "{query=wcc,node=3}". Dimensions
  /// appear in the fixed order query, window, node, phase, so encoded
  /// names sort deterministically. Empty set encodes to "".
  std::string Encode() const;
};

/// Interned handle for a LabelSet within one MetricRegistry. Id 0 is
/// always the empty set; handles are only meaningful against the registry
/// that interned them.
using LabelId = int32_t;
inline constexpr LabelId kNoLabels = 0;

/// `name` + the canonical encoded suffix of `labels` — the key under
/// which a labeled series appears in a MetricsSnapshot.
std::string LabeledName(std::string_view name, const LabelSet& labels);

/// Immutable view of one log-bucketed histogram (see Histogram below for
/// the bucket layout). Snapshots of the same histogram name merge exactly:
/// bucket counts add, min/max/count combine losslessly.
///
/// MergeFrom is associative and commutative in count, min, max, and the
/// bucket counts (integer adds and min/max folds), with the empty snapshot
/// as identity — so per-shard or per-phase snapshots fold to the same
/// result no matter how the folds are grouped. `sum` is a double and is
/// only reproducible for a fixed fold order; every exporter in this repo
/// folds in registry (name-sorted) order, which keeps serialized output
/// deterministic.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Exact smallest recorded value (0 when empty).
  double max = 0.0;  ///< Exact largest recorded value (0 when empty).
  /// Sparse bucket counts keyed by bucket index; only non-empty buckets
  /// are stored, so wide dynamic ranges stay cheap.
  std::map<int32_t, int64_t> buckets;

  double Mean() const { return count > 0 ? sum / count : 0.0; }

  /// Approximate quantile for q in [0, 1]. The answer is the geometric
  /// midpoint of the bucket containing the rank, clamped to [min, max],
  /// so the relative error is bounded by half a bucket width (~4.5% with
  /// the default 2^(1/8) growth). Exact at q=0 (min) and q=1 (max).
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  void MergeFrom(const HistogramSnapshot& other);
};

/// Point-in-time copy of a whole registry. Ordered maps make every
/// exporter deterministic: identical runs serialize byte-identically.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value, or 0 when the counter was never touched.
  int64_t Counter(std::string_view name) const;
  /// Gauge value, or 0.0 when absent.
  double Gauge(std::string_view name) const;

  /// hits / (hits + misses), or 0.0 when neither counter fired. The
  /// standard shape for cache hit-rate assertions in benches.
  double HitRate(std::string_view hits, std::string_view misses) const;

  /// Counters add, histograms merge bucket-wise, and gauges ADD. A merge
  /// folds disjoint books (per-shard registries, per-query sub-runs),
  /// where levels are additive across the shards being combined; the seed
  /// took `other`'s value (last writer wins), which made multi-shard
  /// folds fold-order-sensitive. Addition is commutative, and for the
  /// integer-valued levels this repo exports (bytes, entries) it is also
  /// exact in double, so any fold order yields the same snapshot. For
  /// fractional gauges the usual double-rounding caveat applies, matching
  /// HistogramSnapshot::sum: exporters fold in registry (name-sorted)
  /// order, which keeps serialized output deterministic.
  void MergeFrom(const MetricsSnapshot& other);

  /// Human-readable table, one metric per line.
  std::string ToText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms export count/sum/min/max/mean/p50/p95/p99.
  std::string ToJson() const;
  /// CSV with header kind,name,value,count,sum,min,max,p50,p95,p99.
  std::string ToCsv() const;
};

/// Monotonic counter. Thread-safe: increments land on one of kShards
/// cache-line-padded atomic cells (picked by thread identity, so worker
/// threads do not bounce one line), and value() folds the shards in fixed
/// index order — integer adds, so the total is exact and independent of
/// which thread incremented where. value() taken concurrently with
/// increments sees some linearization of them; quiesced reads are exact.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Increment(int64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  static size_t ShardIndex() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
           kShards;
  }
  std::array<Shard, kShards> shards_{};
};

/// Instantaneous level (bytes cached, entries resident, ...). Atomic:
/// Set/Add/value are individually thread-safe; a level has no shard-able
/// structure, so concurrent Set calls linearize arbitrarily.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over doubles. Buckets grow by
/// 2^(1/kSubBucketsPerOctave) (~9.05% wide), giving bounded relative
/// error for quantiles while storing only the non-empty buckets.
/// Values with |v| <= kMinTrackable collapse into bucket 0 (representative
/// 0.0); negative values mirror into negative bucket indexes, so bucket
/// index order is value order.
///
/// Record and Snapshot are serialized by a per-histogram mutex; recorded
/// values fold through the associative HistogramSnapshot merge, so the
/// observable state does not depend on which thread recorded what (the
/// double `sum` aside, see HistogramSnapshot).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr double kMinTrackable = 1e-9;

  void Record(double value);

  int64_t count() const;
  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value (0 for |value| <= kMinTrackable, negative
  /// indexes for values below -kMinTrackable).
  static int32_t BucketIndex(double value);
  /// Representative of bucket `index`: 0.0 for bucket 0, the geometric
  /// midpoint (sign-mirrored for negative indexes) otherwise.
  static double BucketMidpoint(int32_t index);

 private:
  mutable std::mutex mu_;
  HistogramSnapshot snapshot_;
};

/// Named metric registry. Instance-based rather than a global singleton so
/// concurrent simulated systems (e.g. redoop vs. hadoop in one CLI run)
/// keep separate books and runs stay deterministic. Get* creates on first
/// use and returns a stable reference; a name keeps one kind for its
/// lifetime (checked).
///
/// Thread-safety contract: Get*, Increment, SetGauge, AddGauge, Record,
/// InternLabels, and Snapshot may be called concurrently from any thread
/// (the maps are mutex-guarded; metric instances are internally
/// synchronized, and the unique_ptr indirection keeps Get* references
/// stable across inserts).
/// Reset() is NOT safe concurrently with anything — it invalidates every
/// reference Get* handed out — and must only run when all writer threads
/// have quiesced. Snapshot holds the registry lock while copying, so do
/// not call registry methods from within a metric accessor (no such path
/// exists in this codebase; noted because the seed registry tolerated
/// reentrant Get* during iteration and this one deadlocks instead).
///
/// Labeled series: InternLabels dedups a LabelSet into a LabelId once
/// (the only point that allocates the encoded suffix); after that the
/// labeled Get*/one-shot overloads are a transparent name lookup plus an
/// integer map step under the same mutex — no per-call string building,
/// so the hot path stays allocation-free. Snapshot() exports a labeled
/// series under its encoded name (e.g. "cache.pane.hits{query=wcc}"),
/// which keeps MetricsSnapshot, its exporters, and MergeFrom label-
/// agnostic and deterministic (std::map name order). The shard-fold
/// order inside each Counter and the name-sorted snapshot iteration are
/// both fixed, so identical runs snapshot byte-identically regardless of
/// thread interleaving (the PR 4 determinism guarantee extends to
/// labeled series unchanged).
class MetricRegistry {
 public:
  MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Interns `labels`, returning a stable handle (kNoLabels for the empty
  /// set). Idempotent; checks the label-value charset rule.
  LabelId InternLabels(const LabelSet& labels);
  /// The LabelSet behind a handle previously returned by InternLabels.
  LabelSet label_set(LabelId id) const;

  /// Labeled series. `labels` must come from this registry's
  /// InternLabels; kNoLabels aliases the plain unlabeled series.
  Counter& GetCounter(std::string_view name, LabelId labels);
  Gauge& GetGauge(std::string_view name, LabelId labels);
  Histogram& GetHistogram(std::string_view name, LabelId labels);

  /// One-shot conveniences for call sites without a cached handle.
  void Increment(std::string_view name, int64_t delta = 1);
  void SetGauge(std::string_view name, double value);
  void AddGauge(std::string_view name, double delta);
  void Record(std::string_view name, double value);

  /// Labeled one-shots: bump ONLY the labeled series. TelemetryScope
  /// layers "global + labeled" on top of these.
  void Increment(std::string_view name, LabelId labels, int64_t delta);
  void SetGauge(std::string_view name, LabelId labels, double value);
  void AddGauge(std::string_view name, LabelId labels, double delta);
  void Record(std::string_view name, LabelId labels, double value);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  template <typename T>
  using LabeledMap =
      std::map<std::string, std::map<LabelId, std::unique_ptr<T>>,
               std::less<>>;

  struct LabelEntry {
    LabelSet labels;
    std::string suffix;  ///< Cached Encode() result.
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  LabeledMap<Counter> labeled_counters_;
  LabeledMap<Gauge> labeled_gauges_;
  LabeledMap<Histogram> labeled_histograms_;
  std::vector<LabelEntry> label_entries_;  ///< Index = LabelId; [0] empty.
  std::map<LabelSet, LabelId> label_ids_;
};

/// Deterministic double formatting shared by all obs exporters: %.6g for
/// general values, with "-0" normalized to "0" so snapshots never differ
/// by sign of zero.
std::string FormatDouble(double value);

}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_METRIC_REGISTRY_H_
