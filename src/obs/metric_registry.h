#ifndef REDOOP_OBS_METRIC_REGISTRY_H_
#define REDOOP_OBS_METRIC_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace redoop {
namespace obs {

/// Immutable view of one log-bucketed histogram (see Histogram below for
/// the bucket layout). Snapshots of the same histogram name merge exactly:
/// bucket counts add, min/max/count combine losslessly.
///
/// MergeFrom is associative and commutative in count, min, max, and the
/// bucket counts (integer adds and min/max folds), with the empty snapshot
/// as identity — so per-shard or per-phase snapshots fold to the same
/// result no matter how the folds are grouped. `sum` is a double and is
/// only reproducible for a fixed fold order; every exporter in this repo
/// folds in registry (name-sorted) order, which keeps serialized output
/// deterministic.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Exact smallest recorded value (0 when empty).
  double max = 0.0;  ///< Exact largest recorded value (0 when empty).
  /// Sparse bucket counts keyed by bucket index; only non-empty buckets
  /// are stored, so wide dynamic ranges stay cheap.
  std::map<int32_t, int64_t> buckets;

  double Mean() const { return count > 0 ? sum / count : 0.0; }

  /// Approximate quantile for q in [0, 1]. The answer is the geometric
  /// midpoint of the bucket containing the rank, clamped to [min, max],
  /// so the relative error is bounded by half a bucket width (~4.5% with
  /// the default 2^(1/8) growth). Exact at q=0 (min) and q=1 (max).
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  void MergeFrom(const HistogramSnapshot& other);
};

/// Point-in-time copy of a whole registry. Ordered maps make every
/// exporter deterministic: identical runs serialize byte-identically.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value, or 0 when the counter was never touched.
  int64_t Counter(std::string_view name) const;
  /// Gauge value, or 0.0 when absent.
  double Gauge(std::string_view name) const;

  /// hits / (hits + misses), or 0.0 when neither counter fired. The
  /// standard shape for cache hit-rate assertions in benches.
  double HitRate(std::string_view hits, std::string_view misses) const;

  /// Counters add, histograms merge bucket-wise, gauges take `other`'s
  /// value (last writer wins — a gauge is a level, not a total).
  void MergeFrom(const MetricsSnapshot& other);

  /// Human-readable table, one metric per line.
  std::string ToText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms export count/sum/min/max/mean/p50/p95/p99.
  std::string ToJson() const;
  /// CSV with header kind,name,value,count,sum,min,max,p50,p95,p99.
  std::string ToCsv() const;
};

/// Monotonic counter. Thread-safe: increments land on one of kShards
/// cache-line-padded atomic cells (picked by thread identity, so worker
/// threads do not bounce one line), and value() folds the shards in fixed
/// index order — integer adds, so the total is exact and independent of
/// which thread incremented where. value() taken concurrently with
/// increments sees some linearization of them; quiesced reads are exact.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Increment(int64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  static size_t ShardIndex() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
           kShards;
  }
  std::array<Shard, kShards> shards_{};
};

/// Instantaneous level (bytes cached, entries resident, ...). Atomic:
/// Set/Add/value are individually thread-safe; a level has no shard-able
/// structure, so concurrent Set calls linearize arbitrarily.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over doubles. Buckets grow by
/// 2^(1/kSubBucketsPerOctave) (~9.05% wide), giving bounded relative
/// error for quantiles while storing only the non-empty buckets.
/// Values with |v| <= kMinTrackable collapse into bucket 0 (representative
/// 0.0); negative values mirror into negative bucket indexes, so bucket
/// index order is value order.
///
/// Record and Snapshot are serialized by a per-histogram mutex; recorded
/// values fold through the associative HistogramSnapshot merge, so the
/// observable state does not depend on which thread recorded what (the
/// double `sum` aside, see HistogramSnapshot).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr double kMinTrackable = 1e-9;

  void Record(double value);

  int64_t count() const;
  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value (0 for |value| <= kMinTrackable, negative
  /// indexes for values below -kMinTrackable).
  static int32_t BucketIndex(double value);
  /// Representative of bucket `index`: 0.0 for bucket 0, the geometric
  /// midpoint (sign-mirrored for negative indexes) otherwise.
  static double BucketMidpoint(int32_t index);

 private:
  mutable std::mutex mu_;
  HistogramSnapshot snapshot_;
};

/// Named metric registry. Instance-based rather than a global singleton so
/// concurrent simulated systems (e.g. redoop vs. hadoop in one CLI run)
/// keep separate books and runs stay deterministic. Get* creates on first
/// use and returns a stable reference; a name keeps one kind for its
/// lifetime (checked).
///
/// Thread-safety contract: Get*, Increment, SetGauge, AddGauge, Record,
/// and Snapshot may be called concurrently from any thread (the maps are
/// mutex-guarded; metric instances are internally synchronized, and the
/// unique_ptr indirection keeps Get* references stable across inserts).
/// Reset() is NOT safe concurrently with anything — it invalidates every
/// reference Get* handed out — and must only run when all writer threads
/// have quiesced. Snapshot holds the registry lock while copying, so do
/// not call registry methods from within a metric accessor (no such path
/// exists in this codebase; noted because the seed registry tolerated
/// reentrant Get* during iteration and this one deadlocks instead).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// One-shot conveniences for call sites without a cached handle.
  void Increment(std::string_view name, int64_t delta = 1);
  void SetGauge(std::string_view name, double value);
  void AddGauge(std::string_view name, double delta);
  void Record(std::string_view name, double value);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Deterministic double formatting shared by all obs exporters: %.6g for
/// general values, with "-0" normalized to "0" so snapshots never differ
/// by sign of zero.
std::string FormatDouble(double value);

}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_METRIC_REGISTRY_H_
