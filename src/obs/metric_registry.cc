#include "obs/metric_registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_utils.h"

namespace redoop {
namespace obs {

std::string FormatDouble(double value) {
  if (value == 0.0) return "0";  // Collapses -0 as well.
  std::string s = StringPrintf("%.6g", value);
  return s;
}

bool LabelSet::operator<(const LabelSet& o) const {
  if (query != o.query) return query < o.query;
  if (window != o.window) return window < o.window;
  if (node != o.node) return node < o.node;
  return phase < o.phase;
}

std::string LabelSet::Encode() const {
  if (empty()) return "";
  std::string out = "{";
  const char* sep = "";
  if (!query.empty()) {
    out += StringPrintf("%squery=%s", sep, query.c_str());
    sep = ",";
  }
  if (window >= 0) {
    out += StringPrintf("%swindow=%lld", sep, static_cast<long long>(window));
    sep = ",";
  }
  if (node >= 0) {
    out += StringPrintf("%snode=%d", sep, node);
    sep = ",";
  }
  if (!phase.empty()) {
    out += StringPrintf("%sphase=%s", sep, phase.c_str());
  }
  out += "}";
  return out;
}

std::string LabeledName(std::string_view name, const LabelSet& labels) {
  return std::string(name) + labels.Encode();
}

int32_t Histogram::BucketIndex(double value) {
  // log2(|value| / kMinTrackable) octaves above the floor, subdivided.
  // Negative values mirror into negative indexes so std::map iteration
  // order remains value order: most-negative bucket first, then the
  // near-zero bucket 0, then positives ascending.
  if (value > kMinTrackable) {
    const double octaves = std::log2(value / kMinTrackable);
    return 1 + static_cast<int32_t>(octaves * kSubBucketsPerOctave);
  }
  if (value < -kMinTrackable) {
    const double octaves = std::log2(-value / kMinTrackable);
    return -1 - static_cast<int32_t>(octaves * kSubBucketsPerOctave);
  }
  return 0;  // |value| <= kMinTrackable, including exact zero.
}

double Histogram::BucketMidpoint(int32_t index) {
  if (index == 0) return 0.0;
  if (index < 0) return -BucketMidpoint(-index);
  const double lower =
      kMinTrackable *
      std::exp2(static_cast<double>(index - 1) / kSubBucketsPerOctave);
  const double upper =
      kMinTrackable * std::exp2(static_cast<double>(index) / kSubBucketsPerOctave);
  return std::sqrt(lower * upper);
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_.count == 0) {
    snapshot_.min = value;
    snapshot_.max = value;
  } else {
    snapshot_.min = std::min(snapshot_.min, value);
    snapshot_.max = std::max(snapshot_.max, value);
  }
  ++snapshot_.count;
  snapshot_.sum += value;
  ++snapshot_.buckets[BucketIndex(value)];
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_.count;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Nearest-rank on the bucketed distribution: find the bucket holding
  // the ceil(q * count)-th observation.
  const int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(
                                                std::ceil(q * count)));
  int64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) {
      return std::clamp(Histogram::BucketMidpoint(index), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  // The empty snapshot is the identity on BOTH sides: its min/max are the
  // 0.0 placeholders, not observations, and must never fold into a real
  // extremum (the seed keyed emptiness off `count` alone, which dropped
  // synthetic bucket-only snapshots and broke associativity for them).
  const bool other_empty = other.count == 0 && other.buckets.empty();
  if (other_empty) return;
  const bool self_empty = count == 0 && buckets.empty();
  if (self_empty) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
  // Safe under self-merge: value updates on existing keys only, no
  // insertion happens mid-iteration.
  for (const auto& [index, bucket_count] : other.buckets) {
    buckets[index] += bucket_count;
  }
}

int64_t MetricsSnapshot::Counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::Gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0.0 : it->second;
}

double MetricsSnapshot::HitRate(std::string_view hits,
                                std::string_view misses) const {
  const double h = static_cast<double>(Counter(hits));
  const double total = h + static_cast<double>(Counter(misses));
  return total > 0.0 ? h / total : 0.0;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  // Gauges add (see header): merges fold disjoint books, where a level is
  // the sum of its shards. The seed's last-writer-wins made the result
  // depend on fold order.
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].MergeFrom(histogram);
  }
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StringPrintf("counter   %-44s %lld\n", name.c_str(),
                        static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StringPrintf("gauge     %-44s %s\n", name.c_str(),
                        FormatDouble(value).c_str());
  }
  for (const auto& [name, h] : histograms) {
    out += StringPrintf(
        "histogram %-44s count=%lld mean=%s p50=%s p95=%s p99=%s max=%s\n",
        name.c_str(), static_cast<long long>(h.count),
        FormatDouble(h.Mean()).c_str(), FormatDouble(h.P50()).c_str(),
        FormatDouble(h.P95()).c_str(), FormatDouble(h.P99()).c_str(),
        FormatDouble(h.max).c_str());
  }
  return out;
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StringPrintf("%s\n    \"%s\": %lld", first ? "" : ",",
                        JsonEscape(name).c_str(),
                        static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StringPrintf("%s\n    \"%s\": %s", first ? "" : ",",
                        JsonEscape(name).c_str(), FormatDouble(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += StringPrintf(
        "%s\n    \"%s\": {\"count\": %lld, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<long long>(h.count), FormatDouble(h.sum).c_str(),
        FormatDouble(h.min).c_str(), FormatDouble(h.max).c_str(),
        FormatDouble(h.Mean()).c_str(), FormatDouble(h.P50()).c_str(),
        FormatDouble(h.P95()).c_str(), FormatDouble(h.P99()).c_str());
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "kind,name,value,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [name, value] : counters) {
    out += StringPrintf("counter,%s,%lld,,,,,,,\n", name.c_str(),
                        static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StringPrintf("gauge,%s,%s,,,,,,,\n", name.c_str(),
                        FormatDouble(value).c_str());
  }
  for (const auto& [name, h] : histograms) {
    out += StringPrintf("histogram,%s,,%lld,%s,%s,%s,%s,%s,%s\n", name.c_str(),
                        static_cast<long long>(h.count),
                        FormatDouble(h.sum).c_str(), FormatDouble(h.min).c_str(),
                        FormatDouble(h.max).c_str(), FormatDouble(h.P50()).c_str(),
                        FormatDouble(h.P95()).c_str(),
                        FormatDouble(h.P99()).c_str());
  }
  return out;
}

MetricRegistry::MetricRegistry() {
  // LabelId 0 is always the empty set: label-agnostic call sites can pass
  // kNoLabels and land on the plain unlabeled series.
  label_entries_.push_back(LabelEntry{});
  label_ids_.emplace(LabelSet{}, kNoLabels);
}

namespace {

// Charset rule from the LabelSet contract: keep encoded names parseable.
void CheckLabelValue(const char* dim, const std::string& value) {
  for (char c : value) {
    REDOOP_CHECK(c != '{' && c != '}' && c != ',' && c != '=' && c != '"' &&
                 c != '\n' && c != '\r')
        << "label value for '" << dim << "' contains a reserved character: "
        << value;
  }
}

}  // namespace

LabelId MetricRegistry::InternLabels(const LabelSet& labels) {
  CheckLabelValue("query", labels.query);
  CheckLabelValue("phase", labels.phase);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = label_ids_.find(labels);
  if (it != label_ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(label_entries_.size());
  label_entries_.push_back(LabelEntry{labels, labels.Encode()});
  label_ids_.emplace(labels, id);
  return id;
}

LabelSet MetricRegistry::label_set(LabelId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  REDOOP_CHECK(id >= 0 && static_cast<size_t>(id) < label_entries_.size())
      << "unknown LabelId " << id;
  return label_entries_[id].labels;
}

namespace {

// Shared lookup shape for the three labeled maps: find-or-create the
// per-name slot, then the per-label instance. Transparent string_view
// find on the outer map means no allocation after first use.
template <typename T, typename LabeledMapT>
T& GetLabeled(LabeledMapT& map, std::string_view name, LabelId labels) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     typename LabeledMapT::mapped_type())
             .first;
  }
  auto& per_label = it->second;
  auto lit = per_label.find(labels);
  if (lit == per_label.end()) {
    lit = per_label.emplace(labels, std::make_unique<T>()).first;
  }
  return *lit->second;
}

}  // namespace

Counter& MetricRegistry::GetCounter(std::string_view name, LabelId labels) {
  if (labels == kNoLabels) return GetCounter(name);
  std::lock_guard<std::mutex> lock(mu_);
  REDOOP_CHECK(static_cast<size_t>(labels) < label_entries_.size())
      << "unknown LabelId " << labels;
  return GetLabeled<Counter>(labeled_counters_, name, labels);
}

Gauge& MetricRegistry::GetGauge(std::string_view name, LabelId labels) {
  if (labels == kNoLabels) return GetGauge(name);
  std::lock_guard<std::mutex> lock(mu_);
  REDOOP_CHECK(static_cast<size_t>(labels) < label_entries_.size())
      << "unknown LabelId " << labels;
  return GetLabeled<Gauge>(labeled_gauges_, name, labels);
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        LabelId labels) {
  if (labels == kNoLabels) return GetHistogram(name);
  std::lock_guard<std::mutex> lock(mu_);
  REDOOP_CHECK(static_cast<size_t>(labels) < label_entries_.size())
      << "unknown LabelId " << labels;
  return GetLabeled<Histogram>(labeled_histograms_, name, labels);
}

void MetricRegistry::Increment(std::string_view name, LabelId labels,
                               int64_t delta) {
  GetCounter(name, labels).Increment(delta);
}

void MetricRegistry::SetGauge(std::string_view name, LabelId labels,
                              double value) {
  GetGauge(name, labels).Set(value);
}

void MetricRegistry::AddGauge(std::string_view name, LabelId labels,
                              double delta) {
  GetGauge(name, labels).Add(delta);
}

void MetricRegistry::Record(std::string_view name, LabelId labels,
                            double value) {
  GetHistogram(name, labels).Record(value);
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricRegistry::Increment(std::string_view name, int64_t delta) {
  GetCounter(name).Increment(delta);
}

void MetricRegistry::SetGauge(std::string_view name, double value) {
  GetGauge(name).Set(value);
}

void MetricRegistry::AddGauge(std::string_view name, double delta) {
  GetGauge(name).Add(delta);
}

void MetricRegistry::Record(std::string_view name, double value) {
  GetHistogram(name).Record(value);
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  // Fold order is pinned here: plain series iterate name-sorted, labeled
  // series iterate name-sorted then LabelId-sorted, and each Counter folds
  // its shards in fixed index order — so two snapshots of identical
  // registry state are identical element-for-element, independent of
  // which threads wrote what.
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, per_label] : labeled_counters_) {
    for (const auto& [id, counter] : per_label) {
      snapshot.counters[name + label_entries_[id].suffix] = counter->value();
    }
  }
  for (const auto& [name, per_label] : labeled_gauges_) {
    for (const auto& [id, gauge] : per_label) {
      snapshot.gauges[name + label_entries_[id].suffix] = gauge->value();
    }
  }
  for (const auto& [name, per_label] : labeled_histograms_) {
    for (const auto& [id, histogram] : per_label) {
      snapshot.histograms[name + label_entries_[id].suffix] =
          histogram->Snapshot();
    }
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  // Contract: callers quiesce all writers first — clearing destroys every
  // metric instance Get* handed out. Interned label ids survive: scopes
  // cache them for their lifetime, and the intern table is metadata, not
  // metric state.
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  labeled_counters_.clear();
  labeled_gauges_.clear();
  labeled_histograms_.clear();
}

}  // namespace obs
}  // namespace redoop
