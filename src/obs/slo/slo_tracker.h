#ifndef REDOOP_OBS_SLO_SLO_TRACKER_H_
#define REDOOP_OBS_SLO_SLO_TRACKER_H_

// Per-query SLO accounting over an analyzed journal: deadline attainment,
// window lag, cache hit ratio, slot-wait, and straggler incidence, per
// (system, query). Everything here derives from journal events alone —
// window.open carries the configured deadline, window.complete the
// response time, task/cache events the rest — so `redoop_inspect` can
// reproduce the driver-exported SLO figures from a journal file with no
// other inputs.
//
// Definitions:
//   attainment = deadline_met / windows_with_deadline (windows whose
//     window.open carried a deadline; -1 when no window did).
//   lag of a window = max(0, response_time - deadline): how far past its
//     deadline the window completed. Windows without a deadline have no
//     lag. A late window delays its successors' triggers, so sustained
//     lag compounds — total_lag_s is the headline backlog signal.
//   straggler incidence = flagged stragglers per completed window.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/analysis/analysis.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {
namespace slo {

/// SLO accounting for one (system, query) group.
struct QuerySlo {
  std::string system;
  std::string query;  ///< "" for unattributed (pre-label) journals.

  int64_t windows = 0;
  double deadline_s = -1.0;  ///< Last configured deadline; -1 = none seen.
  int64_t windows_with_deadline = 0;
  int64_t deadline_met = 0;
  int64_t deadline_missed = 0;

  double total_response_s = 0.0;
  double max_response_s = 0.0;
  double total_lag_s = 0.0;
  double max_lag_s = 0.0;
  double last_lag_s = 0.0;  ///< Lag of the newest window (backlog "now").

  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_hit_bytes = 0;  ///< Logical bytes served from cache.
  /// Host bytes of the columnar-compressed payloads those hits decoded.
  int64_t cache_hit_compressed_bytes = 0;
  /// Budget evictions charged to this query's windows: panes the byte
  /// budget pushed out of the store (each flips back to recompute).
  int64_t cache_evictions = 0;
  int64_t cache_evicted_bytes = 0;

  double slot_wait_s = 0.0;  ///< Map + reduce slot-wait across windows.
  int64_t stragglers = 0;
  int64_t failed_attempts = 0;
  int64_t speculative_attempts = 0;

  /// Fleet serving (DESIGN §17): all zero unless the journal carries
  /// fleet.* events, i.e. the query ran under a MultiQueryCoordinator with
  /// fleet features on. Exported / rendered only when FleetActive().
  int64_t fleet_admissions = 0;
  double fleet_admission_wait_s = 0.0;  ///< Total slot-wait at admission.
  int64_t fleet_queued_peak = 0;
  double fleet_attained_s = 0.0;  ///< Final attained weighted service.
  double fleet_weight = 0.0;      ///< 0 until an admission is seen.
  int64_t fleet_scan_hits = 0;
  int64_t fleet_scan_misses = 0;
  int64_t fleet_scan_hit_bytes = 0;  ///< Bytes shared scans did NOT re-read.
  int64_t fleet_scan_scanned_bytes = 0;
  int64_t fleet_adoptions = 0;       ///< Panes adopted from another query.
  int64_t fleet_adopted_bytes = 0;
  int64_t fleet_evict_fanouts = 0;

  /// met / windows_with_deadline, or -1.0 when no deadline was configured.
  double Attainment() const {
    return windows_with_deadline > 0
               ? static_cast<double>(deadline_met) / windows_with_deadline
               : -1.0;
  }
  double MeanResponse() const {
    return windows > 0 ? total_response_s / windows : 0.0;
  }
  double CacheHitRate() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  double StragglerIncidence() const {
    return windows > 0 ? static_cast<double>(stragglers) / windows : 0.0;
  }
  /// True when the journal recorded any fleet.* activity for the query.
  bool FleetActive() const {
    return fleet_admissions != 0 || fleet_scan_hits != 0 ||
           fleet_scan_misses != 0 || fleet_adoptions != 0 ||
           fleet_evict_fanouts != 0;
  }
  double FleetScanHitRate() const {
    const double total =
        static_cast<double>(fleet_scan_hits + fleet_scan_misses);
    return total > 0.0 ? static_cast<double>(fleet_scan_hits) / total : 0.0;
  }
  double FleetMeanAdmissionWait() const {
    return fleet_admissions > 0 ? fleet_admission_wait_s / fleet_admissions
                                : 0.0;
  }
};

/// Per-query SLO report, sorted by (system, query) for stable rendering.
struct SloReport {
  std::vector<QuerySlo> queries;

  const QuerySlo* Find(std::string_view system,
                       std::string_view query) const;

  /// Deterministic renderers (StringPrintf/FormatDouble).
  std::string ToText() const;
  std::string ToJson() const;
};

/// Builds the report from an analyzed journal. Run the analysis with
/// group_by_query = true to get per-query rows; without it all of a
/// system's queries collapse into one row with query = "".
SloReport ComputeSlo(const analysis::RunAnalysis& analysis);

/// Convenience: LoadFile-style one-shot over a journal.
SloReport ComputeSlo(const EventJournal& journal,
                     const analysis::AnalysisOptions& options);

/// Exports every query's SLO figures into `snapshot` under "slo.*" names
/// labeled with the query dimension (plain names for query = ""), e.g.
/// "slo.attainment{query=wcc}". This is how RunReport::observability and
/// the metrics JSON pick up the tracker output. Attainment is only
/// exported for queries with a configured deadline.
void ExportTo(const SloReport& report, MetricsSnapshot* snapshot);

/// "Top queries by <key>" view over a report.
struct TopOptions {
  /// One of: "cache_bytes", "slot_wait", "lag", "response".
  std::string by = "cache_bytes";
  size_t limit = 10;
};

/// Returns false (and leaves *value untouched) for an unknown key.
bool TopKeyValue(const QuerySlo& q, std::string_view by, double* value);
std::string TopToText(const SloReport& report, const TopOptions& options);
std::string TopToJson(const SloReport& report, const TopOptions& options);

/// Per-tenant fleet view (DESIGN §17): admission wait and attained
/// weighted service, shared-scan savings, and dedup adoptions per query.
/// Queries with no fleet activity are listed as "not fleet-served".
std::string FleetToText(const SloReport& report);
std::string FleetToJson(const SloReport& report);

}  // namespace slo
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_SLO_SLO_TRACKER_H_
