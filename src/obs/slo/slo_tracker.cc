#include "obs/slo/slo_tracker.h"

#include <algorithm>

#include "common/string_utils.h"

namespace redoop {
namespace obs {
namespace slo {

const QuerySlo* SloReport::Find(std::string_view system,
                                std::string_view query) const {
  for (const QuerySlo& q : queries) {
    if (q.system == system && q.query == query) return &q;
  }
  return nullptr;
}

SloReport ComputeSlo(const analysis::RunAnalysis& analysis) {
  SloReport report;
  for (const analysis::SystemAnalysis& s : analysis.systems) {
    QuerySlo q;
    q.system = s.system;
    q.query = s.query;
    for (const analysis::WindowAnalysis& w : s.windows) {
      ++q.windows;
      q.total_response_s += w.response_time;
      q.max_response_s = std::max(q.max_response_s, w.response_time);
      if (w.deadline_s >= 0.0) {
        q.deadline_s = w.deadline_s;
        ++q.windows_with_deadline;
        // Completing exactly at the deadline meets it; the epsilon keeps
        // "response == deadline" stable across double round-trips.
        const double lag = w.response_time - w.deadline_s;
        if (lag <= 1e-9) {
          ++q.deadline_met;
          q.last_lag_s = 0.0;
        } else {
          ++q.deadline_missed;
          q.total_lag_s += lag;
          q.max_lag_s = std::max(q.max_lag_s, lag);
          q.last_lag_s = lag;
        }
      }
      q.cache_hits += w.cache.pane_hits + w.cache.pair_hits;
      q.cache_misses += w.cache.pane_misses + w.cache.pair_misses;
      q.cache_hit_bytes += w.cache.hit_bytes;
      q.cache_hit_compressed_bytes += w.cache.hit_compressed_bytes;
      q.cache_evictions += w.cache.evictions;
      q.cache_evicted_bytes += w.cache.evicted_bytes;
      q.slot_wait_s += w.map_phases.wait + w.reduce_phases.wait;
      q.stragglers += static_cast<int64_t>(w.stragglers.size());
      q.failed_attempts += w.failed_attempts;
      q.speculative_attempts += w.speculative_attempts;
      q.fleet_admissions += w.fleet.admissions;
      q.fleet_admission_wait_s += w.fleet.admission_wait_s;
      q.fleet_queued_peak = std::max(q.fleet_queued_peak,
                                     w.fleet.queued_peak);
      if (w.fleet.admissions > 0) {
        q.fleet_attained_s = w.fleet.attained_s;
        q.fleet_weight = w.fleet.weight;
      }
      q.fleet_scan_hits += w.fleet.scan_hits;
      q.fleet_scan_misses += w.fleet.scan_misses;
      q.fleet_scan_hit_bytes += w.fleet.scan_hit_bytes;
      q.fleet_scan_scanned_bytes += w.fleet.scan_scanned_bytes;
      q.fleet_adoptions += w.fleet.dedup_adoptions;
      q.fleet_adopted_bytes += w.fleet.dedup_bytes;
      q.fleet_evict_fanouts += w.fleet.evict_fanouts;
    }
    report.queries.push_back(std::move(q));
  }
  std::sort(report.queries.begin(), report.queries.end(),
            [](const QuerySlo& a, const QuerySlo& b) {
              if (a.system != b.system) return a.system < b.system;
              return a.query < b.query;
            });
  return report;
}

SloReport ComputeSlo(const EventJournal& journal,
                     const analysis::AnalysisOptions& options) {
  analysis::RunAnalysis analysis;
  // AnalyzeJournal cannot fail today (it returns OK for any journal), but
  // stay defensive: an error yields an empty report.
  if (!AnalyzeJournal(journal, options, &analysis).ok()) return SloReport();
  return ComputeSlo(analysis);
}

void ExportTo(const SloReport& report, MetricsSnapshot* snapshot) {
  for (const QuerySlo& q : report.queries) {
    LabelSet labels;
    labels.query = q.query;
    auto counter = [&](const char* name, int64_t value) {
      snapshot->counters[LabeledName(name, labels)] = value;
    };
    auto gauge = [&](const char* name, double value) {
      snapshot->gauges[LabeledName(name, labels)] = value;
    };
    counter("slo.windows", q.windows);
    if (q.windows_with_deadline > 0) {
      counter("slo.deadline.met", q.deadline_met);
      counter("slo.deadline.missed", q.deadline_missed);
      gauge("slo.attainment", q.Attainment());
      gauge("slo.deadline_s", q.deadline_s);
      gauge("slo.lag.total_s", q.total_lag_s);
      gauge("slo.lag.max_s", q.max_lag_s);
      gauge("slo.lag.last_s", q.last_lag_s);
    }
    gauge("slo.response.mean_s", q.MeanResponse());
    gauge("slo.response.max_s", q.max_response_s);
    gauge("slo.cache.hit_rate", q.CacheHitRate());
    counter("slo.cache.hit.bytes", q.cache_hit_bytes);
    counter("slo.cache.hit.compressed.bytes", q.cache_hit_compressed_bytes);
    counter("slo.cache.evictions", q.cache_evictions);
    counter("slo.cache.evicted.bytes", q.cache_evicted_bytes);
    gauge("slo.slot_wait_s", q.slot_wait_s);
    counter("slo.stragglers", q.stragglers);
    // Fleet figures only exist for coordinator-served queries; gating on
    // activity keeps single-driver exports (and their goldens) unchanged.
    if (q.FleetActive()) {
      counter("slo.fleet.admissions", q.fleet_admissions);
      gauge("slo.fleet.admission.wait_s", q.fleet_admission_wait_s);
      counter("slo.fleet.queued.peak", q.fleet_queued_peak);
      gauge("slo.fleet.attained_s", q.fleet_attained_s);
      gauge("slo.fleet.weight", q.fleet_weight);
      counter("slo.fleet.scan.hits", q.fleet_scan_hits);
      counter("slo.fleet.scan.misses", q.fleet_scan_misses);
      counter("slo.fleet.scan.hit.bytes", q.fleet_scan_hit_bytes);
      counter("slo.fleet.scan.scanned.bytes", q.fleet_scan_scanned_bytes);
      counter("slo.fleet.adoptions", q.fleet_adoptions);
      counter("slo.fleet.adopted.bytes", q.fleet_adopted_bytes);
      counter("slo.fleet.evict.fanouts", q.fleet_evict_fanouts);
    }
  }
}

namespace {

std::string QueryLabel(const QuerySlo& q) {
  std::string out = q.system.empty() ? "(unnamed)" : q.system;
  if (!q.query.empty()) {
    out += "/";
    out += q.query;
  }
  return out;
}

}  // namespace

std::string SloReport::ToText() const {
  std::string out;
  for (const QuerySlo& q : queries) {
    out += StringPrintf("=== %s: %lld windows ===\n", QueryLabel(q).c_str(),
                        static_cast<long long>(q.windows));
    if (q.windows_with_deadline > 0) {
      out += StringPrintf(
          "  deadline    %s s  met %lld/%lld  attainment %s\n",
          FormatDouble(q.deadline_s).c_str(),
          static_cast<long long>(q.deadline_met),
          static_cast<long long>(q.windows_with_deadline),
          FormatDouble(q.Attainment()).c_str());
      out += StringPrintf("  lag         total %s s  max %s s  last %s s\n",
                          FormatDouble(q.total_lag_s).c_str(),
                          FormatDouble(q.max_lag_s).c_str(),
                          FormatDouble(q.last_lag_s).c_str());
    } else {
      out += "  deadline    none configured\n";
    }
    out += StringPrintf("  response    mean %s s  max %s s\n",
                        FormatDouble(q.MeanResponse()).c_str(),
                        FormatDouble(q.max_response_s).c_str());
    out += StringPrintf(
        "  cache       hit rate %s (%lld/%lld, %lld bytes reused, "
        "%lld compressed)\n",
        FormatDouble(q.CacheHitRate()).c_str(),
        static_cast<long long>(q.cache_hits),
        static_cast<long long>(q.cache_hits + q.cache_misses),
        static_cast<long long>(q.cache_hit_bytes),
        static_cast<long long>(q.cache_hit_compressed_bytes));
    out += StringPrintf(
        "  evictions   %lld (%lld bytes reclaimed by the budget)\n",
        static_cast<long long>(q.cache_evictions),
        static_cast<long long>(q.cache_evicted_bytes));
    out += StringPrintf("  slot wait   %s s\n",
                        FormatDouble(q.slot_wait_s).c_str());
    out += StringPrintf(
        "  stragglers  %lld (%s per window)  failed %lld  speculative "
        "%lld\n",
        static_cast<long long>(q.stragglers),
        FormatDouble(q.StragglerIncidence()).c_str(),
        static_cast<long long>(q.failed_attempts),
        static_cast<long long>(q.speculative_attempts));
  }
  return out;
}

std::string SloReport::ToJson() const {
  std::string out = "{\"queries\": [";
  bool first = true;
  for (const QuerySlo& q : queries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf(
        "{\"system\": \"%s\", \"query\": \"%s\", \"windows\": %lld, "
        "\"deadline_s\": %s, \"windows_with_deadline\": %lld, "
        "\"deadline_met\": %lld, \"deadline_missed\": %lld, "
        "\"attainment\": %s, \"response_mean_s\": %s, "
        "\"response_max_s\": %s, \"lag_total_s\": %s, \"lag_max_s\": %s, "
        "\"lag_last_s\": %s, \"cache_hits\": %lld, \"cache_misses\": %lld, "
        "\"cache_hit_rate\": %s, \"cache_hit_bytes\": %lld, "
        "\"cache_hit_compressed_bytes\": %lld, "
        "\"cache_evictions\": %lld, \"cache_evicted_bytes\": %lld, "
        "\"slot_wait_s\": %s, \"stragglers\": %lld, "
        "\"straggler_incidence\": %s, \"failed_attempts\": %lld, "
        "\"speculative_attempts\": %lld}",
        q.system.c_str(), q.query.c_str(),
        static_cast<long long>(q.windows),
        FormatDouble(q.deadline_s).c_str(),
        static_cast<long long>(q.windows_with_deadline),
        static_cast<long long>(q.deadline_met),
        static_cast<long long>(q.deadline_missed),
        FormatDouble(q.Attainment()).c_str(),
        FormatDouble(q.MeanResponse()).c_str(),
        FormatDouble(q.max_response_s).c_str(),
        FormatDouble(q.total_lag_s).c_str(),
        FormatDouble(q.max_lag_s).c_str(),
        FormatDouble(q.last_lag_s).c_str(),
        static_cast<long long>(q.cache_hits),
        static_cast<long long>(q.cache_misses),
        FormatDouble(q.CacheHitRate()).c_str(),
        static_cast<long long>(q.cache_hit_bytes),
        static_cast<long long>(q.cache_hit_compressed_bytes),
        static_cast<long long>(q.cache_evictions),
        static_cast<long long>(q.cache_evicted_bytes),
        FormatDouble(q.slot_wait_s).c_str(),
        static_cast<long long>(q.stragglers),
        FormatDouble(q.StragglerIncidence()).c_str(),
        static_cast<long long>(q.failed_attempts),
        static_cast<long long>(q.speculative_attempts));
  }
  out += "\n]}\n";
  return out;
}

std::string FleetToText(const SloReport& report) {
  std::string out;
  for (const QuerySlo& q : report.queries) {
    out += StringPrintf("=== %s: %lld windows ===\n", QueryLabel(q).c_str(),
                        static_cast<long long>(q.windows));
    if (!q.FleetActive()) {
      out += "  not fleet-served (no fleet.* events in the journal)\n";
      continue;
    }
    out += StringPrintf(
        "  admission   %lld admits  wait total %s s (mean %s s)  queued "
        "peak %lld\n",
        static_cast<long long>(q.fleet_admissions),
        FormatDouble(q.fleet_admission_wait_s).c_str(),
        FormatDouble(q.FleetMeanAdmissionWait()).c_str(),
        static_cast<long long>(q.fleet_queued_peak));
    out += StringPrintf("  fair share  weight %s  attained %s weighted s\n",
                        FormatDouble(q.fleet_weight).c_str(),
                        FormatDouble(q.fleet_attained_s).c_str());
    out += StringPrintf(
        "  shared scan hit rate %s (%lld/%lld batches, %lld bytes not "
        "re-read, %lld scanned)\n",
        FormatDouble(q.FleetScanHitRate()).c_str(),
        static_cast<long long>(q.fleet_scan_hits),
        static_cast<long long>(q.fleet_scan_hits + q.fleet_scan_misses),
        static_cast<long long>(q.fleet_scan_hit_bytes),
        static_cast<long long>(q.fleet_scan_scanned_bytes));
    out += StringPrintf(
        "  dedup       %lld panes adopted (%lld bytes shared)  evict "
        "fan-outs %lld\n",
        static_cast<long long>(q.fleet_adoptions),
        static_cast<long long>(q.fleet_adopted_bytes),
        static_cast<long long>(q.fleet_evict_fanouts));
  }
  return out;
}

std::string FleetToJson(const SloReport& report) {
  std::string out = "{\"queries\": [";
  bool first = true;
  for (const QuerySlo& q : report.queries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf(
        "{\"system\": \"%s\", \"query\": \"%s\", \"windows\": %lld, "
        "\"fleet_served\": %s, \"admissions\": %lld, "
        "\"admission_wait_s\": %s, \"queued_peak\": %lld, "
        "\"weight\": %s, \"attained_s\": %s, \"scan_hits\": %lld, "
        "\"scan_misses\": %lld, \"scan_hit_rate\": %s, "
        "\"scan_hit_bytes\": %lld, \"scan_scanned_bytes\": %lld, "
        "\"adoptions\": %lld, \"adopted_bytes\": %lld, "
        "\"evict_fanouts\": %lld}",
        q.system.c_str(), q.query.c_str(),
        static_cast<long long>(q.windows),
        q.FleetActive() ? "true" : "false",
        static_cast<long long>(q.fleet_admissions),
        FormatDouble(q.fleet_admission_wait_s).c_str(),
        static_cast<long long>(q.fleet_queued_peak),
        FormatDouble(q.fleet_weight).c_str(),
        FormatDouble(q.fleet_attained_s).c_str(),
        static_cast<long long>(q.fleet_scan_hits),
        static_cast<long long>(q.fleet_scan_misses),
        FormatDouble(q.FleetScanHitRate()).c_str(),
        static_cast<long long>(q.fleet_scan_hit_bytes),
        static_cast<long long>(q.fleet_scan_scanned_bytes),
        static_cast<long long>(q.fleet_adoptions),
        static_cast<long long>(q.fleet_adopted_bytes),
        static_cast<long long>(q.fleet_evict_fanouts));
  }
  out += "\n]}\n";
  return out;
}

bool TopKeyValue(const QuerySlo& q, std::string_view by, double* value) {
  if (by == "cache_bytes") {
    *value = static_cast<double>(q.cache_hit_bytes);
  } else if (by == "slot_wait") {
    *value = q.slot_wait_s;
  } else if (by == "lag") {
    *value = q.total_lag_s;
  } else if (by == "response") {
    *value = q.total_response_s;
  } else {
    return false;
  }
  return true;
}

namespace {

std::vector<const QuerySlo*> RankedQueries(const SloReport& report,
                                           const TopOptions& options) {
  std::vector<const QuerySlo*> ranked;
  for (const QuerySlo& q : report.queries) ranked.push_back(&q);
  std::sort(ranked.begin(), ranked.end(),
            [&](const QuerySlo* a, const QuerySlo* b) {
              double va = 0.0, vb = 0.0;
              TopKeyValue(*a, options.by, &va);
              TopKeyValue(*b, options.by, &vb);
              if (va != vb) return va > vb;
              if (a->system != b->system) return a->system < b->system;
              return a->query < b->query;
            });
  if (ranked.size() > options.limit) ranked.resize(options.limit);
  return ranked;
}

}  // namespace

std::string TopToText(const SloReport& report, const TopOptions& options) {
  std::string out = StringPrintf("top queries by %s\n", options.by.c_str());
  int rank = 1;
  for (const QuerySlo* q : RankedQueries(report, options)) {
    double value = 0.0;
    TopKeyValue(*q, options.by, &value);
    out += StringPrintf(
        "%2d. %-32s %-12s (windows %lld, cache hit rate %s, lag total "
        "%s s)\n",
        rank++, QueryLabel(*q).c_str(), FormatDouble(value).c_str(),
        static_cast<long long>(q->windows),
        FormatDouble(q->CacheHitRate()).c_str(),
        FormatDouble(q->total_lag_s).c_str());
  }
  return out;
}

std::string TopToJson(const SloReport& report, const TopOptions& options) {
  std::string out =
      StringPrintf("{\"by\": \"%s\", \"queries\": [", options.by.c_str());
  bool first = true;
  for (const QuerySlo* q : RankedQueries(report, options)) {
    double value = 0.0;
    TopKeyValue(*q, options.by, &value);
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf(
        "{\"system\": \"%s\", \"query\": \"%s\", \"value\": %s, "
        "\"windows\": %lld, \"cache_hit_rate\": %s, \"slot_wait_s\": %s, "
        "\"lag_total_s\": %s}",
        q->system.c_str(), q->query.c_str(), FormatDouble(value).c_str(),
        static_cast<long long>(q->windows),
        FormatDouble(q->CacheHitRate()).c_str(),
        FormatDouble(q->slot_wait_s).c_str(),
        FormatDouble(q->total_lag_s).c_str());
  }
  out += "\n]}\n";
  return out;
}

}  // namespace slo
}  // namespace obs
}  // namespace redoop
