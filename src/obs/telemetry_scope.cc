#include "obs/telemetry_scope.h"

#include "common/logging.h"

namespace redoop {
namespace obs {

TelemetryScope::TelemetryScope(ObservabilityContext* obs, std::string query,
                               const int64_t* window_cell,
                               const trace::TraceContext* trace_cell)
    : obs_(obs), window_cell_(window_cell), trace_cell_(trace_cell) {
  labels_.query = std::move(query);
  if (obs_ != nullptr && !labels_.empty()) {
    label_id_ = obs_->metrics().InternLabels(labels_);
  }
}

TelemetryScope::TelemetryScope(ObservabilityContext* obs, LabelSet labels,
                               const int64_t* window_cell,
                               const trace::TraceContext* trace_cell)
    : obs_(obs),
      labels_(std::move(labels)),
      window_cell_(window_cell),
      trace_cell_(trace_cell) {
  if (obs_ != nullptr && !labels_.empty()) {
    label_id_ = obs_->metrics().InternLabels(labels_);
  }
}

TelemetryScope TelemetryScope::WithNode(int32_t node) const {
  LabelSet labels = labels_;
  labels.node = node;
  return TelemetryScope(obs_, std::move(labels), window_cell_, trace_cell_);
}

TelemetryScope TelemetryScope::WithPhase(std::string phase) const {
  LabelSet labels = labels_;
  labels.phase = std::move(phase);
  return TelemetryScope(obs_, std::move(labels), window_cell_, trace_cell_);
}

Event& TelemetryScope::Emit(std::string type) const {
  return EmitAt(Now(), std::move(type));
}

Event& TelemetryScope::EmitAt(double time, std::string type) const {
  REDOOP_CHECK(obs_ != nullptr) << "Emit through an inactive TelemetryScope";
  Event& e = obs_->EmitAt(time, std::move(type));
  if (!labels_.query.empty()) e.With("query", labels_.query);
  const int64_t w = window();
  if (w >= 0) e.With("window", w);
  if (trace_cell_ != nullptr && trace_cell_->active() &&
      trace_cell_->sampled) {
    e.With("trace", trace::IdHex(trace_cell_->trace_id));
    e.With("pspan", trace::IdHex(trace_cell_->span_id));
  }
  return e;
}

void TelemetryScope::Increment(std::string_view name, int64_t delta) const {
  if (obs_ == nullptr) return;
  obs_->metrics().Increment(name, delta);
  if (label_id_ != kNoLabels) {
    obs_->metrics().Increment(name, label_id_, delta);
  }
}

void TelemetryScope::SetGauge(std::string_view name, double value) const {
  if (obs_ == nullptr) return;
  obs_->metrics().SetGauge(name, value);
  if (label_id_ != kNoLabels) {
    obs_->metrics().SetGauge(name, label_id_, value);
  }
}

void TelemetryScope::AddGauge(std::string_view name, double delta) const {
  if (obs_ == nullptr) return;
  obs_->metrics().AddGauge(name, delta);
  if (label_id_ != kNoLabels) {
    obs_->metrics().AddGauge(name, label_id_, delta);
  }
}

void TelemetryScope::Record(std::string_view name, double value) const {
  if (obs_ == nullptr) return;
  obs_->metrics().Record(name, value);
  if (label_id_ != kNoLabels) {
    obs_->metrics().Record(name, label_id_, value);
  }
}

}  // namespace obs
}  // namespace redoop
