#include "obs/analysis/analysis.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_utils.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {
namespace analysis {

void PhaseBreakdown::Add(const PhaseBreakdown& other) {
  wait += other.wait;
  startup += other.startup;
  read += other.read;
  shuffle += other.shuffle;
  sort += other.sort;
  compute += other.compute;
  write += other.write;
}

void CacheStats::Add(const CacheStats& other) {
  pane_hits += other.pane_hits;
  pane_misses += other.pane_misses;
  pair_hits += other.pair_hits;
  pair_misses += other.pair_misses;
  hit_bytes += other.hit_bytes;
  hit_compressed_bytes += other.hit_compressed_bytes;
  miss_bytes += other.miss_bytes;
  evictions += other.evictions;
  evicted_bytes += other.evicted_bytes;
}

void FleetWindowStats::Add(const FleetWindowStats& other) {
  admissions += other.admissions;
  admission_wait_s += other.admission_wait_s;
  queued_peak = std::max(queued_peak, other.queued_peak);
  if (other.admissions > 0) {
    attained_s = other.attained_s;
    weight = other.weight;
  }
  scan_hits += other.scan_hits;
  scan_misses += other.scan_misses;
  scan_hit_bytes += other.scan_hit_bytes;
  scan_scanned_bytes += other.scan_scanned_bytes;
  dedup_adoptions += other.dedup_adoptions;
  dedup_bytes += other.dedup_bytes;
  evict_fanouts += other.evict_fanouts;
}

void BlameBreakdown::Add(const BlameBreakdown& other) {
  compute += other.compute;
  cache_wait += other.cache_wait;
  slot_wait += other.slot_wait;
  skew += other.skew;
  recovery += other.recovery;
}

double CacheStats::HitRate() const {
  const double hits = static_cast<double>(pane_hits + pair_hits);
  const double total =
      hits + static_cast<double>(pane_misses + pair_misses);
  return total > 0.0 ? hits / total : 0.0;
}

double SystemAnalysis::TotalResponseTime() const {
  double total = 0.0;
  for (const WindowAnalysis& w : windows) total += w.response_time;
  return total;
}

double SystemAnalysis::TotalCriticalPath() const {
  double total = 0.0;
  for (const WindowAnalysis& w : windows) total += w.critical_path.length;
  return total;
}

double SystemAnalysis::TotalCriticalPathWait() const {
  double total = 0.0;
  for (const WindowAnalysis& w : windows) total += w.critical_path.wait;
  return total;
}

PhaseBreakdown SystemAnalysis::TotalMapPhases() const {
  PhaseBreakdown total;
  for (const WindowAnalysis& w : windows) total.Add(w.map_phases);
  return total;
}

PhaseBreakdown SystemAnalysis::TotalReducePhases() const {
  PhaseBreakdown total;
  for (const WindowAnalysis& w : windows) total.Add(w.reduce_phases);
  return total;
}

FleetWindowStats SystemAnalysis::TotalFleet() const {
  FleetWindowStats total;
  for (const WindowAnalysis& w : windows) total.Add(w.fleet);
  return total;
}

CacheStats SystemAnalysis::TotalCache() const {
  CacheStats total;
  for (const WindowAnalysis& w : windows) total.Add(w.cache);
  return total;
}

BlameBreakdown SystemAnalysis::TotalBlame() const {
  BlameBreakdown total;
  for (const WindowAnalysis& w : windows) total.Add(w.blame);
  return total;
}

int64_t SystemAnalysis::TotalStragglers() const {
  int64_t total = 0;
  for (const WindowAnalysis& w : windows) {
    total += static_cast<int64_t>(w.stragglers.size());
  }
  return total;
}

const SystemAnalysis* RunAnalysis::FindSystem(std::string_view name) const {
  for (const SystemAnalysis& s : systems) {
    if (s.system == name) return &s;
  }
  return nullptr;
}

const SystemAnalysis* RunAnalysis::FindQuery(std::string_view system,
                                             std::string_view query) const {
  for (const SystemAnalysis& s : systems) {
    if (s.system == system && s.query == query) return &s;
  }
  return nullptr;
}

namespace {

PhaseBreakdown PhasesFromFinish(const Event& e) {
  PhaseBreakdown p;
  p.wait = e.DoubleOr("wait", 0.0);
  p.startup = e.DoubleOr("startup", 0.0);
  p.read = e.DoubleOr("read", 0.0);
  p.shuffle = e.DoubleOr("shuffle", 0.0);
  p.sort = e.DoubleOr("sort", 0.0);
  p.compute = e.DoubleOr("compute", 0.0);
  p.write = e.DoubleOr("write", 0.0);
  return p;
}

double MedianDuration(std::vector<double> durations) {
  // Nearest-rank median (upper element for even sizes), matching the
  // histogram quantile convention.
  const size_t n = durations.size();
  const size_t rank = n / 2;  // 0-based: ceil(n/2)-th smallest.
  std::nth_element(durations.begin(),
                   durations.begin() + static_cast<int64_t>(rank),
                   durations.end());
  return durations[rank];
}

/// Critical path of one job: true longest path through the span DAG.
/// Nodes are the job submit, every finished task attempt, and the job
/// finish; edges run submit -> map, map -> reduce (the shuffle barrier),
/// and tail -> finish, weighted by the zero-clamped scheduling gap plus
/// the successor task's duration. On a well-formed journal every
/// (map, reduce) chain telescopes to finish - submit, so all chains tie
/// and the tie-break — prefer the later-ending predecessor — reproduces
/// the wave-tail choice of the heuristic this replaced; on reordered or
/// failure-heavy journals (where clamping bites) the DP maximizes over
/// every chain instead of assuming the last-ending tasks chain up.
void AppendJobCriticalPath(const JobSpan& job, WindowCriticalPath* path) {
  std::vector<const TaskSpan*> maps;
  std::vector<const TaskSpan*> reduces;
  for (const TaskSpan& task : job.tasks) {
    if (!task.finished) continue;
    (task.is_map ? maps : reduces).push_back(&task);
  }

  auto add = [path](std::string label, const TaskSpan* task, double start,
                    double duration, double wait) {
    CriticalPathStep step;
    step.label = std::move(label);
    if (task != nullptr) {
      step.task = task->id;
      step.node = task->node;
    }
    step.start = start;
    step.duration = std::max(0.0, duration);
    step.wait = std::max(0.0, wait);
    path->steps.push_back(std::move(step));
    path->length += std::max(0.0, duration);
    path->wait += std::max(0.0, wait);
  };

  if (maps.empty() && reduces.empty()) {
    add("job", nullptr, job.start, job.Elapsed(), 0.0);
    return;
  }

  // Ties (telescoped chains are equal up to rounding) break toward the
  // later-ending predecessor.
  constexpr double kTieEps = 1e-9;
  auto better = [](double value, double pred_end, double best,
                   double best_pred_end) {
    if (value > best + kTieEps) return true;
    if (value < best - kTieEps) return false;
    return pred_end > best_pred_end;
  };
  auto gap = [](double from_end, double to_start) {
    return std::max(0.0, to_start - from_end);
  };

  // best length of a chain ending at each task (inclusive of its duration).
  std::vector<double> map_best(maps.size());
  for (size_t i = 0; i < maps.size(); ++i) {
    map_best[i] = gap(job.start, maps[i]->start) + maps[i]->duration;
  }
  std::vector<double> reduce_best(reduces.size());
  std::vector<int64_t> reduce_pred(reduces.size(), -1);
  for (size_t j = 0; j < reduces.size(); ++j) {
    if (maps.empty()) {
      reduce_best[j] = gap(job.start, reduces[j]->start) +
                       reduces[j]->duration;
      continue;
    }
    double best = 0.0;
    double best_pred_end = 0.0;
    int64_t best_i = -1;
    for (size_t i = 0; i < maps.size(); ++i) {
      const double value = map_best[i] +
                           gap(maps[i]->end(), reduces[j]->start) +
                           reduces[j]->duration;
      if (best_i < 0 ||
          better(value, maps[i]->end(), best, best_pred_end)) {
        best = value;
        best_pred_end = maps[i]->end();
        best_i = static_cast<int64_t>(i);
      }
    }
    reduce_best[j] = best;
    reduce_pred[j] = best_i;
  }

  // Finish node: tails are the reduces when any ran, else the maps.
  const std::vector<const TaskSpan*>& tails =
      reduces.empty() ? maps : reduces;
  const std::vector<double>& tail_best =
      reduces.empty() ? map_best : reduce_best;
  double best = 0.0;
  double best_pred_end = 0.0;
  int64_t best_tail = -1;
  for (size_t t = 0; t < tails.size(); ++t) {
    const double value = tail_best[t] + gap(tails[t]->end(), job.finish);
    if (best_tail < 0 ||
        better(value, tails[t]->end(), best, best_pred_end)) {
      best = value;
      best_pred_end = tails[t]->end();
      best_tail = static_cast<int64_t>(t);
    }
  }

  const TaskSpan* path_reduce =
      reduces.empty() ? nullptr
                      : reduces[static_cast<size_t>(best_tail)];
  const TaskSpan* path_map = nullptr;
  if (reduces.empty()) {
    path_map = maps[static_cast<size_t>(best_tail)];
  } else if (reduce_pred[static_cast<size_t>(best_tail)] >= 0) {
    path_map = maps[static_cast<size_t>(
        reduce_pred[static_cast<size_t>(best_tail)])];
  }

  const TaskSpan* first = path_map != nullptr ? path_map : path_reduce;
  add("startup", nullptr, job.start, first->start - job.start, first->wait);
  if (path_map != nullptr) {
    add("map", path_map, path_map->start, path_map->duration, 0.0);
  }
  if (path_reduce != nullptr) {
    if (path_map != nullptr) {
      add("barrier", nullptr, path_map->end(),
          path_reduce->start - path_map->end(), path_reduce->wait);
    }
    add("reduce", path_reduce, path_reduce->start, path_reduce->duration,
        0.0);
  }
  const TaskSpan* tail = path_reduce != nullptr ? path_reduce : path_map;
  add("finalize", nullptr, tail->end(), job.finish - tail->end(), 0.0);
}

void FlagStragglers(const WindowAnalysis& window, double k,
                    std::vector<Straggler>* out) {
  for (const JobSpan& job : window.jobs) {
    for (const bool is_map : {true, false}) {
      std::vector<double> wave;
      for (const TaskSpan& task : job.tasks) {
        if (task.finished && task.is_map == is_map) {
          wave.push_back(task.duration);
        }
      }
      if (wave.size() < 2) continue;  // A lone task defines its own median.
      const double median = MedianDuration(wave);
      if (median <= 0.0) continue;
      for (const TaskSpan& task : job.tasks) {
        if (!task.finished || task.is_map != is_map) continue;
        if (task.duration > k * median) {
          Straggler s;
          s.task = task.id;
          s.is_map = task.is_map;
          s.node = task.node;
          s.duration = task.duration;
          s.wave_median = median;
          out->push_back(s);
        }
      }
    }
  }
}

/// Splits a window's critical-path length into blame buckets. Each step
/// contributes exactly its duration, so the buckets sum to the length.
/// Task steps: recovery when the attempt is a re-issue; else skew (excess
/// over the wave median) and, for maps of panes that missed the cache
/// this window, cache-wait (the read time reuse would have saved); the
/// remainder is compute. Gap steps (startup/barrier/finalize) split into
/// slot-wait and compute.
void ComputeBlame(WindowAnalysis* window,
                  const std::set<std::pair<int64_t, int64_t>>& missed) {
  std::map<int64_t, const TaskSpan*> tasks;
  for (const JobSpan& job : window->jobs) {
    for (const TaskSpan& t : job.tasks) tasks[t.id] = &t;
  }
  std::map<int64_t, double> straggler_median;
  for (const Straggler& s : window->stragglers) {
    straggler_median[s.task] = s.wave_median;
  }

  BlameBreakdown& b = window->blame;
  for (const CriticalPathStep& step : window->critical_path.steps) {
    const double d = step.duration;
    const TaskSpan* task = nullptr;
    if (step.task >= 0) {
      auto it = tasks.find(step.task);
      if (it != tasks.end()) task = it->second;
    }
    if (task == nullptr) {
      const double slot = std::min(std::max(0.0, step.wait), d);
      b.slot_wait += slot;
      b.compute += d - slot;
      continue;
    }
    if (task->attempt > 0) {
      b.recovery += d;
      continue;
    }
    double skew_part = 0.0;
    auto sit = straggler_median.find(task->id);
    if (sit != straggler_median.end()) {
      skew_part = std::min(d, std::max(0.0, d - sit->second));
    }
    double cache_part = 0.0;
    if (task->is_map && missed.count({task->source, task->pane}) > 0) {
      cache_part = std::max(0.0, std::min(task->phases.read, d - skew_part));
    }
    b.skew += skew_part;
    b.cache_wait += cache_part;
    b.compute += d - skew_part - cache_part;
  }
}

/// Per-system reconstruction state while scanning the journal.
struct SystemBuilder {
  SystemAnalysis analysis;
  WindowAnalysis window;        // Open window being filled.
  bool window_open = false;
  JobSpan job;                  // Open job being filled.
  bool job_open = false;
  std::map<int64_t, size_t> task_index;  // task id -> index in job.tasks.
  /// Panes that missed the cache this window (blame: their path reads are
  /// cache-wait, not compute). Cleared per window.
  std::set<std::pair<int64_t, int64_t>> missed_panes;

  void FinalizeWindow(double straggler_k) {
    if (job_open) CloseJob();  // Truncated journal: keep partial job.
    for (const JobSpan& j : window.jobs) {
      AppendJobCriticalPath(j, &window.critical_path);
    }
    FlagStragglers(window, straggler_k, &window.stragglers);
    ComputeBlame(&window, missed_panes);
    missed_panes.clear();
    analysis.windows.push_back(std::move(window));
    window = WindowAnalysis();
    window_open = false;
  }

  void CloseJob() {
    if (job.finish <= job.start) {
      // Missing job.finish: extend to the last task span.
      for (const TaskSpan& t : job.tasks) {
        job.finish = std::max(job.finish, t.end());
      }
      job.finish = std::max(job.finish, job.start);
    }
    window.jobs.push_back(std::move(job));
    job = JobSpan();
    job_open = false;
    task_index.clear();
  }

  /// Opens a synthetic window for events arriving outside window.open /
  /// window.complete (defensive; the drivers always bracket).
  void EnsureWindow(double time) {
    if (window_open) return;
    window.recurrence = -1;
    window.open_time = time;
    window.trigger_time = time;
    window_open = true;
  }
};

}  // namespace

Status AnalyzeJournal(const EventJournal& journal,
                      const AnalysisOptions& options, RunAnalysis* out) {
  *out = RunAnalysis();
  std::vector<SystemBuilder> builders;
  std::map<std::string, size_t> builder_index;

  auto builder_for = [&](const Event& e) -> SystemBuilder& {
    const std::string system = e.StrOr("system", "");
    const std::string query =
        options.group_by_query ? e.StrOr("query", "") : std::string();
    // '\n' cannot appear in either value (journal lines are flat), so the
    // concatenation is an unambiguous composite key.
    const std::string key = system + '\n' + query;
    auto it = builder_index.find(key);
    if (it == builder_index.end()) {
      it = builder_index.emplace(key, builders.size()).first;
      builders.emplace_back();
      builders.back().analysis.system = system;
      builders.back().analysis.query = query;
    }
    return builders[it->second];
  };

  for (const Event& e : journal.events()) {
    const std::string& type = e.type();
    if (type == event::kWindowOpen) {
      SystemBuilder& b = builder_for(e);
      if (b.window_open) b.FinalizeWindow(options.straggler_k);
      b.window.recurrence = e.IntOr("recurrence", -1);
      b.window.open_time = e.time();
      b.window.trigger_time = e.DoubleOr("trigger", e.time());
      b.window.deadline_s = e.DoubleOr("deadline", -1.0);
      b.window_open = true;
    } else if (type == event::kWindowTrigger) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      b.window.trigger_time = e.DoubleOr("trigger", e.time());
    } else if (type == event::kWindowComplete) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      b.window.complete_time = e.time();
      b.window.response_time = e.DoubleOr("response_time", 0.0);
      b.FinalizeWindow(options.straggler_k);
    } else if (type == event::kJobStart) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      if (b.job_open) b.CloseJob();
      b.job.name = e.StrOr("job", "");
      b.job.start = e.time();
      b.job_open = true;
    } else if (type == event::kJobFinish) {
      SystemBuilder& b = builder_for(e);
      if (!b.job_open) continue;  // Unmatched finish: nothing to close.
      b.job.finish = e.time();
      b.CloseJob();
    } else if (type == event::kTaskStart) {
      SystemBuilder& b = builder_for(e);
      if (!b.job_open) continue;
      TaskSpan task;
      task.id = e.IntOr("task", -1);
      task.is_map = e.StrOr("kind", "map") == "map";
      task.node = e.IntOr("node", -1);
      task.attempt = e.IntOr("attempt", 0);
      task.source = e.IntOr("source", 0);
      task.pane = e.IntOr("pane", -1);
      task.partition = e.IntOr("partition", -1);
      task.start = e.time();
      task.wait = e.DoubleOr("wait", 0.0);
      b.task_index[task.id] = b.job.tasks.size();
      b.job.tasks.push_back(std::move(task));
    } else if (type == event::kTaskFinish) {
      SystemBuilder& b = builder_for(e);
      if (!b.job_open) continue;
      const int64_t id = e.IntOr("task", -1);
      auto it = b.task_index.find(id);
      if (it == b.task_index.end()) {
        // Pre-span journal (no task.start): synthesize from the finish.
        TaskSpan task;
        task.id = id;
        task.is_map = e.StrOr("kind", "map") == "map";
        task.source = e.IntOr("source", 0);
        task.pane = e.IntOr("pane", -1);
        task.partition = e.IntOr("partition", -1);
        task.start = e.DoubleOr("start", e.time());
        it = b.task_index.emplace(id, b.job.tasks.size()).first;
        b.job.tasks.push_back(std::move(task));
      }
      TaskSpan& task = b.job.tasks[it->second];
      task.node = e.IntOr("node", task.node);
      task.attempt = e.IntOr("attempt", task.attempt);
      task.duration = e.DoubleOr("duration", e.time() - task.start);
      task.phases = PhasesFromFinish(e);
      task.wait = std::max(task.wait, task.phases.wait);
      task.phases.wait = task.wait;
      task.finished = true;
      (task.is_map ? b.window.map_phases : b.window.reduce_phases)
          .Add(task.phases);
    } else if (type == event::kTaskFail) {
      SystemBuilder& b = builder_for(e);
      if (b.window_open) ++b.window.failed_attempts;
    } else if (type == event::kTaskSpeculate) {
      SystemBuilder& b = builder_for(e);
      if (b.window_open) ++b.window.speculative_attempts;
    } else if (type == event::kCachePaneHit || type == event::kCachePaneMiss) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      const bool hit = type == event::kCachePaneHit;
      const int64_t bytes = e.IntOr("bytes", 0);
      if (hit) {
        ++b.window.cache.pane_hits;
        b.window.cache.hit_bytes += bytes;
        b.window.cache.hit_compressed_bytes +=
            e.IntOr("compressed_bytes", bytes);
      } else {
        ++b.window.cache.pane_misses;
        b.window.cache.miss_bytes += bytes;
        b.missed_panes.insert({e.IntOr("source", -1), e.IntOr("pane", -1)});
      }
    } else if (type == event::kCachePairHit || type == event::kCachePairMiss) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      const int64_t count = e.IntOr("count", 1);
      if (type == event::kCachePairHit) {
        b.window.cache.pair_hits += count;
      } else {
        b.window.cache.pair_misses += count;
      }
    } else if (type == event::kFleetAdmit) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      ++b.window.fleet.admissions;
      b.window.fleet.admission_wait_s += e.DoubleOr("wait", 0.0);
      b.window.fleet.queued_peak =
          std::max(b.window.fleet.queued_peak, e.IntOr("queued", 0));
      b.window.fleet.attained_s = e.DoubleOr("attained", 0.0);
      b.window.fleet.weight = e.DoubleOr("weight", 1.0);
    } else if (type == event::kFleetScan) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      b.window.fleet.scan_hits += e.IntOr("hits", 0);
      b.window.fleet.scan_misses += e.IntOr("misses", 0);
      // "bytes" is everything served; "scanned_bytes" the part that hit
      // the inner feed. The difference is what shared scans saved.
      b.window.fleet.scan_hit_bytes +=
          e.IntOr("bytes", 0) - e.IntOr("scanned_bytes", 0);
      b.window.fleet.scan_scanned_bytes += e.IntOr("scanned_bytes", 0);
    } else if (type == event::kFleetAdopt) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      ++b.window.fleet.dedup_adoptions;
      b.window.fleet.dedup_bytes += e.IntOr("bytes", 0);
    } else if (type == event::kFleetEvictFanout) {
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      ++b.window.fleet.evict_fanouts;
    } else if (type == event::kCachePaneEvict) {
      // Budget evictions can land between recurrences (EnforceBudget at
      // the recurrence boundary); charge them to the open window when one
      // exists, else to the next window that opens.
      SystemBuilder& b = builder_for(e);
      b.EnsureWindow(e.time());
      ++b.window.cache.evictions;
      b.window.cache.evicted_bytes += e.IntOr("bytes", 0);
    }
  }

  for (SystemBuilder& b : builders) {
    if (b.window_open) b.FinalizeWindow(options.straggler_k);
    out->systems.push_back(std::move(b.analysis));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

namespace {

std::string PhaseJson(const PhaseBreakdown& p) {
  return StringPrintf(
      "{\"wait\": %s, \"startup\": %s, \"read\": %s, \"shuffle\": %s, "
      "\"sort\": %s, \"compute\": %s, \"write\": %s, \"total\": %s}",
      FormatDouble(p.wait).c_str(), FormatDouble(p.startup).c_str(),
      FormatDouble(p.read).c_str(), FormatDouble(p.shuffle).c_str(),
      FormatDouble(p.sort).c_str(), FormatDouble(p.compute).c_str(),
      FormatDouble(p.write).c_str(), FormatDouble(p.TaskTotal()).c_str());
}

std::string CacheJson(const CacheStats& c) {
  return StringPrintf(
      "{\"pane_hits\": %lld, \"pane_misses\": %lld, \"pair_hits\": %lld, "
      "\"pair_misses\": %lld, \"hit_bytes\": %lld, "
      "\"hit_compressed_bytes\": %lld, \"miss_bytes\": %lld, "
      "\"evictions\": %lld, \"evicted_bytes\": %lld, \"hit_rate\": %s}",
      static_cast<long long>(c.pane_hits),
      static_cast<long long>(c.pane_misses),
      static_cast<long long>(c.pair_hits),
      static_cast<long long>(c.pair_misses),
      static_cast<long long>(c.hit_bytes),
      static_cast<long long>(c.hit_compressed_bytes),
      static_cast<long long>(c.miss_bytes),
      static_cast<long long>(c.evictions),
      static_cast<long long>(c.evicted_bytes),
      FormatDouble(c.HitRate()).c_str());
}

void AppendPhaseRow(std::string* out, const char* label,
                    const PhaseBreakdown& p) {
  *out += StringPrintf(
      "  %-7s wait=%-9s startup=%-9s read=%-9s shuffle=%-9s sort=%-9s "
      "compute=%-9s write=%-9s total=%s\n",
      label, FormatDouble(p.wait).c_str(), FormatDouble(p.startup).c_str(),
      FormatDouble(p.read).c_str(), FormatDouble(p.shuffle).c_str(),
      FormatDouble(p.sort).c_str(), FormatDouble(p.compute).c_str(),
      FormatDouble(p.write).c_str(), FormatDouble(p.TaskTotal()).c_str());
}

}  // namespace

namespace {

// "system X" / "system X query Y" — group heading shared by both text
// renderers; the query segment only appears for per-query groupings so
// ungrouped output is unchanged.
std::string GroupHeading(const SystemAnalysis& s) {
  std::string out = StringPrintf(
      "system %s", s.system.empty() ? "(unnamed)" : s.system.c_str());
  if (!s.query.empty()) {
    out += StringPrintf(" query %s", s.query.c_str());
  }
  return out;
}

}  // namespace

std::string BreakdownToText(const RunAnalysis& analysis) {
  std::string out;
  for (const SystemAnalysis& s : analysis.systems) {
    out += StringPrintf("=== %s: %zu windows, total response %s s ===\n",
                        GroupHeading(s).c_str(), s.windows.size(),
                        FormatDouble(s.TotalResponseTime()).c_str());
    for (const WindowAnalysis& w : s.windows) {
      const CacheStats& c = w.cache;
      out += StringPrintf(
          "window %ld: response=%s s  jobs=%zu  cache %lld/%lld hits "
          "(%s hit rate, %lld bytes reused)\n",
          w.recurrence, FormatDouble(w.response_time).c_str(), w.jobs.size(),
          static_cast<long long>(c.pane_hits + c.pair_hits),
          static_cast<long long>(c.pane_hits + c.pair_hits + c.pane_misses +
                                 c.pair_misses),
          FormatDouble(c.HitRate()).c_str(),
          static_cast<long long>(c.hit_bytes));
      AppendPhaseRow(&out, "map", w.map_phases);
      AppendPhaseRow(&out, "reduce", w.reduce_phases);
    }
    out += "totals:\n";
    AppendPhaseRow(&out, "map", s.TotalMapPhases());
    AppendPhaseRow(&out, "reduce", s.TotalReducePhases());
    const CacheStats total = s.TotalCache();
    out += StringPrintf(
        "  cache   pane %lld/%lld  pair %lld/%lld  hit rate %s  reused "
        "%lld bytes (%lld compressed)\n",
        static_cast<long long>(total.pane_hits),
        static_cast<long long>(total.pane_hits + total.pane_misses),
        static_cast<long long>(total.pair_hits),
        static_cast<long long>(total.pair_hits + total.pair_misses),
        FormatDouble(total.HitRate()).c_str(),
        static_cast<long long>(total.hit_bytes),
        static_cast<long long>(total.hit_compressed_bytes));
    if (total.evictions > 0) {
      out += StringPrintf(
          "  evict   %lld panes (%lld bytes) pushed out by the byte "
          "budget\n",
          static_cast<long long>(total.evictions),
          static_cast<long long>(total.evicted_bytes));
    }
  }
  return out;
}

std::string BreakdownToJson(const RunAnalysis& analysis) {
  std::string out = "{\"systems\": [";
  bool first_system = true;
  for (const SystemAnalysis& s : analysis.systems) {
    out += first_system ? "\n" : ",\n";
    first_system = false;
    out += StringPrintf("{\"system\": \"%s\", \"query\": \"%s\", "
                        "\"windows\": [",
                        s.system.c_str(), s.query.c_str());
    bool first_window = true;
    for (const WindowAnalysis& w : s.windows) {
      out += first_window ? "\n" : ",\n";
      first_window = false;
      out += StringPrintf(
          "{\"recurrence\": %ld, \"response_time\": %s, \"jobs\": %zu, "
          "\"map\": %s, \"reduce\": %s, \"cache\": %s, "
          "\"critical_path\": {\"length\": %s, \"wait\": %s}, "
          "\"stragglers\": %zu, \"failed_attempts\": %lld, "
          "\"speculations\": %lld}",
          w.recurrence, FormatDouble(w.response_time).c_str(), w.jobs.size(),
          PhaseJson(w.map_phases).c_str(), PhaseJson(w.reduce_phases).c_str(),
          CacheJson(w.cache).c_str(),
          FormatDouble(w.critical_path.length).c_str(),
          FormatDouble(w.critical_path.wait).c_str(), w.stragglers.size(),
          static_cast<long long>(w.failed_attempts),
          static_cast<long long>(w.speculative_attempts));
    }
    out += StringPrintf(
        "\n], \"totals\": {\"response_time\": %s, \"map\": %s, "
        "\"reduce\": %s, \"cache\": %s, \"critical_path\": %s, "
        "\"critical_path_wait\": %s, \"stragglers\": %lld}}",
        FormatDouble(s.TotalResponseTime()).c_str(),
        PhaseJson(s.TotalMapPhases()).c_str(),
        PhaseJson(s.TotalReducePhases()).c_str(),
        CacheJson(s.TotalCache()).c_str(),
        FormatDouble(s.TotalCriticalPath()).c_str(),
        FormatDouble(s.TotalCriticalPathWait()).c_str(),
        static_cast<long long>(s.TotalStragglers()));
  }
  out += "\n]}\n";
  return out;
}

namespace {

std::string BlameText(const BlameBreakdown& b) {
  return StringPrintf(
      "compute=%s cache_wait=%s slot_wait=%s skew=%s recovery=%s",
      FormatDouble(b.compute).c_str(), FormatDouble(b.cache_wait).c_str(),
      FormatDouble(b.slot_wait).c_str(), FormatDouble(b.skew).c_str(),
      FormatDouble(b.recovery).c_str());
}

std::string BlameJson(const BlameBreakdown& b) {
  return StringPrintf(
      "{\"compute\": %s, \"cache_wait\": %s, \"slot_wait\": %s, "
      "\"skew\": %s, \"recovery\": %s}",
      FormatDouble(b.compute).c_str(), FormatDouble(b.cache_wait).c_str(),
      FormatDouble(b.slot_wait).c_str(), FormatDouble(b.skew).c_str(),
      FormatDouble(b.recovery).c_str());
}

}  // namespace

std::string CriticalPathToText(const RunAnalysis& analysis) {
  std::string out;
  for (const SystemAnalysis& s : analysis.systems) {
    out += StringPrintf(
        "=== %s: critical path %s s over %zu windows "
        "(slot-wait %s s) ===\n",
        GroupHeading(s).c_str(),
        FormatDouble(s.TotalCriticalPath()).c_str(), s.windows.size(),
        FormatDouble(s.TotalCriticalPathWait()).c_str());
    out += StringPrintf("blame: %s\n", BlameText(s.TotalBlame()).c_str());
    for (const WindowAnalysis& w : s.windows) {
      out += StringPrintf(
          "window %ld: path=%s s  wait=%s s  response=%s s\n", w.recurrence,
          FormatDouble(w.critical_path.length).c_str(),
          FormatDouble(w.critical_path.wait).c_str(),
          FormatDouble(w.response_time).c_str());
      out += StringPrintf("  blame: %s\n", BlameText(w.blame).c_str());
      for (const CriticalPathStep& step : w.critical_path.steps) {
        out += StringPrintf("  %-9s", step.label.c_str());
        if (step.task >= 0) {
          out += StringPrintf(" task=%-6ld node=%-4ld", step.task, step.node);
        } else {
          out += StringPrintf(" %-22s", "");
        }
        out += StringPrintf(" start=%-10s dur=%-10s wait=%s\n",
                            FormatDouble(step.start).c_str(),
                            FormatDouble(step.duration).c_str(),
                            FormatDouble(step.wait).c_str());
      }
      for (const Straggler& straggler : w.stragglers) {
        out += StringPrintf(
            "  straggler %s task=%ld node=%ld dur=%s s (wave median %s s)\n",
            straggler.is_map ? "map" : "reduce", straggler.task,
            straggler.node, FormatDouble(straggler.duration).c_str(),
            FormatDouble(straggler.wave_median).c_str());
      }
    }
  }
  return out;
}

std::string CriticalPathToJson(const RunAnalysis& analysis) {
  std::string out = "{\"systems\": [";
  bool first_system = true;
  for (const SystemAnalysis& s : analysis.systems) {
    out += first_system ? "\n" : ",\n";
    first_system = false;
    out += StringPrintf("{\"system\": \"%s\", \"query\": \"%s\", "
                        "\"windows\": [",
                        s.system.c_str(), s.query.c_str());
    bool first_window = true;
    for (const WindowAnalysis& w : s.windows) {
      out += first_window ? "\n" : ",\n";
      first_window = false;
      out += StringPrintf(
          "{\"recurrence\": %ld, \"length\": %s, \"wait\": %s, "
          "\"response_time\": %s, \"steps\": [",
          w.recurrence, FormatDouble(w.critical_path.length).c_str(),
          FormatDouble(w.critical_path.wait).c_str(),
          FormatDouble(w.response_time).c_str());
      bool first_step = true;
      for (const CriticalPathStep& step : w.critical_path.steps) {
        out += first_step ? "" : ", ";
        first_step = false;
        out += StringPrintf(
            "{\"label\": \"%s\", \"task\": %ld, \"node\": %ld, "
            "\"start\": %s, \"duration\": %s, \"wait\": %s}",
            step.label.c_str(), step.task, step.node,
            FormatDouble(step.start).c_str(),
            FormatDouble(step.duration).c_str(),
            FormatDouble(step.wait).c_str());
      }
      out += "], \"stragglers\": [";
      bool first_straggler = true;
      for (const Straggler& straggler : w.stragglers) {
        out += first_straggler ? "" : ", ";
        first_straggler = false;
        out += StringPrintf(
            "{\"task\": %ld, \"kind\": \"%s\", \"node\": %ld, "
            "\"duration\": %s, \"wave_median\": %s}",
            straggler.task, straggler.is_map ? "map" : "reduce",
            straggler.node, FormatDouble(straggler.duration).c_str(),
            FormatDouble(straggler.wave_median).c_str());
      }
      out += StringPrintf("], \"blame\": %s}", BlameJson(w.blame).c_str());
    }
    out += StringPrintf(
        "\n], \"totals\": {\"length\": %s, \"wait\": %s, "
        "\"stragglers\": %lld, \"blame\": %s}}",
        FormatDouble(s.TotalCriticalPath()).c_str(),
        FormatDouble(s.TotalCriticalPathWait()).c_str(),
        static_cast<long long>(s.TotalStragglers()),
        BlameJson(s.TotalBlame()).c_str());
  }
  out += "\n]}\n";
  return out;
}

}  // namespace analysis
}  // namespace obs
}  // namespace redoop
