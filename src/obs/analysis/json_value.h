#ifndef REDOOP_OBS_ANALYSIS_JSON_VALUE_H_
#define REDOOP_OBS_ANALYSIS_JSON_VALUE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace redoop {
namespace obs {
namespace analysis {

/// Minimal JSON document model for the repo's own artifacts (BENCH JSON,
/// metric snapshots, analyze reports). Not a general-purpose parser: no
/// surrogate pairs, numbers via strtod, member order preserved as written.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray.
  std::vector<std::pair<std::string, JsonValue>> members; // kObject.

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup (linear; documents here are small). Null when
  /// absent or when this value is not an object.
  const JsonValue* Find(std::string_view key) const;
  double NumberOr(std::string_view key, double fallback) const;
  std::string StrOr(std::string_view key, std::string_view fallback) const;

  /// Parses `text` into `out`. Errors carry the byte offset.
  static Status Parse(std::string_view text, JsonValue* out);

  /// Reads and parses a JSON file; I/O errors carry the path.
  static Status LoadFile(const std::string& path, JsonValue* out);
};

}  // namespace analysis
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_ANALYSIS_JSON_VALUE_H_
