#include "obs/analysis/run_diff.h"

#include <cmath>

#include "common/string_utils.h"
#include "obs/metric_registry.h"

namespace redoop {
namespace obs {
namespace analysis {

const double* FlatMetrics::Find(std::string_view key) const {
  for (const auto& [k, v] : values) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void FlattenInto(const JsonValue& value, const std::string& prefix,
                 FlatMetrics* out) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      out->values.emplace_back(prefix, value.number);
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, child] : value.members) {
        FlattenInto(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < value.items.size(); ++i) {
        const std::string segment = StringPrintf("%zu", i);
        FlattenInto(value.items[i],
                    prefix.empty() ? segment : prefix + "." + segment, out);
      }
      break;
    default:
      break;  // Strings/bools/nulls are not metrics.
  }
}

bool Contains(std::string_view key, std::string_view needle) {
  return key.find(needle) != std::string_view::npos;
}

}  // namespace

void Flatten(const JsonValue& doc, FlatMetrics* out) {
  out->values.clear();
  FlattenInto(doc, "", out);
}

Direction ClassifyMetric(std::string_view key) {
  // Higher-better first: "hit_rate" would otherwise match the lower-better
  // "time" rules via substrings, and speedups must never be read inverted.
  if (Contains(key, "speedup") || Contains(key, "hit_rate") ||
      Contains(key, "hits") || Contains(key, "throughput")) {
    return Direction::kHigherIsBetter;
  }
  if (EndsWith(key, "_s") || Contains(key, "time") || Contains(key, "wait") ||
      Contains(key, "misses") || Contains(key, "critical_path") ||
      Contains(key, "latency") || Contains(key, "duration") ||
      Contains(key, "miss_bytes") || Contains(key, "stragglers")) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kInformational;
}

const char* VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kChanged: return "changed";
    case Verdict::kAdded: return "added";
    case Verdict::kRemoved: return "removed";
  }
  return "unknown";
}

DiffReport DiffRuns(const FlatMetrics& baseline, const FlatMetrics& candidate,
                    const DiffOptions& options) {
  DiffReport report;
  for (const auto& [key, base_value] : baseline.values) {
    MetricDelta delta;
    delta.key = key;
    delta.direction = ClassifyMetric(key);
    delta.baseline = base_value;
    const double* cand = candidate.Find(key);
    if (cand == nullptr) {
      delta.verdict = Verdict::kRemoved;
      report.deltas.push_back(std::move(delta));
      continue;
    }
    delta.candidate = *cand;
    const double abs_change = *cand - base_value;
    if (base_value != 0.0) {
      delta.relative = abs_change / std::fabs(base_value);
    } else if (abs_change != 0.0) {
      delta.relative = abs_change > 0.0 ? 1.0 : -1.0;  // From-zero change.
    }
    if (std::fabs(delta.relative) <= options.tolerance) {
      delta.verdict = Verdict::kUnchanged;
      ++report.unchanged;
    } else if (delta.direction == Direction::kInformational) {
      delta.verdict = Verdict::kChanged;
      ++report.changed;
    } else {
      const bool worse = delta.direction == Direction::kLowerIsBetter
                             ? delta.relative > 0.0
                             : delta.relative < 0.0;
      delta.verdict = worse ? Verdict::kRegressed : Verdict::kImproved;
      ++(worse ? report.regressed : report.improved);
    }
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [key, cand_value] : candidate.values) {
    if (baseline.Find(key) != nullptr) continue;
    MetricDelta delta;
    delta.key = key;
    delta.direction = ClassifyMetric(key);
    delta.verdict = Verdict::kAdded;
    delta.candidate = cand_value;
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

Status DiffFiles(const std::string& baseline_path,
                 const std::string& candidate_path, const DiffOptions& options,
                 DiffReport* out) {
  JsonValue baseline_doc;
  Status status = JsonValue::LoadFile(baseline_path, &baseline_doc);
  if (!status.ok()) {
    return Status(status.code(), baseline_path + ": " + status.message());
  }
  JsonValue candidate_doc;
  status = JsonValue::LoadFile(candidate_path, &candidate_doc);
  if (!status.ok()) {
    return Status(status.code(), candidate_path + ": " + status.message());
  }
  FlatMetrics baseline;
  FlatMetrics candidate;
  Flatten(baseline_doc, &baseline);
  Flatten(candidate_doc, &candidate);
  *out = DiffRuns(baseline, candidate, options);
  return Status::OK();
}

std::string DiffReport::ToText() const {
  std::string out = StringPrintf(
      "diff: %lld regressed, %lld improved, %lld changed, %lld unchanged, "
      "%zu total\n",
      static_cast<long long>(regressed), static_cast<long long>(improved),
      static_cast<long long>(changed), static_cast<long long>(unchanged),
      deltas.size());
  for (const MetricDelta& d : deltas) {
    if (d.verdict == Verdict::kUnchanged) continue;  // Keep reports short.
    if (d.verdict == Verdict::kAdded) {
      out += StringPrintf("  added     %-56s = %s\n", d.key.c_str(),
                          FormatDouble(d.candidate).c_str());
    } else if (d.verdict == Verdict::kRemoved) {
      out += StringPrintf("  removed   %-56s was %s\n", d.key.c_str(),
                          FormatDouble(d.baseline).c_str());
    } else {
      out += StringPrintf("  %-9s %-56s %s -> %s (%+.1f%%)\n",
                          VerdictToString(d.verdict), d.key.c_str(),
                          FormatDouble(d.baseline).c_str(),
                          FormatDouble(d.candidate).c_str(),
                          d.relative * 100.0);
    }
  }
  return out;
}

std::string DiffReport::ToJson() const {
  std::string out = StringPrintf(
      "{\"regressed\": %lld, \"improved\": %lld, \"changed\": %lld, "
      "\"unchanged\": %lld, \"deltas\": [",
      static_cast<long long>(regressed), static_cast<long long>(improved),
      static_cast<long long>(changed), static_cast<long long>(unchanged));
  bool first = true;
  for (const MetricDelta& d : deltas) {
    if (d.verdict == Verdict::kUnchanged) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf(
        "{\"key\": \"%s\", \"verdict\": \"%s\", \"baseline\": %s, "
        "\"candidate\": %s, \"relative\": %s}",
        d.key.c_str(), VerdictToString(d.verdict),
        FormatDouble(d.baseline).c_str(), FormatDouble(d.candidate).c_str(),
        FormatDouble(d.relative).c_str());
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace analysis
}  // namespace obs
}  // namespace redoop
