#include "obs/analysis/json_value.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_utils.h"

namespace redoop {
namespace obs {
namespace analysis {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::StrOr(std::string_view key,
                             std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str
                                                  : std::string(fallback);
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  Status Run(JsonValue* out) {
    Status status = ParseValue(out, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != s_.size()) return Error("trailing garbage after document");
    return Status::OK();
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StringPrintf("json parse error at offset %zu: %s", pos_, what));
  }

  void SkipWhitespace() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Error("bad \\u escape");
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            out->push_back(
                static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    if (!Consume('"')) return Error("unterminated string");
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    const std::string repr(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(repr.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Status JsonValue::Parse(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  return Parser(text).Run(out);
}

Status JsonValue::LoadFile(const std::string& path, JsonValue* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for reading");
  }
  std::string body;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    body.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Unavailable("read error on " + path);
  return Parse(body, out);
}

}  // namespace analysis
}  // namespace obs
}  // namespace redoop
