#ifndef REDOOP_OBS_ANALYSIS_RUN_DIFF_H_
#define REDOOP_OBS_ANALYSIS_RUN_DIFF_H_

// Structured regression diff between two runs' metric documents (BENCH
// JSON, metric snapshots, or analyze reports). Each document is flattened
// to dotted numeric keys ("fig6.redoop.overlap_0.9.total_s"), every key
// classified by direction (lower-better, higher-better, informational),
// and relative deltas compared against a tolerance band.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/analysis/json_value.h"

namespace redoop {
namespace obs {
namespace analysis {

/// A metric document reduced to dotted-path numeric leaves, in document
/// order. Non-numeric leaves (strings, bools) are ignored.
struct FlatMetrics {
  std::vector<std::pair<std::string, double>> values;

  const double* Find(std::string_view key) const;
};

/// Flattens nested objects/arrays into `out`. Array elements use their
/// index as the path segment.
void Flatten(const JsonValue& doc, FlatMetrics* out);

/// How a metric's value relates to quality, inferred from its key.
enum class Direction {
  kLowerIsBetter,   // times, waits, misses, byte costs.
  kHigherIsBetter,  // speedups, hit rates.
  kInformational,   // counts and ids: report changes, never fail.
};

Direction ClassifyMetric(std::string_view key);

enum class Verdict {
  kUnchanged,  // Within tolerance.
  kImproved,   // Outside tolerance in the good direction.
  kRegressed,  // Outside tolerance in the bad direction.
  kChanged,    // Informational metric moved outside tolerance.
  kAdded,      // Key only in the candidate run.
  kRemoved,    // Key only in the baseline run.
};

const char* VerdictToString(Verdict verdict);

struct MetricDelta {
  std::string key;
  Direction direction = Direction::kInformational;
  Verdict verdict = Verdict::kUnchanged;
  double baseline = 0.0;
  double candidate = 0.0;
  /// (candidate - baseline) / |baseline|; 0 when baseline == 0 and the
  /// values agree, otherwise sign of the absolute change.
  double relative = 0.0;
};

struct DiffOptions {
  /// Relative band treated as noise, e.g. 0.10 = +/-10%.
  double tolerance = 0.10;
};

struct DiffReport {
  std::vector<MetricDelta> deltas;  // Baseline document order.
  int64_t regressed = 0;
  int64_t improved = 0;
  int64_t changed = 0;
  int64_t unchanged = 0;

  bool HasRegressions() const { return regressed > 0; }
  std::string ToText() const;
  std::string ToJson() const;
};

/// Diffs two flattened runs. Keys present on only one side yield
/// kAdded/kRemoved deltas (never regressions).
DiffReport DiffRuns(const FlatMetrics& baseline, const FlatMetrics& candidate,
                    const DiffOptions& options);

/// Convenience: load both JSON files, flatten, diff.
Status DiffFiles(const std::string& baseline_path,
                 const std::string& candidate_path, const DiffOptions& options,
                 DiffReport* out);

}  // namespace analysis
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_ANALYSIS_RUN_DIFF_H_
