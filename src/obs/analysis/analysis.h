#ifndef REDOOP_OBS_ANALYSIS_ANALYSIS_H_
#define REDOOP_OBS_ANALYSIS_ANALYSIS_H_

// Journal analysis engine: reconstructs per-window phase breakdowns,
// cache-efficiency attribution, and per-window task-DAG critical paths
// (with slot-wait and straggler detection) from an EventJournal.
//
// The model mirrors how the drivers emit events: every system (journal
// common field "system") produces a sequence
//
//   window.open .. { job.start .. task.start/finish .. job.finish }* ..
//   window.complete
//
// so windows bracket jobs and jobs bracket task spans. task.start /
// task.finish pairs are keyed by the "task" id; the finish event of the
// winning attempt carries per-phase durations and the slot-wait.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/event_journal.h"

namespace redoop {
namespace obs {
namespace analysis {

/// Summed task-phase durations (seconds of simulated time). `wait` is
/// slot-wait (schedulable but queued) and is not part of TaskTotal().
struct PhaseBreakdown {
  double wait = 0.0;
  double startup = 0.0;
  double read = 0.0;
  double shuffle = 0.0;
  double sort = 0.0;
  double compute = 0.0;
  double write = 0.0;

  double TaskTotal() const {
    return startup + read + shuffle + sort + compute + write;
  }
  void Add(const PhaseBreakdown& other);
};

/// One task attempt span reconstructed from task.start / task.finish.
struct TaskSpan {
  int64_t id = 0;
  bool is_map = true;
  int64_t node = -1;
  int64_t attempt = 0;
  int64_t source = 0;      // Maps.
  int64_t pane = -1;       // Maps.
  int64_t partition = -1;  // Reduces.
  double start = 0.0;
  double duration = 0.0;
  double wait = 0.0;
  PhaseBreakdown phases;
  bool finished = false;  // False: failed attempt or truncated journal.

  double end() const { return start + duration; }
};

/// One job bracketed by job.start / job.finish.
struct JobSpan {
  std::string name;
  double start = 0.0;
  double finish = 0.0;
  std::vector<TaskSpan> tasks;

  double Elapsed() const { return finish - start; }
};

/// Cache reuse attribution for one window, from cache.pane.* and
/// cache.pair.* decision events.
struct CacheStats {
  int64_t pane_hits = 0;
  int64_t pane_misses = 0;
  int64_t pair_hits = 0;
  int64_t pair_misses = 0;
  int64_t hit_bytes = 0;   // Logical bytes served from cache (not re-read).
  // Host bytes of the at-rest (columnar-compressed) payloads those hits
  // decoded — the traffic the hits really moved.
  int64_t hit_compressed_bytes = 0;
  int64_t miss_bytes = 0;  // Bytes that had to be (re)built.
  // Budget evictions (cache.pane.evict): panes the byte budget pushed out
  // of the store, flipping them back to recompute.
  int64_t evictions = 0;
  int64_t evicted_bytes = 0;

  void Add(const CacheStats& other);
  double HitRate() const;
};

/// One hop on a window's critical path.
struct CriticalPathStep {
  /// "startup" (job submit -> first path task running), "map", "barrier"
  /// (map done -> path reduce running), "reduce", "finalize".
  std::string label;
  int64_t task = -1;
  int64_t node = -1;
  double start = 0.0;
  double duration = 0.0;
  double wait = 0.0;  // Slot-wait inside this hop.
};

/// Longest chain through a window's task DAG, computed per job by dynamic
/// programming over the span DAG (submit -> maps -> shuffle barrier ->
/// reduces -> finish, edge weight = clamped scheduling gap + successor
/// duration). Jobs within a window are serial, so the window path is the
/// concatenation. On a well-formed journal the DP's choice coincides with
/// the wave tail (last-ending map/reduce); on reordered or failure-heavy
/// journals it maximizes where the old tail heuristic undercounted.
struct WindowCriticalPath {
  double length = 0.0;
  double wait = 0.0;  // Total slot-wait along the path.
  std::vector<CriticalPathStep> steps;
};

/// Root-cause split of a window's critical-path length (DESIGN §14): why
/// was this window's path as long as it was? The five fields partition
/// the path exactly — Total() == WindowCriticalPath::length.
struct BlameBreakdown {
  /// Useful work (and any path time not attributed below).
  double compute = 0.0;
  /// Map-side read time on the path spent re-reading panes that missed
  /// the cache this window — the cost of reuse NOT happening.
  double cache_wait = 0.0;
  /// Path time queued for a task slot (cluster too busy).
  double slot_wait = 0.0;
  /// Straggler excess: path-task time beyond its wave median.
  double skew = 0.0;
  /// Path time inside re-issued attempts (attempt > 0) — failure repair.
  double recovery = 0.0;

  void Add(const BlameBreakdown& other);
  double Total() const {
    return compute + cache_wait + slot_wait + skew + recovery;
  }
};

/// Fleet-serving attribution for one window (DESIGN §17), from the
/// fleet.* decision events: admission wait, shared-scan hit/miss split,
/// and cross-query dedup adoptions/fan-outs.
struct FleetWindowStats {
  int64_t admissions = 0;
  double admission_wait_s = 0.0;
  int64_t queued_peak = 0;
  double attained_s = 0.0;  // Last admission's attained weighted service.
  double weight = 0.0;      // 0 until a fleet.admit event is seen.
  int64_t scan_hits = 0;
  int64_t scan_misses = 0;
  int64_t scan_hit_bytes = 0;      // Served minus scanned: bytes NOT re-read.
  int64_t scan_scanned_bytes = 0;  // Bytes that did hit the inner feed.
  int64_t dedup_adoptions = 0;
  int64_t dedup_bytes = 0;
  int64_t evict_fanouts = 0;

  void Add(const FleetWindowStats& other);
  bool Any() const {
    return admissions != 0 || scan_hits != 0 || scan_misses != 0 ||
           dedup_adoptions != 0 || evict_fanouts != 0;
  }
};

/// A task flagged as abnormally slow: duration > k * median duration of
/// its wave (tasks of the same kind in the same job).
struct Straggler {
  int64_t task = 0;
  bool is_map = true;
  int64_t node = -1;
  double duration = 0.0;
  double wave_median = 0.0;
};

/// Everything reconstructed for one recurrence window.
struct WindowAnalysis {
  int64_t recurrence = 0;
  double open_time = 0.0;
  double trigger_time = 0.0;
  double complete_time = 0.0;
  double response_time = 0.0;
  /// Deadline the driver stamped on window.open (seconds from trigger);
  /// < 0 when the query has no deadline configured.
  double deadline_s = -1.0;
  PhaseBreakdown map_phases;
  PhaseBreakdown reduce_phases;
  CacheStats cache;
  FleetWindowStats fleet;
  std::vector<JobSpan> jobs;
  WindowCriticalPath critical_path;
  BlameBreakdown blame;
  std::vector<Straggler> stragglers;
  int64_t failed_attempts = 0;
  int64_t speculative_attempts = 0;
};

/// All windows of one analysis group. The default grouping key is the
/// journal common field "system"; with AnalysisOptions::group_by_query
/// the key is (system, query) using the per-event "query" attribution
/// field, so multi-tenant journals slice into one SystemAnalysis per
/// recurring query (events without a query land in a group with
/// query = "").
struct SystemAnalysis {
  std::string system;
  std::string query;  ///< "" unless group_by_query split this group out.
  std::vector<WindowAnalysis> windows;

  double TotalResponseTime() const;
  double TotalCriticalPath() const;
  double TotalCriticalPathWait() const;
  BlameBreakdown TotalBlame() const;
  PhaseBreakdown TotalMapPhases() const;
  PhaseBreakdown TotalReducePhases() const;
  CacheStats TotalCache() const;
  FleetWindowStats TotalFleet() const;
  int64_t TotalStragglers() const;
};

struct AnalysisOptions {
  /// Straggler threshold: flag tasks slower than k * median of their wave.
  double straggler_k = 3.0;
  /// Split each system's windows further by the per-event "query"
  /// attribution field (one SystemAnalysis per (system, query) pair).
  bool group_by_query = false;
};

struct RunAnalysis {
  std::vector<SystemAnalysis> systems;  // First-seen order.

  const SystemAnalysis* FindSystem(std::string_view name) const;
  /// Lookup by (system, query); query matching applies even when the
  /// analysis ran without group_by_query (all queries then share "").
  const SystemAnalysis* FindQuery(std::string_view system,
                                  std::string_view query) const;
};

/// Reconstructs windows, jobs, task spans, phase breakdowns, cache stats,
/// critical paths, and stragglers from a journal. Tolerates journals
/// without task.start spans (pre-span journals): such tasks appear with
/// zero wait. Events outside any window (none are emitted by the drivers)
/// are collected under a synthetic recurrence -1 window.
Status AnalyzeJournal(const EventJournal& journal,
                      const AnalysisOptions& options, RunAnalysis* out);

/// Renderers. All output is deterministic (StringPrintf/FormatDouble).
std::string BreakdownToText(const RunAnalysis& analysis);
std::string BreakdownToJson(const RunAnalysis& analysis);
std::string CriticalPathToText(const RunAnalysis& analysis);
std::string CriticalPathToJson(const RunAnalysis& analysis);

}  // namespace analysis
}  // namespace obs
}  // namespace redoop

#endif  // REDOOP_OBS_ANALYSIS_ANALYSIS_H_
