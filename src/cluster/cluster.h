#ifndef REDOOP_CLUSTER_CLUSTER_H_
#define REDOOP_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/heartbeat.h"
#include "cluster/node.h"
#include "common/config.h"
#include "common/ids.h"
#include "dfs/dfs.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace redoop {

/// Observer invoked when a node dies; `lost_local_files` are the cache
/// files that vanished with it (for metadata rollback, paper §5).
using NodeFailureListener =
    std::function<void(NodeId node, const std::vector<std::string>& lost_local_files)>;

/// Observer invoked when local cache files are lost — either because their
/// node died or because a targeted cache loss was injected while the node
/// stayed up (Fig. 9 experiment).
using CacheLossListener =
    std::function<void(NodeId node, const std::vector<std::string>& lost_local_files)>;

/// The simulated shared-nothing cluster: one master plus N task nodes, the
/// DFS spread over the same nodes, a virtual clock, and the cost model.
/// This is the substrate every driver (plain Hadoop and Redoop) runs on.
class Cluster {
 public:
  Cluster(int32_t num_nodes, const Config& config = Config());

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }

  Simulator& simulator() { return simulator_; }
  const Simulator& simulator() const { return simulator_; }
  Dfs& dfs() { return *dfs_; }
  const Dfs& dfs() const { return *dfs_; }
  const CostModel& cost_model() const { return cost_model_; }
  HeartbeatBus& heartbeat_bus() { return heartbeat_bus_; }

  TaskNode& node(NodeId id);
  const TaskNode& node(NodeId id) const;

  std::vector<NodeId> AliveNodes() const;
  int32_t alive_node_count() const;

  /// Total free map/reduce slots across live nodes.
  int32_t TotalFreeMapSlots() const;
  int32_t TotalFreeReduceSlots() const;

  /// Kills a node: drops its local cache files, removes its DFS replicas,
  /// drops its in-flight heartbeats, and notifies failure listeners.
  void FailNode(NodeId id);

  /// Restarts a failed node with empty local state.
  void RecoverNode(NodeId id);

  void AddFailureListener(NodeFailureListener listener);
  void AddCacheLossListener(CacheLossListener listener);

  /// Deletes a single local cache file from a node (targeted cache-failure
  /// injection, used by the Fig. 9 experiment) and notifies listeners with
  /// just that file.
  void InjectCacheLoss(NodeId id, const std::string& local_file);

 private:
  Simulator simulator_;
  CostModel cost_model_;
  std::unique_ptr<Dfs> dfs_;
  std::vector<TaskNode> nodes_;
  HeartbeatBus heartbeat_bus_;
  std::vector<NodeFailureListener> failure_listeners_;
  std::vector<CacheLossListener> cache_loss_listeners_;
};

}  // namespace redoop

#endif  // REDOOP_CLUSTER_CLUSTER_H_
