#ifndef REDOOP_CLUSTER_NODE_H_
#define REDOOP_CLUSTER_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "common/sim_time.h"

namespace redoop {

struct NodeOptions {
  /// Per-node task slots (paper setup: 6 map, 2 reduce).
  int32_t map_slots = 6;
  int32_t reduce_slots = 2;
  /// Local-filesystem budget for caches (76 GB disks in the paper).
  int64_t local_capacity_bytes = 76 * kBytesPerGB;

  /// Keys: node.map_slots, node.reduce_slots, node.local_capacity.
  static NodeOptions FromConfig(const Config& config);
};

/// A TaskTracker node: task slots plus the node-local file system where
/// Redoop stores its reduce input/output caches. Slot accounting is driven
/// by the job runner; local files by the cache layer.
class TaskNode {
 public:
  TaskNode(NodeId id, NodeOptions options);

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }

  // --- Task slots -----------------------------------------------------

  int32_t map_slots_total() const { return options_.map_slots; }
  int32_t reduce_slots_total() const { return options_.reduce_slots; }
  int32_t map_slots_used() const { return map_slots_used_; }
  int32_t reduce_slots_used() const { return reduce_slots_used_; }
  int32_t free_map_slots() const { return options_.map_slots - map_slots_used_; }
  int32_t free_reduce_slots() const {
    return options_.reduce_slots - reduce_slots_used_;
  }

  /// Returns false when no slot is free (or the node is dead).
  bool AcquireMapSlot();
  bool AcquireReduceSlot();
  void ReleaseMapSlot();
  void ReleaseReduceSlot();

  /// Busy fraction across all slots in [0, 1]; the Load_i term of the
  /// paper's Eq. 4 scheduling metric.
  double Load() const;

  // --- Local file system (caches) --------------------------------------

  bool HasLocalFile(std::string_view name) const;
  int64_t LocalFileBytes(std::string_view name) const;

  /// Stores/overwrites a local file. Returns false when the write would
  /// exceed the capacity budget (caller should trigger on-demand purging).
  bool PutLocalFile(std::string_view name, int64_t bytes);

  /// Removes a local file; no-op when absent. Returns the freed bytes.
  int64_t DeleteLocalFile(std::string_view name);

  std::vector<std::string> LocalFileNames() const;
  int64_t local_bytes_used() const { return local_bytes_used_; }
  int64_t local_capacity_bytes() const { return options_.local_capacity_bytes; }

  /// Fraction of the local disk budget in use, in [0, 1].
  double LocalDiskUtilization() const;

  // --- Failure --------------------------------------------------------

  /// Kills the node: slots drain, all local files are lost. Returns the
  /// names of the lost local files (so cache metadata can roll back).
  std::vector<std::string> Fail();

  /// Restarts the node with empty local storage and free slots.
  void Recover();

 private:
  NodeId id_;
  NodeOptions options_;
  bool alive_ = true;
  int32_t map_slots_used_ = 0;
  int32_t reduce_slots_used_ = 0;
  std::map<std::string, int64_t> local_files_;
  int64_t local_bytes_used_ = 0;
};

}  // namespace redoop

#endif  // REDOOP_CLUSTER_NODE_H_
