#include "cluster/cluster.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

Cluster::Cluster(int32_t num_nodes, const Config& config)
    : cost_model_(CostModelOptions::FromConfig(config)),
      dfs_(std::make_unique<Dfs>(num_nodes, DfsOptions::FromConfig(config))),
      heartbeat_bus_(config.GetDouble("cluster.heartbeat_s", 3.0)) {
  REDOOP_CHECK(num_nodes > 0);
  const NodeOptions node_options = NodeOptions::FromConfig(config);
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int32_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), node_options);
  }
}

TaskNode& Cluster::node(NodeId id) {
  REDOOP_CHECK(id >= 0 && id < num_nodes()) << "bad node id " << id;
  return nodes_[static_cast<size_t>(id)];
}

const TaskNode& Cluster::node(NodeId id) const {
  REDOOP_CHECK(id >= 0 && id < num_nodes()) << "bad node id " << id;
  return nodes_[static_cast<size_t>(id)];
}

std::vector<NodeId> Cluster::AliveNodes() const {
  std::vector<NodeId> alive;
  for (const TaskNode& n : nodes_) {
    if (n.alive()) alive.push_back(n.id());
  }
  return alive;
}

int32_t Cluster::alive_node_count() const {
  int32_t count = 0;
  for (const TaskNode& n : nodes_) count += n.alive() ? 1 : 0;
  return count;
}

int32_t Cluster::TotalFreeMapSlots() const {
  int32_t total = 0;
  for (const TaskNode& n : nodes_) {
    if (n.alive()) total += n.free_map_slots();
  }
  return total;
}

int32_t Cluster::TotalFreeReduceSlots() const {
  int32_t total = 0;
  for (const TaskNode& n : nodes_) {
    if (n.alive()) total += n.free_reduce_slots();
  }
  return total;
}

void Cluster::FailNode(NodeId id) {
  TaskNode& n = node(id);
  if (!n.alive()) return;
  const std::vector<std::string> lost = n.Fail();
  dfs_->OnNodeFailed(id);
  heartbeat_bus_.DropFrom(id);
  for (const NodeFailureListener& listener : failure_listeners_) {
    listener(id, lost);
  }
  for (const CacheLossListener& listener : cache_loss_listeners_) {
    listener(id, lost);
  }
}

void Cluster::RecoverNode(NodeId id) {
  TaskNode& n = node(id);
  if (n.alive()) return;
  n.Recover();
  dfs_->OnNodeRecovered(id);
}

void Cluster::AddFailureListener(NodeFailureListener listener) {
  failure_listeners_.push_back(std::move(listener));
}

void Cluster::AddCacheLossListener(CacheLossListener listener) {
  cache_loss_listeners_.push_back(std::move(listener));
}

void Cluster::InjectCacheLoss(NodeId id, const std::string& local_file) {
  TaskNode& n = node(id);
  if (!n.alive()) return;
  if (n.DeleteLocalFile(local_file) == 0) return;
  const std::vector<std::string> lost = {local_file};
  for (const CacheLossListener& listener : cache_loss_listeners_) {
    listener(id, lost);
  }
}

}  // namespace redoop
