#include "cluster/node.h"

#include "common/logging.h"

namespace redoop {

NodeOptions NodeOptions::FromConfig(const Config& config) {
  NodeOptions o;
  o.map_slots =
      static_cast<int32_t>(config.GetInt("node.map_slots", o.map_slots));
  o.reduce_slots =
      static_cast<int32_t>(config.GetInt("node.reduce_slots", o.reduce_slots));
  o.local_capacity_bytes =
      config.GetInt("node.local_capacity", o.local_capacity_bytes);
  return o;
}

TaskNode::TaskNode(NodeId id, NodeOptions options)
    : id_(id), options_(options) {
  REDOOP_CHECK(options_.map_slots > 0);
  REDOOP_CHECK(options_.reduce_slots > 0);
  REDOOP_CHECK(options_.local_capacity_bytes > 0);
}

bool TaskNode::AcquireMapSlot() {
  if (!alive_ || map_slots_used_ >= options_.map_slots) return false;
  ++map_slots_used_;
  return true;
}

bool TaskNode::AcquireReduceSlot() {
  if (!alive_ || reduce_slots_used_ >= options_.reduce_slots) return false;
  ++reduce_slots_used_;
  return true;
}

void TaskNode::ReleaseMapSlot() {
  REDOOP_CHECK(map_slots_used_ > 0);
  --map_slots_used_;
}

void TaskNode::ReleaseReduceSlot() {
  REDOOP_CHECK(reduce_slots_used_ > 0);
  --reduce_slots_used_;
}

double TaskNode::Load() const {
  const double total =
      static_cast<double>(options_.map_slots + options_.reduce_slots);
  return static_cast<double>(map_slots_used_ + reduce_slots_used_) / total;
}

bool TaskNode::HasLocalFile(std::string_view name) const {
  return local_files_.count(std::string(name)) > 0;
}

int64_t TaskNode::LocalFileBytes(std::string_view name) const {
  auto it = local_files_.find(std::string(name));
  return it == local_files_.end() ? 0 : it->second;
}

bool TaskNode::PutLocalFile(std::string_view name, int64_t bytes) {
  REDOOP_CHECK(bytes >= 0);
  if (!alive_) return false;
  auto it = local_files_.find(std::string(name));
  const int64_t existing = it == local_files_.end() ? 0 : it->second;
  if (local_bytes_used_ - existing + bytes > options_.local_capacity_bytes) {
    return false;
  }
  local_bytes_used_ += bytes - existing;
  local_files_[std::string(name)] = bytes;
  return true;
}

int64_t TaskNode::DeleteLocalFile(std::string_view name) {
  auto it = local_files_.find(std::string(name));
  if (it == local_files_.end()) return 0;
  const int64_t freed = it->second;
  local_bytes_used_ -= freed;
  local_files_.erase(it);
  return freed;
}

std::vector<std::string> TaskNode::LocalFileNames() const {
  std::vector<std::string> names;
  names.reserve(local_files_.size());
  for (const auto& [name, bytes] : local_files_) {
    (void)bytes;
    names.push_back(name);
  }
  return names;
}

double TaskNode::LocalDiskUtilization() const {
  return static_cast<double>(local_bytes_used_) /
         static_cast<double>(options_.local_capacity_bytes);
}

std::vector<std::string> TaskNode::Fail() {
  std::vector<std::string> lost = LocalFileNames();
  local_files_.clear();
  local_bytes_used_ = 0;
  map_slots_used_ = 0;
  reduce_slots_used_ = 0;
  alive_ = false;
  return lost;
}

void TaskNode::Recover() {
  REDOOP_CHECK(local_files_.empty());
  alive_ = true;
}

}  // namespace redoop
