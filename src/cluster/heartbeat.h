#ifndef REDOOP_CLUSTER_HEARTBEAT_H_
#define REDOOP_CLUSTER_HEARTBEAT_H_

#include <deque>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace redoop {

/// A metadata message piggybacked on a TaskTracker heartbeat (paper §2.3:
/// local cache registries ship their deltas to the master with heartbeats).
struct HeartbeatMessage {
  NodeId from = kInvalidNode;
  SimTime sent_at = 0.0;
  /// Message kind, e.g. "cache-add", "cache-expire", "status".
  std::string kind;
  /// Free-form payload (cache name, pane id, ...).
  std::string payload;
};

/// Buffered node → master channel with heartbeat-interval delivery latency:
/// a message sent at time t becomes visible to the master at t + interval.
/// Deterministic and pull-based: callers pump DeliverUpTo() as simulated
/// time advances.
class HeartbeatBus {
 public:
  explicit HeartbeatBus(SimDuration interval = 3.0);

  SimDuration interval() const { return interval_; }

  /// Enqueues a message stamped `sent_at = now`.
  void Send(NodeId from, SimTime now, std::string kind, std::string payload);

  /// Pops every message deliverable at or before `now`, in send order.
  std::vector<HeartbeatMessage> DeliverUpTo(SimTime now);

  /// Messages still in flight.
  size_t pending() const { return queue_.size(); }

  /// Drops in-flight messages from a node (it died before the heartbeat).
  void DropFrom(NodeId node);

 private:
  SimDuration interval_;
  std::deque<HeartbeatMessage> queue_;
};

}  // namespace redoop

#endif  // REDOOP_CLUSTER_HEARTBEAT_H_
