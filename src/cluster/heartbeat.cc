#include "cluster/heartbeat.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace redoop {

HeartbeatBus::HeartbeatBus(SimDuration interval) : interval_(interval) {
  REDOOP_CHECK(interval >= 0.0);
}

void HeartbeatBus::Send(NodeId from, SimTime now, std::string kind,
                        std::string payload) {
  queue_.push_back(
      HeartbeatMessage{from, now, std::move(kind), std::move(payload)});
}

std::vector<HeartbeatMessage> HeartbeatBus::DeliverUpTo(SimTime now) {
  std::vector<HeartbeatMessage> delivered;
  while (!queue_.empty() && queue_.front().sent_at + interval_ <= now) {
    delivered.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return delivered;
}

void HeartbeatBus::DropFrom(NodeId node) {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [node](const HeartbeatMessage& m) {
                                return m.from == node;
                              }),
               queue_.end());
}

}  // namespace redoop
