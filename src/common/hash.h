#ifndef REDOOP_COMMON_HASH_H_
#define REDOOP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace redoop {

/// 64-bit FNV-1a over bytes. Stable across platforms; used by the hash
/// partitioner so reducer assignment is deterministic.
uint64_t Fnv1a64(std::string_view data);

/// Mixes a 64-bit integer (finalizer from MurmurHash3).
uint64_t Mix64(uint64_t x);

/// Combines two hashes (boost-style).
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace redoop

#endif  // REDOOP_COMMON_HASH_H_
