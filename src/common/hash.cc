#include "common/hash.h"

namespace redoop {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace redoop
