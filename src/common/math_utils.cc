#include "common/math_utils.h"

#include <cmath>

#include "common/logging.h"

namespace redoop {

int64_t Gcd(int64_t a, int64_t b) {
  REDOOP_CHECK(a >= 0 && b >= 0) << "Gcd of negative values";
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int64_t GcdAll(const std::vector<int64_t>& values) {
  int64_t g = 0;
  for (int64_t v : values) g = Gcd(g, v);
  return g;
}

int64_t CeilDiv(int64_t dividend, int64_t divisor) {
  REDOOP_CHECK(divisor > 0);
  REDOOP_CHECK(dividend >= 0);
  return (dividend + divisor - 1) / divisor;
}

double Clamp(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

}  // namespace redoop
