#include "common/string_utils.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace redoop {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (value > (INT64_MAX - (c - '0')) / 10) return false;  // Overflow.
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

std::string HumanBytes(int64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  return StringPrintf("%.1f %s", v, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) return "-" + HumanDuration(-seconds);
  if (seconds < 60.0) return StringPrintf("%.1fs", seconds);
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  if (h > 0) return StringPrintf("%ldh%02ldm%02lds", h, m, s);
  return StringPrintf("%ldm%02lds", m, s);
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace redoop
