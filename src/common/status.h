#ifndef REDOOP_COMMON_STATUS_H_
#define REDOOP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace redoop {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kAborted,
};

/// Returns a short human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error result, modeled after absl::Status /
/// rocksdb::Status. Functions that can fail for recoverable reasons return a
/// Status (or StatusOr<T>); programming errors are handled with assertions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. A default-constructed
/// StatusOr holds an Internal error.
template <typename T>
class StatusOr {
 public:
  StatusOr() : status_(Status::Internal("uninitialized StatusOr")) {}
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr.
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT: implicit by design.
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessing the value of a non-OK StatusOr is a
  /// programming error.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define REDOOP_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::redoop::Status _redoop_status_ = (expr);      \
    if (!_redoop_status_.ok()) return _redoop_status_; \
  } while (0)

}  // namespace redoop

#endif  // REDOOP_COMMON_STATUS_H_
