#ifndef REDOOP_COMMON_LOGGING_H_
#define REDOOP_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace redoop {

/// Log severity, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarning so tests and benchmarks stay quiet; the
/// REDOOP_LOG_LEVEL environment variable (debug|info|warning|error)
/// overrides the default at startup. SetLogLevel still wins at runtime.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: logs and aborts the process.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a log statement that is disabled at the current level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define REDOOP_LOG(level)                                                  \
  if (::redoop::LogLevel::k##level < ::redoop::GetLogLevel()) {            \
  } else                                                                   \
    ::redoop::internal_logging::LogMessage(::redoop::LogLevel::k##level,   \
                                           __FILE__, __LINE__)             \
        .stream()

#define REDOOP_LOG_FATAL \
  ::redoop::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream()

/// Invariant check: always on (also in release builds); violations indicate
/// programming errors and abort with a message.
#define REDOOP_CHECK(condition)                                \
  if (condition) {                                             \
  } else                                                       \
    REDOOP_LOG_FATAL << "Check failed: " #condition " "

#define REDOOP_CHECK_OK(expr)                                       \
  do {                                                              \
    ::redoop::Status _redoop_check_status_ = (expr);                \
    REDOOP_CHECK(_redoop_check_status_.ok())                        \
        << "status = " << _redoop_check_status_.ToString();         \
  } while (0)

}  // namespace redoop

#endif  // REDOOP_COMMON_LOGGING_H_
