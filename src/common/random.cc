#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace redoop {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Warm the state up: xoshiro's first outputs after low-entropy seeding
  // are correlated (e.g. long runs of identical high bits for small
  // seeds), which would bias early Bernoulli draws.
  for (int i = 0; i < 16; ++i) NextUint64();
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  REDOOP_CHECK(n > 0) << "Uniform(0) is undefined";
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t r;
  do {
    r = NextUint64();
  } while (r >= limit);
  return r % n;
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  REDOOP_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextGaussian() {
  // Box-Muller; draws until u1 is nonzero to keep log() finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Random::NextExponential(double rate) {
  REDOOP_CHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

uint64_t Random::NextZipf(uint64_t n, double s) {
  REDOOP_CHECK(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Rejection-inversion sampling (W. Hormann, G. Derflinger, 1996), as used
  // by e.g. Apache Commons. H(x) is the integral of the unnormalized pmf.
  auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return log_x;
    return (std::exp((1.0 - s) * log_x) - 1.0) / (1.0 - s);
  };
  auto h_integral_inverse = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
    double t = x * (1.0 - s) + 1.0;
    if (t < 1e-300) t = 1e-300;
    return std::exp(std::log(t) / (1.0 - s));
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };

  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_h_x1_ = h_integral(1.5) - 1.0;
    zipf_h_half_ = h_integral(0.5);
    zipf_t_ = h_integral(static_cast<double>(n) + 0.5);
  }

  while (true) {
    const double u = zipf_h_half_ + NextDouble() * (zipf_t_ - zipf_h_half_);
    const double x = h_integral_inverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (kd - x <= zipf_h_x1_ ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // 0-based rank.
    }
  }
}

}  // namespace redoop
