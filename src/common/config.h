#ifndef REDOOP_COMMON_CONFIG_H_
#define REDOOP_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace redoop {

/// Hadoop-style string key/value configuration with typed accessors and
/// defaults. Components read their knobs from a Config so experiments can
/// override any parameter without recompiling.
class Config {
 public:
  Config() = default;

  void Set(std::string_view key, std::string_view value);
  void SetInt(std::string_view key, int64_t value);
  void SetDouble(std::string_view key, double value);
  void SetBool(std::string_view key, bool value);

  bool Has(std::string_view key) const;

  /// Returns the raw string, or `def` when absent.
  std::string Get(std::string_view key, std::string_view def = "") const;

  /// Returns the parsed value, or `def` when absent or malformed.
  int64_t GetInt(std::string_view key, int64_t def) const;
  double GetDouble(std::string_view key, double def) const;
  bool GetBool(std::string_view key, bool def) const;

  /// Merges `other` into this config; existing keys are overwritten.
  void Merge(const Config& other);

  size_t size() const { return values_.size(); }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace redoop

#endif  // REDOOP_COMMON_CONFIG_H_
