#ifndef REDOOP_COMMON_IDS_H_
#define REDOOP_COMMON_IDS_H_

#include <cstdint>

namespace redoop {

/// Identifier types shared across layers. Plain integers (not strong types)
/// to keep container keys and logs simple; names document intent.
using NodeId = int32_t;    // Cluster compute/storage node; -1 == invalid.
using BlockId = int64_t;   // DFS block.
using FileId = int64_t;    // DFS file.
using PaneId = int64_t;    // Logical pane index within a data source.
using SourceId = int32_t;  // Input data source (S1, S2, ... in the paper).
using QueryId = int32_t;   // Registered recurring query.
using JobId = int64_t;     // One MapReduce job instance.
using TaskId = int64_t;    // One map or reduce task attempt group.

constexpr NodeId kInvalidNode = -1;
constexpr PaneId kInvalidPane = -1;

}  // namespace redoop

#endif  // REDOOP_COMMON_IDS_H_
