#ifndef REDOOP_COMMON_RANDOM_H_
#define REDOOP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace redoop {

/// Deterministic pseudo-random generator (xoshiro256**). Used everywhere in
/// the simulator so that experiments are exactly reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponentially distributed with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Zipf-distributed rank in [0, n) with skew parameter s (s = 0 is
  /// uniform; s ~ 1 is classic web-trace skew). Uses rejection-inversion.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached parameters for NextZipf so repeated draws with the same (n, s)
  // avoid recomputing the harmonic normalization.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  double zipf_h_x1_ = 0.0;
  double zipf_h_half_ = 0.0;
  double zipf_t_ = 0.0;
};

}  // namespace redoop

#endif  // REDOOP_COMMON_RANDOM_H_
