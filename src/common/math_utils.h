#ifndef REDOOP_COMMON_MATH_UTILS_H_
#define REDOOP_COMMON_MATH_UTILS_H_

#include <cstdint>
#include <vector>

namespace redoop {

/// Greatest common divisor; Gcd(0, b) == b, Gcd(a, 0) == a.
int64_t Gcd(int64_t a, int64_t b);

/// GCD over a list; returns 0 for an empty list.
int64_t GcdAll(const std::vector<int64_t>& values);

/// Ceiling division for nonnegative integers. Requires divisor > 0.
int64_t CeilDiv(int64_t dividend, int64_t divisor);

/// Clamps v to [lo, hi].
double Clamp(double v, double lo, double hi);

/// Arithmetic mean; returns 0 for an empty list.
double Mean(const std::vector<double>& values);

/// Population standard deviation; returns 0 for fewer than two samples.
double StdDev(const std::vector<double>& values);

}  // namespace redoop

#endif  // REDOOP_COMMON_MATH_UTILS_H_
