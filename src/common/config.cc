#include "common/config.h"

#include <cstdlib>

#include "common/string_utils.h"

namespace redoop {

void Config::Set(std::string_view key, std::string_view value) {
  values_[std::string(key)] = std::string(value);
}

void Config::SetInt(std::string_view key, int64_t value) {
  Set(key, StringPrintf("%ld", value));
}

void Config::SetDouble(std::string_view key, double value) {
  Set(key, StringPrintf("%.17g", value));
}

void Config::SetBool(std::string_view key, bool value) {
  Set(key, value ? "true" : "false");
}

bool Config::Has(std::string_view key) const {
  return values_.find(std::string(key)) != values_.end();
}

std::string Config::Get(std::string_view key, std::string_view def) const {
  auto it = values_.find(std::string(key));
  if (it == values_.end()) return std::string(def);
  return it->second;
}

int64_t Config::GetInt(std::string_view key, int64_t def) const {
  auto it = values_.find(std::string(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return def;
  return static_cast<int64_t>(v);
}

double Config::GetDouble(std::string_view key, double def) const {
  auto it = values_.find(std::string(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return def;
  return v;
}

bool Config::GetBool(std::string_view key, bool def) const {
  auto it = values_.find(std::string(key));
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return def;
}

void Config::Merge(const Config& other) {
  for (const auto& [k, v] : other.values()) values_[k] = v;
}

}  // namespace redoop
