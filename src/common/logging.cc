#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace redoop {

namespace {

/// Initial level: REDOOP_LOG_LEVEL=debug|info|warning|error when set
/// (case-sensitive, silently ignored when unrecognized), else kWarning.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("REDOOP_LOG_LEVEL");
  if (env != nullptr) {
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarning;
    if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    std::fprintf(stderr,
                 "[WARN logging.cc] unknown REDOOP_LOG_LEVEL '%s' "
                 "(want debug|info|warning|error); using warning\n",
                 env);
  }
  return LogLevel::kWarning;
}

LogLevel g_log_level = InitialLogLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace redoop
