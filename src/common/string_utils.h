#ifndef REDOOP_COMMON_STRING_UTILS_H_
#define REDOOP_COMMON_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace redoop {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins the pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a nonnegative integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Renders bytes with a binary-unit suffix, e.g. "64.0 MB".
std::string HumanBytes(int64_t bytes);

/// Renders seconds as "1h02m03s" / "42.5s" style.
std::string HumanDuration(double seconds);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace redoop

#endif  // REDOOP_COMMON_STRING_UTILS_H_
