#ifndef REDOOP_COMMON_SIM_TIME_H_
#define REDOOP_COMMON_SIM_TIME_H_

#include <cstdint>

namespace redoop {

/// Simulated time, in seconds since the start of the simulation. All of the
/// cluster simulator and the Redoop layer operate in this virtual timeline.
using SimTime = double;

/// A span of simulated time, in seconds.
using SimDuration = double;

constexpr SimTime kSimTimeZero = 0.0;

/// Convenience constructors so call sites read naturally.
constexpr SimDuration Seconds(double s) { return s; }
constexpr SimDuration Minutes(double m) { return m * 60.0; }
constexpr SimDuration Hours(double h) { return h * 3600.0; }

/// Data-record timestamps use integral seconds so pane boundaries are exact.
using Timestamp = int64_t;

constexpr int64_t kBytesPerKB = 1024;
constexpr int64_t kBytesPerMB = 1024 * 1024;
constexpr int64_t kBytesPerGB = 1024LL * 1024 * 1024;

}  // namespace redoop

#endif  // REDOOP_COMMON_SIM_TIME_H_
