#ifndef REDOOP_WORKLOAD_FFG_GENERATOR_H_
#define REDOOP_WORKLOAD_FFG_GENERATOR_H_

#include <cstdint>

#include "workload/rate_profile.h"
#include "workload/synthetic_feed.h"

namespace redoop {

/// Synthetic stand-in for the football-field sensor dataset (paper §6.1:
/// the RedFIR real-time tracking system of the Nuremberg stadium, 26 GB):
/// high-velocity sensor readings with position/velocity per player or ball
/// sensor. Records are keyed by the field grid cell of the reading, which
/// is what the paper-style proximity join matches on; the value carries
/// the sensor identity and kinematics.
struct FfgGeneratorOptions {
  int32_t num_sensors = 32;      // Sensors per source (players / balls).
  int32_t grid_cells_x = 16;     // Field is grid_x * grid_y join cells.
  int32_t grid_cells_y = 10;
  /// Simulated on-disk record size.
  int32_t record_logical_bytes = 2048;
  uint64_t seed = 2013;
};

class FfgGenerator : public RecordGenerator {
 public:
  FfgGenerator(std::shared_ptr<const RateProfile> rate,
               FfgGeneratorOptions options = {});

  std::vector<Record> RecordsForSecond(SourceId source,
                                       Timestamp second) const override;

  const FfgGeneratorOptions& options() const { return options_; }

 private:
  std::shared_ptr<const RateProfile> rate_;
  FfgGeneratorOptions options_;
};

}  // namespace redoop

#endif  // REDOOP_WORKLOAD_FFG_GENERATOR_H_
