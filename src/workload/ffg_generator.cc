#include "workload/ffg_generator.h"

#include <cmath>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_utils.h"

namespace redoop {

FfgGenerator::FfgGenerator(std::shared_ptr<const RateProfile> rate,
                           FfgGeneratorOptions options)
    : rate_(std::move(rate)), options_(options) {
  REDOOP_CHECK(rate_ != nullptr);
  REDOOP_CHECK(options_.num_sensors > 0);
  REDOOP_CHECK(options_.grid_cells_x > 0 && options_.grid_cells_y > 0);
}

std::vector<Record> FfgGenerator::RecordsForSecond(SourceId source,
                                                   Timestamp second) const {
  Random rng(HashCombine(HashCombine(options_.seed, Mix64(
                 static_cast<uint64_t>(source))),
                         static_cast<uint64_t>(second)));

  const double rps = rate_->RecordsPerSecond(second);
  int64_t count = static_cast<int64_t>(rps);
  if (rng.NextDouble() < rps - std::floor(rps)) ++count;

  std::vector<Record> records;
  records.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t sensor =
        rng.Uniform(static_cast<uint64_t>(options_.num_sensors));
    // Positions are uniform over the field: across a multi-hour window
    // every sensor covers most of the pitch, and uniformity keeps the
    // equi-join's per-cell multiplicity at L/C — so join output volume is
    // directly controlled by the grid resolution instead of exploding on
    // hot cells.
    const double cx = static_cast<double>(options_.grid_cells_x);
    const double cy = static_cast<double>(options_.grid_cells_y);
    const double x = rng.NextDouble() * cx;
    const double y = rng.NextDouble() * cy;
    const int32_t cell_x = static_cast<int32_t>(
        std::fmin(cx - 1, std::fmax(0.0, x)));
    const int32_t cell_y = static_cast<int32_t>(
        std::fmin(cy - 1, std::fmax(0.0, y)));
    const double vx = rng.NextGaussian() * 3.0;
    const double vy = rng.NextGaussian() * 3.0;
    Record r;
    r.timestamp = second;
    r.key = StringPrintf("cell-%d-%d", cell_x, cell_y);
    r.value = StringPrintf("s%d-%lu,%.1f,%.1f,%.2f,%.2f", source, sensor,
                           x, y, vx, vy);
    r.logical_bytes = options_.record_logical_bytes;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace redoop
