#include "workload/count_window_feed.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

CountWindowFeed::CountWindowFeed(BatchFeed* inner,
                                 Timestamp inner_batch_interval)
    : inner_(inner), inner_batch_interval_(inner_batch_interval) {
  REDOOP_CHECK(inner_ != nullptr);
  REDOOP_CHECK(inner_batch_interval_ > 0);
}

std::vector<RecordBatch> CountWindowFeed::BatchesFor(SourceId source,
                                                     Timestamp begin,
                                                     Timestamp end) {
  SourceState& state = states_[source];
  REDOOP_CHECK(begin == state.next_served)
      << "count-window ranges must be requested contiguously: got " << begin
      << ", expected " << state.next_served;
  REDOOP_CHECK(end >= begin);

  // Pull inner-feed time until we buffered enough records to cover `end`.
  int guard = 0;
  while (state.next_ordinal < end) {
    REDOOP_CHECK(++guard < 1000000)
        << "inner feed stopped producing records for source " << source;
    const std::vector<RecordBatch> pulled = inner_->BatchesFor(
        source, state.inner_cursor, state.inner_cursor + inner_batch_interval_);
    state.inner_cursor += inner_batch_interval_;
    for (const RecordBatch& batch : pulled) {
      for (const Record& r : batch.records) {
        Record restamped = r;
        restamped.timestamp = state.next_ordinal++;
        state.buffer.push_back(std::move(restamped));
      }
    }
  }

  RecordBatch batch;
  batch.start = begin;
  batch.end = end;
  const int64_t take = end - begin;
  batch.records.assign(state.buffer.begin(),
                       state.buffer.begin() + take);
  state.buffer.erase(state.buffer.begin(), state.buffer.begin() + take);
  state.next_served = end;
  return {std::move(batch)};
}

Timestamp CountWindowFeed::InnerTimeConsumed(SourceId source) const {
  auto it = states_.find(source);
  return it == states_.end() ? 0 : it->second.inner_cursor;
}

}  // namespace redoop
