#ifndef REDOOP_WORKLOAD_COUNT_WINDOW_FEED_H_
#define REDOOP_WORKLOAD_COUNT_WINDOW_FEED_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "core/batch_feed.h"

namespace redoop {

/// Adapter turning any time-based feed into a *count-based* one (paper
/// §6.1: "count-based windows provide similar results"): each record of a
/// source is re-timestamped with its arrival ordinal, so a count-based
/// sliding window of `win = N records, slide = M records` is exactly a
/// time-based window over ordinal "time". Both drivers then run unchanged;
/// every window covers precisely `win` records.
///
/// Requested ranges are in ordinal units. The adapter pulls as much real
/// time from the inner feed as needed to accumulate the requested number
/// of records, so a range can always be served (assuming the inner feed
/// keeps producing data).
class CountWindowFeed : public BatchFeed {
 public:
  /// `inner` must outlive the adapter. `inner_batch_interval` is the step
  /// (in the inner feed's real time) used when pulling from it.
  CountWindowFeed(BatchFeed* inner, Timestamp inner_batch_interval);

  /// Batches covering the ordinal range [begin, end): one batch per call,
  /// carrying exactly end - begin records (re-stamped with their ordinal).
  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override;

  bool HasSource(SourceId source) const override {
    return inner_->HasSource(source);
  }

  /// Real (inner-feed) time consumed so far for `source`.
  Timestamp InnerTimeConsumed(SourceId source) const;

 private:
  struct SourceState {
    Timestamp inner_cursor = 0;   // Inner-feed time already pulled.
    Timestamp next_ordinal = 0;   // Next record ordinal to assign.
    Timestamp next_served = 0;    // Ordinal up to which batches were given.
    std::vector<Record> buffer;   // Re-stamped records not yet served.
  };

  BatchFeed* inner_;
  Timestamp inner_batch_interval_;
  std::map<SourceId, SourceState> states_;
};

}  // namespace redoop

#endif  // REDOOP_WORKLOAD_COUNT_WINDOW_FEED_H_
