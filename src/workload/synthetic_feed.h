#ifndef REDOOP_WORKLOAD_SYNTHETIC_FEED_H_
#define REDOOP_WORKLOAD_SYNTHETIC_FEED_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "core/batch_feed.h"
#include "workload/rate_profile.h"

namespace redoop {

/// Produces the records of one data source for one second of data time.
/// Must be a pure function of (source, second) given the construction-time
/// seed — both drivers must observe identical data.
class RecordGenerator {
 public:
  virtual ~RecordGenerator() = default;
  virtual std::vector<Record> RecordsForSecond(SourceId source,
                                               Timestamp second) const = 0;
};

/// BatchFeed assembling generator output into batch files on a fixed
/// arrival interval (the paper's model: the system collects log files
/// periodically and uploads each as a new HDFS batch).
class SyntheticFeed : public BatchFeed {
 public:
  /// Batches cover `batch_interval`-second spans aligned to the global
  /// time grid. Requested ranges must align to batch boundaries.
  SyntheticFeed(Timestamp batch_interval);

  /// Registers a source. Both pointers are shared with the caller.
  void AddSource(SourceId source, std::shared_ptr<const RecordGenerator> gen);

  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override;

  bool HasSource(SourceId source) const override {
    return generators_.find(source) != generators_.end();
  }

  Timestamp batch_interval() const { return batch_interval_; }

 private:
  Timestamp batch_interval_;
  std::map<SourceId, std::shared_ptr<const RecordGenerator>> generators_;
};

}  // namespace redoop

#endif  // REDOOP_WORKLOAD_SYNTHETIC_FEED_H_
