#include "workload/rate_profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace redoop {

ConstantRate::ConstantRate(double records_per_second)
    : rps_(records_per_second) {
  REDOOP_CHECK(records_per_second >= 0.0);
}

double ConstantRate::RecordsPerSecond(Timestamp t) const {
  (void)t;
  return rps_;
}

WindowSpikeRate::WindowSpikeRate(double base_rps, double multiplier,
                                 Timestamp win, Timestamp slide,
                                 std::vector<int64_t> spiked_slides)
    : base_rps_(base_rps),
      multiplier_(multiplier),
      win_(win),
      slide_(slide),
      spiked_slides_(std::move(spiked_slides)) {
  REDOOP_CHECK(base_rps >= 0.0);
  REDOOP_CHECK(multiplier >= 0.0);
  REDOOP_CHECK(win > 0 && slide > 0);
}

double WindowSpikeRate::RecordsPerSecond(Timestamp t) const {
  // Which recurrence's fresh data does time t belong to? Recurrence k > 0
  // freshly contributes [win + (k-1)*slide, win + k*slide); everything in
  // [0, win) belongs to recurrence 0.
  int64_t slide_index = 0;
  if (t >= win_) slide_index = (t - win_) / slide_ + 1;
  const bool spiked = std::find(spiked_slides_.begin(), spiked_slides_.end(),
                                slide_index) != spiked_slides_.end();
  return spiked ? base_rps_ * multiplier_ : base_rps_;
}

std::vector<int64_t> WindowSpikeRate::PaperSpikePattern(int64_t num_windows) {
  std::vector<int64_t> spiked;
  for (int64_t k = 0; k < num_windows; ++k) {
    if (k % 3 != 0) spiked.push_back(k);
  }
  return spiked;
}

SinusoidalRate::SinusoidalRate(double base_rps, double amplitude,
                               Timestamp period)
    : base_rps_(base_rps), amplitude_(amplitude), period_(period) {
  REDOOP_CHECK(base_rps >= 0.0);
  REDOOP_CHECK(amplitude >= 0.0 && amplitude <= 1.0);
  REDOOP_CHECK(period > 0);
}

double SinusoidalRate::RecordsPerSecond(Timestamp t) const {
  const double phase =
      2.0 * M_PI * static_cast<double>(t) / static_cast<double>(period_);
  return base_rps_ * (1.0 + amplitude_ * std::sin(phase));
}

}  // namespace redoop
