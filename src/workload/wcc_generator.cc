#include "workload/wcc_generator.h"

#include <cmath>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_utils.h"

namespace redoop {

WccGenerator::WccGenerator(std::shared_ptr<const RateProfile> rate,
                           WccGeneratorOptions options)
    : rate_(std::move(rate)), options_(options) {
  REDOOP_CHECK(rate_ != nullptr);
  REDOOP_CHECK(options_.num_clients > 0);
  REDOOP_CHECK(options_.num_objects > 0);
}

std::vector<Record> WccGenerator::RecordsForSecond(SourceId source,
                                                   Timestamp second) const {
  // Seed from (seed, source, second): a pure function of time, so replays
  // are identical across drivers and runs.
  Random rng(HashCombine(HashCombine(options_.seed, Mix64(
                 static_cast<uint64_t>(source))),
                         static_cast<uint64_t>(second)));

  const double rps = rate_->RecordsPerSecond(second);
  // Deterministic fractional rounding: carry the fraction via the seed.
  int64_t count = static_cast<int64_t>(rps);
  if (rng.NextDouble() < rps - std::floor(rps)) ++count;

  static const char* kMethods[] = {"GET", "POST", "HEAD"};
  static const int kStatuses[] = {200, 200, 200, 200, 304, 404, 500};

  std::vector<Record> records;
  records.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t client =
        rng.NextZipf(static_cast<uint64_t>(options_.num_clients),
                     options_.client_skew);
    const uint64_t object =
        rng.NextZipf(static_cast<uint64_t>(options_.num_objects),
                     options_.object_skew);
    const int32_t region =
        static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(
            options_.num_regions)));
    const char* method = kMethods[rng.Uniform(3)];
    const int status = kStatuses[rng.Uniform(7)];
    const int64_t bytes = 64 + static_cast<int64_t>(rng.Uniform(32768));
    Record r;
    r.timestamp = second;
    r.key = StringPrintf("client-%lu", client);
    r.value = StringPrintf("obj-%lu,%s,%d,reg-%d,%ld", object, method, status,
                           region, bytes);
    r.logical_bytes = options_.record_logical_bytes;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace redoop
