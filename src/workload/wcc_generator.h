#ifndef REDOOP_WORKLOAD_WCC_GENERATOR_H_
#define REDOOP_WORKLOAD_WCC_GENERATOR_H_

#include <cstdint>

#include "workload/rate_profile.h"
#include "workload/synthetic_feed.h"

namespace redoop {

/// Synthetic stand-in for the 1998 WorldCup Click dataset (paper §6.1,
/// 236 GB / 1.35 B HTTP requests): timestamped click records with Zipfian
/// client and object popularity, region, method, HTTP status, and response
/// size — the schema of the original trace. The key is the client id (the
/// aggregation query groups per client).
struct WccGeneratorOptions {
  int64_t num_clients = 5000;
  int64_t num_objects = 20000;
  int32_t num_regions = 33;       // The trace's region count.
  double client_skew = 0.9;       // Zipf skew of client activity.
  double object_skew = 1.0;       // Zipf skew of object popularity.
  /// Simulated on-disk record size. The real trace stores ~20 B/request;
  /// we default higher so modest record counts model GB-scale inputs.
  int32_t record_logical_bytes = 4096;
  uint64_t seed = 1998;
};

class WccGenerator : public RecordGenerator {
 public:
  /// `rate` is shared with the caller and must outlive the generator.
  WccGenerator(std::shared_ptr<const RateProfile> rate,
               WccGeneratorOptions options = {});

  std::vector<Record> RecordsForSecond(SourceId source,
                                       Timestamp second) const override;

  const WccGeneratorOptions& options() const { return options_; }

 private:
  std::shared_ptr<const RateProfile> rate_;
  WccGeneratorOptions options_;
};

}  // namespace redoop

#endif  // REDOOP_WORKLOAD_WCC_GENERATOR_H_
