#include "workload/synthetic_feed.h"

#include <utility>

#include "common/logging.h"

namespace redoop {

SyntheticFeed::SyntheticFeed(Timestamp batch_interval)
    : batch_interval_(batch_interval) {
  REDOOP_CHECK(batch_interval_ > 0);
}

void SyntheticFeed::AddSource(SourceId source,
                              std::shared_ptr<const RecordGenerator> gen) {
  REDOOP_CHECK(gen != nullptr);
  generators_[source] = std::move(gen);
}

std::vector<RecordBatch> SyntheticFeed::BatchesFor(SourceId source,
                                                   Timestamp begin,
                                                   Timestamp end) {
  auto it = generators_.find(source);
  REDOOP_CHECK(it != generators_.end()) << "unknown source " << source;
  REDOOP_CHECK(begin % batch_interval_ == 0 && end % batch_interval_ == 0)
      << "requested range [" << begin << "," << end
      << ") not aligned to batch interval " << batch_interval_;
  const RecordGenerator& gen = *it->second;

  std::vector<RecordBatch> batches;
  for (Timestamp t = begin; t < end; t += batch_interval_) {
    RecordBatch batch;
    batch.start = t;
    batch.end = t + batch_interval_;
    for (Timestamp s = t; s < t + batch_interval_; ++s) {
      std::vector<Record> second = gen.RecordsForSecond(source, s);
      std::move(second.begin(), second.end(),
                std::back_inserter(batch.records));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace redoop
