#ifndef REDOOP_WORKLOAD_RATE_PROFILE_H_
#define REDOOP_WORKLOAD_RATE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"

namespace redoop {

/// Arrival-rate shape of an evolving data source: records per second as a
/// function of data time. Deterministic, so both drivers replay identical
/// workloads.
class RateProfile {
 public:
  virtual ~RateProfile() = default;
  virtual double RecordsPerSecond(Timestamp t) const = 0;
};

/// Steady arrival rate.
class ConstantRate : public RateProfile {
 public:
  explicit ConstantRate(double records_per_second);
  double RecordsPerSecond(Timestamp t) const override;

 private:
  double rps_;
};

/// The Fig. 8 workload: rate multiplied during chosen slides. Slide index
/// k covers data time [win + (k-1)*slide, win + k*slide) — the fresh data
/// of recurrence k — with slide index 0 covering the initial window
/// [0, win). The paper doubles the workloads of windows 2,3,5,6,8,9
/// (1-based), keeping 1,4,7,10 normal.
class WindowSpikeRate : public RateProfile {
 public:
  /// `spiked_slides` lists 0-based recurrence indices whose fresh data is
  /// multiplied by `multiplier`.
  WindowSpikeRate(double base_rps, double multiplier, Timestamp win,
                  Timestamp slide, std::vector<int64_t> spiked_slides);

  double RecordsPerSecond(Timestamp t) const override;

  /// The paper's pattern for n windows: every recurrence except 0, 3, 6,
  /// 9, ... (multiples of 3) is spiked.
  static std::vector<int64_t> PaperSpikePattern(int64_t num_windows);

 private:
  double base_rps_;
  double multiplier_;
  Timestamp win_;
  Timestamp slide_;
  std::vector<int64_t> spiked_slides_;
};

/// Smooth diurnal-style modulation: base * (1 + amplitude * sin(2πt/period)).
class SinusoidalRate : public RateProfile {
 public:
  SinusoidalRate(double base_rps, double amplitude, Timestamp period);
  double RecordsPerSecond(Timestamp t) const override;

 private:
  double base_rps_;
  double amplitude_;
  Timestamp period_;
};

}  // namespace redoop

#endif  // REDOOP_WORKLOAD_RATE_PROFILE_H_
