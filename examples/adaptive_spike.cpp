// Adaptive input partitioning under load spikes (paper §3.3 / Fig. 8):
// the data rate doubles on some windows. Plain Redoop waits for the
// trigger and then faces twice the data; adaptive Redoop's Execution
// Profiler forecasts the overload (Holt double exponential smoothing),
// the Semantic Analyzer splits panes into sub-panes, and the driver
// proactively processes slices as they arrive — smoothing the spikes out.

#include <cstdio>

#include "baseline/hadoop_driver.h"
#include "core/redoop_driver.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

namespace {

constexpr Timestamp kWin = 18000;
constexpr Timestamp kSlide = 1800;
constexpr int64_t kWindows = 8;

std::unique_ptr<SyntheticFeed> MakeSpikyFeed() {
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  WccGeneratorOptions options;
  options.record_logical_bytes = 2 * kBytesPerMB;
  // Windows 1,2,4,5,7 (0-based) carry doubled load; 0,3,6 are normal.
  auto rate = std::make_shared<WindowSpikeRate>(
      /*base_rps=*/6.0, /*multiplier=*/2.0, kWin, kSlide,
      WindowSpikeRate::PaperSpikePattern(kWindows));
  feed->AddSource(1, std::make_shared<WccGenerator>(rate, options));
  return feed;
}

}  // namespace

int main() {
  RecurringQuery query =
      MakeAggregationQuery(1, "spiky-agg", 1, kWin, kSlide, 8);

  Cluster hadoop_cluster(16, Config());
  auto hadoop_feed = MakeSpikyFeed();
  HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);

  Cluster redoop_cluster(16, Config());
  auto redoop_feed = MakeSpikyFeed();
  RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);

  Cluster adaptive_cluster(16, Config());
  auto adaptive_feed = MakeSpikyFeed();
  // Engage proactive mode once the forecast exceeds 12% of the slide.
  RedoopDriver adaptive(&adaptive_cluster, adaptive_feed.get(), query,
                        RedoopDriverOptions::Builder()
                            .Adaptive(true)
                            .ProactiveThreshold(0.12)
                            .Build());

  std::printf("%-8s %7s %12s %12s %15s %10s\n", "window", "spike",
              "hadoop(s)", "redoop(s)", "adaptive(s)", "subpanes");
  for (int64_t i = 0; i < kWindows; ++i) {
    WindowReport h = hadoop.RunRecurrence(i);
    WindowReport r = redoop.RunRecurrence(i).value();
    WindowReport a = adaptive.RunRecurrence(i).value();
    std::printf("%-8ld %7s %12.1f %12.1f %15.1f %10d\n", i,
                i % 3 != 0 ? "x2" : "-", h.response_time, r.response_time,
                a.response_time, adaptive.current_subpanes());
  }
  std::printf("\nAdaptive Redoop %s proactive mode by the end of the run.\n",
              adaptive.proactive_mode() ? "is in" : "left");
  return 0;
}
