// Sensor co-location join (paper Example / Fig. 7 workload): two streams
// of football-field sensor readings — player sensors (S1) and ball sensors
// (S2) — are equi-joined on the field grid cell over a sliding window to
// find player/ball proximity events. Demonstrates Redoop's pane-pair join:
// the cache status matrix schedules each pane pair exactly once over its
// lifetime, and window results are assembled from cached pair outputs.

#include <cstdio>

#include "baseline/hadoop_driver.h"
#include "common/string_utils.h"
#include "core/redoop_driver.h"
#include "queries/join_query.h"
#include "workload/ffg_generator.h"

using namespace redoop;

namespace {

std::unique_ptr<SyntheticFeed> MakeFeed() {
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  FfgGeneratorOptions options;
  options.grid_cells_x = 180;
  options.grid_cells_y = 180;
  options.record_logical_bytes = 512 * 1024;
  auto rate = std::make_shared<ConstantRate>(2.5);
  feed->AddSource(1, std::make_shared<FfgGenerator>(rate, options));
  feed->AddSource(2, std::make_shared<FfgGenerator>(rate, options));
  return feed;
}

}  // namespace

int main() {
  // Join the last 5 hours of both sensor streams every hour.
  RecurringQuery query = MakeJoinQuery(/*id=*/3, "sensor-join",
                                       /*left=*/1, /*right=*/2,
                                       /*win=*/18000, /*slide=*/3600,
                                       /*num_reducers=*/6);

  Cluster hadoop_cluster(16, Config());
  auto hadoop_feed = MakeFeed();
  HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);

  Cluster redoop_cluster(16, Config());
  auto redoop_feed = MakeFeed();
  RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);

  std::printf("%-8s %12s %12s %9s %12s %12s\n", "window", "hadoop(s)",
              "redoop(s)", "speedup", "join rows", "match");
  for (int64_t i = 0; i < 6; ++i) {
    WindowReport h = hadoop.RunRecurrence(i);
    WindowReport r = redoop.RunRecurrence(i).value();
    const bool match =
        h.output.size() == r.output.size() &&
        std::equal(h.output.begin(), h.output.end(), r.output.begin(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key == b.key && a.value == b.value;
                   });
    std::printf("%-8ld %12.1f %12.1f %8.1fx %12zu %12s\n", i, h.response_time,
                r.response_time, h.response_time / r.response_time,
                h.output.size(), match ? "yes" : "NO");
  }

  const CacheStatusMatrix* matrix = redoop.controller().matrix(3);
  std::printf("\nCache status matrix after 6 windows: base=(%ld,%ld), "
              "extent=%ldx%ld (%ld live cells)\n",
              matrix->left_base(), matrix->right_base(),
              matrix->left_extent(), matrix->right_extent(),
              matrix->CellCount());
  std::printf("Cached data: %zu signatures, %s\n",
              redoop.controller().signature_count(),
              HumanBytes(redoop.store().total_bytes()).c_str());
  return 0;
}
