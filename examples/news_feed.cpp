// News feed updates (paper Example 2): a recurring analysis over member
// activity runs every half hour over the last 5 hours, and members receive
// *updates* — only what changed since the previous delivery. The query
// sets `emit_deltas`, so every window report carries the added/removed
// rows alongside the full result; Redoop computes the windows
// incrementally from its pane caches.

#include <cstdio>
#include <span>

#include "core/redoop_driver.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

namespace {

// User-defined finalization (paper §5): buckets each member's windowed
// activity into coarse tiers. A member's feed row only changes when they
// cross a tier boundary, so the per-window deltas stay sparse.
class ActivityTierFinalizer : public Reducer {
 public:
  void Reduce(const std::string& key, std::span<const KeyValue> values,
              ReduceContext* context) const override {
    AggregateValue total;
    for (const KeyValue& kv : values) {
      total.Merge(AggregateValue::Parse(kv.value));
    }
    context->Emit(key, "tier-" + std::to_string(total.count / 40));
  }
};

}  // namespace

int main() {
  RecurringQuery query = MakeAggregationQuery(
      /*id=*/1, "member-activity", /*source=*/1, /*win=*/18000,
      /*slide=*/1800, /*num_reducers=*/8);
  query.finalizer = std::make_shared<const ActivityTierFinalizer>();
  query.emit_deltas = true;

  Cluster cluster(16, Config());
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  WccGeneratorOptions options;
  options.record_logical_bytes = 2 * kBytesPerMB;
  options.num_clients = 800;  // "Members".
  feed->AddSource(1, std::make_shared<WccGenerator>(
                         std::make_shared<ConstantRate>(5.0), options));

  RedoopDriver driver(&cluster, feed.get(), query);

  std::printf("%-8s %12s %10s %10s %10s %12s\n", "window", "response",
              "feed rows", "added", "removed", "delivered");
  for (int64_t i = 0; i < 6; ++i) {
    WindowReport w = driver.RunRecurrence(i).value();
    const size_t delivered = w.delta.added.size() + w.delta.removed.size();
    std::printf("%-8ld %11.1fs %10zu %10zu %10zu %11zu\n", i + 1,
                w.response_time, w.output.size(), w.delta.added.size(),
                w.delta.removed.size(), delivered);
  }

  std::printf("\nAfter the first delivery, members receive only the changed "
              "rows —\na small fraction of the full feed, computed from "
              "cached panes.\n");
  return 0;
}
