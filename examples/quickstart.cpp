// Quickstart: register a recurring aggregation query, run it with both the
// plain-Hadoop driver and the Redoop driver on identical synthetic data,
// and compare per-window response times.
//
//   $ ./quickstart
//
// Walks through the public API end to end: cluster setup, the recurring
// query model (win/slide), the Semantic Analyzer's partition plan, and the
// per-window reports.

#include <cstdio>

#include "baseline/hadoop_driver.h"
#include "common/string_utils.h"
#include "core/redoop_driver.h"
#include "core/semantic_analyzer.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

int main() {
  // --- 1. The recurring query: every 30 minutes, aggregate the last 5
  //        hours of clickstream data per client (win=18000s, slide=1800s,
  //        overlap 0.9 — the paper's high-overlap regime).
  const Timestamp kWin = 18000;
  const Timestamp kSlide = 1800;
  RecurringQuery query = MakeAggregationQuery(
      /*id=*/1, "quickstart-agg", /*source=*/1, kWin, kSlide,
      /*num_reducers=*/8);

  // --- 2. Show what the Semantic Analyzer plans for this query
  //        (Algorithm 1: pane = GCD(win, slide), file mapping by rate).
  SemanticAnalyzer analyzer(64 * kBytesPerMB);
  const double rate_bps = 50.0 * 1024 * 1024 / 60.0;  // ~50 MB/minute.
  PartitionPlan plan = analyzer.Plan(query.window(), SourceStatistics{rate_bps});
  std::printf("Partition plan: pane = %ld s, %ld pane(s) per file, ~%s per file\n\n",
              plan.pane_size, plan.panes_per_file,
              HumanBytes(plan.expected_file_bytes).c_str());

  // --- 3. Identical synthetic WorldCup-click feeds for both systems.
  auto make_feed = [] {
    auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
    WccGeneratorOptions options;
    options.record_logical_bytes = 2 * kBytesPerMB;  // Model ~50 GB windows.
    feed->AddSource(1, std::make_shared<WccGenerator>(
                           std::make_shared<ConstantRate>(6.0), options));
    return feed;
  };
  auto hadoop_feed = make_feed();
  auto redoop_feed = make_feed();

  // --- 4. Two identical 16-node clusters (separate so timings don't mix).
  Config config;
  Cluster hadoop_cluster(16, config);
  Cluster redoop_cluster(16, config);

  HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);
  RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);

  // --- 5. Run 6 recurrences and compare.
  std::printf("%-8s %14s %14s %9s %8s\n", "window", "hadoop (s)", "redoop (s)",
              "speedup", "match");
  for (int64_t i = 0; i < 6; ++i) {
    WindowReport h = hadoop.RunRecurrence(i);
    WindowReport r = redoop.RunRecurrence(i).value();
    const bool match =
        h.output.size() == r.output.size() &&
        std::equal(h.output.begin(), h.output.end(), r.output.begin(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key == b.key && a.value == b.value;
                   });
    std::printf("%-8ld %14.1f %14.1f %8.1fx %8s\n", i, h.response_time,
                r.response_time, h.response_time / r.response_time,
                match ? "yes" : "NO");
  }

  std::printf("\nRedoop cache state after 6 windows: %zu signatures, %s cached\n",
              redoop.controller().signature_count(),
              HumanBytes(redoop.store().total_bytes()).c_str());
  return 0;
}
