// Multi-tenant consolidation: two recurring analytics with different
// window constraints share one clickstream source on one cluster (the
// paper's Semantic Analyzer takes "a sequence of recurring queries",
// §3.1). The coordinator puts both on the common GCD pane grid and
// interleaves their recurrences in trigger order; each query keeps its
// own caches and stays exactly correct.

#include <cstdio>

#include "common/string_utils.h"
#include "core/multi_query.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

int main() {
  // Tenant A: every 30 min over the last 5 h. Tenant B: every hour over
  // the last 6 h. Shared source -> pane grid GCD(18000,1800,21600,3600).
  RecurringQuery tenant_a = MakeAggregationQuery(
      /*id=*/1, "tenant-a", /*source=*/1, /*win=*/18000, /*slide=*/1800, 8);
  RecurringQuery tenant_b = MakeAggregationQuery(
      /*id=*/2, "tenant-b", /*source=*/1, /*win=*/21600, /*slide=*/3600, 8);

  Cluster cluster(16, Config());
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  WccGeneratorOptions options;
  options.record_logical_bytes = 2 * kBytesPerMB;
  feed->AddSource(1, std::make_shared<WccGenerator>(
                         std::make_shared<ConstantRate>(5.0), options));

  MultiQueryCoordinator coordinator(&cluster, feed.get());
  coordinator.AddQuery(tenant_a);
  coordinator.AddQuery(tenant_b);
  std::printf("Shared pane grid for source 1: %ld s\n\n",
              coordinator.PaneSizeForSource(1));

  const std::vector<RunReport> reports = coordinator.Run(/*windows=*/5).value();

  for (const RunReport& report : reports) {
    std::printf("%s\n%-8s %12s %14s %12s\n", report.system.c_str(), "window",
                "trigger", "response (s)", "rows");
    for (const WindowReport& w : report.windows) {
      std::printf("%-8ld %12s %14.1f %12ld\n", w.recurrence + 1,
                  HumanDuration(static_cast<double>(w.trigger_time)).c_str(),
                  w.response_time, w.output_records);
    }
    std::printf("\n");
  }

  std::printf("Both tenants' caches live side by side: %zu signatures on "
              "tenant A's controller, %zu on tenant B's.\n",
              coordinator.driver(1).controller().signature_count(),
              coordinator.driver(2).controller().signature_count());
  return 0;
}
