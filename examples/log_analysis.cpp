// Log processing (paper Example 1): a data center collects click/request
// logs continuously; a recurring query aggregates the recent past per
// client to detect emerging patterns. This example runs the recurring
// aggregation at three overlap settings and prints how Redoop's advantage
// grows with the overlap between consecutive windows.

#include <cstdio>

#include "baseline/hadoop_driver.h"
#include "core/redoop_driver.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

namespace {

struct OverlapSetting {
  const char* label;
  Timestamp win;
  Timestamp slide;
};

std::unique_ptr<SyntheticFeed> MakeFeed() {
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  WccGeneratorOptions options;
  options.record_logical_bytes = 2 * kBytesPerMB;
  options.num_clients = 2000;
  feed->AddSource(1, std::make_shared<WccGenerator>(
                         std::make_shared<ConstantRate>(6.0), options));
  return feed;
}

}  // namespace

int main() {
  // overlap = (win - slide) / win.
  const OverlapSetting kSettings[] = {
      {"0.9", 18000, 1800},
      {"0.5", 18000, 9000},
      {"0.1", 18000, 16200},
  };
  const int64_t kWindows = 5;

  std::printf("Recurring log aggregation, %ld windows each (warm windows only):\n\n",
              kWindows - 1);
  std::printf("%-8s %16s %16s %9s\n", "overlap", "hadoop total(s)",
              "redoop total(s)", "speedup");

  for (const OverlapSetting& setting : kSettings) {
    RecurringQuery query = MakeAggregationQuery(
        1, "log-agg", 1, setting.win, setting.slide, /*num_reducers=*/8);

    Cluster hadoop_cluster(16, Config());
    auto hadoop_feed = MakeFeed();
    HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);

    Cluster redoop_cluster(16, Config());
    auto redoop_feed = MakeFeed();
    RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);

    double hadoop_total = 0.0;
    double redoop_total = 0.0;
    for (int64_t i = 0; i < kWindows; ++i) {
      WindowReport h = hadoop.RunRecurrence(i);
      WindowReport r = redoop.RunRecurrence(i).value();
      if (i >= 1) {  // Cold window is similar by design; compare warm ones.
        hadoop_total += h.response_time;
        redoop_total += r.response_time;
      }
    }
    std::printf("%-8s %16.1f %16.1f %8.1fx\n", setting.label, hadoop_total,
                redoop_total, hadoop_total / redoop_total);
  }

  std::printf("\nThe higher the overlap, the more of each window Redoop serves "
              "from its pane caches.\n");
  return 0;
}
