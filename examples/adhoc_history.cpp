// Ad-hoc queries over the cached history (paper §2.1: "even ad-hoc
// queries can benefit from the caching of the intermediate data"): after
// the recurring aggregation has been running for a while, an analyst asks
// one-off questions about arbitrary past ranges. Pane-aligned ranges are
// answered straight from the cached per-pane partial outputs — no
// re-reading or re-shuffling of the raw data; misaligned edges fall back
// to clipped re-maps of just the edge panes.

#include <cstdio>

#include "core/redoop_driver.h"
#include "queries/aggregation_query.h"
#include "workload/wcc_generator.h"

using namespace redoop;

int main() {
  RecurringQuery query = MakeAggregationQuery(
      /*id=*/1, "history", /*source=*/1, /*win=*/18000, /*slide=*/1800, 8);

  Cluster cluster(16, Config());
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/600);
  WccGeneratorOptions options;
  options.record_logical_bytes = 2 * kBytesPerMB;
  feed->AddSource(1, std::make_shared<WccGenerator>(
                         std::make_shared<ConstantRate>(6.0), options));

  RedoopDriver driver(&cluster, feed.get(), query);
  for (int64_t i = 0; i < 3; ++i) driver.RunRecurrence(i).value();
  std::printf("3 recurrences done; panes cached up to t = %ld s\n\n",
              driver.geometry().WindowEnd(2));

  struct Probe {
    const char* label;
    Timestamp begin;
    Timestamp end;
  };
  const Probe probes[] = {
      {"pane-aligned hour (cache only)", 7200, 10800},
      {"misaligned 90 min (cache + edge re-map)", 8000, 13400},
      {"one minute sliver", 9000, 9060},
  };

  for (const Probe& probe : probes) {
    const SimTime before = cluster.simulator().Now();
    auto result = driver.RunAdHocQuery(probe.begin, probe.end);
    if (!result.ok()) {
      std::printf("%-42s -> %s\n", probe.label,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-42s -> %5zu rows in %6.1f simulated seconds\n",
                probe.label, result->size(),
                cluster.simulator().Now() - before);
  }

  auto too_old = driver.RunAdHocQuery(0, 1800);
  std::printf("\nrange before the retained horizon -> %s\n",
              too_old.status().ToString().c_str());
  return 0;
}
