// redoop_inspect — flight-recorder introspection tool.
//
// Reads any journal (live run dump or bounded flight-recorder capture)
// and renders per-query service-level views. Every figure is derived from
// journal events alone, so the tool reproduces the driver-exported SLO
// metrics from a journal file with no other inputs.
//
// Subcommands:
//   redoop_inspect slo JOURNAL.jsonl [--json] [--straggler-k=K]
//       Per-query SLO table: deadline attainment, window lag, response
//       times, cache hit ratio, slot-wait, straggler incidence.
//   redoop_inspect top JOURNAL.jsonl [--by=KEY] [--limit=N] [--json]
//                      [--straggler-k=K]
//       Queries ranked by KEY: cache_bytes (default), slot_wait, lag, or
//       response.
//   redoop_inspect trace JOURNAL.jsonl [--window=N] [--json]
//       Causal span view reconstructed from the journal: the default
//       summary counts spans, follows-from edges, and the critical path;
//       --window=N renders that recurrence's span tree with cross-window
//       follows-from annotations.
//   redoop_inspect lineage JOURNAL.jsonl SOURCE:PANE [--json]
//       Cross-window lineage of one pane: the window that built it and
//       every later window whose cache hit consumed it.
//   redoop_inspect fleet JOURNAL.jsonl [--json]
//       Per-tenant fleet-serving view (DESIGN §17): admission wait and
//       attained weighted service, shared-scan savings, dedup adoptions,
//       and eviction fan-outs per query.
//
// Truncated journals (flight-recorder captures that evicted old events)
// are disclosed in both renderings: the text header and the "journal"
// object of the JSON report carry the dropped-event/byte counters parsed
// from the journal's truncation marker.
//
// Exit codes: 0 success, 2 usage error, 3 input could not be loaded.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_utils.h"
#include "obs/analysis/analysis.h"
#include "obs/event_journal.h"
#include "obs/slo/slo_tracker.h"
#include "obs/trace/span_builder.h"

namespace redoop {
namespace {

using obs::analysis::AnalysisOptions;
using obs::slo::SloReport;
using obs::slo::TopOptions;

void PrintUsage() {
  std::printf(
      "redoop_inspect — flight-recorder introspection tool\n\n"
      "  redoop_inspect slo JOURNAL.jsonl [--json] [--straggler-k=K]\n"
      "  redoop_inspect top JOURNAL.jsonl [--by=KEY] [--limit=N] [--json]\n"
      "                     [--straggler-k=K]\n"
      "  redoop_inspect trace JOURNAL.jsonl [--window=N] [--json]\n"
      "  redoop_inspect lineage JOURNAL.jsonl SOURCE:PANE [--json]\n"
      "  redoop_inspect fleet JOURNAL.jsonl [--json]\n\n"
      "  --json            emit the report as JSON instead of text\n"
      "  --by=KEY          ranking key for top: cache_bytes (default),\n"
      "                    slot_wait, lag, response\n"
      "  --limit=N         rows in the top view (default 10)\n"
      "  --window=N        trace: render recurrence N's span tree instead\n"
      "                    of the whole-run summary\n"
      "  --straggler-k=K   flag tasks slower than K x wave median "
      "(default 3)\n\n"
      "Reports group by the journal's query labels; journals from runs\n"
      "predating per-query attribution collapse into one row with an\n"
      "empty query name. Truncated flight-recorder journals disclose\n"
      "their dropped-event counters in the report header.\n");
}

struct InspectArgs {
  std::string command;
  std::vector<std::string> paths;
  bool json = false;
  int64_t window = -1;  // trace: recurrence to render; -1 = summary.
  AnalysisOptions analysis;
  TopOptions top;
};

bool ParseArgs(int argc, char** argv, InspectArgs* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  if (args->command == "--help" || args->command == "-h") {
    PrintUsage();
    std::exit(0);
  }
  args->analysis.group_by_query = true;  // The tool's whole point.
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args->json = true;
    } else if (arg.rfind("--by=", 0) == 0) {
      args->top.by = arg.substr(5);
    } else if (arg.rfind("--limit=", 0) == 0) {
      const long limit = std::atol(arg.c_str() + 8);
      if (limit <= 0) {
        std::fprintf(stderr, "--limit must be positive\n");
        return false;
      }
      args->top.limit = static_cast<size_t>(limit);
    } else if (arg.rfind("--window=", 0) == 0) {
      args->window = std::atol(arg.c_str() + 9);
      if (args->window < 0) {
        std::fprintf(stderr, "--window must be non-negative\n");
        return false;
      }
    } else if (arg.rfind("--straggler-k=", 0) == 0) {
      args->analysis.straggler_k = std::atof(arg.c_str() + 14);
      if (args->analysis.straggler_k <= 0.0) {
        std::fprintf(stderr, "--straggler-k must be positive\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    } else {
      args->paths.push_back(arg);
    }
  }
  return true;
}

/// "journal: N events" plus the truncation disclosure when events were
/// evicted by the flight-recorder budget.
std::string JournalHeaderText(const obs::EventJournal& journal) {
  std::string out = StringPrintf(
      "journal: %lld events", static_cast<long long>(journal.size()));
  if (journal.dropped_events() > 0) {
    out += StringPrintf(
        " (truncated: %lld events, %lld bytes dropped)",
        static_cast<long long>(journal.dropped_events()),
        static_cast<long long>(journal.dropped_bytes()));
  }
  out += "\n";
  return out;
}

std::string JournalHeaderJson(const obs::EventJournal& journal) {
  return StringPrintf(
      "\"journal\": {\"events\": %lld, \"dropped_events\": %lld, "
      "\"dropped_bytes\": %lld}",
      static_cast<long long>(journal.size()),
      static_cast<long long>(journal.dropped_events()),
      static_cast<long long>(journal.dropped_bytes()));
}

/// Parses "SOURCE:PANE" (two non-negative integers) for lineage.
bool ParsePaneRef(const std::string& ref, int64_t* source, int64_t* pane) {
  const size_t colon = ref.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= ref.size()) {
    return false;
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (i == colon) continue;
    if (ref[i] < '0' || ref[i] > '9') return false;
  }
  *source = std::atol(ref.substr(0, colon).c_str());
  *pane = std::atol(ref.substr(colon + 1).c_str());
  return true;
}

/// Wraps a report document (ending in "}\n") as the value of `key` in an
/// object that also carries the journal header.
std::string WrapJson(const obs::EventJournal& journal, const char* key,
                     std::string report_json) {
  while (!report_json.empty() && report_json.back() == '\n') {
    report_json.pop_back();
  }
  return StringPrintf("{%s,\n\"%s\": %s}\n", JournalHeaderJson(journal).c_str(),
                      key, report_json.c_str());
}

int Main(int argc, char** argv) {
  InspectArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.command != "slo" && args.command != "top" &&
      args.command != "trace" && args.command != "lineage" &&
      args.command != "fleet") {
    std::fprintf(stderr, "unknown command: %s\n\n", args.command.c_str());
    PrintUsage();
    return 2;
  }
  int64_t lineage_source = -1;
  int64_t lineage_pane = -1;
  if (args.command == "lineage") {
    if (args.paths.size() != 2 ||
        !ParsePaneRef(args.paths[1], &lineage_source, &lineage_pane)) {
      std::fprintf(stderr,
                   "lineage takes a journal path and a SOURCE:PANE pane "
                   "reference (e.g. 0:3)\n");
      return 2;
    }
  } else if (args.paths.size() != 1) {
    std::fprintf(stderr, "%s takes exactly one journal path\n",
                 args.command.c_str());
    return 2;
  }
  {
    double ignored = 0.0;
    obs::slo::QuerySlo probe;
    if (args.command == "top" &&
        !obs::slo::TopKeyValue(probe, args.top.by, &ignored)) {
      std::fprintf(stderr,
                   "unknown --by key: %s (want cache_bytes, slot_wait, "
                   "lag, or response)\n",
                   args.top.by.c_str());
      return 2;
    }
  }

  obs::EventJournal journal;
  const Status status = obs::EventJournal::LoadFile(args.paths[0], &journal);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.paths[0].c_str(),
                 status.ToString().c_str());
    return 3;
  }
  std::string out;
  if (args.command == "trace" || args.command == "lineage") {
    obs::trace::Trace trace;
    const Status built = obs::trace::BuildTrace(journal, &trace);
    if (!built.ok()) {
      std::fprintf(stderr, "cannot build trace: %s\n",
                   built.ToString().c_str());
      return 3;
    }
    if (args.command == "lineage") {
      out = args.json
                ? WrapJson(journal, "lineage",
                           obs::trace::PaneLineageJson(trace, lineage_source,
                                                       lineage_pane))
                : JournalHeaderText(journal) +
                      obs::trace::PaneLineageText(trace, lineage_source,
                                                  lineage_pane);
    } else if (args.window >= 0) {
      out = args.json
                ? WrapJson(journal, "trace",
                           obs::trace::WindowTreeJson(trace, args.window))
                : JournalHeaderText(journal) +
                      obs::trace::WindowTreeText(trace, args.window);
    } else {
      out = args.json
                ? WrapJson(journal, "trace",
                           obs::trace::TraceSummaryJson(trace, journal))
                : JournalHeaderText(journal) +
                      obs::trace::TraceSummaryText(trace, journal);
    }
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }

  const SloReport report = obs::slo::ComputeSlo(journal, args.analysis);
  if (args.command == "slo") {
    out = args.json ? WrapJson(journal, "slo", report.ToJson())
                    : JournalHeaderText(journal) + report.ToText();
  } else if (args.command == "fleet") {
    out = args.json ? WrapJson(journal, "fleet", FleetToJson(report))
                    : JournalHeaderText(journal) + FleetToText(report);
  } else {
    out = args.json ? WrapJson(journal, "top", TopToJson(report, args.top))
                    : JournalHeaderText(journal) + TopToText(report, args.top);
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

}  // namespace
}  // namespace redoop

int main(int argc, char** argv) { return redoop::Main(argc, argv); }
