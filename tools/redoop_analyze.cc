// redoop_analyze — journal analysis and run-diff regression tool.
//
// Subcommands:
//   redoop_analyze breakdown JOURNAL.jsonl [--json] [--per-query]
//                            [--straggler-k=K]
//       Per-window phase breakdowns (map/reduce read, shuffle, sort,
//       compute, write, slot-wait) and cache-efficiency attribution.
//       --per-query splits the report by the journal's query labels.
//   redoop_analyze critical-path JOURNAL.jsonl [--json] [--straggler-k=K]
//       Longest chain through each window's task DAG, with per-hop
//       slot-wait and straggler flags.
//   redoop_analyze diff BASELINE.json CANDIDATE.json [--json]
//                       [--tolerance=F]
//       Structured regression report between two runs' metric documents
//       (BENCH JSON, metric snapshots, or analyze --json reports).
//
// Exit codes: 0 success (diff: no regressions), 1 diff found regressions,
// 2 usage error, 3 input could not be loaded.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/analysis/analysis.h"
#include "obs/analysis/run_diff.h"
#include "obs/event_journal.h"

namespace redoop {
namespace {

using obs::analysis::AnalysisOptions;
using obs::analysis::DiffOptions;
using obs::analysis::DiffReport;
using obs::analysis::RunAnalysis;

void PrintUsage() {
  std::printf(
      "redoop_analyze — journal analysis and run-diff regression tool\n\n"
      "  redoop_analyze breakdown JOURNAL.jsonl [--json] [--per-query]\n"
      "                          [--straggler-k=K]\n"
      "  redoop_analyze critical-path JOURNAL.jsonl [--json] "
      "[--straggler-k=K]\n"
      "  redoop_analyze diff BASELINE.json CANDIDATE.json [--json] "
      "[--tolerance=F]\n\n"
      "  --json            emit the report as JSON instead of text\n"
      "  --per-query       group windows by the journal's query labels\n"
      "                    (one report section per (system, query))\n"
      "  --straggler-k=K   flag tasks slower than K x wave median "
      "(default 3)\n"
      "  --tolerance=F     relative band treated as noise (default 0.10)\n\n"
      "diff exits 1 when any lower-is-better metric grew (or higher-is-\n"
      "better shrank) by more than the tolerance; informational metrics\n"
      "are reported but never fail the diff.\n");
}

struct AnalyzeArgs {
  std::string command;
  std::vector<std::string> paths;
  bool json = false;
  AnalysisOptions analysis;
  DiffOptions diff;
};

bool ParseArgs(int argc, char** argv, AnalyzeArgs* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  if (args->command == "--help" || args->command == "-h") {
    PrintUsage();
    std::exit(0);
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args->json = true;
    } else if (arg == "--per-query") {
      args->analysis.group_by_query = true;
    } else if (arg.rfind("--straggler-k=", 0) == 0) {
      args->analysis.straggler_k = std::atof(arg.c_str() + 14);
      if (args->analysis.straggler_k <= 0.0) {
        std::fprintf(stderr, "--straggler-k must be positive\n");
        return false;
      }
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      args->diff.tolerance = std::atof(arg.c_str() + 12);
      if (args->diff.tolerance < 0.0) {
        std::fprintf(stderr, "--tolerance must be nonnegative\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    } else {
      args->paths.push_back(arg);
    }
  }
  return true;
}

int RunJournalCommand(const AnalyzeArgs& args) {
  if (args.paths.size() != 1) {
    std::fprintf(stderr, "%s takes exactly one journal path\n",
                 args.command.c_str());
    return 2;
  }
  obs::EventJournal journal;
  Status status = obs::EventJournal::LoadFile(args.paths[0], &journal);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.paths[0].c_str(),
                 status.ToString().c_str());
    return 3;
  }
  RunAnalysis analysis;
  status = AnalyzeJournal(journal, args.analysis, &analysis);
  if (!status.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", status.ToString().c_str());
    return 3;
  }
  std::string report;
  if (args.command == "breakdown") {
    report = args.json ? BreakdownToJson(analysis) : BreakdownToText(analysis);
  } else {
    report = args.json ? CriticalPathToJson(analysis)
                       : CriticalPathToText(analysis);
  }
  std::fwrite(report.data(), 1, report.size(), stdout);
  return 0;
}

int RunDiffCommand(const AnalyzeArgs& args) {
  if (args.paths.size() != 2) {
    std::fprintf(stderr, "diff takes BASELINE.json CANDIDATE.json\n");
    return 2;
  }
  DiffReport report;
  const Status status =
      DiffFiles(args.paths[0], args.paths[1], args.diff, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "diff failed: %s\n", status.ToString().c_str());
    return 3;
  }
  const std::string text = args.json ? report.ToJson() : report.ToText();
  std::fwrite(text.data(), 1, text.size(), stdout);
  return report.HasRegressions() ? 1 : 0;
}

int Main(int argc, char** argv) {
  AnalyzeArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.command == "breakdown" || args.command == "critical-path") {
    return RunJournalCommand(args);
  }
  if (args.command == "diff") return RunDiffCommand(args);
  std::fprintf(stderr, "unknown command: %s\n\n", args.command.c_str());
  PrintUsage();
  return 2;
}

}  // namespace
}  // namespace redoop

int main(int argc, char** argv) { return redoop::Main(argc, argv); }
