// redoop_cli — configurable recurring-query experiment runner.
//
// Runs a recurring aggregation or join on the simulated cluster with any
// combination of systems, window geometry, workload, and cost-model
// overrides, and prints the per-window series plus phase breakdowns.
//
// Examples:
//   redoop_cli --query=agg --win=18000 --slide=1800 --windows=10
//   redoop_cli --query=join --rps=2.5 --record-bytes=524288
//              --systems=hadoop,redoop
//   redoop_cli --query=agg --systems=redoop,adaptive --spiked
//              --proactive-threshold=0.15
//   redoop_cli --query=agg --nodes=10 --set cost.disk_bps=20971520
//
// Flags take --key=value form; --help lists them all. Unknown --set keys
// are passed straight into the cluster Config (cost model, DFS, node
// knobs; see CostModelOptions/DfsOptions/NodeOptions::FromConfig).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baseline/hadoop_driver.h"
#include "mapreduce/trace.h"
#include "common/math_utils.h"
#include "common/string_utils.h"
#include "core/redoop_driver.h"
#include "obs/observability.h"
#include "queries/aggregation_query.h"
#include "queries/join_query.h"
#include "workload/ffg_generator.h"
#include "workload/rate_profile.h"
#include "workload/synthetic_feed.h"
#include "workload/wcc_generator.h"

namespace redoop {
namespace {

struct CliOptions {
  std::string query = "agg";  // agg | join.
  Timestamp win = 18000;
  Timestamp slide = 1800;
  int64_t windows = 10;
  int32_t nodes = 30;
  int32_t reducers = 16;
  double rps = 8.0;
  int32_t record_bytes = 2 * kBytesPerMB;
  Timestamp batch_interval = 600;
  uint64_t seed = 1998;
  bool spiked = false;
  double spike_multiplier = 2.0;
  double proactive_threshold = 0.15;
  int32_t threads = 0;  // 0 = auto (hardware_concurrency).
  std::vector<std::string> systems = {"hadoop", "redoop"};
  std::string trace_path;
  std::string events_path;
  std::string metrics_path;
  Config cluster_config;
};

void PrintUsage() {
  std::printf(
      "redoop_cli — recurring-query experiment runner\n\n"
      "  --query=agg|join           query kind (default agg)\n"
      "  --win=SECONDS              window size (default 18000)\n"
      "  --slide=SECONDS            slide / execution period (default 1800)\n"
      "  --windows=N                recurrences to run (default 10)\n"
      "  --nodes=N                  cluster size (default 30)\n"
      "  --reducers=N               reduce partitions (default 16)\n"
      "  --rps=R                    records/second/source (default 8)\n"
      "  --record-bytes=B           logical record size (default 2 MiB)\n"
      "  --batch-interval=SECONDS   arrival batch size (default 600)\n"
      "  --seed=S                   workload seed (default 1998)\n"
      "  --spiked                   double the rate on windows 2,3,5,6,...\n"
      "  --spike-multiplier=M       spike factor (default 2)\n"
      "  --proactive-threshold=F    adaptive budget fraction (default 0.15)\n"
      "  --threads=N                host worker threads for task payloads\n"
      "                             (default 0 = all hardware threads;\n"
      "                             results are identical at any setting)\n"
      "  --systems=a,b,...          any of hadoop, redoop, adaptive,\n"
      "                             redoop-nocache, redoop-inputonly\n"
      "  --trace-out=FILE           write a chrome://tracing timeline (task\n"
      "                             slices, cache lifetimes, counter series;\n"
      "                             --trace= is an alias)\n"
      "  --events-out=FILE          write the structured decision-event\n"
      "                             journal (JSONL, one event per line)\n"
      "  --metrics-out=FILE         write end-of-run metric snapshots as\n"
      "                             JSON keyed by system\n"
      "  --set KEY=VALUE            raw cluster-config override (repeatable)\n"
      "  --help                     this text\n\n"
      "exit codes: 0 ok, 1 bad flags/geometry, 2 unknown system,\n"
      "            3 result mismatch, 4 unwritable output path,\n"
      "            5 driver rejected the configuration\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else if (arg == "--spiked") {
      options->spiked = true;
    } else if (arg == "--set") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--set requires KEY=VALUE\n");
        return false;
      }
      const std::string kv = argv[++i];
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set requires KEY=VALUE, got %s\n", kv.c_str());
        return false;
      }
      options->cluster_config.Set(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (ParseFlag(arg, "query", &value)) {
      options->query = value;
    } else if (ParseFlag(arg, "win", &value)) {
      options->win = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "slide", &value)) {
      options->slide = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "windows", &value)) {
      options->windows = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "nodes", &value)) {
      options->nodes = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "reducers", &value)) {
      options->reducers = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "rps", &value)) {
      options->rps = std::atof(value.c_str());
    } else if (ParseFlag(arg, "record-bytes", &value)) {
      options->record_bytes = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "batch-interval", &value)) {
      options->batch_interval = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      options->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "spike-multiplier", &value)) {
      options->spike_multiplier = std::atof(value.c_str());
    } else if (ParseFlag(arg, "proactive-threshold", &value)) {
      options->proactive_threshold = std::atof(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      options->threads = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "systems", &value)) {
      options->systems = SplitString(value, ',');
    } else if (ParseFlag(arg, "trace", &value) ||
               ParseFlag(arg, "trace-out", &value)) {
      options->trace_path = value;
    } else if (ParseFlag(arg, "events-out", &value)) {
      options->events_path = value;
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      options->metrics_path = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::shared_ptr<const RateProfile> MakeRate(const CliOptions& options) {
  if (!options.spiked) return std::make_shared<ConstantRate>(options.rps);
  return std::make_shared<WindowSpikeRate>(
      options.rps, options.spike_multiplier, options.win, options.slide,
      WindowSpikeRate::PaperSpikePattern(options.windows));
}

std::unique_ptr<SyntheticFeed> MakeFeed(const CliOptions& options) {
  auto feed = std::make_unique<SyntheticFeed>(options.batch_interval);
  if (options.query == "join") {
    FfgGeneratorOptions gen;
    gen.seed = options.seed;
    gen.grid_cells_x = 180;
    gen.grid_cells_y = 180;
    gen.record_logical_bytes = options.record_bytes;
    auto rate = MakeRate(options);
    feed->AddSource(1, std::make_shared<FfgGenerator>(rate, gen));
    feed->AddSource(2, std::make_shared<FfgGenerator>(rate, gen));
  } else {
    WccGeneratorOptions gen;
    gen.seed = options.seed;
    gen.record_logical_bytes = options.record_bytes;
    feed->AddSource(1, std::make_shared<WccGenerator>(MakeRate(options), gen));
  }
  return feed;
}

RecurringQuery MakeQuery(const CliOptions& options) {
  if (options.query == "join") {
    return MakeJoinQuery(1, "cli-join", 1, 2, options.win, options.slide,
                         options.reducers);
  }
  return MakeAggregationQuery(1, "cli-agg", 1, options.win, options.slide,
                              options.reducers);
}

RunReport RunSystem(const CliOptions& options, const std::string& system,
                    obs::ObservabilityContext* ctx) {
  ctx->journal().SetCommonField("system", system);
  const RecurringQuery query = MakeQuery(options);
  Cluster cluster(options.nodes, options.cluster_config);
  auto feed = MakeFeed(options);
  if (system == "hadoop") {
    JobRunnerOptions runner_options;
    runner_options.obs = ctx;
    runner_options.threads = options.threads;
    HadoopRecurringDriver driver(&cluster, feed.get(), query, runner_options);
    return driver.Run(options.windows);
  }
  RedoopDriverOptions::Builder builder;
  builder.Observability(ctx).Threads(options.threads);
  if (system == "adaptive") {
    builder.Adaptive(true).ProactiveThreshold(options.proactive_threshold);
  } else if (system == "redoop-nocache") {
    builder.CacheReduceInput(false).CacheReduceOutput(false);
  } else if (system == "redoop-inputonly") {
    builder.CacheReduceOutput(false);
  } else if (system != "redoop") {
    std::fprintf(stderr, "unknown system '%s'\n", system.c_str());
    std::exit(2);
  }
  RedoopDriver driver(&cluster, feed.get(), query, builder.Build());
  StatusOr<RunReport> run = driver.Run(options.windows);
  if (!run.ok()) {
    // Typed driver errors (bad pane override, unregistered source, ...)
    // get their own exit code, distinct from flag-parse failures.
    std::fprintf(stderr, "driver rejected the configuration [%s]: %s\n",
                 StatusCodeToString(run.status().code()),
                 run.status().message().c_str());
    std::exit(5);
  }
  RunReport report = std::move(run).value();
  report.system = system;
  return report;
}

/// Probes that an output path is writable before any simulation runs, so a
/// bad --trace-out/--events-out/--metrics-out fails fast instead of after
/// minutes of simulated work. Opens in append mode: existing files are not
/// truncated by the probe.
bool ValidateOutputPath(const char* flag, const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "%s: cannot open '%s' for writing (missing directory or "
                 "permission denied)\n",
                 flag, path.c_str());
    return false;
  }
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;
  if (options.win <= 0 || options.slide <= 0 || options.slide > options.win) {
    std::fprintf(stderr, "invalid window geometry: win=%ld slide=%ld\n",
                 options.win, options.slide);
    return 1;
  }
  if (!ValidateOutputPath("--trace-out", options.trace_path) ||
      !ValidateOutputPath("--events-out", options.events_path) ||
      !ValidateOutputPath("--metrics-out", options.metrics_path)) {
    return 4;
  }

  const WindowSpec spec{options.win, options.slide};
  std::printf("query=%s  win=%ld s  slide=%ld s  overlap=%.2f  pane=%ld s\n",
              options.query.c_str(), options.win, options.slide,
              spec.Overlap(), Gcd(options.win, options.slide));
  std::printf("nodes=%d  reducers=%d  rps=%.2f  record=%s  windows=%ld%s\n\n",
              options.nodes, options.reducers, options.rps,
              HumanBytes(options.record_bytes).c_str(), options.windows,
              options.spiked ? "  (spiked)" : "");

  std::vector<RunReport> reports;
  std::vector<std::unique_ptr<obs::ObservabilityContext>> contexts;
  for (const std::string& system : options.systems) {
    contexts.push_back(std::make_unique<obs::ObservabilityContext>());
    reports.push_back(RunSystem(options, system, contexts.back().get()));
  }

  // Cross-check every system's results against the first.
  for (size_t s = 1; s < reports.size(); ++s) {
    for (size_t w = 0; w < reports[0].windows.size(); ++w) {
      const auto& a = reports[0].windows[w].output;
      const auto& b = reports[s].windows[w].output;
      bool same = a.size() == b.size();
      for (size_t i = 0; same && i < a.size(); ++i) {
        same = a[i].key == b[i].key && a[i].value == b[i].value;
      }
      if (!same) {
        std::fprintf(stderr,
                     "RESULT MISMATCH: %s vs %s at window %zu — aborting\n",
                     reports[0].system.c_str(), reports[s].system.c_str(), w);
        return 3;
      }
    }
  }

  std::printf("%-8s", "window");
  for (const RunReport& r : reports) std::printf(" %16s", r.system.c_str());
  std::printf("\n");
  for (size_t w = 0; w < reports[0].windows.size(); ++w) {
    std::printf("%-8zu", w + 1);
    for (const RunReport& r : reports) {
      std::printf(" %16.1f", r.windows[w].response_time);
    }
    std::printf("\n");
  }
  std::printf("%-8s", "total");
  for (const RunReport& r : reports) {
    std::printf(" %16.1f", r.TotalResponseTime());
  }
  std::printf("\n%-8s", "shuffle");
  for (const RunReport& r : reports) {
    std::printf(" %16.1f", r.TotalShuffleTime());
  }
  std::printf("\n%-8s", "reduce");
  for (const RunReport& r : reports) {
    std::printf(" %16.1f", r.TotalReduceTime());
  }
  std::printf("\n");

  // Cache reuse per window (pane + pair grain, from the drivers' hit/miss
  // accounting; the Hadoop baseline caches nothing by design).
  std::printf("\n%-8s", "cache");
  for (const RunReport& r : reports) std::printf(" %16s", r.system.c_str());
  std::printf("   (hits/misses per window)\n");
  for (size_t w = 0; w < reports[0].windows.size(); ++w) {
    std::printf("%-8zu", w + 1);
    for (const RunReport& r : reports) {
      const Counters& c = r.windows[w].counters;
      const int64_t hits = c.Get(counter::kCachePaneHits) +
                           c.Get(counter::kCachePairHits);
      const int64_t misses = c.Get(counter::kCachePaneMisses) +
                             c.Get(counter::kCachePairMisses);
      std::printf(" %16s",
                  StringPrintf("%ld/%ld", hits, misses).c_str());
    }
    std::printf("\n");
  }
  std::printf("%-8s", "hit%");
  for (const RunReport& r : reports) {
    const obs::MetricsSnapshot& m = r.observability;
    const int64_t hits = m.Counter(obs::metric::kCachePaneHits) +
                         m.Counter(obs::metric::kCachePairHits);
    const int64_t misses = m.Counter(obs::metric::kCachePaneMisses) +
                           m.Counter(obs::metric::kCachePairMisses);
    const double rate = hits + misses > 0
                            ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(hits + misses)
                            : 0.0;
    std::printf(" %16.1f", rate);
  }
  std::printf("\n\nall systems produced identical results in every window\n");

  if (!options.metrics_path.empty()) {
    std::string json = "{\n";
    for (size_t i = 0; i < reports.size(); ++i) {
      std::string body = reports[i].observability.ToJson();
      while (!body.empty() && body.back() == '\n') body.pop_back();
      json += "\"" + reports[i].system + "\": " + body;
      json += i + 1 < reports.size() ? ",\n" : "\n";
    }
    json += "}\n";
    std::FILE* f = std::fopen(options.metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open metrics file: %s\n",
                   options.metrics_path.c_str());
      return 4;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("metric snapshots for %zu systems written to %s\n",
                reports.size(), options.metrics_path.c_str());
  }

  if (!options.events_path.empty()) {
    std::string jsonl;
    size_t events = 0;
    for (const auto& ctx : contexts) {
      jsonl += ctx->journal().ToJsonl();
      events += ctx->journal().size();
    }
    std::FILE* f = std::fopen(options.events_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open events file: %s\n",
                   options.events_path.c_str());
      return 4;
    }
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("event journal with %zu events written to %s\n", events,
                options.events_path.c_str());
  }

  if (!options.trace_path.empty()) {
    TraceWriter writer;
    for (const RunReport& r : reports) {
      for (const WindowReport& w : r.windows) {
        writer.AddJob(r.system + "-w" + std::to_string(w.recurrence),
                      w.task_reports);
      }
    }
    // Cache-lifetime lanes and counter series, reconstructed from the
    // decision journals.
    for (const auto& ctx : contexts) {
      writer.AddJournal(ctx->journal());
    }
    const Status status = writer.WriteFile(options.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.ToString().c_str());
      return 4;
    }
    std::printf("trace with %zu events written to %s\n",
                writer.event_count(), options.trace_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace redoop

int main(int argc, char** argv) { return redoop::Main(argc, argv); }
