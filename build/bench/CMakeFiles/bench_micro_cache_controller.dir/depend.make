# Empty dependencies file for bench_micro_cache_controller.
# This may be replaced when dependencies are built.
