file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cache_controller.dir/bench_micro_cache_controller.cc.o"
  "CMakeFiles/bench_micro_cache_controller.dir/bench_micro_cache_controller.cc.o.d"
  "bench_micro_cache_controller"
  "bench_micro_cache_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cache_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
