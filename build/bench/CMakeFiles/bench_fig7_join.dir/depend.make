# Empty dependencies file for bench_fig7_join.
# This may be replaced when dependencies are built.
