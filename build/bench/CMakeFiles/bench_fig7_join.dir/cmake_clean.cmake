file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_join.dir/bench_fig7_join.cc.o"
  "CMakeFiles/bench_fig7_join.dir/bench_fig7_join.cc.o.d"
  "bench_fig7_join"
  "bench_fig7_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
