file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_aggregation.dir/bench_fig6_aggregation.cc.o"
  "CMakeFiles/bench_fig6_aggregation.dir/bench_fig6_aggregation.cc.o.d"
  "bench_fig6_aggregation"
  "bench_fig6_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
