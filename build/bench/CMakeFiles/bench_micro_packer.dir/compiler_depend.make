# Empty compiler generated dependencies file for bench_micro_packer.
# This may be replaced when dependencies are built.
