file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_packer.dir/bench_micro_packer.cc.o"
  "CMakeFiles/bench_micro_packer.dir/bench_micro_packer.cc.o.d"
  "bench_micro_packer"
  "bench_micro_packer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_packer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
