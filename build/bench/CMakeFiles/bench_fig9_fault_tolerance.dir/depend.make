# Empty dependencies file for bench_fig9_fault_tolerance.
# This may be replaced when dependencies are built.
