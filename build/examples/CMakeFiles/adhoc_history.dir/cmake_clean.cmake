file(REMOVE_RECURSE
  "CMakeFiles/adhoc_history.dir/adhoc_history.cpp.o"
  "CMakeFiles/adhoc_history.dir/adhoc_history.cpp.o.d"
  "adhoc_history"
  "adhoc_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
