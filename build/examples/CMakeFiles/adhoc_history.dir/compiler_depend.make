# Empty compiler generated dependencies file for adhoc_history.
# This may be replaced when dependencies are built.
