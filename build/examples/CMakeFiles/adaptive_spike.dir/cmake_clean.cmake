file(REMOVE_RECURSE
  "CMakeFiles/adaptive_spike.dir/adaptive_spike.cpp.o"
  "CMakeFiles/adaptive_spike.dir/adaptive_spike.cpp.o.d"
  "adaptive_spike"
  "adaptive_spike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_spike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
