# Empty dependencies file for adaptive_spike.
# This may be replaced when dependencies are built.
