# Empty dependencies file for ndim_status_matrix_test.
# This may be replaced when dependencies are built.
