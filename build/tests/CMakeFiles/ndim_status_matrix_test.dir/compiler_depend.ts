# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ndim_status_matrix_test.
