file(REMOVE_RECURSE
  "CMakeFiles/ndim_status_matrix_test.dir/ndim_status_matrix_test.cc.o"
  "CMakeFiles/ndim_status_matrix_test.dir/ndim_status_matrix_test.cc.o.d"
  "ndim_status_matrix_test"
  "ndim_status_matrix_test.pdb"
  "ndim_status_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndim_status_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
