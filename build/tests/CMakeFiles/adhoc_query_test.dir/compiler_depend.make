# Empty compiler generated dependencies file for adhoc_query_test.
# This may be replaced when dependencies are built.
