
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adhoc_query_test.cc" "tests/CMakeFiles/adhoc_query_test.dir/adhoc_query_test.cc.o" "gcc" "tests/CMakeFiles/adhoc_query_test.dir/adhoc_query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queries/CMakeFiles/redoop_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/redoop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/redoop_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redoop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/redoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/redoop_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/redoop_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redoop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redoop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
