file(REMOVE_RECURSE
  "CMakeFiles/adhoc_query_test.dir/adhoc_query_test.cc.o"
  "CMakeFiles/adhoc_query_test.dir/adhoc_query_test.cc.o.d"
  "adhoc_query_test"
  "adhoc_query_test.pdb"
  "adhoc_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
