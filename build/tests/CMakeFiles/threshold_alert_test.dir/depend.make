# Empty dependencies file for threshold_alert_test.
# This may be replaced when dependencies are built.
