file(REMOVE_RECURSE
  "CMakeFiles/threshold_alert_test.dir/threshold_alert_test.cc.o"
  "CMakeFiles/threshold_alert_test.dir/threshold_alert_test.cc.o.d"
  "threshold_alert_test"
  "threshold_alert_test.pdb"
  "threshold_alert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_alert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
