# Empty dependencies file for redoop_driver_test.
# This may be replaced when dependencies are built.
