file(REMOVE_RECURSE
  "CMakeFiles/redoop_driver_test.dir/redoop_driver_test.cc.o"
  "CMakeFiles/redoop_driver_test.dir/redoop_driver_test.cc.o.d"
  "redoop_driver_test"
  "redoop_driver_test.pdb"
  "redoop_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
