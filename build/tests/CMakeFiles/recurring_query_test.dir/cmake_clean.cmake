file(REMOVE_RECURSE
  "CMakeFiles/recurring_query_test.dir/recurring_query_test.cc.o"
  "CMakeFiles/recurring_query_test.dir/recurring_query_test.cc.o.d"
  "recurring_query_test"
  "recurring_query_test.pdb"
  "recurring_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurring_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
