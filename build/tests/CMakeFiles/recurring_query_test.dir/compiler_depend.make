# Empty compiler generated dependencies file for recurring_query_test.
# This may be replaced when dependencies are built.
