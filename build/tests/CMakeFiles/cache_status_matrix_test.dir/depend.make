# Empty dependencies file for cache_status_matrix_test.
# This may be replaced when dependencies are built.
