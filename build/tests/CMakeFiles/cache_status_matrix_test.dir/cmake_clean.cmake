file(REMOVE_RECURSE
  "CMakeFiles/cache_status_matrix_test.dir/cache_status_matrix_test.cc.o"
  "CMakeFiles/cache_status_matrix_test.dir/cache_status_matrix_test.cc.o.d"
  "cache_status_matrix_test"
  "cache_status_matrix_test.pdb"
  "cache_status_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_status_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
