file(REMOVE_RECURSE
  "CMakeFiles/window_delta_test.dir/window_delta_test.cc.o"
  "CMakeFiles/window_delta_test.dir/window_delta_test.cc.o.d"
  "window_delta_test"
  "window_delta_test.pdb"
  "window_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
