# Empty dependencies file for window_delta_test.
# This may be replaced when dependencies are built.
