# Empty dependencies file for execution_profiler_test.
# This may be replaced when dependencies are built.
