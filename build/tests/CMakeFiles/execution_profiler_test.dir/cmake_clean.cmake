file(REMOVE_RECURSE
  "CMakeFiles/execution_profiler_test.dir/execution_profiler_test.cc.o"
  "CMakeFiles/execution_profiler_test.dir/execution_profiler_test.cc.o.d"
  "execution_profiler_test"
  "execution_profiler_test.pdb"
  "execution_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
