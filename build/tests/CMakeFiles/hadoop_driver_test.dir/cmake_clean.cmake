file(REMOVE_RECURSE
  "CMakeFiles/hadoop_driver_test.dir/hadoop_driver_test.cc.o"
  "CMakeFiles/hadoop_driver_test.dir/hadoop_driver_test.cc.o.d"
  "hadoop_driver_test"
  "hadoop_driver_test.pdb"
  "hadoop_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
