# Empty compiler generated dependencies file for hadoop_driver_test.
# This may be replaced when dependencies are built.
