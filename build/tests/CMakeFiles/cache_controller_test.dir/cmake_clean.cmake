file(REMOVE_RECURSE
  "CMakeFiles/cache_controller_test.dir/cache_controller_test.cc.o"
  "CMakeFiles/cache_controller_test.dir/cache_controller_test.cc.o.d"
  "cache_controller_test"
  "cache_controller_test.pdb"
  "cache_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
