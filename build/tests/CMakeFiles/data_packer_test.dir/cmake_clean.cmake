file(REMOVE_RECURSE
  "CMakeFiles/data_packer_test.dir/data_packer_test.cc.o"
  "CMakeFiles/data_packer_test.dir/data_packer_test.cc.o.d"
  "data_packer_test"
  "data_packer_test.pdb"
  "data_packer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_packer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
