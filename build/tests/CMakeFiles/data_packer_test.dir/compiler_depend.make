# Empty compiler generated dependencies file for data_packer_test.
# This may be replaced when dependencies are built.
