# Empty compiler generated dependencies file for packer_invariance_test.
# This may be replaced when dependencies are built.
