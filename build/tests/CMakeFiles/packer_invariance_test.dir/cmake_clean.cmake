file(REMOVE_RECURSE
  "CMakeFiles/packer_invariance_test.dir/packer_invariance_test.cc.o"
  "CMakeFiles/packer_invariance_test.dir/packer_invariance_test.cc.o.d"
  "packer_invariance_test"
  "packer_invariance_test.pdb"
  "packer_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packer_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
