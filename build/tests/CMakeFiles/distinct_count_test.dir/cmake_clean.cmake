file(REMOVE_RECURSE
  "CMakeFiles/distinct_count_test.dir/distinct_count_test.cc.o"
  "CMakeFiles/distinct_count_test.dir/distinct_count_test.cc.o.d"
  "distinct_count_test"
  "distinct_count_test.pdb"
  "distinct_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
