# Empty dependencies file for distinct_count_test.
# This may be replaced when dependencies are built.
