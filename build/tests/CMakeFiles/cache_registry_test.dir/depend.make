# Empty dependencies file for cache_registry_test.
# This may be replaced when dependencies are built.
