file(REMOVE_RECURSE
  "CMakeFiles/redoop_baseline.dir/hadoop_driver.cc.o"
  "CMakeFiles/redoop_baseline.dir/hadoop_driver.cc.o.d"
  "libredoop_baseline.a"
  "libredoop_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
