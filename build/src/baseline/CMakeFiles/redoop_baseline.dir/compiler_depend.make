# Empty compiler generated dependencies file for redoop_baseline.
# This may be replaced when dependencies are built.
