file(REMOVE_RECURSE
  "libredoop_baseline.a"
)
