file(REMOVE_RECURSE
  "CMakeFiles/redoop_cluster.dir/cluster.cc.o"
  "CMakeFiles/redoop_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/redoop_cluster.dir/heartbeat.cc.o"
  "CMakeFiles/redoop_cluster.dir/heartbeat.cc.o.d"
  "CMakeFiles/redoop_cluster.dir/node.cc.o"
  "CMakeFiles/redoop_cluster.dir/node.cc.o.d"
  "libredoop_cluster.a"
  "libredoop_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
