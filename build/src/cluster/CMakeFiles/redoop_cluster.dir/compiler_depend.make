# Empty compiler generated dependencies file for redoop_cluster.
# This may be replaced when dependencies are built.
