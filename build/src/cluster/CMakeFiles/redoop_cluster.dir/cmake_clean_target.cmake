file(REMOVE_RECURSE
  "libredoop_cluster.a"
)
