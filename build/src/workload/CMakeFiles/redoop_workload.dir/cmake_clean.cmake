file(REMOVE_RECURSE
  "CMakeFiles/redoop_workload.dir/count_window_feed.cc.o"
  "CMakeFiles/redoop_workload.dir/count_window_feed.cc.o.d"
  "CMakeFiles/redoop_workload.dir/ffg_generator.cc.o"
  "CMakeFiles/redoop_workload.dir/ffg_generator.cc.o.d"
  "CMakeFiles/redoop_workload.dir/rate_profile.cc.o"
  "CMakeFiles/redoop_workload.dir/rate_profile.cc.o.d"
  "CMakeFiles/redoop_workload.dir/synthetic_feed.cc.o"
  "CMakeFiles/redoop_workload.dir/synthetic_feed.cc.o.d"
  "CMakeFiles/redoop_workload.dir/wcc_generator.cc.o"
  "CMakeFiles/redoop_workload.dir/wcc_generator.cc.o.d"
  "libredoop_workload.a"
  "libredoop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
