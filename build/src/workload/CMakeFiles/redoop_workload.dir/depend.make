# Empty dependencies file for redoop_workload.
# This may be replaced when dependencies are built.
