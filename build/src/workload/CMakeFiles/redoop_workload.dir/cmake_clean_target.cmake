file(REMOVE_RECURSE
  "libredoop_workload.a"
)
