file(REMOVE_RECURSE
  "libredoop_dfs.a"
)
