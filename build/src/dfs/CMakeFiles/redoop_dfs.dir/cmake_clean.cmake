file(REMOVE_RECURSE
  "CMakeFiles/redoop_dfs.dir/dfs.cc.o"
  "CMakeFiles/redoop_dfs.dir/dfs.cc.o.d"
  "CMakeFiles/redoop_dfs.dir/pane_header.cc.o"
  "CMakeFiles/redoop_dfs.dir/pane_header.cc.o.d"
  "CMakeFiles/redoop_dfs.dir/record.cc.o"
  "CMakeFiles/redoop_dfs.dir/record.cc.o.d"
  "libredoop_dfs.a"
  "libredoop_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
