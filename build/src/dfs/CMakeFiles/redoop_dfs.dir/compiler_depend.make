# Empty compiler generated dependencies file for redoop_dfs.
# This may be replaced when dependencies are built.
