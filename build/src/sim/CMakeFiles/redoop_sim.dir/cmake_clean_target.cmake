file(REMOVE_RECURSE
  "libredoop_sim.a"
)
