# Empty dependencies file for redoop_sim.
# This may be replaced when dependencies are built.
