file(REMOVE_RECURSE
  "CMakeFiles/redoop_sim.dir/cost_model.cc.o"
  "CMakeFiles/redoop_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/redoop_sim.dir/event_queue.cc.o"
  "CMakeFiles/redoop_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/redoop_sim.dir/simulator.cc.o"
  "CMakeFiles/redoop_sim.dir/simulator.cc.o.d"
  "libredoop_sim.a"
  "libredoop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
