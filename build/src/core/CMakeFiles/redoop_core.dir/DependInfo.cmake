
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_aware_scheduler.cc" "src/core/CMakeFiles/redoop_core.dir/cache_aware_scheduler.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/cache_aware_scheduler.cc.o.d"
  "/root/repo/src/core/cache_controller.cc" "src/core/CMakeFiles/redoop_core.dir/cache_controller.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/cache_controller.cc.o.d"
  "/root/repo/src/core/cache_status_matrix.cc" "src/core/CMakeFiles/redoop_core.dir/cache_status_matrix.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/cache_status_matrix.cc.o.d"
  "/root/repo/src/core/cache_store.cc" "src/core/CMakeFiles/redoop_core.dir/cache_store.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/cache_store.cc.o.d"
  "/root/repo/src/core/cache_types.cc" "src/core/CMakeFiles/redoop_core.dir/cache_types.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/cache_types.cc.o.d"
  "/root/repo/src/core/data_packer.cc" "src/core/CMakeFiles/redoop_core.dir/data_packer.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/data_packer.cc.o.d"
  "/root/repo/src/core/execution_profiler.cc" "src/core/CMakeFiles/redoop_core.dir/execution_profiler.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/execution_profiler.cc.o.d"
  "/root/repo/src/core/local_cache_registry.cc" "src/core/CMakeFiles/redoop_core.dir/local_cache_registry.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/local_cache_registry.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/redoop_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/multi_query.cc" "src/core/CMakeFiles/redoop_core.dir/multi_query.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/multi_query.cc.o.d"
  "/root/repo/src/core/ndim_status_matrix.cc" "src/core/CMakeFiles/redoop_core.dir/ndim_status_matrix.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/ndim_status_matrix.cc.o.d"
  "/root/repo/src/core/pane_naming.cc" "src/core/CMakeFiles/redoop_core.dir/pane_naming.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/pane_naming.cc.o.d"
  "/root/repo/src/core/recurring_query.cc" "src/core/CMakeFiles/redoop_core.dir/recurring_query.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/recurring_query.cc.o.d"
  "/root/repo/src/core/redoop_driver.cc" "src/core/CMakeFiles/redoop_core.dir/redoop_driver.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/redoop_driver.cc.o.d"
  "/root/repo/src/core/semantic_analyzer.cc" "src/core/CMakeFiles/redoop_core.dir/semantic_analyzer.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/semantic_analyzer.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/redoop_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/redoop_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redoop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/redoop_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/redoop_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/redoop_mapreduce.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
