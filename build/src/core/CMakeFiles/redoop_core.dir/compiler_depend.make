# Empty compiler generated dependencies file for redoop_core.
# This may be replaced when dependencies are built.
