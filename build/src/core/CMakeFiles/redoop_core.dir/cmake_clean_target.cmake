file(REMOVE_RECURSE
  "libredoop_core.a"
)
