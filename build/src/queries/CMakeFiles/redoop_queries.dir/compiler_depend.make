# Empty compiler generated dependencies file for redoop_queries.
# This may be replaced when dependencies are built.
