file(REMOVE_RECURSE
  "libredoop_queries.a"
)
