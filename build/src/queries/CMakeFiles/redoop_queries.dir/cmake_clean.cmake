file(REMOVE_RECURSE
  "CMakeFiles/redoop_queries.dir/aggregation_query.cc.o"
  "CMakeFiles/redoop_queries.dir/aggregation_query.cc.o.d"
  "CMakeFiles/redoop_queries.dir/distinct_count_query.cc.o"
  "CMakeFiles/redoop_queries.dir/distinct_count_query.cc.o.d"
  "CMakeFiles/redoop_queries.dir/join_query.cc.o"
  "CMakeFiles/redoop_queries.dir/join_query.cc.o.d"
  "CMakeFiles/redoop_queries.dir/threshold_alert_query.cc.o"
  "CMakeFiles/redoop_queries.dir/threshold_alert_query.cc.o.d"
  "libredoop_queries.a"
  "libredoop_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
