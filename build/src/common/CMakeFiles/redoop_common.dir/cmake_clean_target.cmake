file(REMOVE_RECURSE
  "libredoop_common.a"
)
