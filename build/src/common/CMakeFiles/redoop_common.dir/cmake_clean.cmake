file(REMOVE_RECURSE
  "CMakeFiles/redoop_common.dir/config.cc.o"
  "CMakeFiles/redoop_common.dir/config.cc.o.d"
  "CMakeFiles/redoop_common.dir/hash.cc.o"
  "CMakeFiles/redoop_common.dir/hash.cc.o.d"
  "CMakeFiles/redoop_common.dir/logging.cc.o"
  "CMakeFiles/redoop_common.dir/logging.cc.o.d"
  "CMakeFiles/redoop_common.dir/math_utils.cc.o"
  "CMakeFiles/redoop_common.dir/math_utils.cc.o.d"
  "CMakeFiles/redoop_common.dir/random.cc.o"
  "CMakeFiles/redoop_common.dir/random.cc.o.d"
  "CMakeFiles/redoop_common.dir/status.cc.o"
  "CMakeFiles/redoop_common.dir/status.cc.o.d"
  "CMakeFiles/redoop_common.dir/string_utils.cc.o"
  "CMakeFiles/redoop_common.dir/string_utils.cc.o.d"
  "libredoop_common.a"
  "libredoop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
