# Empty compiler generated dependencies file for redoop_common.
# This may be replaced when dependencies are built.
