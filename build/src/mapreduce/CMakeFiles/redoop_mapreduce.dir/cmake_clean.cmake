file(REMOVE_RECURSE
  "CMakeFiles/redoop_mapreduce.dir/counters.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/counters.cc.o.d"
  "CMakeFiles/redoop_mapreduce.dir/job_runner.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/job_runner.cc.o.d"
  "CMakeFiles/redoop_mapreduce.dir/kv.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/kv.cc.o.d"
  "CMakeFiles/redoop_mapreduce.dir/partitioner.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/partitioner.cc.o.d"
  "CMakeFiles/redoop_mapreduce.dir/scheduler.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/scheduler.cc.o.d"
  "CMakeFiles/redoop_mapreduce.dir/trace.cc.o"
  "CMakeFiles/redoop_mapreduce.dir/trace.cc.o.d"
  "libredoop_mapreduce.a"
  "libredoop_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
