file(REMOVE_RECURSE
  "libredoop_mapreduce.a"
)
