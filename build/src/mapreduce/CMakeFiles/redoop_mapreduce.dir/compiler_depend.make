# Empty compiler generated dependencies file for redoop_mapreduce.
# This may be replaced when dependencies are built.
