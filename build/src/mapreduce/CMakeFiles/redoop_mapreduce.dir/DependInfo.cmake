
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/counters.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/counters.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/counters.cc.o.d"
  "/root/repo/src/mapreduce/job_runner.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/job_runner.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/job_runner.cc.o.d"
  "/root/repo/src/mapreduce/kv.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/kv.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/kv.cc.o.d"
  "/root/repo/src/mapreduce/partitioner.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/partitioner.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/partitioner.cc.o.d"
  "/root/repo/src/mapreduce/scheduler.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/scheduler.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/scheduler.cc.o.d"
  "/root/repo/src/mapreduce/trace.cc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/trace.cc.o" "gcc" "src/mapreduce/CMakeFiles/redoop_mapreduce.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redoop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/redoop_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/redoop_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
