file(REMOVE_RECURSE
  "CMakeFiles/redoop_cli.dir/redoop_cli.cc.o"
  "CMakeFiles/redoop_cli.dir/redoop_cli.cc.o.d"
  "redoop_cli"
  "redoop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redoop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
