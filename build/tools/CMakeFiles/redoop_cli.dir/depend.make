# Empty dependencies file for redoop_cli.
# This may be replaced when dependencies are built.
