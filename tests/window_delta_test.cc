// Tests for update-style delivery (paper Example 2): per-window result
// deltas against the previous recurrence.

#include <gtest/gtest.h>

#include "baseline/hadoop_driver.h"
#include "core/redoop_driver.h"
#include "tests/test_util.h"

namespace redoop {
namespace {

using ::redoop::testing::MakeWccFeed;
using ::redoop::testing::SmallClusterConfig;

constexpr int32_t kNodes = 6;

KeyValue KV(const std::string& k, const std::string& v) {
  return KeyValue(k, v, 8);
}

TEST(ComputeWindowDeltaTest, MultisetDiff) {
  const std::vector<KeyValue> prev = {KV("a", "1"), KV("b", "2"), KV("c", "3")};
  const std::vector<KeyValue> curr = {KV("a", "1"), KV("b", "9"), KV("d", "4")};
  const WindowDelta delta = ComputeWindowDelta(prev, curr);
  ASSERT_EQ(delta.added.size(), 2u);
  EXPECT_EQ(delta.added[0].key, "b");
  EXPECT_EQ(delta.added[0].value, "9");
  EXPECT_EQ(delta.added[1].key, "d");
  ASSERT_EQ(delta.removed.size(), 2u);
  EXPECT_EQ(delta.removed[0].key, "b");
  EXPECT_EQ(delta.removed[0].value, "2");
  EXPECT_EQ(delta.removed[1].key, "c");
}

TEST(ComputeWindowDeltaTest, EmptyAndIdenticalCases) {
  EXPECT_TRUE(ComputeWindowDelta({}, {}).Empty());
  const std::vector<KeyValue> rows = {KV("a", "1"), KV("b", "2")};
  EXPECT_TRUE(ComputeWindowDelta(rows, rows).Empty());
  const WindowDelta all_new = ComputeWindowDelta({}, rows);
  EXPECT_EQ(all_new.added.size(), 2u);
  EXPECT_TRUE(all_new.removed.empty());
  const WindowDelta all_gone = ComputeWindowDelta(rows, {});
  EXPECT_EQ(all_gone.removed.size(), 2u);
}

TEST(ComputeWindowDeltaTest, DuplicateRowsCountedAsMultiset) {
  const std::vector<KeyValue> prev = {KV("a", "1"), KV("a", "1")};
  const std::vector<KeyValue> curr = {KV("a", "1")};
  const WindowDelta delta = ComputeWindowDelta(prev, curr);
  EXPECT_TRUE(delta.added.empty());
  ASSERT_EQ(delta.removed.size(), 1u) << "one of the duplicates went away";
}

TEST(WindowDeltaTest, DriverDeltasReconstructResults) {
  RecurringQuery query = MakeAggregationQuery(1, "feed", 1, 200, 40, 4);
  query.emit_deltas = true;
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 25, 20);
  RedoopDriver driver(&cluster, feed.get(), query);

  std::vector<KeyValue> reconstructed;  // Apply deltas window by window.
  for (int64_t i = 0; i < 4; ++i) {
    WindowReport w = driver.RunRecurrence(i).value();
    if (i == 0) {
      EXPECT_EQ(w.delta.added.size(), w.output.size())
          << "first window is all additions";
      EXPECT_TRUE(w.delta.removed.empty());
    } else {
      EXPECT_FALSE(w.delta.Empty()) << "sliding windows change results";
    }
    // reconstructed := reconstructed - removed + added.
    std::multiset<std::pair<std::string, std::string>> rows;
    for (const KeyValue& kv : reconstructed) rows.insert({kv.key, kv.value});
    for (const KeyValue& kv : w.delta.removed) {
      auto it = rows.find({kv.key, kv.value});
      ASSERT_NE(it, rows.end()) << "removed row was never present";
      rows.erase(it);
    }
    for (const KeyValue& kv : w.delta.added) rows.insert({kv.key, kv.value});
    reconstructed.clear();
    for (const auto& [k, v] : rows) reconstructed.push_back(KV(k, v));

    ASSERT_EQ(reconstructed.size(), w.output.size()) << "window " << i;
    for (size_t r = 0; r < reconstructed.size(); ++r) {
      EXPECT_EQ(reconstructed[r].key, w.output[r].key);
      EXPECT_EQ(reconstructed[r].value, w.output[r].value);
    }
  }
}

TEST(WindowDeltaTest, HadoopAndRedoopEmitIdenticalDeltas) {
  RecurringQuery query = MakeAggregationQuery(1, "feed", 1, 200, 40, 4);
  query.emit_deltas = true;

  Cluster hadoop_cluster(kNodes, SmallClusterConfig());
  auto hadoop_feed = MakeWccFeed(1, 25, 20);
  HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);

  Cluster redoop_cluster(kNodes, SmallClusterConfig());
  auto redoop_feed = MakeWccFeed(1, 25, 20);
  RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);

  for (int64_t i = 0; i < 4; ++i) {
    WindowReport h = hadoop.RunRecurrence(i);
    WindowReport r = redoop.RunRecurrence(i).value();
    ASSERT_EQ(h.delta.added.size(), r.delta.added.size()) << "window " << i;
    ASSERT_EQ(h.delta.removed.size(), r.delta.removed.size());
    for (size_t k = 0; k < h.delta.added.size(); ++k) {
      EXPECT_EQ(h.delta.added[k], r.delta.added[k]);
    }
    for (size_t k = 0; k < h.delta.removed.size(); ++k) {
      EXPECT_EQ(h.delta.removed[k], r.delta.removed[k]);
    }
  }
}

TEST(WindowDeltaTest, OffByDefault) {
  RecurringQuery query = MakeAggregationQuery(1, "q", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 25, 20);
  RedoopDriver driver(&cluster, feed.get(), query);
  WindowReport w0 = driver.RunRecurrence(0).value();
  WindowReport w1 = driver.RunRecurrence(1).value();
  EXPECT_TRUE(w0.delta.Empty());
  EXPECT_TRUE(w1.delta.Empty());
}

}  // namespace
}  // namespace redoop
