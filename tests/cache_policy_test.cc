// Property tests for the capacity-bounded CacheStore: the capacity
// invariant under every eviction policy, pin/lease exemption, deterministic
// victim order, policy victim semantics, typed CacheKey parsing, and the
// end-to-end guarantee that evict→recompute runs stay byte-identical to
// the unbounded run at any budget and thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/cache_key.h"
#include "core/cache_store.h"
#include "core/eviction_policy.h"
#include "core/redoop_driver.h"
#include "queries/aggregation_query.h"
#include "workload/rate_profile.h"
#include "workload/synthetic_feed.h"
#include "workload/wcc_generator.h"

namespace redoop {
namespace {

constexpr EvictionPolicyKind kAllPolicies[] = {
    EvictionPolicyKind::kLru, EvictionPolicyKind::kFifo,
    EvictionPolicyKind::kS3Fifo, EvictionPolicyKind::kSieve,
    EvictionPolicyKind::kHybrid};

CacheKey Ric(PaneId pane, int32_t partition = 0) {
  return CacheKey::ReduceInput(/*query=*/1, /*source=*/1, pane, partition);
}

CacheStore::PanePayload Payload() {
  return CacheStore::PanePayload::FromKeyValues({{"k", "v", 8}});
}

void PutBytes(CacheStore* store, const CacheKey& key, int64_t bytes) {
  store->Put(key, Payload(), CacheStore::PaneStats{bytes, 1});
}

// --- capacity invariant -------------------------------------------------

TEST(CachePolicyCapacity, InvariantHoldsForEveryPolicy) {
  for (const EvictionPolicyKind kind : kAllPolicies) {
    SCOPED_TRACE(EvictionPolicyName(kind));
    CacheStore::Options options;
    options.budget_bytes = 1000;
    options.policy = kind;
    CacheStore store(std::move(options));
    for (PaneId pane = 0; pane < 50; ++pane) {
      PutBytes(&store, Ric(pane), 100);
      // No pins and every entry fits: the budget must hold after each Put.
      EXPECT_LE(store.total_bytes(), 1000) << "pane " << pane;
    }
    EXPECT_GT(store.evicted_entries(), 0);
    EXPECT_EQ(store.evicted_entries() * 100, store.evicted_bytes());
    // Put admits before it evicts, so the high-water mark may transiently
    // overshoot by at most the one incoming entry.
    EXPECT_LE(store.peak_bytes(), 1000 + 100);
  }
}

TEST(CachePolicyCapacity, OversizedEntryMayExceedUntilNextPut) {
  CacheStore::Options options;
  options.budget_bytes = 100;
  CacheStore store(std::move(options));
  // A single entry larger than the whole budget is admitted (the incoming
  // entry is never its own victim)...
  PutBytes(&store, Ric(0), 250);
  EXPECT_TRUE(store.Has(Ric(0)));
  EXPECT_EQ(store.total_bytes(), 250);
  // ...but the next Put makes it the victim and the budget holds again.
  PutBytes(&store, Ric(1), 10);
  EXPECT_FALSE(store.Has(Ric(0)));
  EXPECT_TRUE(store.Has(Ric(1)));
  EXPECT_EQ(store.total_bytes(), 10);
}

TEST(CachePolicyCapacity, UnboundedStoreNeverEvicts) {
  CacheStore store;
  for (PaneId pane = 0; pane < 100; ++pane) {
    PutBytes(&store, Ric(pane), 1 << 20);
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.evicted_entries(), 0);
  store.EnforceBudget();
  EXPECT_EQ(store.size(), 100u);
}

// --- pin / lease --------------------------------------------------------

TEST(CachePolicyPinning, PinnedEntriesAreExemptFromEviction) {
  for (const EvictionPolicyKind kind : kAllPolicies) {
    SCOPED_TRACE(EvictionPolicyName(kind));
    CacheStore::Options options;
    options.budget_bytes = 300;
    options.policy = kind;
    CacheStore store(std::move(options));
    PutBytes(&store, Ric(0), 100);
    CacheStore::Lease pin = store.Acquire(Ric(0));
    ASSERT_TRUE(pin.active());
    EXPECT_EQ(store.pinned_bytes(), 100);
    for (PaneId pane = 1; pane < 30; ++pane) {
      PutBytes(&store, Ric(pane), 100);
      ASSERT_TRUE(store.Has(Ric(0))) << "pane " << pane;
    }
    EXPECT_LE(store.total_bytes(), 300);
  }
}

TEST(CachePolicyPinning, AllPinnedStoreExceedsBudgetThenEnforceTrims) {
  CacheStore::Options options;
  options.budget_bytes = 200;
  CacheStore store(std::move(options));
  std::vector<CacheStore::Lease> pins;
  for (PaneId pane = 0; pane < 5; ++pane) {
    PutBytes(&store, Ric(pane), 100);
    pins.push_back(store.Acquire(Ric(pane)));
  }
  // Every entry is pinned: the store must hold all 500 bytes.
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.total_bytes(), 500);
  EXPECT_EQ(store.pinned_bytes(), 500);
  // Releasing leases does not evict by itself...
  pins.clear();
  EXPECT_EQ(store.total_bytes(), 500);
  EXPECT_EQ(store.pinned_bytes(), 0);
  // ...EnforceBudget at the recurrence boundary does.
  store.EnforceBudget();
  EXPECT_LE(store.total_bytes(), 200);
  EXPECT_EQ(store.evicted_entries(), 3);
}

TEST(CachePolicyPinning, InactiveLeaseForAbsentKey) {
  CacheStore store;
  CacheStore::Lease lease = store.Acquire(Ric(7));
  EXPECT_FALSE(lease.active());
}

// --- deterministic victim order -----------------------------------------

std::vector<std::string> VictimScript(EvictionPolicyKind kind) {
  std::vector<std::string> victims;
  CacheStore::Options options;
  options.budget_bytes = 400;
  options.policy = kind;
  options.on_evict = [&victims](const CacheStore::EvictionNotice& notice) {
    EXPECT_EQ(notice.bytes, 100);
    victims.push_back(notice.key.name());
  };
  CacheStore store(std::move(options));
  for (PaneId pane = 0; pane < 20; ++pane) {
    PutBytes(&store, Ric(pane), 100);
    // Deterministic access pattern to exercise recency/frequency state.
    if (pane >= 2) store.Find(Ric(pane - 2));
    if (pane % 3 == 0) store.Find(Ric(pane));
  }
  return victims;
}

TEST(CachePolicyDeterminism, VictimOrderIsReproducible) {
  for (const EvictionPolicyKind kind : kAllPolicies) {
    SCOPED_TRACE(EvictionPolicyName(kind));
    const std::vector<std::string> first = VictimScript(kind);
    const std::vector<std::string> second = VictimScript(kind);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
  }
}

// --- per-policy victim semantics ----------------------------------------

TEST(CachePolicySemantics, LruEvictsLeastRecentlyUsed) {
  CacheStore::Options options;
  options.budget_bytes = 300;
  options.policy = EvictionPolicyKind::kLru;
  CacheStore store(std::move(options));
  PutBytes(&store, Ric(0), 100);
  PutBytes(&store, Ric(1), 100);
  PutBytes(&store, Ric(2), 100);
  store.Find(Ric(0));  // Refresh 0; 1 becomes least-recent.
  PutBytes(&store, Ric(3), 100);
  EXPECT_TRUE(store.Has(Ric(0)));
  EXPECT_FALSE(store.Has(Ric(1)));
  EXPECT_TRUE(store.Has(Ric(2)));
  EXPECT_TRUE(store.Has(Ric(3)));
}

TEST(CachePolicySemantics, FifoIgnoresAccesses) {
  CacheStore::Options options;
  options.budget_bytes = 300;
  options.policy = EvictionPolicyKind::kFifo;
  CacheStore store(std::move(options));
  PutBytes(&store, Ric(0), 100);
  PutBytes(&store, Ric(1), 100);
  PutBytes(&store, Ric(2), 100);
  store.Find(Ric(0));  // FIFO does not care: 0 is still first in.
  PutBytes(&store, Ric(3), 100);
  EXPECT_FALSE(store.Has(Ric(0)));
  EXPECT_TRUE(store.Has(Ric(1)));
}

// --- concurrent stat reads (exercised under TSan in CI) ------------------

TEST(CachePolicyConcurrency, StatReadsRaceFreeAgainstMutations) {
  CacheStore::Options options;
  options.budget_bytes = 5000;
  CacheStore store(std::move(options));
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store] {
      int64_t sink = 0;
      for (int i = 0; i < 2000; ++i) {
        sink += store.total_bytes() + store.total_compressed_bytes() +
                static_cast<int64_t>(store.size()) + store.pinned_bytes();
      }
      EXPECT_GE(sink, 0);
    });
  }
  for (PaneId pane = 0; pane < 500; ++pane) {
    PutBytes(&store, Ric(pane % 60), 100);
  }
  for (std::thread& t : readers) t.join();
  EXPECT_LE(store.total_bytes(), 5000);
}

// --- typed CacheKey -----------------------------------------------------

TEST(CacheKeyTest, FactoriesRoundTripThroughParse) {
  const CacheKey keys[] = {
      CacheKey::ReduceInput(3, 1, 42, 7),
      CacheKey::ReduceOutput(3, 1, 42, 7),
      CacheKey::JoinOutput(3, 5, 9, 2),
      CacheKey::ReduceInput(3, 1, 42, 7).WithChunk(2),
      CacheKey::ReduceInput(3, 1, 42, 7).Rebuilt(),
      CacheKey::ReduceInput(3, 1, 42, 7).WithChunk(2).Rebuilt(),
  };
  for (const CacheKey& key : keys) {
    SCOPED_TRACE(key.name());
    const std::optional<CacheKey> parsed = CacheKey::Parse(key.name());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, key);
    EXPECT_EQ(parsed->kind(), key.kind());
    EXPECT_EQ(parsed->partition(), key.partition());
    EXPECT_EQ(parsed->chunk(), key.chunk());
    EXPECT_EQ(parsed->rebuilt(), key.rebuilt());
  }
}

TEST(CacheKeyTest, MalformedNamesFailToParse) {
  const char* bad[] = {
      "",
      "garbage",
      "RIC_Q1",
      "RIC_Q1_S1P3",
      "RIC_Q1_S1P3_R",
      "RIC_Q1_S1P3_R0_x",
      "RIC_Q1_S1P3_R0trailing",
      "JOC_Q1_P3_R0",
      "ROC_Qx_S1P3_R0",
  };
  for (const char* name : bad) {
    SCOPED_TRACE(name);
    EXPECT_FALSE(CacheKey::Parse(name).has_value());
  }
}

// --- end-to-end: evict → recompute byte identity ------------------------

struct DriverRun {
  RunReport report;
  int64_t peak_bytes = 0;
  int64_t evictions = 0;
};

DriverRun RunSmallAgg(int64_t budget_bytes, EvictionPolicyKind policy,
                      int32_t threads) {
  auto feed = std::make_unique<SyntheticFeed>(/*batch_interval=*/60);
  WccGeneratorOptions gen;
  gen.seed = 7;
  gen.record_logical_bytes = 256 * 1024;
  feed->AddSource(1, std::make_shared<WccGenerator>(
                         std::make_shared<ConstantRate>(2.0), gen));
  const RecurringQuery query = MakeAggregationQuery(
      1, "policy-agg", 1, /*win=*/1800, /*slide=*/180, /*num_reducers=*/2);
  Cluster cluster(4, Config());
  RedoopDriverOptions options;
  options.cache.budget_bytes = budget_bytes;
  options.cache.eviction_policy = policy;
  options.runner.threads = threads;
  RedoopDriver driver(&cluster, feed.get(), query, options);
  DriverRun run;
  run.report = bench::Unwrap(driver.Run(/*windows=*/3));
  run.peak_bytes = driver.store().peak_bytes();
  run.evictions = driver.store().evicted_entries();
  return run;
}

TEST(EvictRecompute, ByteIdenticalToUnboundedAcrossPoliciesAndThreads) {
  const DriverRun reference =
      RunSmallAgg(0, EvictionPolicyKind::kLru, /*threads=*/1);
  ASSERT_GT(reference.peak_bytes, 0);
  EXPECT_EQ(reference.evictions, 0);
  const int64_t tight = std::max<int64_t>(1, reference.peak_bytes / 20);
  for (const EvictionPolicyKind kind : kAllPolicies) {
    for (const int32_t threads : {1, 8}) {
      SCOPED_TRACE(std::string(EvictionPolicyName(kind)) + " threads=" +
                   std::to_string(threads));
      const DriverRun bounded = RunSmallAgg(tight, kind, threads);
      EXPECT_GT(bounded.evictions, 0);
      EXPECT_TRUE(bench::ResultsMatch(reference.report, bounded.report));
    }
  }
}

TEST(EvictRecompute, ByteIdenticalAtEveryBudgetRung) {
  const DriverRun reference =
      RunSmallAgg(0, EvictionPolicyKind::kLru, /*threads=*/1);
  ASSERT_GT(reference.peak_bytes, 0);
  for (const double fraction : {0.25, 0.05, 0.01}) {
    for (const int32_t threads : {1, 8}) {
      const int64_t budget = std::max<int64_t>(
          1, static_cast<int64_t>(
                 static_cast<double>(reference.peak_bytes) * fraction));
      SCOPED_TRACE("fraction=" + std::to_string(fraction) +
                   " threads=" + std::to_string(threads));
      const DriverRun bounded =
          RunSmallAgg(budget, EvictionPolicyKind::kLru, threads);
      EXPECT_TRUE(bench::ResultsMatch(reference.report, bounded.report));
    }
  }
}

}  // namespace
}  // namespace redoop
