// Unit + property tests for window/pane arithmetic and join lifespans.

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "core/window.h"

namespace redoop {
namespace {

TEST(WindowSpecTest, Overlap) {
  EXPECT_DOUBLE_EQ((WindowSpec{600, 60}.Overlap()), 0.9);
  EXPECT_DOUBLE_EQ((WindowSpec{600, 300}.Overlap()), 0.5);
  EXPECT_DOUBLE_EQ((WindowSpec{600, 600}.Overlap()), 0.0);
}

TEST(WindowSpecTest, Validity) {
  EXPECT_TRUE((WindowSpec{600, 60}.Valid()));
  EXPECT_FALSE((WindowSpec{0, 60}.Valid()));
  EXPECT_FALSE((WindowSpec{600, 0}.Valid()));
  EXPECT_FALSE((WindowSpec{60, 600}.Valid())) << "slide must not exceed win";
}

TEST(WindowGeometryTest, PaneMustDivideWinAndSlide) {
  EXPECT_DEATH(WindowGeometry(WindowSpec{600, 60}, 50), "divide");
  WindowGeometry ok(WindowSpec{600, 60}, 60);
  EXPECT_EQ(ok.panes_per_window(), 10);
  EXPECT_EQ(ok.panes_per_slide(), 1);
}

TEST(WindowGeometryTest, TriggerAndRanges) {
  WindowGeometry g(WindowSpec{600, 200}, 200);
  EXPECT_EQ(g.TriggerTime(0), 600);
  EXPECT_EQ(g.TriggerTime(3), 1200);
  EXPECT_EQ(g.WindowBegin(0), 0);
  EXPECT_EQ(g.WindowEnd(0), 600);
  EXPECT_EQ(g.WindowBegin(2), 400);
  EXPECT_EQ(g.WindowEnd(2), 1000);
}

TEST(WindowGeometryTest, PaneForTimeAndIntervals) {
  WindowGeometry g(WindowSpec{600, 200}, 200);
  EXPECT_EQ(g.PaneForTime(0), 0);
  EXPECT_EQ(g.PaneForTime(199), 0);
  EXPECT_EQ(g.PaneForTime(200), 1);
  EXPECT_EQ(g.PaneBegin(3), 600);
  EXPECT_EQ(g.PaneEnd(3), 800);
}

TEST(WindowGeometryTest, PaneRangesPerRecurrence) {
  WindowGeometry g(WindowSpec{600, 200}, 200);  // 3 panes per window.
  EXPECT_EQ(g.PanesForRecurrence(0), (PaneRange{0, 3}));
  EXPECT_EQ(g.PanesForRecurrence(1), (PaneRange{1, 4}));
  EXPECT_EQ(g.NewPanesForRecurrence(0), (PaneRange{0, 3}));
  EXPECT_EQ(g.NewPanesForRecurrence(1), (PaneRange{3, 4}));
  EXPECT_EQ(g.DroppedPanesAtRecurrence(0), (PaneRange{0, 0}));
  EXPECT_EQ(g.DroppedPanesAtRecurrence(1), (PaneRange{0, 1}));
}

TEST(WindowGeometryTest, FirstLastRecurrenceUsingPane) {
  WindowGeometry g(WindowSpec{600, 200}, 200);
  // Pane 0 is only in window 0; pane 3 in windows 1..3.
  EXPECT_EQ(g.FirstRecurrenceUsingPane(0), 0);
  EXPECT_EQ(g.LastRecurrenceUsingPane(0), 0);
  EXPECT_EQ(g.FirstRecurrenceUsingPane(3), 1);
  EXPECT_EQ(g.LastRecurrenceUsingPane(3), 3);
  EXPECT_TRUE(g.PaneExpiredAfter(0, 0));
  EXPECT_FALSE(g.PaneExpiredAfter(3, 2));
  EXPECT_TRUE(g.PaneExpiredAfter(3, 3));
}

TEST(JoinLifespanTest, PaperExample) {
  // Paper §4.2: win = 3 panes, slide = 2 panes would not divide evenly in
  // the Table-3 example; use win=4 panes, slide=1 pane: S1P1's partners
  // span the windows containing pane 1, i.e. windows 0 and 1 -> panes 0-4.
  WindowGeometry g(WindowSpec{400, 100}, 100);
  const PaneRange lifespan = JoinLifespan(g, 1);
  EXPECT_EQ(lifespan.first, 0);
  EXPECT_EQ(lifespan.last, 5);
  EXPECT_TRUE(lifespan.Contains(1));
}

TEST(JoinLifespanTest, ContainsOwnPane) {
  WindowGeometry g(WindowSpec{600, 300}, 300);
  for (PaneId p = 0; p < 10; ++p) {
    EXPECT_TRUE(JoinLifespan(g, p).Contains(p)) << "pane " << p;
  }
}

// --------------------- Property suite (TEST_P sweeps) ----------------------

struct GeometryCase {
  Timestamp win;
  Timestamp slide;
};

class GeometryPropertyTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryPropertyTest, WindowsAreExactPaneUnions) {
  const auto [win, slide] = GetParam();
  WindowGeometry g(WindowSpec{win, slide}, Gcd(win, slide));
  for (int64_t rec = 0; rec < 20; ++rec) {
    const PaneRange panes = g.PanesForRecurrence(rec);
    EXPECT_EQ(g.PaneBegin(panes.first), g.WindowBegin(rec));
    EXPECT_EQ(g.PaneEnd(panes.last - 1), g.WindowEnd(rec));
    EXPECT_EQ(panes.size(), g.panes_per_window());
  }
}

TEST_P(GeometryPropertyTest, NewPlusOldCoversWindowWithoutGaps) {
  const auto [win, slide] = GetParam();
  WindowGeometry g(WindowSpec{win, slide}, Gcd(win, slide));
  for (int64_t rec = 1; rec < 20; ++rec) {
    const PaneRange current = g.PanesForRecurrence(rec);
    const PaneRange previous = g.PanesForRecurrence(rec - 1);
    const PaneRange fresh = g.NewPanesForRecurrence(rec);
    const PaneRange dropped = g.DroppedPanesAtRecurrence(rec);
    // Every current pane is either carried over or new.
    for (PaneId p = current.first; p < current.last; ++p) {
      EXPECT_TRUE(previous.Contains(p) || fresh.Contains(p));
    }
    // Nothing new was in the previous window; nothing dropped is current.
    for (PaneId p = fresh.first; p < fresh.last; ++p) {
      EXPECT_FALSE(previous.Contains(p));
    }
    for (PaneId p = dropped.first; p < dropped.last; ++p) {
      EXPECT_TRUE(previous.Contains(p));
      EXPECT_FALSE(current.Contains(p));
    }
    // Conservation: |new| == |dropped| == panes per slide.
    EXPECT_EQ(fresh.size(), g.panes_per_slide());
    EXPECT_EQ(dropped.size(), g.panes_per_slide());
  }
}

TEST_P(GeometryPropertyTest, RecurrenceUsageBoundsAreTight) {
  const auto [win, slide] = GetParam();
  WindowGeometry g(WindowSpec{win, slide}, Gcd(win, slide));
  for (PaneId p = 0; p < 40; ++p) {
    const int64_t first = g.FirstRecurrenceUsingPane(p);
    const int64_t last = g.LastRecurrenceUsingPane(p);
    ASSERT_LE(first, last);
    EXPECT_TRUE(g.PanesForRecurrence(first).Contains(p));
    EXPECT_TRUE(g.PanesForRecurrence(last).Contains(p));
    if (first > 0) {
      EXPECT_FALSE(g.PanesForRecurrence(first - 1).Contains(p));
    }
    EXPECT_FALSE(g.PanesForRecurrence(last + 1).Contains(p));
    // Every recurrence in between also uses the pane (contiguity).
    for (int64_t rec = first; rec <= last; ++rec) {
      EXPECT_TRUE(g.PanesForRecurrence(rec).Contains(p));
    }
  }
}

TEST_P(GeometryPropertyTest, LifespanIsExactlyCoOccurringPanes) {
  const auto [win, slide] = GetParam();
  WindowGeometry g(WindowSpec{win, slide}, Gcd(win, slide));
  for (PaneId p = 0; p < 25; ++p) {
    const PaneRange lifespan = JoinLifespan(g, p);
    // Brute force: q co-occurs with p iff some window (within a generous
    // horizon) contains both.
    for (PaneId q = 0; q < 50; ++q) {
      bool co_occurs = false;
      for (int64_t rec = 0; rec < 60; ++rec) {
        const PaneRange window = g.PanesForRecurrence(rec);
        if (window.Contains(p) && window.Contains(q)) co_occurs = true;
      }
      EXPECT_EQ(lifespan.Contains(q), co_occurs)
          << "p=" << p << " q=" << q << " win=" << win << " slide=" << slide;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryPropertyTest,
    ::testing::Values(GeometryCase{600, 60}, GeometryCase{600, 200},
                      GeometryCase{600, 300}, GeometryCase{600, 540},
                      GeometryCase{600, 600}, GeometryCase{3600, 900},
                      GeometryCase{7200, 1800}, GeometryCase{100, 30},
                      GeometryCase{18000, 1800}));

}  // namespace
}  // namespace redoop
