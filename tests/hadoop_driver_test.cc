// Unit tests for the plain-Hadoop baseline driver.

#include <gtest/gtest.h>

#include "baseline/hadoop_driver.h"
#include "tests/test_util.h"

namespace redoop {
namespace {

using ::redoop::testing::MakeWccFeed;
using ::redoop::testing::SmallClusterConfig;

constexpr int32_t kNodes = 6;

TEST(HadoopDriverTest, ReportsPopulated) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);

  WindowReport w = driver.RunRecurrence(0);
  EXPECT_EQ(w.recurrence, 0);
  EXPECT_EQ(w.trigger_time, 200);
  EXPECT_GT(w.response_time, 0.0);
  EXPECT_GT(w.output.size(), 0u);
  EXPECT_EQ(w.window_input_bytes, w.fresh_input_bytes)
      << "Hadoop reprocesses everything every window";
  EXPECT_GT(w.counters.Get(counter::kMapTasks), 0);
}

TEST(HadoopDriverTest, ReprocessesFullWindowEveryRecurrence) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);

  WindowReport w0 = driver.RunRecurrence(0);
  WindowReport w1 = driver.RunRecurrence(1);
  // Steady state: same window volume, similar response.
  EXPECT_NEAR(static_cast<double>(w1.window_input_bytes),
              static_cast<double>(w0.window_input_bytes),
              0.3 * static_cast<double>(w0.window_input_bytes));
  EXPECT_GT(w1.counters.Get(counter::kMapInputBytes),
            w1.window_input_bytes / 2)
      << "the full window is re-mapped";
}

TEST(HadoopDriverTest, DropsExpiredBatchFiles) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);

  for (int64_t i = 0; i < 6; ++i) driver.RunRecurrence(i);
  // Batches fully before the current window start are deleted: at most
  // (win / batch_interval) + a couple in flight remain.
  const auto files = cluster.dfs().ListFiles("hadoop/agg/");
  EXPECT_LE(files.size(), 13u) << "expired batch files must be reclaimed";
}

TEST(HadoopDriverTest, WritesWindowOutputsToDfs) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);
  driver.RunRecurrence(0);
  driver.RunRecurrence(1);
  EXPECT_TRUE(cluster.dfs().Exists("out/agg/rec-0/part-all"));
  EXPECT_TRUE(cluster.dfs().Exists("out/agg/rec-1/part-all"));
}

// A feed delivering each requested interval as one batch file, so stored
// batch files straddle window boundaries and the Hadoop driver's
// WindowFilterMapper must clip them.
class OneBatchPerRequestFeed : public BatchFeed {
 public:
  std::vector<RecordBatch> BatchesFor(SourceId source, Timestamp begin,
                                      Timestamp end) override {
    RecordBatch batch;
    batch.start = begin;
    batch.end = end;
    for (Timestamp t = begin; t < end; ++t) {
      for (int i = 0; i < 10; ++i) {
        batch.records.emplace_back(
            t, "k" + std::to_string((t + i) % 7),
            "v," + std::to_string(t % 100), 256);
      }
    }
    (void)source;
    return {batch};
  }
};

TEST(HadoopDriverTest, WindowFilterScopesRecordsExactly) {
  // Window 0's data [0, 120) lands as one big batch file; window 1
  // ([40, 160)) overlaps it and must filter out [0, 40).
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 120, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = std::make_unique<OneBatchPerRequestFeed>();
  HadoopRecurringDriver driver(&cluster, feed.get(), query);

  WindowReport w0 = driver.RunRecurrence(0);
  WindowReport w1 = driver.RunRecurrence(1);
  // Count aggregated records via the partial format "count:sum:max".
  auto total_count = [](const WindowReport& w) {
    int64_t total = 0;
    for (const KeyValue& kv : w.output) {
      total += AggregateValue::Parse(kv.value).count;
    }
    return total;
  };
  // ~10 rps over 120 s windows.
  EXPECT_NEAR(static_cast<double>(total_count(w0)), 1200.0, 150.0);
  EXPECT_NEAR(static_cast<double>(total_count(w1)), 1200.0, 150.0);
}

TEST(HadoopDriverTest, RunCollectsAllWindows) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);
  RunReport report = driver.Run(3);
  EXPECT_EQ(report.system, "hadoop");
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_GT(report.TotalResponseTime(), 0.0);
}

TEST(HadoopDriverTest, RecurrencesMustBeConsecutive) {
  RecurringQuery query = MakeAggregationQuery(1, "agg", 1, 200, 40, 4);
  Cluster cluster(kNodes, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver driver(&cluster, feed.get(), query);
  driver.RunRecurrence(0);
  EXPECT_DEATH(driver.RunRecurrence(2), "consecutive");
}

}  // namespace
}  // namespace redoop
