// Tests for the Chrome trace exporter and the task-report plumbing
// through the drivers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baseline/hadoop_driver.h"
#include "core/redoop_driver.h"
#include "mapreduce/trace.h"
#include "tests/test_util.h"

namespace redoop {
namespace {

using ::redoop::testing::MakeWccFeed;
using ::redoop::testing::SmallClusterConfig;

TaskReport MakeReport(TaskId id, TaskType type, NodeId node, double start,
                      double total) {
  TaskReport report;
  report.id = id;
  report.type = type;
  report.node = node;
  report.timing.scheduled_at = start;
  report.timing.compute = total;
  return report;
}

TEST(TraceWriterTest, JsonShape) {
  TraceWriter writer;
  writer.AddJob("job-a", {MakeReport(1, TaskType::kMap, 0, 2.0, 1.5),
                          MakeReport(2, TaskType::kReduce, 3, 4.0, 0.5)});
  EXPECT_EQ(writer.event_count(), 2u);
  const std::string json = writer.ToJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"map job-a#1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reduce job-a#2\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000000"), std::string::npos)
      << "simulated seconds become trace microseconds";
  EXPECT_NE(json.find("\"dur\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
}

TEST(TraceWriterTest, WriteFileRoundTrip) {
  TraceWriter writer;
  writer.AddJob("j", {MakeReport(1, TaskType::kMap, 0, 0.0, 1.0)});
  const std::string path = ::testing::TempDir() + "/redoop_trace_test.json";
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), writer.ToJson());
  std::remove(path.c_str());
}

TEST(TraceWriterTest, WriteToBadPathFails) {
  TraceWriter writer;
  EXPECT_FALSE(writer.WriteFile("/nonexistent-dir-xyz/trace.json").ok());
}

TEST(TraceTest, DriversCarryTaskReports) {
  RecurringQuery query = MakeAggregationQuery(1, "t", 1, 200, 40, 4);

  Cluster hadoop_cluster(6, SmallClusterConfig());
  auto hadoop_feed = MakeWccFeed(1, 30, 20);
  HadoopRecurringDriver hadoop(&hadoop_cluster, hadoop_feed.get(), query);
  WindowReport h = hadoop.RunRecurrence(0);
  EXPECT_GT(h.task_reports.size(), 0u);

  Cluster redoop_cluster(6, SmallClusterConfig());
  auto redoop_feed = MakeWccFeed(1, 30, 20);
  RedoopDriver redoop(&redoop_cluster, redoop_feed.get(), query);
  WindowReport r0 = redoop.RunRecurrence(0).value();
  WindowReport r1 = redoop.RunRecurrence(1).value();
  EXPECT_GT(r0.task_reports.size(), 0u);
  EXPECT_GT(r1.task_reports.size(), 0u);
  EXPECT_LT(r1.task_reports.size(), r0.task_reports.size())
      << "warm windows run fewer tasks";

  // The whole run exports cleanly.
  TraceWriter writer;
  writer.AddJob("hadoop-w0", h.task_reports);
  writer.AddJob("redoop-w0", r0.task_reports);
  writer.AddJob("redoop-w1", r1.task_reports);
  EXPECT_EQ(writer.event_count(), h.task_reports.size() +
                                      r0.task_reports.size() +
                                      r1.task_reports.size());
  EXPECT_GT(writer.ToJson().size(), 100u);
}

}  // namespace
}  // namespace redoop
