// Tests for the observability layer: metric registry semantics, histogram
// quantile accuracy, snapshot merging, event-journal JSONL round-trips,
// and end-to-end determinism of instrumented driver runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include "core/redoop_driver.h"
#include "obs/event_journal.h"
#include "obs/metric_registry.h"
#include "obs/observability.h"
#include "tests/test_util.h"

namespace redoop {
namespace {

using ::redoop::testing::MakeWccFeed;
using ::redoop::testing::SmallClusterConfig;

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CounterSemantics) {
  obs::MetricRegistry registry;
  registry.Increment("a");
  registry.Increment("a", 4);
  registry.Increment("b", 0);
  EXPECT_EQ(registry.GetCounter("a").value(), 5);
  EXPECT_EQ(registry.GetCounter("b").value(), 0);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("a"), 5);
  EXPECT_EQ(snap.Counter("b"), 0);
  EXPECT_EQ(snap.Counter("never-touched"), 0) << "absent counters read as 0";
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  obs::MetricRegistry registry;
  registry.SetGauge("level", 10.0);
  registry.AddGauge("level", -2.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().Gauge("level"), 7.5);
  registry.SetGauge("level", 1.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().Gauge("level"), 1.0)
      << "Set overwrites, it does not accumulate";
}

TEST(MetricRegistryTest, StableReferencesAcrossInsertions) {
  obs::MetricRegistry registry;
  obs::Counter& a = registry.GetCounter("a");
  for (int i = 0; i < 100; ++i) {
    registry.Increment("c" + std::to_string(i));
  }
  a.Increment(7);
  EXPECT_EQ(registry.Snapshot().Counter("a"), 7)
      << "handles must survive later registrations";
}

TEST(MetricRegistryTest, ResetClearsEverything) {
  obs::MetricRegistry registry;
  registry.Increment("c", 3);
  registry.SetGauge("g", 1.0);
  registry.Record("h", 2.0);
  registry.Reset();
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsSnapshotTest, HitRate) {
  obs::MetricRegistry registry;
  EXPECT_DOUBLE_EQ(registry.Snapshot().HitRate("h", "m"), 0.0)
      << "no observations -> 0, not NaN";
  registry.Increment("h", 3);
  registry.Increment("m", 1);
  EXPECT_DOUBLE_EQ(registry.Snapshot().HitRate("h", "m"), 0.75);
}

// ---------------------------------------------------------------------------
// Histogram quantiles
// ---------------------------------------------------------------------------

/// Exact nearest-rank quantile of a sorted vector.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  obs::MetricRegistry registry;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    values.push_back(static_cast<double>(i));
    registry.Record("h", static_cast<double>(i));
  }
  const obs::HistogramSnapshot h = registry.Snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 1000);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.sum, 500500.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0) << "q=0 is the exact min";
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0) << "q=1 is the exact max";

  // Bucket growth is 2^(1/8) (~9.05%), so the midpoint representative is
  // within ~4.6% of any value in the bucket.
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.05)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, QuantilesOnSkewedDistribution) {
  // 95 fast observations at ~1.0 and 5 slow outliers at ~100.0: p50 must
  // report the fast mode, p99 the slow tail.
  obs::Histogram hist;
  std::vector<double> values;
  for (int i = 0; i < 95; ++i) {
    const double v = 1.0 + 0.01 * i;
    values.push_back(v);
    hist.Record(v);
  }
  for (int i = 0; i < 5; ++i) {
    const double v = 100.0 + i;
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot h = hist.Snapshot();
  EXPECT_NEAR(h.Quantile(0.50), ExactQuantile(values, 0.50),
              ExactQuantile(values, 0.50) * 0.05);
  EXPECT_NEAR(h.Quantile(0.99), ExactQuantile(values, 0.99),
              ExactQuantile(values, 0.99) * 0.05);
  EXPECT_GT(h.Quantile(0.99), 50.0) << "tail must not collapse into the mode";
  EXPECT_LT(h.Quantile(0.50), 2.5) << "mode must not absorb the tail";
}

TEST(HistogramTest, TinyAndZeroValuesCollapseIntoBucketZero) {
  obs::Histogram hist;
  hist.Record(0.0);
  hist.Record(1e-12);
  const obs::HistogramSnapshot h = hist.Snapshot();
  EXPECT_EQ(h.count, 2);
  EXPECT_EQ(h.buckets.count(0), 1u);
  EXPECT_LE(h.Quantile(0.5), obs::Histogram::kMinTrackable);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  for (const double v : {42.0, 0.0, -7.5, 1e-12}) {
    obs::Histogram hist;
    hist.Record(v);
    const obs::HistogramSnapshot h = hist.Snapshot();
    for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
      EXPECT_DOUBLE_EQ(h.Quantile(q), v)
          << "single-sample histograms must be exact at q=" << q
          << " for v=" << v;
    }
  }
}

TEST(HistogramTest, ZeroIsAnExactQuantile) {
  obs::Histogram hist;
  hist.Record(-5.0);
  hist.Record(0.0);
  hist.Record(5.0);
  const obs::HistogramSnapshot h = hist.Snapshot();
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0)
      << "the zero bucket's representative value is exactly 0";
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);
}

TEST(HistogramTest, NegativeValuesKeepValueOrder) {
  obs::Histogram hist;
  hist.Record(-1.0);
  hist.Record(-2.0);
  hist.Record(-4.0);
  const obs::HistogramSnapshot h = hist.Snapshot();
  EXPECT_DOUBLE_EQ(h.min, -4.0);
  EXPECT_DOUBLE_EQ(h.max, -1.0);
  EXPECT_NEAR(h.Quantile(0.5), -2.0, 2.0 * 0.05)
      << "median of mirrored negative buckets";
  EXPECT_LT(h.Quantile(0.1), h.Quantile(0.9))
      << "quantiles must be monotone across negative buckets";
  // Mixed signs: negative buckets sort before positive ones.
  hist.Record(3.0);
  hist.Record(8.0);
  const obs::HistogramSnapshot mixed = hist.Snapshot();
  EXPECT_LT(mixed.Quantile(0.2), 0.0);
  EXPECT_GT(mixed.Quantile(0.9), 0.0);
}

// ---------------------------------------------------------------------------
// Snapshot merge
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, MergeCombinesCountersGaugesHistograms) {
  obs::MetricRegistry a;
  obs::MetricRegistry b;
  a.Increment("shared", 2);
  b.Increment("shared", 3);
  b.Increment("only-b", 1);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 9.0);
  for (int i = 1; i <= 50; ++i) a.Record("h", static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.Record("h", static_cast<double>(i));

  obs::MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.Counter("shared"), 5) << "counters add";
  EXPECT_EQ(merged.Counter("only-b"), 1);
  EXPECT_DOUBLE_EQ(merged.Gauge("g"), 10.0)
      << "gauges add: levels from disjoint sources (per-node queue depths, "
         "store bytes) combine, and addition is fold-order independent";

  // The merged histogram must equal one built from all 100 values.
  obs::MetricRegistry whole;
  for (int i = 1; i <= 100; ++i) whole.Record("h", static_cast<double>(i));
  const obs::HistogramSnapshot expect = whole.Snapshot().histograms.at("h");
  const obs::HistogramSnapshot got = merged.histograms.at("h");
  EXPECT_EQ(got.count, expect.count);
  EXPECT_DOUBLE_EQ(got.sum, expect.sum);
  EXPECT_DOUBLE_EQ(got.min, expect.min);
  EXPECT_DOUBLE_EQ(got.max, expect.max);
  EXPECT_EQ(got.buckets, expect.buckets) << "bucket-exact merge";
  EXPECT_DOUBLE_EQ(got.P95(), expect.P95());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, ExportersAreDeterministicAndWellFormed) {
  obs::MetricRegistry registry;
  registry.Increment("z.counter", 5);
  registry.Increment("a.counter", 1);
  registry.SetGauge("g", -0.0);  // Negative zero must normalize.
  registry.Record("lat", 0.25);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"z.counter\": 5"), std::string::npos);
  EXPECT_LT(json.find("a.counter"), json.find("z.counter"))
      << "exporters emit names sorted";
  EXPECT_EQ(json.find("-0"), std::string::npos) << "no negative zero";

  const std::string csv = snap.ToCsv();
  EXPECT_EQ(csv.rfind("kind,name,value,count,sum,min,max,p50,p95,p99\n", 0),
            0u);
  EXPECT_NE(csv.find("counter,a.counter,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,"), std::string::npos);
  EXPECT_NE(snap.ToText().find("a.counter"), std::string::npos);

  EXPECT_EQ(json, registry.Snapshot().ToJson()) << "snapshotting is stable";
}

// ---------------------------------------------------------------------------
// EventJournal
// ---------------------------------------------------------------------------

TEST(EventJournalTest, FluentFieldsAndLookups) {
  obs::EventJournal journal;
  journal.Append(1.5, obs::event::kCacheAdd)
      .With("name", std::string("RIC_Q1_S1P0_R0"))
      .With("node", 3)
      .With("bytes", int64_t{4096})
      .With("score", 0.25);
  const obs::Event& e = journal.events().front();
  EXPECT_EQ(e.time(), 1.5);
  EXPECT_EQ(e.type(), obs::event::kCacheAdd);
  EXPECT_EQ(e.StrOr("name", ""), "RIC_Q1_S1P0_R0");
  EXPECT_EQ(e.IntOr("node", -1), 3);
  EXPECT_EQ(e.IntOr("bytes", -1), 4096);
  EXPECT_DOUBLE_EQ(e.DoubleOr("score", 0.0), 0.25);
  EXPECT_EQ(e.IntOr("absent", -7), -7);
  EXPECT_EQ(e.Find("absent"), nullptr);
}

TEST(EventJournalTest, CommonFieldsApplyToLaterEventsOnly) {
  obs::EventJournal journal;
  journal.Append(0.0, "before");
  journal.SetCommonField("system", "redoop");
  journal.Append(1.0, "after");
  EXPECT_EQ(journal.events()[0].Find("system"), nullptr);
  EXPECT_EQ(journal.events()[1].StrOr("system", ""), "redoop");
}

TEST(EventJournalTest, JsonlRoundTripIsByteIdentical) {
  obs::EventJournal journal;
  journal.SetCommonField("system", "redoop");
  journal.Append(0.0, obs::event::kWindowOpen).With("recurrence", 0);
  journal.Append(12.25, obs::event::kCacheAdd)
      .With("name", "quote\"and\\slash")
      .With("bytes", int64_t{1} << 40)
      .With("ratio", 0.333333)
      .With("whole", 4.0);  // Integral-looking double must stay a double.
  journal.Append(100.5, obs::event::kTaskFinish)
      .With("kind", "map")
      .With("duration", 1.75);

  const std::string jsonl = journal.ToJsonl();
  obs::EventJournal parsed;
  ASSERT_TRUE(obs::EventJournal::Parse(jsonl, &parsed).ok());
  ASSERT_EQ(parsed.size(), journal.size());
  EXPECT_EQ(parsed.ToJsonl(), jsonl) << "parse -> serialize is the identity";

  // Types survive: the integral-looking double is still a double.
  const obs::Event& add = parsed.events()[1];
  const obs::EventField* whole = add.Find("whole");
  ASSERT_NE(whole, nullptr);
  EXPECT_EQ(whole->kind, obs::EventField::Kind::kDouble);
  const obs::EventField* bytes = add.Find("bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->kind, obs::EventField::Kind::kInt);
  EXPECT_EQ(bytes->i64, int64_t{1} << 40);
  EXPECT_EQ(add.StrOr("name", ""), "quote\"and\\slash");
}

TEST(EventJournalTest, MalformedLinesFailWithLineNumbers) {
  const std::string good1 = "{\"t\":1.000000,\"type\":\"a\"}";
  const std::string good2 = "{\"t\":2.000000,\"type\":\"b\",\"n\":3}";
  obs::EventJournal out;

  // Garbage on line 2: the error names the line, nothing is skipped.
  Status status =
      obs::EventJournal::Parse(good1 + "\nGARBAGE\n" + good2, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();

  // Truncated final line (no closing brace).
  status = obs::EventJournal::Parse(
      good1 + "\n{\"t\":2.000000,\"type\":\"b\"", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();

  // Trailing garbage after a well-formed object.
  status = obs::EventJournal::Parse(good1 + "}{", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos)
      << status.message();

  // Blank lines are the one tolerated irregularity.
  status = obs::EventJournal::Parse(good1 + "\n\n" + good2 + "\n", &out);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(out.size(), 2u);
}

TEST(EventJournalTest, CorruptedRoundTripsNeverParseSilentlyWrong) {
  obs::EventJournal journal;
  journal.SetCommonField("system", "fuzz");
  journal.Append(1.0, obs::event::kCacheAdd)
      .With("name", "file-P3_R")
      .With("bytes", 4096)
      .With("ratio", 0.125);
  journal.Append(2.5, obs::event::kTaskFinish)
      .With("kind", "reduce")
      .With("duration", 7.75);
  const std::string jsonl = journal.ToJsonl();

  // Every proper-prefix truncation either fails (mid-line cut) or parses
  // back to an exact prefix of the original journal (cut at a newline).
  for (size_t cut = 1; cut < jsonl.size(); ++cut) {
    const std::string truncated = jsonl.substr(0, cut);
    obs::EventJournal parsed;
    const Status status = obs::EventJournal::Parse(truncated, &parsed);
    if (status.ok()) {
      const std::string reserialized = parsed.ToJsonl();
      EXPECT_EQ(jsonl.compare(0, reserialized.size(), reserialized), 0)
          << "accepted truncation at byte " << cut
          << " must be a clean line-boundary prefix";
    } else {
      EXPECT_NE(status.message().find("line"), std::string::npos)
          << "error must carry a line number: " << status.message();
    }
  }

  // Single-byte structural corruption (braces, quotes, colons, digits
  // replaced with '!') must fail or round-trip deterministically — never
  // crash, never drop lines silently.
  for (size_t i = 0; i < jsonl.size(); ++i) {
    if (jsonl[i] == '\n') continue;
    std::string corrupted = jsonl;
    corrupted[i] = '!';
    obs::EventJournal parsed;
    const Status status = obs::EventJournal::Parse(corrupted, &parsed);
    if (status.ok()) {
      EXPECT_EQ(parsed.size(), journal.size())
          << "an accepted corruption at byte " << i
          << " must not silently drop events";
    }
  }
}

TEST(EventJournalTest, LoadFileReportsMissingAndLoadsRealFiles) {
  obs::EventJournal out;
  const Status missing =
      obs::EventJournal::LoadFile("/nonexistent/journal.jsonl", &out);
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.message().find("/nonexistent/journal.jsonl"),
            std::string::npos);

  obs::EventJournal journal;
  journal.Append(3.0, "x").With("k", 1);
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.jsonl";
  ASSERT_TRUE(journal.WriteFile(path).ok());
  ASSERT_TRUE(obs::EventJournal::LoadFile(path, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.events()[0].IntOr("k", 0), 1);
  std::remove(path.c_str());
}

TEST(EventJournalTest, CountType) {
  obs::EventJournal journal;
  journal.Append(0.0, "a");
  journal.Append(1.0, "b");
  journal.Append(2.0, "a");
  EXPECT_EQ(journal.CountType("a"), 2u);
  EXPECT_EQ(journal.CountType("b"), 1u);
  EXPECT_EQ(journal.CountType("c"), 0u);
}

TEST(ObservabilityContextTest, TimeSourceStampsEmittedEvents) {
  obs::ObservabilityContext ctx;
  double now = 5.0;
  ctx.SetTimeSource([&now] { return now; });
  ctx.Emit("first");
  now = 9.5;
  ctx.Emit("second");
  ctx.EmitAt(2.0, "explicit");
  EXPECT_DOUBLE_EQ(ctx.journal().events()[0].time(), 5.0);
  EXPECT_DOUBLE_EQ(ctx.journal().events()[1].time(), 9.5);
  EXPECT_DOUBLE_EQ(ctx.journal().events()[2].time(), 2.0);
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented runs are deterministic and observable
// ---------------------------------------------------------------------------

struct InstrumentedRun {
  std::string journal_jsonl;
  std::string metrics_json;
  obs::MetricsSnapshot snapshot;
};

InstrumentedRun RunInstrumentedAggregation() {
  RecurringQuery query = MakeAggregationQuery(1, "obs", 1, 200, 40, 4);
  Cluster cluster(6, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  obs::ObservabilityContext ctx;
  ctx.journal().SetCommonField("system", "redoop");
  RedoopDriverOptions options;
  options.obs = &ctx;
  RedoopDriver driver(&cluster, feed.get(), query, options);
  RunReport report = driver.Run(3).value();
  InstrumentedRun run;
  run.journal_jsonl = ctx.journal().ToJsonl();
  run.metrics_json = ctx.metrics().Snapshot().ToJson();
  run.snapshot = report.observability;
  return run;
}

TEST(ObservabilityIntegrationTest, IdenticalRunsProduceIdenticalArtifacts) {
  const InstrumentedRun a = RunInstrumentedAggregation();
  const InstrumentedRun b = RunInstrumentedAggregation();
  EXPECT_EQ(a.journal_jsonl, b.journal_jsonl)
      << "journals must be byte-identical across identical runs";
  EXPECT_EQ(a.metrics_json, b.metrics_json)
      << "metric snapshots must be byte-identical across identical runs";
}

TEST(ObservabilityIntegrationTest, OverlappingWindowsHitThePaneCaches) {
  const InstrumentedRun run = RunInstrumentedAggregation();
  const obs::MetricsSnapshot& m = run.snapshot;
  EXPECT_GT(m.Counter(obs::metric::kCachePaneHits), 0)
      << "warm windows must reuse panes cached by earlier recurrences";
  EXPECT_GT(m.Counter(obs::metric::kCachePaneMisses), 0)
      << "the cold window and each fresh pane are misses";
  EXPECT_GT(m.HitRate(obs::metric::kCachePaneHits,
                      obs::metric::kCachePaneMisses),
            0.5)
      << "win/slide = 5 panes of overlap per window";
  EXPECT_EQ(m.Counter(obs::metric::kWindowsCompleted), 3);
  EXPECT_GT(m.Counter(obs::metric::kTasksMap), 0);
  EXPECT_GT(m.Counter(obs::metric::kTasksReduce), 0);
  EXPECT_EQ(m.histograms.at(obs::metric::kWindowResponseTime).count, 3);

  // The journal carries the decision events the trace reconstruction and
  // the CLI depend on.
  obs::EventJournal journal;
  ASSERT_TRUE(obs::EventJournal::Parse(run.journal_jsonl, &journal).ok());
  EXPECT_GT(journal.CountType(obs::event::kCacheAdd), 0u);
  EXPECT_GT(journal.CountType(obs::event::kCachePaneHit), 0u);
  EXPECT_GT(journal.CountType(obs::event::kSchedAssign), 0u);
  EXPECT_GT(journal.CountType(obs::event::kProfilerObserve), 0u);
  EXPECT_GT(journal.CountType(obs::event::kTaskFinish), 0u);
  EXPECT_EQ(journal.CountType(obs::event::kWindowComplete), 3u);
  for (const obs::Event& e : journal.events()) {
    EXPECT_EQ(e.StrOr("system", ""), "redoop") << "common field on " << e.type();
  }
}

// ---------------------------------------------------------------------------
// Thread-safety and merge-associativity contracts (parallel engine support)
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, ShardedCountersFoldExactlyUnderConcurrency) {
  obs::MetricRegistry registry;
  obs::Counter& counter = registry.GetCounter("parallel.total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{3} * kThreads * kPerThread)
      << "shard fold must lose nothing regardless of thread placement";
  EXPECT_EQ(registry.Snapshot().Counter("parallel.total"),
            int64_t{3} * kThreads * kPerThread);
}

TEST(MetricRegistryTest, ConcurrentGetAndRecordIsSafe) {
  obs::MetricRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 500; ++i) {
        registry.Increment("shared.counter");
        registry.Record("shared.histogram", 1.0 + t);
        registry.Increment("per.thread." + std::to_string(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("shared.counter"), kThreads * 500);
  EXPECT_EQ(snap.histograms.at("shared.histogram").count, kThreads * 500);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.Counter("per.thread." + std::to_string(t)), 500);
  }
}

TEST(HistogramTest, SnapshotMergeIsAssociativeAndCommutative) {
  // Values chosen dyadic so double sums are exact and grouping-invariant.
  auto snap_of = [](std::initializer_list<double> values) {
    obs::Histogram h;
    for (double v : values) h.Record(v);
    return h.Snapshot();
  };
  const obs::HistogramSnapshot a = snap_of({0.25, 8.0});
  const obs::HistogramSnapshot b = snap_of({-4.5});
  const obs::HistogramSnapshot c = snap_of({0.5, 0.5, 1024.0});
  const obs::HistogramSnapshot empty;

  auto merge = [](obs::HistogramSnapshot x, const obs::HistogramSnapshot& y) {
    x.MergeFrom(y);
    return x;
  };
  const obs::HistogramSnapshot left = merge(merge(a, b), c);
  const obs::HistogramSnapshot right = merge(a, merge(b, c));
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.min, right.min);
  EXPECT_EQ(left.max, right.max);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.buckets, right.buckets);

  const obs::HistogramSnapshot ab = merge(a, b);
  const obs::HistogramSnapshot ba = merge(b, a);
  EXPECT_EQ(ab.min, ba.min);
  EXPECT_EQ(ab.max, ba.max);
  EXPECT_EQ(ab.buckets, ba.buckets);

  // The empty snapshot is a two-sided identity: its placeholder min/max
  // must never leak into a real extremum (all-negative data would
  // otherwise pick up a spurious max of 0).
  EXPECT_EQ(merge(b, empty).max, -4.5);
  EXPECT_EQ(merge(empty, b).max, -4.5);
  EXPECT_EQ(merge(merge(empty, a), empty).min, 0.25);
}

TEST(EventJournalTest, ParseDoesNotRestampCommonFieldsOfTarget) {
  obs::EventJournal source;
  source.Append(1.0, "x").With("k", "v");
  const std::string jsonl = source.ToJsonl();

  obs::EventJournal target;
  target.SetCommonField("system", "live");
  target.Append(0.5, "pre-existing");
  ASSERT_TRUE(obs::EventJournal::Parse(jsonl, &target).ok());
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target.events()[0].Find("system"), nullptr)
      << "parsed lines must not inherit the target's common fields";
  EXPECT_EQ(target.ToJsonl(), jsonl) << "parse -> serialize stays identity";
  // The replaced journal accepts appends from this thread (writer unpinned).
  target.Append(2.0, "after-parse");
  EXPECT_EQ(target.size(), 2u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(EventJournalDeathTest, CrossThreadAppendViolatesSingleWriter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        obs::EventJournal journal;
        journal.Append(0.0, "pinned-here");
        std::thread([&journal] { journal.Append(1.0, "other-thread"); })
            .join();
      },
      "single-writer");
}
#endif  // GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------------------
// Dimensional labels + TelemetryScope
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, GaugeMergeIsFoldOrderIndependent) {
  // Three disjoint books with integer-valued levels; any fold order (and
  // grouping) must produce one snapshot. The seed's last-writer-wins merge
  // made the result depend on which shard folded last.
  obs::MetricRegistry a, b, c;
  a.SetGauge("store.bytes", 100.0);
  b.SetGauge("store.bytes", 7.0);
  c.SetGauge("store.bytes", 3000.0);
  c.SetGauge("only-c", 5.0);

  obs::MetricsSnapshot abc = a.Snapshot();
  abc.MergeFrom(b.Snapshot());
  abc.MergeFrom(c.Snapshot());

  obs::MetricsSnapshot cba = c.Snapshot();
  cba.MergeFrom(b.Snapshot());
  cba.MergeFrom(a.Snapshot());

  obs::MetricsSnapshot grouped = b.Snapshot();  // (b + c) + a
  grouped.MergeFrom(c.Snapshot());
  grouped.MergeFrom(a.Snapshot());

  EXPECT_DOUBLE_EQ(abc.Gauge("store.bytes"), 3107.0);
  EXPECT_EQ(abc.ToJson(), cba.ToJson()) << "fold order must not show";
  EXPECT_EQ(abc.ToJson(), grouped.ToJson()) << "fold grouping must not show";
}

TEST(MetricRegistryTest, LabelSetEncodingAndInterning) {
  obs::LabelSet empty;
  EXPECT_EQ(empty.Encode(), "");
  obs::LabelSet full;
  full.query = "wcc";
  full.window = 12;
  full.node = 3;
  full.phase = "map";
  EXPECT_EQ(full.Encode(), "{query=wcc,window=12,node=3,phase=map}")
      << "fixed dimension order, set dims only";
  obs::LabelSet partial;
  partial.query = "join";
  partial.node = 0;
  EXPECT_EQ(obs::LabeledName("cache.pane.hits", partial),
            "cache.pane.hits{query=join,node=0}");

  obs::MetricRegistry registry;
  EXPECT_EQ(registry.InternLabels(empty), obs::kNoLabels);
  const obs::LabelId id = registry.InternLabels(partial);
  EXPECT_NE(id, obs::kNoLabels);
  EXPECT_EQ(registry.InternLabels(partial), id) << "interning dedups";
  EXPECT_EQ(registry.label_set(id), partial);
}

TEST(MetricRegistryTest, LabeledSeriesExportUnderEncodedNames) {
  obs::MetricRegistry registry;
  obs::LabelSet wcc;
  wcc.query = "wcc";
  const obs::LabelId id = registry.InternLabels(wcc);

  registry.Increment("hits", 2);       // Global series.
  registry.Increment("hits", id, 5);   // Labeled series: separate cell.
  registry.SetGauge("level", id, 9.0);
  registry.Record("lat", id, 0.25);
  registry.Increment("plain", obs::kNoLabels, 3);  // Aliases the plain cell.

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("hits"), 2);
  EXPECT_EQ(snap.Counter("hits{query=wcc}"), 5);
  EXPECT_DOUBLE_EQ(snap.Gauge("level{query=wcc}"), 9.0);
  EXPECT_EQ(snap.histograms.at("lat{query=wcc}").count, 1);
  EXPECT_EQ(snap.Counter("plain"), 3);

  registry.Reset();
  EXPECT_EQ(registry.Snapshot().counters.size(), 0u);
  // Handles stay valid across Reset (intern table survives).
  registry.Increment("hits", id, 1);
  EXPECT_EQ(registry.Snapshot().Counter("hits{query=wcc}"), 1);
}

#if GTEST_HAS_DEATH_TEST
TEST(MetricRegistryDeathTest, LabelValueCharsetIsEnforced) {
  obs::MetricRegistry registry;
  obs::LabelSet bad;
  bad.query = "a{b";
  EXPECT_DEATH(registry.InternLabels(bad), "label value");
}
#endif  // GTEST_HAS_DEATH_TEST

TEST(TelemetryScopeTest, StampsAttributionAndDualWritesMetrics) {
  obs::ObservabilityContext ctx;
  int64_t window_cell = -1;
  obs::TelemetryScope scope(&ctx, "wcc", &window_cell);

  scope.Emit("custom").With("k", 1);  // window < 0: no window field.
  window_cell = 4;
  scope.Emit("custom2");
  scope.Increment("c", 2);
  scope.Record("h", 1.5);

  const obs::Event& first = ctx.journal().events()[0];
  EXPECT_EQ(first.StrOr("query", ""), "wcc");
  EXPECT_EQ(first.Find("window"), nullptr);
  const obs::Event& second = ctx.journal().events()[1];
  EXPECT_EQ(second.IntOr("window", -1), 4);

  const obs::MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.Counter("c"), 2) << "global series still written";
  EXPECT_EQ(snap.Counter("c{query=wcc}"), 2);
  EXPECT_EQ(snap.histograms.at("h{query=wcc}").count, 1);

  // Derived scopes extend the label set; query/window plumbing carries.
  obs::TelemetryScope node_scope = scope.WithNode(3);
  node_scope.Increment("c");
  EXPECT_EQ(ctx.metrics().Snapshot().Counter("c{query=wcc,node=3}"), 1);
  EXPECT_EQ(node_scope.window(), 4);

  // Inactive scopes ignore metric writes.
  obs::TelemetryScope inactive;
  EXPECT_FALSE(inactive.active());
  inactive.Increment("ignored");
  EXPECT_EQ(ctx.metrics().Snapshot().Counter("ignored"), 0);
}

// ---------------------------------------------------------------------------
// Flight recorder (bounded journal retention)
// ---------------------------------------------------------------------------

TEST(EventJournalTest, RetentionBudgetEvictsOldestEvents) {
  obs::EventJournal unbounded;
  obs::EventJournal bounded;
  bounded.SetRetentionBudget(1);  // Tiny: every sealed event evicts.
  int64_t total_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    unbounded.Append(i, "tick").With("i", i);
    bounded.Append(i, "tick").With("i", i);
    total_bytes +=
        static_cast<int64_t>(unbounded.events().back().ToJson().size()) + 1;
  }
  EXPECT_EQ(unbounded.size(), 50u);
  // The newest event is never evicted (sizes seal at the next Append), so
  // the bounded journal retains exactly the still-open tail.
  EXPECT_EQ(bounded.size(), 1u);
  EXPECT_EQ(bounded.events().back().IntOr("i", -1), 49);
  EXPECT_EQ(bounded.dropped_events(), 49);
  EXPECT_GT(bounded.dropped_bytes(), 0);
  EXPECT_LT(bounded.dropped_bytes(), total_bytes);

  // A generous budget drops nothing.
  obs::EventJournal roomy;
  roomy.SetRetentionBudget(total_bytes + 1024);
  for (int i = 0; i < 50; ++i) roomy.Append(i, "tick").With("i", i);
  EXPECT_EQ(roomy.size(), 50u);
  EXPECT_EQ(roomy.dropped_events(), 0);

  bounded.Clear();
  EXPECT_EQ(bounded.dropped_events(), 0) << "Clear resets drop counters";
  EXPECT_EQ(bounded.dropped_bytes(), 0);
}

TEST(EventJournalTest, TruncationMarkerRoundTripsThroughJsonl) {
  obs::EventJournal journal;
  journal.SetRetentionBudget(256);
  for (int i = 0; i < 200; ++i) {
    journal.Append(static_cast<double>(i), "tick").With("i", i);
  }
  ASSERT_GT(journal.dropped_events(), 0);

  const std::string jsonl = journal.ToJsonl();
  EXPECT_NE(jsonl.find(obs::event::kJournalTruncated), std::string::npos)
      << "serialized form must disclose the truncation";
  const size_t first_newline = jsonl.find('\n');
  EXPECT_LT(jsonl.find(obs::event::kJournalTruncated), first_newline)
      << "marker leads the file: " << jsonl.substr(0, 80);

  obs::EventJournal parsed;
  const Status status = obs::EventJournal::Parse(jsonl, &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(parsed.size(), journal.size())
      << "the marker is folded into counters, not kept as an event";
  EXPECT_EQ(parsed.dropped_events(), journal.dropped_events());
  EXPECT_EQ(parsed.dropped_bytes(), journal.dropped_bytes());
  EXPECT_EQ(parsed.ToJsonl(), jsonl) << "parse -> serialize is identity";
}

TEST(ObservabilityIntegrationTest, DriverOwnsContextWhenNoneProvided) {
  RecurringQuery query = MakeAggregationQuery(1, "own", 1, 200, 40, 4);
  Cluster cluster(6, SmallClusterConfig());
  auto feed = MakeWccFeed(1, 30, 20);
  RedoopDriver driver(&cluster, feed.get(), query);
  ASSERT_NE(driver.observability(), nullptr);
  RunReport report = driver.Run(2).value();
  EXPECT_GT(driver.observability()->journal().size(), 0u);
  EXPECT_GT(report.observability.Counter(obs::metric::kCachePaneHits), 0);
}

}  // namespace
}  // namespace redoop
