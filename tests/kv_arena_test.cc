// Unit tests for the flat KV arena: slice layout, the normalized-prefix
// sort, flat merge, KvRange views, and the scratch materialization the
// string Reduce adapter relies on.
#include "mapreduce/kv_arena.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "mapreduce/kv.h"

namespace redoop {
namespace {

TEST(FlatKvBufferTest, AppendAndRead) {
  FlatKvBuffer buf;
  buf.Append("alpha", "1", 14);
  buf.Append("", "empty-key", 17);
  buf.Append("beta", "", 12);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.key(0), "alpha");
  EXPECT_EQ(buf.value(0), "1");
  EXPECT_EQ(buf.logical_bytes(0), 14);
  EXPECT_EQ(buf.key(1), "");
  EXPECT_EQ(buf.value(1), "empty-key");
  EXPECT_EQ(buf.key(2), "beta");
  EXPECT_EQ(buf.value(2), "");
  EXPECT_EQ(buf.total_logical_bytes(), 14 + 17 + 12);
}

TEST(FlatKvBufferTest, FramingAppendMatchesKeyValueDefault) {
  FlatKvBuffer buf;
  buf.Append("key", "value");
  const KeyValue kv("key", "value");
  EXPECT_EQ(buf.logical_bytes(0), kv.logical_bytes);
}

TEST(FlatKvBufferTest, RoundTripsThroughKeyValues) {
  std::vector<KeyValue> kvs = {
      {"b", "2", 10}, {"a", "1", 9}, {"a", "0", 9}, {"c", "", 8}};
  FlatKvBuffer buf = FlatKvBuffer::FromKeyValues(kvs);
  EXPECT_EQ(buf.ToKeyValues(), kvs);
}

TEST(FlatKvBufferTest, PairLargerThanChunkGetsOwnChunk) {
  FlatKvBuffer buf;
  const std::string big(1 << 20, 'x');  // 1 MiB > 256 KiB chunk.
  buf.Append("small", "pair", 8);
  buf.Append("big", big, 4);
  buf.Append("after", "big", 8);
  EXPECT_EQ(buf.value(1), big);
  EXPECT_EQ(buf.key(2), "after");
}

TEST(FlatKvBufferTest, ViewsStableAcrossAppends) {
  FlatKvBuffer buf;
  buf.Append("first", "v", 8);
  const std::string_view key0 = buf.key(0);
  // Force several chunk rollovers.
  const std::string filler(100 * 1024, 'f');
  for (int i = 0; i < 16; ++i) buf.Append("k", filler, 8);
  EXPECT_EQ(key0, "first") << "chunk storage must never relocate";
}

TEST(FlatKvBufferTest, NormalizedPrefixOrdersLikeBytes) {
  // Integer order of prefixes must equal lexicographic order of the first
  // 8 bytes, including empty keys, proper prefixes, and high bytes.
  const std::vector<std::string> keys = {
      "", "a", std::string("a\0", 2), "aa", "ab", "abcdefgh", "abcdefghZ",
      "b", std::string("\xff\xfe", 2), std::string("\x01", 1)};
  for (const std::string& a : keys) {
    for (const std::string& b : keys) {
      const std::string a8 = a.substr(0, 8);
      const std::string b8 = b.substr(0, 8);
      const uint64_t pa = FlatKvBuffer::NormalizedPrefix(a);
      const uint64_t pb = FlatKvBuffer::NormalizedPrefix(b);
      if (a8 < b8) {
        EXPECT_LE(pa, pb) << a << " vs " << b;
      } else if (b8 < a8) {
        EXPECT_LE(pb, pa) << a << " vs " << b;
      } else {
        EXPECT_EQ(pa, pb) << a << " vs " << b;
      }
    }
  }
}

TEST(FlatKvBufferTest, SortedOrderMatchesKeyValueLess) {
  Random random(7);
  FlatKvBuffer buf;
  std::vector<KeyValue> kvs;
  for (int i = 0; i < 500; ++i) {
    // Shared prefixes longer than 8 bytes force the tie fallback.
    std::string key = "shared-prefix-";
    key += static_cast<char>('a' + random.Uniform(4));
    if (random.Uniform(4) == 0) key = "";
    if (random.Uniform(5) == 0) key += '\0';
    std::string value = std::to_string(random.Uniform(10));
    buf.Append(key, value, 8);
    kvs.emplace_back(std::move(key), std::move(value), 8);
  }
  FlatKvBuffer sorted = buf.SortedCopy();
  std::stable_sort(kvs.begin(), kvs.end(), KeyValueLess{});
  EXPECT_TRUE(sorted.IsSorted());
  EXPECT_EQ(sorted.ToKeyValues(), kvs)
      << "prefix sort must equal stable (key, value) sort";
}

TEST(FlatKvBufferTest, ShrinkToFitPreservesContents) {
  FlatKvBuffer buf;
  buf.Reserve(1000);
  buf.Append("k1", "v1", 8);
  buf.Append("k2", "v2", 8);
  const int64_t before = buf.HostBytes();
  buf.ShrinkToFit();
  EXPECT_LT(buf.HostBytes(), before);
  EXPECT_EQ(buf.key(0), "k1");
  EXPECT_EQ(buf.value(1), "v2");
}

TEST(MergeFlatRunsTest, MergesSortedRunsStably) {
  FlatKvBuffer a;
  a.Append("a", "1", 8);
  a.Append("c", "runA", 8);
  FlatKvBuffer b;
  b.Append("b", "2", 8);
  b.Append("c", "runA", 8);  // Equal (key, value) as run a's pair.
  FlatKvBuffer c;  // Empty run.
  const std::vector<const FlatKvBuffer*> runs = {&a, &b, &c};
  FlatKvBuffer merged = MergeFlatRuns(runs);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(merged.IsSorted());
  EXPECT_EQ(merged.key(0), "a");
  EXPECT_EQ(merged.key(1), "b");
  EXPECT_EQ(merged.key(2), "c");
  EXPECT_EQ(merged.key(3), "c");
}

TEST(MergeFlatRunsTest, SingleAndEmptyRuns) {
  FlatKvBuffer only;
  only.Append("x", "1", 8);
  const std::vector<const FlatKvBuffer*> single = {&only};
  EXPECT_EQ(MergeFlatRuns(single).size(), 1u);
  const std::vector<const FlatKvBuffer*> none = {};
  EXPECT_TRUE(MergeFlatRuns(none).empty());
}

TEST(KvRangeTest, ContiguousAndIndexViews) {
  FlatKvBuffer buf;
  buf.Append("k", "a", 8);
  buf.Append("k", "b", 8);
  buf.Append("k", "c", 8);
  const KvRange contiguous(buf, 1, 3);
  ASSERT_EQ(contiguous.size(), 2u);
  EXPECT_EQ(contiguous.value(0), "b");
  EXPECT_EQ(contiguous.value(1), "c");
  const std::vector<uint32_t> indices = {2, 0};
  const KvRange subset(buf, indices);
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset.value(0), "c");
  EXPECT_EQ(subset.value(1), "a");
}

TEST(KvGroupScratchTest, MaterializesAndRecyclesStorage) {
  FlatKvBuffer buf;
  buf.Append("key", "long-value-one", 8);
  buf.Append("key", "two", 9);
  KvGroupScratch scratch;
  std::span<const KeyValue> group = scratch.Fill(KvRange(buf, 0, 2));
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].value, "long-value-one");
  EXPECT_EQ(group[1].logical_bytes, 9);
  // Refill with a shorter group: contents replaced, size honored.
  FlatKvBuffer other;
  other.Append("x", "y", 4);
  group = scratch.Fill(KvRange(other, 0, 1));
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].key, "x");
}

TEST(SortSliceIndicesTest, SortsSubsetOnly) {
  FlatKvBuffer buf;
  buf.Append("c", "1", 8);
  buf.Append("a", "1", 8);
  buf.Append("b", "1", 8);
  std::vector<uint32_t> idx = {0, 2};  // "c", "b" — skip "a".
  SortSliceIndices(buf, &idx);
  EXPECT_EQ(idx, (std::vector<uint32_t>{2, 0}));
}

}  // namespace
}  // namespace redoop
