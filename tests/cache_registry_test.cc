// Unit tests for the per-node local cache registry (paper §4.1) and the
// cache payload store.

#include <gtest/gtest.h>

#include "cluster/node.h"
#include "core/cache_key.h"
#include "core/cache_store.h"
#include "core/local_cache_registry.h"

namespace redoop {
namespace {

NodeOptions BigNode() {
  NodeOptions o;
  o.local_capacity_bytes = 1 << 20;
  return o;
}

// Well-formed pane-cache keys for registry/store rows.
CacheKey Ric(PaneId pane, int32_t partition = 0) {
  return CacheKey::ReduceInput(/*query=*/1, /*source=*/1, pane, partition);
}
CacheKey Roc(PaneId pane, int32_t partition = 0) {
  return CacheKey::ReduceOutput(/*query=*/1, /*source=*/1, pane, partition);
}

TEST(LocalCacheRegistryTest, AddAndFind) {
  LocalCacheRegistry registry(0, /*purge_cycle=*/60.0);
  registry.AddEntry(Roc(3), CacheType::kReduceOutput, 100);
  registry.AddEntry(Ric(4), CacheType::kReduceInput, 200);
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_TRUE(registry.Has(Roc(3)));
  const LocalCacheEntry* entry = registry.Find(Roc(3));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->type, CacheType::kReduceOutput);
  EXPECT_FALSE(entry->expired);
  EXPECT_EQ(entry->bytes, 100);
  EXPECT_EQ(registry.Find(Roc(99)), nullptr);
}

TEST(LocalCacheRegistryTest, MarkExpired) {
  LocalCacheRegistry registry(0, 60.0);
  registry.AddEntry(Ric(1), CacheType::kReduceInput, 10);
  EXPECT_TRUE(registry.MarkExpired(Ric(1)));
  EXPECT_TRUE(registry.Find(Ric(1))->expired);
  EXPECT_EQ(registry.expired_count(), 1);
  EXPECT_FALSE(registry.MarkExpired(Ric(42)));
}

TEST(LocalCacheRegistryTest, PurgeExpiredDeletesFromNode) {
  TaskNode node(0, BigNode());
  const CacheKey keep = Ric(1);
  const CacheKey drop = Ric(2);
  node.PutLocalFile(keep.name(), 100);
  node.PutLocalFile(drop.name(), 200);
  LocalCacheRegistry registry(0, 60.0);
  registry.AddEntry(keep, CacheType::kReduceInput, 100);
  registry.AddEntry(drop, CacheType::kReduceInput, 200);
  registry.MarkExpired(drop);

  EXPECT_EQ(registry.PurgeExpired(&node), 200);
  EXPECT_TRUE(node.HasLocalFile(keep.name()));
  EXPECT_FALSE(node.HasLocalFile(drop.name()));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.PurgeExpired(&node), 0) << "second purge is a no-op";
}

TEST(LocalCacheRegistryTest, PeriodicPurgeHonorsCycle) {
  TaskNode node(0, BigNode());
  const CacheKey a = Roc(1);
  node.PutLocalFile(a.name(), 50);
  LocalCacheRegistry registry(0, /*purge_cycle=*/100.0);
  registry.AddEntry(a, CacheType::kReduceOutput, 50);
  registry.MarkExpired(a);

  // Cycle starts at time 0; a scan before it elapses does nothing.
  EXPECT_EQ(registry.MaybePeriodicPurge(&node, 50.0), 0);
  EXPECT_TRUE(node.HasLocalFile(a.name()));
  // After the cycle, the scan purges.
  EXPECT_EQ(registry.MaybePeriodicPurge(&node, 120.0), 50);
  EXPECT_FALSE(node.HasLocalFile(a.name()));
}

TEST(LocalCacheRegistryTest, OnDemandPurgeFreesJustEnough) {
  TaskNode node(0, BigNode());
  LocalCacheRegistry registry(0, 1e9);  // Periodic purge effectively off.
  for (int i = 0; i < 5; ++i) {
    const CacheKey key = Ric(i);
    node.PutLocalFile(key.name(), 100);
    registry.AddEntry(key, CacheType::kReduceInput, 100);
    registry.MarkExpired(key);
  }
  const int64_t freed = registry.OnDemandPurge(&node, 250);
  EXPECT_GE(freed, 250);
  EXPECT_LT(freed, 500) << "should stop once enough space is reclaimed";
}

TEST(LocalCacheRegistryTest, OnDemandPurgeSkipsLiveCaches) {
  TaskNode node(0, BigNode());
  LocalCacheRegistry registry(0, 1e9);
  const CacheKey live = Ric(1);
  node.PutLocalFile(live.name(), 100);
  registry.AddEntry(live, CacheType::kReduceInput, 100);
  EXPECT_EQ(registry.OnDemandPurge(&node, 1000), 0)
      << "unexpired caches must never be purged";
  EXPECT_TRUE(node.HasLocalFile(live.name()));
}

TEST(LocalCacheRegistryTest, RemoveDropsMetadataOnly) {
  TaskNode node(0, BigNode());
  const CacheKey x = Ric(1);
  node.PutLocalFile(x.name(), 10);
  LocalCacheRegistry registry(0, 60.0);
  registry.AddEntry(x, CacheType::kReduceInput, 10);
  registry.Remove(x);
  EXPECT_FALSE(registry.Has(x));
  // Physical deletion is the failure path's job, not Remove's.
  EXPECT_TRUE(node.HasLocalFile(x.name()));
}

// ------------------------------ CacheStore ---------------------------------

TEST(CacheStoreTest, PutFindRemove) {
  CacheStore store;
  const CacheKey a = Ric(1);
  store.Put(a,
            CacheStore::PanePayload::FromKeyValues({{"k", "v", 8}}),
            CacheStore::PaneStats{8, 1});
  ASSERT_TRUE(store.Has(a));
  const CacheStore::Entry* entry = store.Find(a);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->payload()->size(), 1u);
  EXPECT_EQ(entry->bytes, 8);
  EXPECT_EQ(store.total_bytes(), 8);
  store.Remove(a);
  EXPECT_FALSE(store.Has(a));
  EXPECT_EQ(store.total_bytes(), 0);
  store.Remove(a);  // Idempotent.
}

TEST(CacheStoreTest, OverwriteReplacesBytes) {
  CacheStore store;
  const CacheKey a = Ric(1);
  store.Put(a, CacheStore::PanePayload::FromKeyValues({}),
            CacheStore::PaneStats{100, 0});
  store.Put(a, CacheStore::PanePayload::FromKeyValues({}),
            CacheStore::PaneStats{40, 0});
  EXPECT_EQ(store.total_bytes(), 40);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CacheStoreTest, PayloadPointerStableAcrossOtherInserts) {
  CacheStore store;
  const CacheKey a = Roc(0);
  store.Put(a,
            CacheStore::PanePayload::FromKeyValues({{"k", "v", 8}}),
            CacheStore::PaneStats{8, 1});
  const CacheStore::Entry* entry = store.Find(a);
  for (int i = 0; i < 100; ++i) {
    store.Put(Ric(i), CacheStore::PanePayload::FromKeyValues({}),
              CacheStore::PaneStats{1, 0});
  }
  EXPECT_EQ(store.Find(a), entry)
      << "job side-input payloads must stay valid while caches are added";
}

}  // namespace
}  // namespace redoop
